"""Ablation: two-level profiling vs. what-if for every candidate.

COLT's two-level strategy profiles the full candidate set ``C`` only
with crude cost formulas, spending what-if calls exclusively on the
small hot and materialized sets.  The naive alternative -- the model of
earlier on-line tuners the paper improves on -- issues what-if calls for
*every* relevant candidate of every query.

This ablation measures what the naive policy would cost in optimizer
invocations on the stable workload, versus what COLT actually spends.
"""

from repro.bench.harness import run_colt
from repro.core.config import ColtConfig
from repro.workload.datagen import build_catalog
from repro.workload.experiments import stable_distribution
from repro.workload.phases import stable_workload

BUDGET_PAGES = 9_000.0
WORKLOAD_LENGTH = 400


def test_ablation_twolevel(benchmark, report):
    catalog = build_catalog()
    distribution = stable_distribution()
    workload = stable_workload(distribution, WORKLOAD_LENGTH, catalog, seed=1)

    def run():
        colt = run_colt(
            build_catalog(),
            workload.queries,
            ColtConfig(storage_budget_pages=BUDGET_PAGES),
        )
        # The naive policy: one what-if call per (query, relevant
        # candidate) pair, with no budget and no sampling.
        naive_calls = 0
        mine_catalog = build_catalog()
        for query in workload.queries:
            relevant = {
                (c.table, c.column)
                for c in query.selection_columns()
                if mine_catalog.table(c.table).column(c.column).indexable
            }
            naive_calls += len(relevant)
        return colt, naive_calls

    colt, naive_calls = benchmark.pedantic(run, rounds=1)

    actual = sum(colt.whatif_per_epoch)
    report(
        "\n".join(
            [
                "two-level profiling ablation (stable workload, "
                f"{WORKLOAD_LENGTH} queries)",
                f"what-if calls, COLT two-level: {actual}",
                f"what-if calls, naive per-candidate: {naive_calls}",
                f"reduction: {naive_calls / max(1, actual):.1f}x",
                f"distinct indexes ever what-if-profiled: {colt.profiled_index_count}",
            ]
        )
    )

    # The two-level strategy must beat per-candidate profiling by a wide
    # margin -- this is the paper's "judicious" use of the optimizer.
    assert actual * 3 < naive_calls
    assert colt.profiled_index_count <= 18
