"""Table 1: data set characteristics.

Paper values: 1.4 GB, 32 tables, 6,928,120 tuples, largest 1,200,000,
smallest 5, 244 indexable attributes.  Everything except the byte size
(which depends on storage-format assumptions) reproduces exactly.
"""

from repro.bench.figures import table1_dataset


def test_table1_dataset(benchmark, report):
    result = benchmark(table1_dataset)
    report(result.to_text())

    s = result.summary
    assert s.num_tables == 32
    assert s.total_tuples == 6_928_120
    assert s.max_table_tuples == 1_200_000
    assert s.min_table_tuples == 5
    assert s.indexable_attributes == 244
    assert 0.8 <= s.size_bytes / 2**30 <= 1.6
