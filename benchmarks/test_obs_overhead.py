"""Observability overhead: instrumented vs. disabled-registry fleet.

The metrics layer rides on every query (`process_query` counters, span
handles) and every epoch close (dashboard rows, gauge refreshes), so it
must be cheap enough to leave on.  This re-runs the fleet-routing
workload's cost-policy configuration twice per round -- once with live
registries, once with ``MetricsRegistry(enabled=False)`` everywhere --
and demands the instrumented run stay within 5% wall-clock of the
disabled one (min-of-rounds, to shed scheduler noise).
"""

import time

from repro.core.config import ColtConfig
from repro.fleet import FleetCoordinator
from repro.obs.registry import MetricsRegistry
from repro.workload.datagen import build_catalog
from repro.workload.experiments import phase_distributions
from repro.workload.phases import multi_client_workload, shifting_workload

BUDGET_PAGES = 9_000.0
N_REPLICAS = 3
FLEET_EPOCH = 30
SEED = 11
ROUNDS = 3
MAX_OVERHEAD = 1.05


def build_workload():
    """The fleet-routing benchmark's 3-client shifting stream."""
    catalog = build_catalog()
    phases = phase_distributions()
    clients = [
        shifting_workload(
            [phases[i % len(phases)], phases[(i + 1) % len(phases)]],
            catalog,
            phase_length=100,
            transition=20,
            seed=SEED + i,
        )
        for i in range(N_REPLICAS)
    ]
    return multi_client_workload(clients, seed=SEED + 7)


def run_once(workload, enabled):
    """One cost-policy fleet pass; returns (wall seconds, fleet)."""
    fleet = FleetCoordinator(
        build_catalog,
        n_replicas=N_REPLICAS,
        config=ColtConfig(storage_budget_pages=BUDGET_PAGES),
        policy="cost",
        fleet_epoch_length=FLEET_EPOCH,
        registry=MetricsRegistry(enabled=enabled),
    )
    started = time.perf_counter()
    fleet.run(workload)
    return time.perf_counter() - started, fleet


def test_obs_overhead(benchmark, report):
    workload = build_workload()

    def run_all():
        rounds = [
            (run_once(workload, enabled=False), run_once(workload, enabled=True))
            for _ in range(ROUNDS)
        ]
        return rounds

    rounds = benchmark.pedantic(run_all, rounds=1)

    baseline = min(seconds for (seconds, _), _ in rounds)
    instrumented = min(seconds for _, (seconds, _) in rounds)
    ratio = instrumented / baseline
    _, (_, live_fleet) = rounds[-1]
    families = len(live_fleet.metrics_snapshot()["metrics"])

    lines = [
        f"observability overhead ({workload.description}, "
        f"{N_REPLICAS} replicas, {ROUNDS} rounds, min wall-clock)",
        f"{'registry':<14} {'seconds':>9}",
        f"{'disabled':<14} {baseline:>9.3f}",
        f"{'enabled':<14} {instrumented:>9.3f}",
        f"overhead: {ratio:.3f}x (bound {MAX_OVERHEAD:.2f}x); "
        f"{families} metric families exported",
    ]
    report("\n".join(lines))

    # The disabled run must actually be dark...
    (_, dark_fleet), _ = rounds[0]
    dark_sum = sum(
        sample.get("value", 0.0)
        for family in dark_fleet.metrics_snapshot()["metrics"]
        if family["type"] != "histogram"
        for sample in family["samples"]
    )
    assert dark_sum == 0.0
    # ...and the instrumented run must stay within the overhead budget.
    assert ratio <= MAX_OVERHEAD
