"""Figure 3: on-line tuning for a stable workload.

Paper shape: COLT pays extra during the first ~100 queries (monitoring,
index builds), then per-bar execution time is essentially equal to the
idealized OFFLINE technique (the paper reports ~1% deviation; per-seed
variance in the simulation puts us in the low single digits to low
teens -- see EXPERIMENTS.md for the multi-seed table).
"""

from repro.bench.figures import figure3_stable


def test_fig3_stable_workload(benchmark, report):
    result = benchmark.pedantic(figure3_stable, kwargs={"seed": 1}, rounds=1)
    tail_deviation = -result.reduction_percent(100)
    lines = [
        result.to_text(),
        "",
        f"deviation after query 100: {tail_deviation:.1f}% (paper: ~1%)",
        f"COLT final M:  {[ix.name for ix in result.colt.final_materialized]}",
        f"OFFLINE set:   {[ix.name for ix in result.offline.result.indexes]}",
    ]
    report("\n".join(lines))

    # Shape checks: COLT pays up front...
    assert result.colt_bars[0] > result.offline_bars[0]
    # ...then converges to near-OFFLINE for the rest of the run.
    assert tail_deviation < 20.0
    # The overall ratio stays moderate (warmup amortized over 500 queries).
    assert result.total_ratio < 1.35
    # COLT discovers a substantial part of the optimal configuration.
    overlap = set(result.colt.final_materialized) & set(result.offline.result.indexes)
    assert len(overlap) >= 2
