"""COLT vs. a QUIET-style unregulated on-line tuner.

§1 of the paper argues that prior on-line tuners (QUIET, Cache
Investment, Hammer & Chan) lack an explicit mechanism to regulate
what-if usage: "the on-line process operates with the same intensity
even if the system cannot be tuned to work better."  This benchmark
quantifies that claim on the stable workload, where an ideal tuner
should converge and then go quiet.

Expected: comparable final configurations and execution costs, but the
unregulated tuner issues an order of magnitude more what-if calls --
one-plus per query, forever.
"""

from repro.baselines import ContinuousConfig, ContinuousTuner
from repro.bench.harness import run_colt
from repro.core.config import ColtConfig
from repro.workload.datagen import build_catalog
from repro.workload.experiments import stable_distribution
from repro.workload.phases import stable_workload

BUDGET_PAGES = 9_000.0
LENGTH = 400


def test_baseline_quiet_comparison(benchmark, report):
    catalog = build_catalog()
    workload = stable_workload(stable_distribution(), LENGTH, catalog, seed=1)

    def run_both():
        colt = run_colt(
            build_catalog(),
            workload.queries,
            ColtConfig(storage_budget_pages=BUDGET_PAGES),
        )
        quiet_tuner = ContinuousTuner(
            build_catalog(), ContinuousConfig(storage_budget_pages=BUDGET_PAGES)
        )
        quiet = quiet_tuner.run(workload.queries)
        return colt, quiet, quiet_tuner

    colt, quiet, quiet_tuner = benchmark.pedantic(run_both, rounds=1)

    colt_calls = sum(colt.whatif_per_epoch)
    quiet_calls = sum(o.whatif_calls for o in quiet)
    colt_total = colt.total_cost
    quiet_total = sum(o.total_cost for o in quiet)
    tail = LENGTH // 2
    colt_tail_calls = sum(colt.whatif_per_epoch[len(colt.whatif_per_epoch) // 2 :])
    quiet_tail_calls = sum(o.whatif_calls for o in quiet[tail:])

    report(
        "\n".join(
            [
                f"COLT vs QUIET-style on-line tuning ({LENGTH} stable queries)",
                f"{'tuner':<10} {'what-if calls':>14} {'tail calls':>11} {'total cost':>14} {'|M|':>4}",
                f"{'COLT':<10} {colt_calls:>14} {colt_tail_calls:>11} {colt_total:>14,.0f} "
                f"{len(colt.final_materialized):>4}",
                f"{'QUIET':<10} {quiet_calls:>14} {quiet_tail_calls:>11} {quiet_total:>14,.0f} "
                f"{len(quiet_tuner.materialized_set):>4}",
                "",
                f"COLT uses {quiet_calls / max(1, colt_calls):.1f}x fewer what-if calls; "
                f"after convergence (2nd half): {quiet_tail_calls / max(1, colt_tail_calls):.1f}x fewer.",
            ]
        )
    )

    # The unregulated tuner profiles every query...
    assert quiet_calls >= LENGTH
    # ...while COLT's regulated total is a small fraction of that.
    assert colt_calls * 3 < quiet_calls
    # Quality stays in the same ballpark (COLT may win or lose slightly).
    assert colt_total < quiet_total * 1.4
