"""Guardrail benchmark: verification overhead and quarantine regret.

Two arms, matching the two promises of ``repro.guardrails``:

* **Clean workload, do no harm** -- the paper's stable workload with a
  :class:`PlanCostObserver` (observed == predicted by construction).
  Tuning decisions must be bit-identical to a guardrail-free run, and
  the verification overhead (reverse what-if probes) must keep total
  cost under the 1.05x bar the observability work established.
* **Misleading cost model, earn your keep** -- the adversarial
  ``facts`` scenario where statistics over-promise one index.  Regret
  is measured in *observed* execution cost (counters priced by
  ``observed_cost``), and the guardrailed run must quarantine the
  over-promised index within the verification window and beat the
  unguarded run.

Besides the usual ``results/`` report, this benchmark writes the
repo-root ``BENCH_guardrails.json`` trajectory file (the first
``BENCH_*.json``; see ROADMAP) so future PRs can track the regret and
overhead curves.
"""

from __future__ import annotations

import json
import pathlib

from repro.core.colt import ColtTuner
from repro.core.config import ColtConfig
from repro.executor.executor import execute
from repro.executor.instrument import CountingStore
from repro.guardrails import (
    ExecutionObserver,
    GuardrailConfig,
    GuardrailManager,
    PlanCostObserver,
)
from repro.guardrails.verify import observed_cost
from repro.workload import build_adversarial_store, misleading_workload
from repro.workload.datagen import build_catalog
from repro.workload.experiments import stable_distribution
from repro.workload.phases import stable_workload

BENCH_FILE = pathlib.Path(__file__).resolve().parent.parent / "BENCH_guardrails.json"

BUDGET_PAGES = 9_000.0
CLEAN_QUERIES = 300
MISLEADING_QUERIES = 360
OVERHEAD_BAR = 1.05


def _merge_bench(key: str, payload: dict) -> None:
    document = {}
    if BENCH_FILE.exists():
        document = json.loads(BENCH_FILE.read_text())
    document[key] = payload
    BENCH_FILE.write_text(json.dumps(document, indent=1, sort_keys=True) + "\n")


# ----------------------------------------------------------------------
# Arm 1: clean workload -- decisions unchanged, overhead < 1.05x
# ----------------------------------------------------------------------
def _clean_run(guardrails: bool):
    catalog = build_catalog()
    workload = stable_workload(
        stable_distribution(), CLEAN_QUERIES, catalog, seed=0
    )
    manager = (
        GuardrailManager(config=GuardrailConfig(), observer=PlanCostObserver())
        if guardrails
        else None
    )
    tuner = ColtTuner(
        build_catalog(),
        ColtConfig(storage_budget_pages=BUDGET_PAGES, seed=0),
        guardrails=manager,
    )
    outcomes = tuner.run(workload.queries)
    decisions = [
        (
            sorted(ix.name for ix in o.reorganization.materialize),
            sorted(ix.name for ix in o.reorganization.drop),
        )
        for o in outcomes
        if o.epoch_ended and o.reorganization is not None
    ]
    return {
        "total_cost": sum(o.total_cost for o in outcomes),
        "base_cost": sum(o.total_cost - o.verify_overhead for o in outcomes),
        "verify_overhead": sum(o.verify_overhead for o in outcomes),
        "verify_calls": sum(o.verify_calls for o in outcomes),
        "materialized": sorted(ix.name for ix in tuner.materialized_set),
        "decisions": decisions,
        "quarantined": len(manager.quarantine) if manager else 0,
    }


def test_guardrails_clean_overhead(benchmark, report):
    on = benchmark.pedantic(lambda: _clean_run(True), rounds=1)
    off = _clean_run(False)

    ratio = on["total_cost"] / off["total_cost"]
    lines = [
        f"clean stable workload ({CLEAN_QUERIES} queries, plan-cost observer)",
        f"  total cost (guardrails off): {off['total_cost']:,.0f}",
        f"  total cost (guardrails on):  {on['total_cost']:,.0f}",
        f"  verification probes:         {on['verify_calls']}",
        f"  verification overhead:       {on['verify_overhead']:,.0f}",
        f"  overhead ratio:              {ratio:.4f} (bar: < {OVERHEAD_BAR})",
        f"  decisions identical:         "
        f"{on['decisions'] == off['decisions']}",
        f"  false quarantines:           {on['quarantined']}",
    ]
    report("\n".join(lines))
    _merge_bench(
        "clean",
        {
            "queries": CLEAN_QUERIES,
            "total_cost_off": off["total_cost"],
            "total_cost_on": on["total_cost"],
            "verify_calls": on["verify_calls"],
            "verify_overhead": on["verify_overhead"],
            "overhead_ratio": ratio,
            "overhead_bar": OVERHEAD_BAR,
            "decisions_identical": on["decisions"] == off["decisions"],
        },
    )

    # Do no harm: identical epoch-by-epoch decisions, no quarantines,
    # and the probe overhead stays under the obs bar.
    assert on["decisions"] == off["decisions"]
    assert on["materialized"] == off["materialized"]
    assert on["quarantined"] == 0
    assert on["verify_calls"] > 0, "verification actually sampled queries"
    assert ratio < OVERHEAD_BAR


# ----------------------------------------------------------------------
# Arm 2: misleading cost model -- quarantine beats blind trust
# ----------------------------------------------------------------------
def _misleading_run(guardrails: bool):
    store = build_adversarial_store()
    catalog = store.catalog
    workload = misleading_workload(
        catalog, length=MISLEADING_QUERIES, seed=1
    )
    manager = (
        GuardrailManager(
            config=GuardrailConfig(), observer=ExecutionObserver(store)
        )
        if guardrails
        else None
    )
    tuner = ColtTuner(
        catalog,
        ColtConfig(epoch_length=20, storage_budget_pages=200.0),
        store=store,
        guardrails=manager,
    )
    counting = CountingStore(store)
    observed = overhead = 0.0
    first_quarantine = None
    for i, query in enumerate(workload.queries):
        # Price the about-to-run plan before the tuner's epoch close may
        # drop the index (and physical tree) the plan references.
        plan = tuner.optimizer.optimize(query).plan
        counting.counters.reset()
        execute(plan, counting)
        observed += observed_cost(counting.counters, catalog.params)
        outcome = tuner.run([query])[0]
        overhead += outcome.verify_overhead
        if (
            first_quarantine is None
            and outcome.reorganization is not None
            and outcome.reorganization.quarantined
        ):
            first_quarantine = i
    return {
        "observed_cost": observed,
        "verify_overhead": overhead,
        "materialized": sorted(ix.name for ix in tuner.materialized_set),
        "quarantined": sorted(
            e.index.name for e in manager.quarantine.entries
        )
        if manager
        else [],
        "first_quarantine_query": first_quarantine,
    }


def test_guardrails_misleading_regret(benchmark, report):
    on = benchmark.pedantic(lambda: _misleading_run(True), rounds=1)
    off = _misleading_run(False)

    saved = 1.0 - on["observed_cost"] / off["observed_cost"]
    lines = [
        f"misleading cost model ({MISLEADING_QUERIES} queries, "
        "execution observer)",
        f"  observed cost (guardrails off): {off['observed_cost']:,.0f}",
        f"  observed cost (guardrails on):  {on['observed_cost']:,.0f}",
        f"  regret saved:                   {saved:+.1%}",
        f"  verification overhead:          {on['verify_overhead']:,.0f}",
        f"  quarantined:                    "
        f"{', '.join(on['quarantined']) or '(none)'}",
        f"  first quarantine at query:      {on['first_quarantine_query']}",
        f"  final M (off): {', '.join(off['materialized']) or '(none)'}",
        f"  final M (on):  {', '.join(on['materialized']) or '(none)'}",
    ]
    report("\n".join(lines))
    _merge_bench(
        "misleading",
        {
            "queries": MISLEADING_QUERIES,
            "observed_cost_off": off["observed_cost"],
            "observed_cost_on": on["observed_cost"],
            "regret_saved": saved,
            "verify_overhead": on["verify_overhead"],
            "quarantined": on["quarantined"],
            "first_quarantine_query": on["first_quarantine_query"],
        },
    )

    # The unguarded tuner trusts the lying statistics and keeps the
    # over-promised index; guardrails quarantine it within the
    # verification window and win on observed regret.
    assert "ix_facts_f_skew" in off["materialized"]
    assert on["quarantined"] == ["ix_facts_f_skew"]
    assert "ix_facts_f_skew" not in on["materialized"]
    assert on["first_quarantine_query"] is not None
    assert on["observed_cost"] < off["observed_cost"]
    assert saved > 0.25, "guardrails should save substantial regret"
