"""Ablation: forecast-window sensitivity (the paper's §6.2 discussion).

The Figure 6 worst band exists because the forecasting window coincides
with the noise burst; the paper suggests tuning the window as future
work.  This ablation sweeps the forecast window over the noisy workload
at the worst burst length and reports how the COLT/OFFLINE ratio moves.

Expected: short windows overreact to the burst (worse ratio); longer
windows damp it.
"""

from repro.bench.figures import DEFAULT_BUDGET_PAGES
from repro.bench.harness import run_colt, run_offline
from repro.core.config import ColtConfig
from repro.workload.datagen import build_catalog
from repro.workload.experiments import noise_distributions
from repro.workload.phases import noisy_workload

WORST_BURST = 40
WARMUP = 100
WINDOWS = (4, 8, 12, 16)


def test_ablation_forecast_window(benchmark, report):
    base, noise = noise_distributions()
    catalog = build_catalog()
    workload = noisy_workload(
        base, noise, catalog, burst_length=WORST_BURST, warmup=WARMUP, seed=0
    )
    q1_queries = [
        q for q, s in zip(workload.queries, workload.source) if s == base.name
    ]

    def run():
        offline = run_offline(
            build_catalog(),
            workload.queries,
            DEFAULT_BUDGET_PAGES,
            tuning_workload=q1_queries,
        )
        offline_cost = sum(offline.per_query_costs[WARMUP:])
        ratios = {}
        for window in WINDOWS:
            config = ColtConfig(
                storage_budget_pages=DEFAULT_BUDGET_PAGES,
                forecast_window=window,
            )
            colt = run_colt(build_catalog(), workload.queries, config)
            ratios[window] = sum(colt.total_costs[WARMUP:]) / offline_cost
        adaptive_config = ColtConfig(
            storage_budget_pages=DEFAULT_BUDGET_PAGES,
            adaptive_forecast_window=True,
        )
        adaptive = run_colt(build_catalog(), workload.queries, adaptive_config)
        adaptive_ratio = sum(adaptive.total_costs[WARMUP:]) / offline_cost
        return ratios, adaptive_ratio

    ratios, adaptive_ratio = benchmark.pedantic(run, rounds=1)

    lines = [
        f"forecast-window ablation (noisy workload, burst={WORST_BURST})",
        f"{'window (epochs)':>16} {'COLT/OFFLINE':>14}",
    ]
    for window, ratio in ratios.items():
        lines.append(f"{window:>16} {ratio:>14.3f}")
    lines.append(f"{'adaptive':>16} {adaptive_ratio:>14.3f}")
    report("\n".join(lines))

    # All variants complete and stay within a sane range.
    assert all(0.8 < r < 2.5 for r in ratios.values())
    assert 0.8 < adaptive_ratio < 2.5
    # Window choice visibly moves the outcome (the §6.2 sensitivity).
    assert max(ratios.values()) - min(ratios.values()) > 0.02
    # The adaptive controller never does worse than the worst fixed window.
    assert adaptive_ratio <= max(ratios.values()) + 0.05
