"""Regret-curve benchmark: C³-UCB bandit vs COLT vs do-nothing.

The bandit papers' core claim, transplanted onto this reproduction:
what-if-driven tuners (COLT) systematically misestimate index benefit on
adversarial workloads, while a bandit learning from *observed* execution
cost avoids the regret.  Four scenario arms measure that claim, one per
failure regime (``repro.workload.adversarial``):

* **adhoc** -- never-repeating queries over columns with lying
  statistics; per-cluster profiling gets one sample per cluster.
* **htap** -- honest statistics under a heavy insert stream; every
  index pays maintenance the what-if forecast never prices.
* **correlated** -- perfectly correlated filter columns; honest
  per-column statistics, lying independence assumption.
* **drift** -- the useful column flips mid-epoch; adaptation speed.

A fifth arm re-runs the paper's own clean Figure-4 shifting workload in
pure cost-model mode: the bandit must stay within
:data:`CLEAN_PARITY_BAR` of COLT when the what-if estimates are *right*
-- observed-cost learning must not cost much when there is nothing to
distrust.

Every arm's cumulative observed-cost curve lands in the repo-root
``BENCH_bandit.json`` trajectory file, and ``tools/check_bandit_regret.py``
re-measures one short scenario in CI with the exact same harness
(:func:`repro.bandit.evaluate.run_scenario`).
"""

from __future__ import annotations

import json
import pathlib

from repro.bandit import BanditConfig, BanditTuner, curve_is_sane, run_scenario
from repro.core.colt import ColtTuner
from repro.core.config import ColtConfig
from repro.workload import SCENARIOS
from repro.workload.datagen import build_catalog
from repro.workload.experiments import phase_distributions
from repro.workload.phases import shifting_workload

BENCH_FILE = pathlib.Path(__file__).resolve().parent.parent / "BENCH_bandit.json"

#: Matched epoch clock and storage budget for every scenario arm.
EPOCH_LENGTH = 20
BUDGET_PAGES = 400.0

#: Scenarios where the bandit is *required* to beat COLT on observed
#: execution cost (the acceptance floor; the other two are reported).
MUST_WIN = ("adhoc", "correlated")

#: Clean Figure-4 parity: bandit execution cost / COLT execution cost.
CLEAN_PARITY_BAR = 1.2
CLEAN_BUDGET_PAGES = 9_000.0


def _merge_bench(key: str, payload: dict) -> None:
    document = {}
    if BENCH_FILE.exists():
        document = json.loads(BENCH_FILE.read_text())
    document[key] = payload
    BENCH_FILE.write_text(json.dumps(document, indent=1, sort_keys=True) + "\n")


# ----------------------------------------------------------------------
# Arm 1-4: the adversarial scenarios, observed execution cost
# ----------------------------------------------------------------------
def _scenario_arms(name: str) -> dict:
    """Run colt/bandit/none over fresh copies of one scenario."""
    build = SCENARIOS[name]
    arms = {}
    for engine in ("colt", "bandit", "none"):
        result = run_scenario(
            engine,
            build(),
            epoch_length=EPOCH_LENGTH,
            storage_budget_pages=BUDGET_PAGES,
        )
        arms[engine] = result
    return arms


def test_bandit_regret_scenarios(benchmark, report):
    all_arms = benchmark.pedantic(
        lambda: {name: _scenario_arms(name) for name in SCENARIOS}, rounds=1
    )

    lines = [
        f"adversarial scenario suite (epoch={EPOCH_LENGTH}, "
        f"budget={BUDGET_PAGES:.0f} pages, observed execution cost)"
    ]
    wins = []
    for name, arms in all_arms.items():
        colt, bandit, none = arms["colt"], arms["bandit"], arms["none"]
        ratio = bandit.observed_cost / colt.observed_cost
        if bandit.observed_cost < colt.observed_cost:
            wins.append(name)
        lines += [
            f"  {name} ({colt.queries} queries):",
            f"    colt:   {colt.observed_cost:>12,.0f}"
            f"  (M: {', '.join(colt.materialized) or '-'})",
            f"    bandit: {bandit.observed_cost:>12,.0f}"
            f"  (M: {', '.join(bandit.materialized) or '-'})",
            f"    none:   {none.observed_cost:>12,.0f}",
            f"    bandit/colt: {ratio:.3f}"
            f" ({'bandit wins' if ratio < 1.0 else 'colt wins'})",
        ]
        _merge_bench(
            name,
            {
                "queries": colt.queries,
                "epoch_length": EPOCH_LENGTH,
                "budget_pages": BUDGET_PAGES,
                "arms": {
                    engine: arms[engine].to_dict()
                    for engine in ("colt", "bandit", "none")
                },
                "bandit_over_colt": ratio,
            },
        )
    lines.append(f"  bandit wins: {', '.join(wins)} ({len(wins)}/4)")
    report("\n".join(lines))

    for name, arms in all_arms.items():
        for engine in ("colt", "bandit", "none"):
            assert curve_is_sane(arms[engine].curve), (name, engine)
    # Acceptance: the bandit beats COLT on observed execution cost on
    # at least two scenarios, including the two what-if-lie regimes.
    for name in MUST_WIN:
        assert (
            all_arms[name]["bandit"].observed_cost
            < all_arms[name]["colt"].observed_cost
        ), f"bandit must beat COLT on the {name} scenario"
    assert len(wins) >= 2


# ----------------------------------------------------------------------
# Arm 5: clean Figure-4 shifting workload -- parity when what-if is right
# ----------------------------------------------------------------------
def _clean_run(engine: str) -> dict:
    catalog = build_catalog()
    workload = shifting_workload(
        phase_distributions(), catalog, phase_length=300, transition=50, seed=0
    )
    if engine == "colt":
        tuner = ColtTuner(
            catalog,
            ColtConfig(storage_budget_pages=CLEAN_BUDGET_PAGES, seed=0),
        )
    else:
        tuner = BanditTuner(
            catalog,
            BanditConfig(storage_budget_pages=CLEAN_BUDGET_PAGES, seed=0),
        )
    execution = 0.0
    total = 0.0
    for query in workload.queries:
        outcome = tuner.process_query(query)
        execution += outcome.execution_cost
        total += outcome.total_cost
    return {
        "queries": len(workload.queries),
        "execution_cost": execution,
        "total_cost": total,
        "materialized": sorted(ix.name for ix in tuner.materialized_set),
    }


def test_bandit_clean_parity(benchmark, report):
    bandit = benchmark.pedantic(lambda: _clean_run("bandit"), rounds=1)
    colt = _clean_run("colt")

    ratio = bandit["execution_cost"] / colt["execution_cost"]
    lines = [
        f"clean Figure-4 shifting workload ({colt['queries']} queries, "
        "cost-model mode)",
        f"  colt execution cost:   {colt['execution_cost']:,.0f}",
        f"  bandit execution cost: {bandit['execution_cost']:,.0f}",
        f"  bandit/colt:           {ratio:.3f} (bar: <= {CLEAN_PARITY_BAR})",
        f"  final M (colt):   {', '.join(colt['materialized']) or '(none)'}",
        f"  final M (bandit): {', '.join(bandit['materialized']) or '(none)'}",
    ]
    report("\n".join(lines))
    _merge_bench(
        "clean_fig4",
        {
            "queries": colt["queries"],
            "budget_pages": CLEAN_BUDGET_PAGES,
            "colt_execution_cost": colt["execution_cost"],
            "bandit_execution_cost": bandit["execution_cost"],
            "bandit_over_colt": ratio,
            "parity_bar": CLEAN_PARITY_BAR,
            "colt_materialized": colt["materialized"],
            "bandit_materialized": bandit["materialized"],
        },
    )

    assert ratio <= CLEAN_PARITY_BAR
