"""Extension: multi-column index candidates (the paper's future work).

§2 of the paper restricts COLT to single-column indexes and names
multi-column indexes as the natural extension.  This benchmark runs a
conjunctive workload -- point predicates on one column combined with
ranges on another -- through COLT twice: once restricted to
single-column candidates (the paper's setting) and once with composite
candidates enabled.

Expected: the composite-enabled tuner discovers (leading-eq, trailing)
two-column indexes that absorb both predicates and reduce execution
cost below the best single-column configuration.
"""

from repro.bench.harness import run_colt
from repro.core.config import ColtConfig
from repro.workload.datagen import build_catalog
from repro.workload.phases import stable_workload
from repro.workload.querygen import (
    PredicateSpec,
    QueryDistribution,
    QueryTemplate,
)

BUDGET_PAGES = 12_000.0
LENGTH = 400

# Conjunctive templates: an equality on a foreign key plus a range on a
# date -- the shape where (fk, date) composites shine.
CONJUNCTIVE = QueryDistribution(
    name="conjunctive",
    templates=(
        QueryTemplate(
            predicates=(
                PredicateSpec("lineitem_1", "l_suppkey", (1e-7, 1e-7)),  # eq
                PredicateSpec("lineitem_1", "l_shipdate", (0.05, 0.3)),
            ),
            weight=3.0,
        ),
        QueryTemplate(
            predicates=(
                PredicateSpec("orders_1", "o_custkey", (1e-7, 1e-7)),  # eq
                PredicateSpec("orders_1", "o_orderdate", (0.05, 0.3)),
            ),
            weight=2.0,
        ),
    ),
)


def test_ext_multicolumn(benchmark, report):
    catalog = build_catalog()
    workload = stable_workload(CONJUNCTIVE, LENGTH, catalog, seed=3)

    def run_both():
        single = run_colt(
            build_catalog(),
            workload.queries,
            ColtConfig(storage_budget_pages=BUDGET_PAGES),
        )
        composite = run_colt(
            build_catalog(),
            workload.queries,
            ColtConfig(
                storage_budget_pages=BUDGET_PAGES, composite_candidates=True
            ),
        )
        return single, composite

    single, composite = benchmark.pedantic(run_both, rounds=1)

    tail = LENGTH // 2
    single_tail = sum(single.execution_costs[tail:])
    composite_tail = sum(composite.execution_costs[tail:])
    gain = (1 - composite_tail / single_tail) * 100.0
    report(
        "\n".join(
            [
                f"multi-column extension ({LENGTH} conjunctive queries)",
                f"{'variant':<22} {'tail exec cost':>15} {'final M'}",
                f"{'single-column only':<22} {single_tail:>15,.0f} "
                f"{[ix.name for ix in single.final_materialized]}",
                f"{'composite enabled':<22} {composite_tail:>15,.0f} "
                f"{[ix.name for ix in composite.final_materialized]}",
                "",
                f"composite candidates cut steady-state execution cost by {gain:.1f}%",
            ]
        )
    )

    # The composite run discovers at least one two-column index...
    assert any(ix.is_composite for ix in composite.final_materialized)
    # ...and does not lose to the single-column configuration.
    assert composite_tail <= single_tail * 1.02
