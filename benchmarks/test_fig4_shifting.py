"""Figure 4: on-line tuning for a shifting workload.

Paper shape: four 300-query phases with 50-query gradual transitions
(1,350 queries).  COLT beats OFFLINE on the majority of 50-query bars;
the paper reports a 33% total reduction and 49% within phase 2.
"""

from repro.bench.figures import figure4_shifting


def test_fig4_shifting_workload(benchmark, report):
    result = benchmark.pedantic(figure4_shifting, rounds=1)
    overall = result.reduction_percent()
    phase2 = result.reduction_percent(350, 650)
    lines = [
        result.to_text(),
        "",
        f"overall reduction vs OFFLINE: {overall:.1f}% (paper: 33%)",
        f"phase-2 reduction (queries 350-650): {phase2:.1f}% (paper: 49%)",
    ]
    report("\n".join(lines))

    # Shape checks: COLT wins overall, by tens of percent...
    assert result.colt.total_cost < result.offline.total_cost
    assert overall > 15.0
    # ...and wins the majority of bars.
    colt_wins = sum(
        1 for c, o in zip(result.colt_bars, result.offline_bars) if c < o
    )
    assert colt_wins > len(result.colt_bars) / 2
    # Phase 2 (deep inside a phase OFFLINE averaged away) is a big win.
    assert phase2 > 15.0
