"""Resilience benchmark: regret under an injected fault storm.

Runs the full Figure-4 shifting workload (4 × 300-query phases,
50-query transitions) through two COLT tuners over identical catalogs:

* **fault-free** -- the baseline reproduction run;
* **fault storm** -- a 20% what-if call failure rate for the whole run,
  plus one forced index-build failure armed at every phase shift.

The acceptance bar for the resilient pipeline: the stormy run completes
without an unhandled exception, the profiling circuit breaker ends the
run closed (recovered, not wedged in degraded mode), and the storm's
total cost stays within 2x of the fault-free run -- degraded profiling
and retried builds cost regret, not correctness.
"""

from repro.bench.harness import run_colt
from repro.core.colt import ColtTuner
from repro.core.config import ColtConfig
from repro.resilience import BreakerState, FaultInjector, FaultPlan, FaultSpec
from repro.workload.datagen import build_catalog
from repro.workload.experiments import phase_distributions
from repro.workload.phases import shifting_workload

BUDGET_PAGES = 9_000.0
WHATIF_FAILURE_RATE = 0.20
PHASE_LENGTH = 300
TRANSITION = 50


def _workload():
    return shifting_workload(
        phase_distributions(),
        build_catalog(),
        phase_length=PHASE_LENGTH,
        transition=TRANSITION,
        seed=0,
    )


def _phase_shifts(n_phases):
    # Where each transition ramp begins.  (Workload.phase_boundaries()
    # reports every source alternation inside the gradual ramps, which
    # is far noisier than "one shift per phase".)
    return [
        PHASE_LENGTH * (k + 1) + TRANSITION * k for k in range(n_phases - 1)
    ]


def _fault_storm_run():
    workload = _workload()
    injector = FaultInjector(
        FaultPlan(whatif=FaultSpec(probability=WHATIF_FAILURE_RATE)), seed=0
    )
    tuner = ColtTuner(
        build_catalog(),
        ColtConfig(storage_budget_pages=BUDGET_PAGES, seed=0),
        fault_injector=injector,
    )
    shifts = set(_phase_shifts(len(phase_distributions())))
    outcomes = []
    for i, query in enumerate(workload.queries):
        if i in shifts:
            # One forced index-build failure per phase shift.
            injector.arm("build", count=1)
        outcomes.append(tuner.process_query(query))
    return tuner, injector, outcomes


def test_fault_storm_regret(benchmark, report):
    tuner, injector, stormy = benchmark.pedantic(_fault_storm_run, rounds=1)

    clean = run_colt(
        build_catalog(),
        _workload().queries,
        ColtConfig(storage_budget_pages=BUDGET_PAGES, seed=0),
    )

    stormy_total = sum(o.total_cost for o in stormy)
    ratio = stormy_total / clean.total_cost
    breaker = tuner.profiler.breaker
    reorgs = [o.reorganization for o in stormy if o.reorganization]
    failures = sum(len(r.build_failures) for r in reorgs)
    recoveries = sum(len(r.recovered_builds) for r in reorgs)
    lines = [
        "fault storm: 20% what-if failure rate + 1 forced build failure "
        "per phase shift",
        f"  what-if faults injected:   {injector.injected['whatif']}",
        f"  build faults injected:     {injector.injected['build']}",
        f"  probe failures absorbed:   {tuner.profiler.probe_failures}",
        f"  breaker trips:             {breaker.total_trips}",
        f"  breaker final state:       {breaker.state.value}",
        f"  build failures surfaced:   {failures}",
        f"  builds recovered by retry: {recoveries}",
        f"  total cost (fault-free):   {clean.total_cost:,.0f}",
        f"  total cost (fault storm):  {stormy_total:,.0f}",
        f"  regret ratio:              {ratio:.3f} (bar: < 2.0)",
    ]
    report("\n".join(lines))

    # The storm was real (the whole run makes only ~150 what-if calls,
    # so a 20% rate lands a few dozen probe faults)...
    assert injector.injected["whatif"] >= 20
    assert injector.injected["build"] >= 1
    # ...the run survived it end to end...
    assert len(stormy) == 1350
    # ...the breaker recovered rather than wedging degraded...
    assert breaker.state is BreakerState.CLOSED
    # ...and resilience cost bounded regret, not correctness.
    assert ratio < 2.0
    assert tuner.materialized_set, "storm run still materialized indexes"
