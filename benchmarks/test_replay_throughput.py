"""Batched replay throughput bound on a shifting multi-client stream.

Acceptance criteria for the batched hot path (PR 9): replaying a
shifting two-client stream, the :class:`~repro.core.batching.
BatchedPricer` + interned candidate mining must lift wall-clock QPS by
at least 1.2x over the per-query serial loop **while making bit-
identical decisions** (same cost-model total, same what-if ledger).
``tools/check_throughput.py`` enforces the same bound in CI against the
committed ``BENCH_throughput.json``; this benchmark is the local,
pytest-visible version.
"""

from repro.bench.replay import ReplayStream, build_replay_tuner, replay_serial
from repro.core.config import ColtConfig
from repro.workload.datagen import build_catalog
from repro.workload.experiments import phase_distributions
from repro.workload.phases import multi_client_workload, shifting_workload

EVENTS = 8_000
BATCH_SIZE = 64
MIN_SPEEDUP = 1.2


def _stream():
    catalog = build_catalog()
    phases = phase_distributions()
    clients = [
        shifting_workload(
            [phases[i % len(phases)], phases[(i + 1) % len(phases)]],
            catalog,
            phase_length=100,
            transition=20,
            seed=11 + i,
        )
        for i in range(2)
    ]
    return ReplayStream.from_workload(
        multi_client_workload(clients, seed=18), events=EVENTS, seed=11
    )


def _compare():
    stream = _stream()
    serial = replay_serial(
        build_replay_tuner(build_catalog(), ColtConfig()), stream
    )
    batched = replay_serial(
        build_replay_tuner(build_catalog(), ColtConfig(), batched=True),
        stream,
        batch_size=BATCH_SIZE,
    )
    return serial, batched


def test_batched_replay_speedup(benchmark, report):
    serial, batched = benchmark.pedantic(_compare, rounds=1)

    speedup = batched.qps / serial.qps
    lines = [
        f"events:             {serial.events}",
        f"serial qps:         {serial.qps:,.0f} "
        f"(p50 {serial.latency['p50'] * 1e6:.0f}us, "
        f"p99 {serial.latency['p99'] * 1e6:.0f}us)",
        f"batched qps:        {batched.qps:,.0f} "
        f"(p50 {batched.latency['p50'] * 1e6:.0f}us, "
        f"p99 {batched.latency['p99'] * 1e6:.0f}us)",
        f"speedup:            {speedup:.3f}x (bound: >= {MIN_SPEEDUP}x)",
        f"memo hits/misses:   {batched.detail['memo_hits']}/"
        f"{batched.detail['memo_misses']}",
        f"total cost equal:   {batched.total_cost == serial.total_cost}",
        f"whatif ledger equal: {batched.whatif_calls == serial.whatif_calls}",
    ]
    report("\n".join(lines))

    # Decision preservation first -- a throughput win that changes
    # decisions would be meaningless.
    assert batched.total_cost == serial.total_cost
    assert batched.whatif_calls == serial.whatif_calls
    assert batched.failed == serial.failed == 0
    # The acceptance bound, same number the CI gate enforces.
    assert speedup >= MIN_SPEEDUP
