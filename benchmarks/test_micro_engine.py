"""Engine micro-benchmarks.

Not a paper experiment -- these track the performance of the primitives
everything else is built on (B+tree operations, optimization latency,
what-if call throughput), so regressions in the substrate are visible
in the same `pytest benchmarks/` run that regenerates the figures.
"""

import random

from repro.engine.btree import BPlusTree
from repro.optimizer.optimizer import Optimizer, PlanCache
from repro.optimizer.whatif import WhatIfOptimizer
from repro.sql.binder import bind_query
from repro.sql.parser import parse_query
from repro.workload.datagen import build_catalog
from repro.workload.experiments import stable_distribution

N_KEYS = 20_000


def test_btree_bulk_load(benchmark):
    rng = random.Random(0)
    pairs = [(rng.randrange(N_KEYS), rid) for rid in range(N_KEYS)]
    tree = benchmark(BPlusTree.bulk_load, pairs)
    assert len(tree) == N_KEYS


def test_btree_point_lookups(benchmark):
    rng = random.Random(1)
    tree = BPlusTree.bulk_load(
        (rng.randrange(N_KEYS), rid) for rid in range(N_KEYS)
    )
    keys = [rng.randrange(N_KEYS) for _ in range(1_000)]

    def lookups():
        return sum(len(tree.search(k)) for k in keys)

    benchmark(lookups)


def test_btree_range_scan(benchmark):
    tree = BPlusTree.bulk_load((i, i) for i in range(N_KEYS))

    def scan():
        return sum(1 for _ in tree.range_scan(1_000, 6_000))

    count = benchmark(scan)
    assert count == 5_001


def test_btree_incremental_inserts(benchmark):
    rng = random.Random(2)
    values = [rng.randrange(N_KEYS) for _ in range(5_000)]

    def build():
        tree = BPlusTree(order=64)
        for rid, key in enumerate(values):
            tree.insert(key, rid)
        return tree

    tree = benchmark(build)
    assert len(tree) == 5_000


def test_optimizer_latency_single_table(benchmark):
    catalog = build_catalog()
    query = bind_query(
        parse_query(
            "select l_orderkey from lineitem_1 "
            "where l_shipdate between '1994-01-01' and '1994-01-08'"
        ),
        catalog,
    )
    optimizer = Optimizer(catalog)

    def optimize():
        return optimizer.optimize(query, config=frozenset(), cache=PlanCache())

    result = benchmark(optimize)
    assert result.cost > 0


def test_optimizer_latency_join(benchmark):
    catalog = build_catalog()
    query = bind_query(
        parse_query(
            "select lineitem_1.l_orderkey from lineitem_1, orders_1 "
            "where lineitem_1.l_orderkey = orders_1.o_orderkey "
            "and orders_1.o_orderdate between '1994-01-01' and '1994-01-08'"
        ),
        catalog,
    )
    optimizer = Optimizer(catalog)
    benchmark(
        lambda: optimizer.optimize(query, config=frozenset(), cache=PlanCache())
    )


def test_whatif_call_throughput(benchmark):
    """What-if calls per second with session plan reuse -- the quantity
    that makes COLT's profiling affordable."""
    catalog = build_catalog()
    rng = random.Random(3)
    dist = stable_distribution()
    queries = [dist.sample(catalog, rng) for _ in range(20)]
    whatif = WhatIfOptimizer(Optimizer(catalog))
    probes = [
        catalog.index_for("lineitem_1", "l_shipdate"),
        catalog.index_for("orders_1", "o_orderdate"),
    ]

    def profile_batch():
        total = 0
        for query in queries:
            session = whatif.begin_query(query)
            gains = whatif.what_if_optimize(session, probes)
            total += len(gains)
        return total

    assert benchmark(profile_batch) == 40
