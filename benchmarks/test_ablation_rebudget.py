"""Ablation: self-regulating what-if budget vs. a fixed budget.

The paper's headline mechanism is re-budgeting -- suspending profiling
when the system is well tuned (ratio r = 1) and funding it fully when a
shift is detected (r >= 1.3).  This ablation disables the mechanism by
pinning ``#WI_lim = #WI_max`` every epoch and measures the what-if call
volume and resulting quality on the shifting workload.

Expected: the fixed-budget variant burns several times more what-if
calls for essentially the same query performance -- the self-regulation
is (almost) free.
"""

from repro.core.colt import ColtTuner
from repro.core.config import ColtConfig
from repro.workload.datagen import build_catalog
from repro.workload.experiments import phase_distributions
from repro.workload.phases import shifting_workload

BUDGET_PAGES = 9_000.0


class _FixedBudgetTuner(ColtTuner):
    """COLT with re-budgeting disabled (always the maximum budget)."""

    def _apply(self, reorg):
        reorg.whatif_budget = self.config.max_whatif_per_epoch
        return super()._apply(reorg)


def _run(tuner_cls, workload, catalog):
    tuner = tuner_cls(catalog, ColtConfig(storage_budget_pages=BUDGET_PAGES))
    outcomes = [tuner.process_query(q) for q in workload.queries]
    return {
        "total_cost": sum(o.total_cost for o in outcomes),
        "exec_cost": sum(o.execution_cost for o in outcomes),
        "whatif_calls": tuner.whatif.call_count,
    }


def test_ablation_rebudget(benchmark, report):
    catalog = build_catalog()
    workload = shifting_workload(
        phase_distributions(), catalog, phase_length=150, transition=30, seed=0
    )

    def run_both():
        adaptive = _run(ColtTuner, workload, build_catalog())
        fixed = _run(_FixedBudgetTuner, workload, build_catalog())
        return adaptive, fixed

    adaptive, fixed = benchmark.pedantic(run_both, rounds=1)

    call_ratio = fixed["whatif_calls"] / max(1, adaptive["whatif_calls"])
    exec_delta = (adaptive["exec_cost"] / fixed["exec_cost"] - 1.0) * 100.0
    report(
        "\n".join(
            [
                "re-budgeting ablation (shifting workload)",
                f"{'variant':<16} {'what-if calls':>14} {'exec cost':>14} {'total cost':>14}",
                f"{'self-regulated':<16} {adaptive['whatif_calls']:>14} "
                f"{adaptive['exec_cost']:>14.0f} {adaptive['total_cost']:>14.0f}",
                f"{'fixed budget':<16} {fixed['whatif_calls']:>14} "
                f"{fixed['exec_cost']:>14.0f} {fixed['total_cost']:>14.0f}",
                "",
                f"fixed budget spends {call_ratio:.1f}x the what-if calls "
                f"for {exec_delta:+.1f}% execution-cost difference",
            ]
        )
    )

    # Self-regulation cuts what-if volume substantially...
    assert adaptive["whatif_calls"] < fixed["whatif_calls"]
    # ...without giving up much query performance.
    assert adaptive["exec_cost"] < fixed["exec_cost"] * 1.3

