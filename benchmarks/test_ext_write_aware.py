"""Extension: write-aware index selection.

The paper's workloads are read-only; real systems also pay to *maintain*
every materialized index on insert.  This extension charges a forecasted
maintenance cost (observed per-table write rate × per-tuple maintenance
cost) against NetBenefit, at the same exchange rate as the build cost.

The benchmark runs the same read workload against one table under
increasing insert volume and reports where COLT stops considering the
index worth its upkeep -- with total-cost evidence that the decision is
right on both sides of the threshold.
"""

from repro.core.colt import ColtTuner
from repro.core.config import ColtConfig
from repro.workload.datagen import build_catalog
from repro.workload.experiments import stable_distribution
from repro.workload.phases import stable_workload

BUDGET_PAGES = 9_000.0
QUERIES = 250
WRITE_LEVELS = (0, 500, 5_000)  # inserts into lineitem_1 per query


def _run(writes_per_query: int):
    catalog = build_catalog()
    workload = stable_workload(stable_distribution(), QUERIES, catalog, seed=1)
    tuner = ColtTuner(
        catalog, ColtConfig(storage_budget_pages=BUDGET_PAGES, min_history_epochs=2)
    )
    total = 0.0
    for query in workload.queries:
        total += tuner.process_query(query).total_cost
        if writes_per_query:
            total += tuner.process_insert(
                "lineitem_1", count=writes_per_query
            ).total_cost
    lineitem_indexes = [
        ix for ix in tuner.materialized_set if ix.table == "lineitem_1"
    ]
    return total, lineitem_indexes, tuner.materialized_set


def test_ext_write_aware(benchmark, report):
    def run_all():
        return {w: _run(w) for w in WRITE_LEVELS}

    results = benchmark.pedantic(run_all, rounds=1)

    lines = [
        f"write-aware extension ({QUERIES} read queries; inserts into lineitem_1)",
        f"{'inserts/query':>14} {'total cost':>16} {'lineitem_1 indexes':>20} {'|M|':>4}",
    ]
    for writes, (total, li_indexes, m) in results.items():
        lines.append(
            f"{writes:>14} {total:>16,.0f} {len(li_indexes):>20} {len(m):>4}"
        )
    report("\n".join(lines))

    _, read_only_li, read_only_m = results[0]
    _, heavy_li, heavy_m = results[5_000]
    # Read-only: lineitem_1 indexes are worth it.
    assert read_only_li
    # Write-heavy: maintenance dwarfs the benefit; lineitem_1 carries no
    # index, while indexes on read-only tables survive.
    assert not heavy_li
    assert heavy_m, "indexes on tables without writes must remain"
