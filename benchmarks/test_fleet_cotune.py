"""Divergent-design co-tuning vs. the passive fleet baselines.

The fleet-routing benchmark showed workload-aware *routing* beats
blind spreading; this one closes the loop on workload-aware *design*.
Same 3-client shifting stream, three fleets of three replicas each:

* ``uniform`` -- round-robin spreading, no co-tuning: every replica
  sees a 1/3-rate copy of the full mix (the no-specialization floor);
* ``cost``    -- what-if probe routing under a self-regulating probe
  budget (the strongest passive policy: it *finds* divergence that
  already exists but never steers it);
* ``cotuned`` -- round-robin base policy with the co-tuning loop on
  top: partition by relevant-index signature, specialize each replica
  via advisory preferences, refine the map with budgeted boundary
  probes (see docs/COTUNE.md).

The acceptance bar (ISSUE: benchmark satellite): the co-tuned fleet's
execution cost must undercut **both** baselines outright, and its
configuration divergence must exceed the uniform fleet's -- i.e. the
cheaper fleet is cheaper *because* it diverged.  Results append to the
repo-root ``BENCH_cotune.json`` trajectory file;
``tools/check_cotune.py`` gates it in CI.
"""

import json
import pathlib

from repro.core.config import ColtConfig
from repro.fleet import FleetCoordinator
from repro.workload.datagen import build_catalog
from repro.workload.experiments import phase_distributions
from repro.workload.phases import multi_client_workload, shifting_workload

BENCH_FILE = (
    pathlib.Path(__file__).resolve().parent.parent / "BENCH_cotune.json"
)

BUDGET_PAGES = 9_000.0
N_REPLICAS = 3
FLEET_EPOCH = 30
SEED = 11

ARMS = {
    "uniform": {"policy": "round-robin", "cotune": False},
    "cost": {"policy": "cost", "cotune": False},
    "cotuned": {"policy": "round-robin", "cotune": True},
}


def build_workload():
    """Three clients, each shifting over its own pair of phases."""
    catalog = build_catalog()
    phases = phase_distributions()
    clients = [
        shifting_workload(
            [phases[i % len(phases)], phases[(i + 1) % len(phases)]],
            catalog,
            phase_length=100,
            transition=20,
            seed=SEED + i,
        )
        for i in range(N_REPLICAS)
    ]
    return multi_client_workload(clients, seed=SEED + 7)


def run_arm(workload, policy, cotune):
    fleet = FleetCoordinator(
        build_catalog,
        n_replicas=N_REPLICAS,
        config=ColtConfig(storage_budget_pages=BUDGET_PAGES),
        policy=policy,
        fleet_epoch_length=FLEET_EPOCH,
        cotune=cotune,
    )
    run = fleet.run(workload)
    payload = {
        "policy": policy,
        "cotune": cotune,
        "execution_cost": run.execution_cost,
        "total_cost": run.total_cost,
        "routing_overhead": run.routing_overhead,
        "divergence": fleet.configuration_divergence(),
        "replicas": N_REPLICAS,
    }
    if fleet.cotune is not None:
        reports = [r.cotune for r in run.reorganizations if r.cotune]
        payload["cotune_state"] = {
            "boundaries": len(reports),
            "signatures": reports[-1].signatures if reports else 0,
            "partitions": reports[-1].partitions if reports else 0,
            "migrations_total": fleet.cotune.migrations_total,
            "probes": sum(r.probes for r in reports),
            "probe_cost": sum(r.probe_cost for r in reports),
            "converged": fleet.cotune.converged,
        }
    return payload


def test_fleet_cotune(benchmark, report):
    workload = build_workload()

    arms = benchmark.pedantic(
        lambda: {
            name: run_arm(workload, **spec) for name, spec in ARMS.items()
        },
        rounds=1,
    )

    lines = [
        f"divergent-design co-tuning ({workload.description}, "
        f"{N_REPLICAS} replicas, budget {BUDGET_PAGES:,.0f} pages/replica)",
        f"{'arm':<10} {'exec cost':>14} {'total cost':>14} "
        f"{'overhead':>9} {'divergence':>11}",
    ]
    for name in ("uniform", "cost", "cotuned"):
        arm = arms[name]
        lines.append(
            f"{name:<10} {arm['execution_cost']:>14,.0f} "
            f"{arm['total_cost']:>14,.0f} "
            f"{arm['routing_overhead']:>9,.0f} {arm['divergence']:>11.2f}"
        )
    state = arms["cotuned"]["cotune_state"]
    lines.append(
        f"cotuned: {state['partitions']} partitions / "
        f"{state['signatures']} signatures after {state['boundaries']} "
        f"boundaries, {state['migrations_total']} migrations, "
        f"{state['probes']} probes (cost {state['probe_cost']:,.0f}), "
        f"converged: {state['converged']}"
    )
    report("\n".join(lines))

    document = {"meta": {"seed": SEED, "budget_pages": BUDGET_PAGES}}
    if BENCH_FILE.exists():
        document = json.loads(BENCH_FILE.read_text())
    document["arms"] = arms
    BENCH_FILE.write_text(
        json.dumps(document, indent=1, sort_keys=True) + "\n"
    )

    # The acceptance bar: steering divergence must beat both merely
    # spreading (uniform) and merely finding it (cost probing)...
    floor = min(
        arms["uniform"]["execution_cost"], arms["cost"]["execution_cost"]
    )
    assert arms["cotuned"]["execution_cost"] < floor
    # ...with overheads included...
    assert arms["cotuned"]["total_cost"] < min(
        arms["uniform"]["total_cost"], arms["cost"]["total_cost"]
    )
    # ...and the win must come from actual divergence.
    assert arms["cotuned"]["divergence"] > arms["uniform"]["divergence"]
