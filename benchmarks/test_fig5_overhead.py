"""Figure 5: self-regulating profiling overhead.

Paper shape: charting what-if calls per epoch over the Figure 4 run
shows four discernible peaks coinciding with the distribution
transitions; away from the peaks COLT uses less than half of its
``#WI_max = 20`` budget, and overall profiles only a small fraction
(~11%) of the relevant indexes.
"""

import statistics

from repro.bench.figures import figure5_overhead

# Epochs considered "near" a transition: the transition epoch itself and
# the adaptation window right after it.
PEAK_WINDOW = 5


def test_fig5_overhead(benchmark, report):
    result = benchmark.pedantic(figure5_overhead, rounds=1)

    near = set()
    for boundary in result.phase_boundaries_epochs:
        near.update(range(max(0, boundary - 1), boundary + PEAK_WINDOW))
    w = result.whatif_per_epoch
    near_values = [w[i] for i in sorted(near) if i < len(w)]
    far_values = [w[i] for i in range(len(w)) if i not in near]

    lines = [
        result.to_text(),
        "",
        f"mean calls near transitions: {statistics.mean(near_values):.2f}",
        f"mean calls elsewhere:        {statistics.mean(far_values):.2f}",
        f"peak usage: {max(w)} of {result.max_per_epoch} per epoch",
    ]
    report("\n".join(lines))

    # Shape checks: budget cap honoured everywhere.
    assert max(w) <= result.max_per_epoch
    # Profiling intensifies at transitions...
    assert statistics.mean(near_values) > 1.5 * statistics.mean(far_values)
    # ...and averages below half the budget away from them.
    assert statistics.mean(far_values) < result.max_per_epoch / 2
    # Only a fraction of the relevant indexes is ever profiled.
    assert result.profiled_fraction < 0.5
