"""Figure 3 across seeds: the variance behind the headline number.

The paper reports a single stable-workload run ("negligible deviation of
1%" after the first 100 queries).  A simulation can afford to show the
distribution: this target re-runs the Figure 3 experiment across six
workload seeds and prints the per-seed deviation table EXPERIMENTS.md
cites, guarding the *distribution* (median and worst case), not just one
lucky run.
"""

import statistics

from repro.bench.figures import figure3_stable

SEEDS = range(6)


def test_fig3_multiseed(benchmark, report):
    def run_all():
        return {seed: figure3_stable(seed=seed) for seed in SEEDS}

    results = benchmark.pedantic(run_all, rounds=1)

    rows = []
    for seed, result in results.items():
        deviation = -result.reduction_percent(100)
        overlap = len(
            set(result.colt.final_materialized)
            & set(result.offline.result.indexes)
        )
        rows.append((seed, deviation, result.total_ratio, overlap,
                     len(result.offline.result.indexes)))

    deviations = [r[1] for r in rows]
    lines = [
        "Figure 3 across seeds (deviation from OFFLINE after query 100)",
        f"{'seed':>5} {'deviation':>10} {'run ratio':>10} {'M overlap':>10}",
    ]
    for seed, dev, ratio, overlap, off_n in rows:
        lines.append(f"{seed:>5} {dev:>9.1f}% {ratio:>10.3f} {overlap:>6}/{off_n}")
    lines.append(
        f"median {statistics.median(deviations):.1f}%, "
        f"mean {statistics.mean(deviations):.1f}%, "
        f"worst {max(deviations):.1f}% (paper single run: ~1%)"
    )
    report("\n".join(lines))

    # Distribution guards: typical runs converge close to OFFLINE...
    assert statistics.median(deviations) < 8.0
    # ...and even the worst seed stays within a bounded band.
    assert max(deviations) < 20.0
    # COLT always recovers a good chunk of the optimal configuration.
    assert all(overlap >= 2 for _, _, _, overlap, _ in rows)
