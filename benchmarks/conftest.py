"""Benchmark harness configuration.

Every benchmark regenerates one table or figure of the paper.  Besides
pytest-benchmark's timing table, each target writes its experiment output
(the actual rows/series the paper reports) to ``results/<name>.txt`` and
echoes it to the terminal, so the reproduced data survives even when
stdout is captured.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


@pytest.fixture
def report(request, capsys):
    """Write an experiment's rendered output to results/ and echo it."""

    def emit(text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        name = request.node.name.replace("/", "_")
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        with capsys.disabled():
            print(f"\n===== {name} =====")
            print(text)

    return emit
