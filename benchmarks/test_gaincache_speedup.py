"""Gain-cache speedup bound on the Figure-4 shifting workload.

Acceptance criteria for the cross-query gain cache: on the paper's full
shifting workload (4 × 300-query phases, 50-query transitions, 1,350
queries) the cache must cut effective what-if optimizer invocations by
at least 1.3× while keeping regret within 2% of the cache-off run.  In
practice the bar is comfortably cleared -- the differential harness
proves the two runs make *identical* decisions, so execution cost is
equal and total cost strictly improves (same decisions, less what-if
overhead on the ledger).
"""

from repro.core import ColtConfig, ColtTuner
from repro.workload.datagen import build_catalog
from repro.workload.experiments import phase_distributions
from repro.workload.phases import shifting_workload

BUDGET_PAGES = 9_000.0
MIN_SPEEDUP = 1.3
MAX_REGRET = 0.02


def _run(gain_cache):
    catalog = build_catalog()
    tuner = ColtTuner(
        catalog,
        ColtConfig(
            storage_budget_pages=BUDGET_PAGES,
            seed=0,
            gain_cache=gain_cache,
        ),
    )
    workload = shifting_workload(
        phase_distributions(), catalog, phase_length=300, transition=50, seed=0
    )
    outcomes = tuner.run(workload.queries)
    return {
        "tuner": tuner,
        "queries": len(outcomes),
        "exec_cost": sum(o.execution_cost for o in outcomes),
        "total_cost": sum(o.total_cost for o in outcomes),
        "whatif_calls": tuner.whatif.call_count,
        "final_m": [str(ix) for ix in tuner.materialized_set],
    }


def _compare():
    off = _run(gain_cache=False)
    on = _run(gain_cache=True)
    return off, on


def test_gaincache_speedup(benchmark, report):
    off, on = benchmark.pedantic(_compare, rounds=1)

    speedup = off["whatif_calls"] / max(1, on["whatif_calls"])
    regret = (on["total_cost"] - off["total_cost"]) / off["total_cost"]
    cache = on["tuner"].profiler.gain_cache
    lines = [
        f"queries:                 {on['queries']}",
        f"what-if calls (off):     {off['whatif_calls']}",
        f"what-if calls (on):      {on['whatif_calls']}",
        f"effective call speedup:  {speedup:.3f}x (bound: >= {MIN_SPEEDUP}x)",
        f"cache hits:              {cache.hits} "
        f"(structural {cache.hits_structural}, exact {cache.hits_exact})",
        f"cache stores/misses:     {cache.stores}/{cache.misses}",
        f"total cost (off):        {off['total_cost']:.1f}",
        f"total cost (on):         {on['total_cost']:.1f}",
        f"regret vs cache-off:     {regret * 100:+.3f}% (bound: <= "
        f"{MAX_REGRET * 100:.0f}%)",
        f"final M identical:       {on['final_m'] == off['final_m']}",
    ]
    report("\n".join(lines))

    # The acceptance bound: >= 1.3x fewer effective what-if calls...
    assert speedup >= MIN_SPEEDUP
    # ...at regret within 2% of cache-off (identical decisions mean the
    # ledger can only improve, so this is expected to be <= 0).
    assert regret <= MAX_REGRET
    # Decision equivalence (the differential harness pins this in
    # depth; re-asserted here on the full-size workload).
    assert on["final_m"] == off["final_m"]
    assert on["exec_cost"] == off["exec_cost"]
    assert cache.hits > 0
