"""Fleet routing policies vs. a single shared tuner.

Three clients each shift through their *own* pair of workload phases, so
the merged server stream carries three divergent sub-workloads.  A
single tuner must fit all three into one storage budget; a fleet of
three replicas behind a workload-aware router can let each replica
specialize on one client's slice.  The experiment compares total
execution cost across:

* ``single``      -- one tuner, the whole stream (the non-fleet baseline);
* ``round-robin`` -- 3 replicas, workload-oblivious spreading (each
  replica sees a 1/3-rate copy of the full mix: no specialization);
* ``affinity``    -- 3 replicas, sticky cluster-key routing;
* ``cost``        -- 3 replicas, what-if probe routing under a
  self-regulating probe budget.

Workload-aware routing must beat both the single tuner and round-robin.
Per-replica decision traces for the affinity run are dumped as JSON next
to the text report.
"""

import pathlib

from repro.bench.harness import run_colt
from repro.core.config import ColtConfig
from repro.fleet import FleetCoordinator
from repro.workload.datagen import build_catalog
from repro.workload.experiments import phase_distributions
from repro.workload.phases import multi_client_workload, shifting_workload

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"

BUDGET_PAGES = 9_000.0
N_REPLICAS = 3
FLEET_EPOCH = 30
SEED = 11


def build_workload():
    """Three clients, each shifting over its own pair of phases."""
    catalog = build_catalog()
    phases = phase_distributions()
    clients = [
        shifting_workload(
            [phases[i % len(phases)], phases[(i + 1) % len(phases)]],
            catalog,
            phase_length=100,
            transition=20,
            seed=SEED + i,
        )
        for i in range(N_REPLICAS)
    ]
    return multi_client_workload(clients, seed=SEED + 7)


def run_fleet(workload, policy):
    fleet = FleetCoordinator(
        build_catalog,
        n_replicas=N_REPLICAS,
        config=ColtConfig(storage_budget_pages=BUDGET_PAGES),
        policy=policy,
        fleet_epoch_length=FLEET_EPOCH,
    )
    run = fleet.run(workload)
    return fleet, run


def test_fleet_routing(benchmark, report):
    workload = build_workload()

    def run_all():
        single = run_colt(
            build_catalog(),
            workload.queries,
            ColtConfig(storage_budget_pages=BUDGET_PAGES),
        )
        fleets = {
            policy: run_fleet(workload, policy)
            for policy in ("round-robin", "affinity", "cost")
        }
        return single, fleets

    single, fleets = benchmark.pedantic(run_all, rounds=1)

    exec_cost = {"single": sum(single.execution_costs)}
    divergence = {}
    for policy, (fleet, run) in fleets.items():
        exec_cost[policy] = run.execution_cost
        divergence[policy] = fleet.configuration_divergence()

    # Dump the affinity fleet's per-replica decision traces next to the
    # text report (machine-readable evidence of specialization).
    RESULTS_DIR.mkdir(exist_ok=True)
    affinity_fleet, _ = fleets["affinity"]
    for replica in affinity_fleet.replicas:
        path = RESULTS_DIR / f"test_fleet_routing.replica-{replica.replica_id}.json"
        path.write_text(replica.trace().to_json(indent=1) + "\n")

    lines = [
        f"fleet routing policies ({workload.description}, "
        f"{N_REPLICAS} replicas, budget {BUDGET_PAGES:,.0f} pages/replica)",
        f"{'policy':<12} {'exec cost':>14} {'vs single':>10} {'divergence':>11}",
    ]
    for policy in ("single", "round-robin", "affinity", "cost"):
        ratio = exec_cost[policy] / exec_cost["single"]
        div = f"{divergence[policy]:.2f}" if policy in divergence else "-"
        lines.append(
            f"{policy:<12} {exec_cost[policy]:>14,.0f} {ratio:>9.2f}x {div:>11}"
        )
    lines.append(
        "traces: results/test_fleet_routing.replica-{0,1,2}.json (affinity run)"
    )
    report("\n".join(lines))

    # Workload-oblivious spreading must not specialize...
    assert divergence["round-robin"] < divergence["affinity"]
    # ...and both workload-aware policies must beat the single tuner AND
    # the round-robin fleet outright (the acceptance bar).
    for policy in ("affinity", "cost"):
        assert exec_cost[policy] < exec_cost["single"]
        assert exec_cost[policy] < exec_cost["round-robin"]
