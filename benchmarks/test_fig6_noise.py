"""Figure 6: resilience to bursts of noise.

Paper shape: with noise bursts injected into a stable base workload
(noise = 20% of queries, OFFLINE tuned on the base distribution only,
first 100 queries excluded), the COLT/OFFLINE time ratio is ~1 for
short bursts (<= 20 queries: COLT ignores them) and for long bursts
(>= 70: COLT re-tunes early enough to profit), with a worst band at
30-60 queries (average 18% loss) where COLT materializes the noise
indexes just as the burst ends.
"""

from repro.bench.figures import figure6_noise


def test_fig6_noise(benchmark, report):
    result = benchmark.pedantic(figure6_noise, rounds=1)
    ratios = {p.burst_length: p.ratio for p in result.points}
    mid_band = [ratios[b] for b in (30, 40, 50, 60)]
    mid_loss = (sum(mid_band) / len(mid_band) - 1.0) * 100.0
    lines = [
        result.to_text(),
        "",
        f"mid-band (30-60) average loss: {mid_loss:.1f}% (paper: 18%)",
    ]
    report("\n".join(lines))

    # Short bursts: effectively ignored.
    assert ratios[20] < 1.1
    # Mid-range band is the worst case, visibly above short bursts.
    assert max(mid_band) > ratios[20] + 0.05
    assert mid_loss > 5.0
    # Long bursts recover toward parity relative to the worst band.
    assert ratios[90] < max(mid_band)
