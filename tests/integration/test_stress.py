"""Long-run stress test: everything at once, invariants throughout.

One tuner, one long adversarial stream: shifting read phases, noise
bursts, insert batches, composite candidates enabled, a mid-run
snapshot/restore, and an adaptive forecast window.  After every epoch
the global invariants must hold.  This is the closest the suite gets to
"leave it running in production for a while".
"""

import random

import pytest

from repro.core import ColtConfig, ColtTuner
from repro.persist import restore_tuner, snapshot_tuner
from repro.workload.datagen import build_catalog
from repro.workload.experiments import (
    noise_distributions,
    phase_distributions,
)

BUDGET = 9_000.0
EPOCHS_TO_RUN = 60  # 600 queries


@pytest.mark.slow
def test_long_adversarial_run():
    catalog = build_catalog()
    config = ColtConfig(
        storage_budget_pages=BUDGET,
        composite_candidates=True,
        adaptive_forecast_window=True,
        min_history_epochs=2,
        seed=11,
    )
    tuner = ColtTuner(catalog, config)
    rng = random.Random(11)
    phases = phase_distributions()
    q1, q2 = noise_distributions()
    pools = phases + [q1, q2]

    def check_invariants():
        assert catalog.materialized_size_pages() <= BUDGET + 1e-6
        assert not set(tuner.hot_set) & set(tuner.materialized_set)
        assert set(tuner.materialized_set) == set(catalog.materialized_indexes())

    epoch_calls = 0
    snapshotted = False
    for i in range(EPOCHS_TO_RUN * config.epoch_length):
        # Drift through distributions; occasionally burst-switch.
        dist = pools[(i // 120) % len(pools)]
        if i % 37 == 0:
            dist = pools[rng.randrange(len(pools))]
        outcome = tuner.process_query(dist.sample(catalog, rng))
        epoch_calls += outcome.whatif_calls

        if i % 25 == 0:
            tuner.process_insert("partsupp_4", count=rng.randint(0, 300))

        if outcome.epoch_ended:
            assert epoch_calls <= config.max_whatif_per_epoch
            epoch_calls = 0
            check_invariants()

        if i == 299 and not snapshotted:
            # Mid-run restart: state must round-trip and keep running.
            snapshotted = True
            snapshot = snapshot_tuner(tuner)
            fresh = build_catalog()
            tuner = restore_tuner(fresh, snapshot)
            catalog = fresh
            epoch_calls = 0
            check_invariants()

    # The run must have actually tuned something along the way.
    assert tuner.whatif.call_count > 0
    assert tuner.scheduler.builds or tuner.materialized_set
