"""Integration tests: the full stack on physical TPC-H data.

These tests run the tuner against a physically-populated store, execute
queries for real before and after tuning, and check that (a) results are
identical and (b) the tuner's decisions correspond to physically built
B+trees the executor can actually use.
"""

import random

import pytest

from repro.core import ColtConfig, ColtTuner
from repro.core.scheduler import SchedulingPolicy
from repro.executor import execute
from repro.optimizer.optimizer import Optimizer, PlanCache
from repro.optimizer.plan import IndexScanNode
from repro.workload.datagen import build_physical
from repro.workload.experiments import stable_distribution
from repro.workload.phases import stable_workload


@pytest.fixture(scope="module")
def physical_store():
    return build_physical(instances=2, scale=0.002, seed=5)


class TestPhysicalTuning:
    def test_tuner_builds_usable_indexes(self, physical_store):
        store = physical_store
        catalog = store.catalog
        config = ColtConfig(storage_budget_pages=9000.0, min_history_epochs=2)
        tuner = ColtTuner(catalog, config, store=store)
        workload = stable_workload(stable_distribution(), 150, catalog, seed=2)

        # Record reference results for a probe query before any tuning.
        probe = workload.queries[0]
        reference = sorted(execute(Optimizer(catalog).optimize(probe).plan, store))

        for query in workload.queries:
            tuner.process_query(query)

        assert tuner.materialized_set, "expected COLT to materialize indexes"
        for index in tuner.materialized_set:
            tree = store.tree(index)
            assert tree is not None
            assert len(tree) == len(store.heap(index.table))

        # The probe query still returns identical rows, now through
        # whatever plan the tuned configuration produces.
        after = sorted(execute(Optimizer(catalog).optimize(probe).plan, store))
        assert after == reference

    def test_tuned_plans_actually_use_indexes(self, physical_store):
        store = physical_store
        catalog = store.catalog
        workload = stable_workload(stable_distribution(), 30, catalog, seed=7)
        config = frozenset(catalog.materialized_indexes())
        used_any = False
        for q in workload.queries:
            plan = Optimizer(catalog).optimize(q, cache=PlanCache()).plan
            if any(isinstance(n, IndexScanNode) for n in _walk(plan)):
                used_any = True
                execute(plan, store)  # must run without error
        assert used_any

    def test_idle_policy_defers_builds(self):
        # The stable distribution spans instances 1-2.
        store = build_physical(instances=2, scale=0.001, seed=9)
        catalog = store.catalog
        config = ColtConfig(storage_budget_pages=9000.0, min_history_epochs=2)
        tuner = ColtTuner(
            catalog, config, store=store, policy=SchedulingPolicy.IDLE
        )
        workload = stable_workload(stable_distribution(), 80, catalog, seed=3)
        build_cost = sum(
            tuner.process_query(q).build_cost for q in workload.queries
        )
        assert build_cost == 0.0  # nothing built in the foreground
        if tuner.scheduler.pending:
            charged = tuner.scheduler.on_idle()
            assert charged > 0
            for index in tuner.materialized_set:
                assert store.tree(index) is not None


class TestExecutionEquivalenceUnderTuning:
    def test_results_stable_across_configuration_changes(self, physical_store):
        """Execute the same queries under every configuration the tuner
        passes through; results must never change."""
        store = physical_store
        catalog = store.catalog
        rng = random.Random(0)
        probes = stable_workload(stable_distribution(), 5, catalog, seed=99).queries
        reference = [
            sorted(execute(Optimizer(catalog).optimize(p, config=frozenset()).plan, store))
            for p in probes
        ]

        config = ColtConfig(storage_budget_pages=9000.0, min_history_epochs=2)
        tuner = ColtTuner(catalog, config, store=store)
        workload = stable_workload(stable_distribution(), 60, catalog, seed=rng.randrange(100))
        seen_configs = set()
        for q in workload.queries:
            outcome = tuner.process_query(q)
            if outcome.epoch_ended:
                key = frozenset(tuner.materialized_set)
                if key not in seen_configs:
                    seen_configs.add(key)
                    for probe, expected in zip(probes, reference):
                        plan = Optimizer(catalog).optimize(probe, cache=PlanCache()).plan
                        assert sorted(execute(plan, store)) == expected


def _walk(plan):
    stack = [plan]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(node.children())
