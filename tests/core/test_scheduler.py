"""Unit tests for the materialization scheduler."""

from repro.core.scheduler import Scheduler, SchedulingPolicy


class TestImmediatePolicy:
    def test_build_charges_cost_and_materializes(self, small_catalog):
        scheduler = Scheduler(small_catalog)
        ix = small_catalog.index_for("events", "user_id")
        charged = scheduler.request_materialization([ix])
        assert charged > 0
        assert small_catalog.is_materialized(ix)
        assert scheduler.total_build_cost == charged
        assert [b.index for b in scheduler.builds] == [ix]

    def test_already_materialized_is_free(self, small_catalog):
        scheduler = Scheduler(small_catalog)
        ix = small_catalog.index_for("events", "user_id")
        scheduler.request_materialization([ix])
        assert scheduler.request_materialization([ix]) == 0.0

    def test_drop(self, small_catalog):
        scheduler = Scheduler(small_catalog)
        ix = small_catalog.index_for("events", "user_id")
        scheduler.request_materialization([ix])
        scheduler.request_drop([ix])
        assert not small_catalog.is_materialized(ix)


class TestIdlePolicy:
    def test_requests_queue_without_cost(self, small_catalog):
        scheduler = Scheduler(small_catalog, policy=SchedulingPolicy.IDLE)
        ix = small_catalog.index_for("events", "user_id")
        assert scheduler.request_materialization([ix]) == 0.0
        assert not small_catalog.is_materialized(ix)
        assert scheduler.pending == [ix]

    def test_on_idle_builds(self, small_catalog):
        scheduler = Scheduler(small_catalog, policy=SchedulingPolicy.IDLE)
        ix = small_catalog.index_for("events", "user_id")
        scheduler.request_materialization([ix])
        charged = scheduler.on_idle()
        assert charged > 0
        assert small_catalog.is_materialized(ix)
        assert scheduler.pending == []

    def test_on_idle_respects_max_builds(self, small_catalog):
        scheduler = Scheduler(small_catalog, policy=SchedulingPolicy.IDLE)
        ixs = [
            small_catalog.index_for("events", "user_id"),
            small_catalog.index_for("events", "day"),
        ]
        scheduler.request_materialization(ixs)
        scheduler.on_idle(max_builds=1)
        assert len(scheduler.pending) == 1

    def test_drop_cancels_pending(self, small_catalog):
        scheduler = Scheduler(small_catalog, policy=SchedulingPolicy.IDLE)
        ix = small_catalog.index_for("events", "user_id")
        scheduler.request_materialization([ix])
        scheduler.request_drop([ix])
        assert scheduler.pending == []

    def test_duplicate_request_queued_once(self, small_catalog):
        scheduler = Scheduler(small_catalog, policy=SchedulingPolicy.IDLE)
        ix = small_catalog.index_for("events", "user_id")
        scheduler.request_materialization([ix])
        scheduler.request_materialization([ix])
        assert scheduler.pending == [ix]


class TestPhysicalIntegration:
    def test_builds_real_tree(self, small_store):
        scheduler = Scheduler(small_store.catalog, store=small_store)
        ix = small_store.catalog.index_for("events", "user_id")
        scheduler.request_materialization([ix])
        tree = small_store.tree(ix)
        assert tree is not None
        assert len(tree) == len(small_store.heap("events"))

    def test_drop_removes_tree(self, small_store):
        scheduler = Scheduler(small_store.catalog, store=small_store)
        ix = small_store.catalog.index_for("events", "user_id")
        scheduler.request_materialization([ix])
        scheduler.request_drop([ix])
        assert small_store.tree(ix) is None
