"""Unit tests for the Profiler (Figure 2 algorithm)."""

import pytest

from repro.core.config import ColtConfig
from repro.core.profiler import Profiler
from repro.optimizer.optimizer import Optimizer
from repro.optimizer.whatif import WhatIfOptimizer
from repro.sql.binder import bind_query
from repro.sql.parser import parse_query


def _setup(catalog, **config_kwargs):
    config = ColtConfig(**config_kwargs)
    whatif = WhatIfOptimizer(Optimizer(catalog))
    return Profiler(catalog, whatif, config), whatif, config


def _q(catalog, sql):
    return bind_query(parse_query(sql), catalog)


class TestProfileQuery:
    def test_hot_index_gets_probed(self, small_catalog):
        profiler, whatif, _ = _setup(small_catalog)
        q = _q(small_catalog, "select amount from events where user_id = 5")
        hot = [small_catalog.index_for("events", "user_id")]
        session = whatif.begin_query(q)
        outcome = profiler.profile_query(q, session, hot=hot, materialized=[])
        assert outcome.probed == hot
        assert outcome.gains[hot[0]] > 0
        assert whatif.call_count == 1

    def test_irrelevant_hot_not_probed(self, small_catalog):
        profiler, whatif, _ = _setup(small_catalog)
        q = _q(small_catalog, "select amount from events where user_id = 5")
        hot = [small_catalog.index_for("users", "score")]
        session = whatif.begin_query(q)
        outcome = profiler.profile_query(q, session, hot=hot, materialized=[])
        assert outcome.probed == []

    def test_budget_caps_probing(self, small_catalog):
        profiler, whatif, _ = _setup(small_catalog, max_whatif_per_epoch=1)
        q = _q(
            small_catalog,
            "select amount from events where user_id = 5 and day = 8000",
        )
        hot = [
            small_catalog.index_for("events", "user_id"),
            small_catalog.index_for("events", "day"),
        ]
        session = whatif.begin_query(q)
        profiler.profile_query(q, session, hot=hot, materialized=[])
        assert whatif.call_count <= 1

    def test_zero_budget_no_calls(self, small_catalog):
        profiler, whatif, _ = _setup(small_catalog)
        profiler.set_budget(0)
        q = _q(small_catalog, "select amount from events where user_id = 5")
        hot = [small_catalog.index_for("events", "user_id")]
        session = whatif.begin_query(q)
        profiler.profile_query(q, session, hot=hot, materialized=[])
        assert whatif.call_count == 0

    def test_materialized_used_index_probed(self, small_catalog):
        ix = small_catalog.index_for("events", "user_id")
        small_catalog.materialize_index(ix)
        profiler, whatif, _ = _setup(small_catalog)
        q = _q(small_catalog, "select amount from events where user_id = 5")
        session = whatif.begin_query(q)
        outcome = profiler.profile_query(q, session, hot=[], materialized=[ix])
        assert ix in outcome.probed

    def test_candidates_mined(self, small_catalog):
        profiler, whatif, _ = _setup(small_catalog)
        q = _q(small_catalog, "select amount from events where user_id = 5")
        session = whatif.begin_query(q)
        profiler.profile_query(q, session, hot=[], materialized=[])
        assert len(profiler.candidates) == 1


class TestEpochReport:
    def test_report_covers_hot_and_materialized(self, small_catalog):
        ix_m = small_catalog.index_for("events", "day")
        small_catalog.materialize_index(ix_m)
        profiler, whatif, _ = _setup(small_catalog)
        hot = [small_catalog.index_for("events", "user_id")]
        q = _q(small_catalog, "select amount from events where user_id = 5")
        session = whatif.begin_query(q)
        profiler.profile_query(q, session, hot=hot, materialized=[ix_m])
        report = profiler.end_epoch(hot=hot, materialized=[ix_m])
        assert ("events", ("user_id",)) in report
        assert ("events", ("day",)) in report

    def test_measured_gain_in_benefit(self, small_catalog):
        profiler, whatif, config = _setup(small_catalog, epoch_length=10)
        hot = [small_catalog.index_for("events", "user_id")]
        q = _q(small_catalog, "select amount from events where user_id = 5")
        session = whatif.begin_query(q)
        outcome = profiler.profile_query(q, session, hot=hot, materialized=[])
        gain = outcome.gains[hot[0]]
        report = profiler.end_epoch(hot=hot, materialized=[])
        benefit = report[("events", ("user_id",))]
        assert benefit.low == pytest.approx(gain / config.epoch_length)
        assert benefit.measured == 1

    def test_unmeasured_exposure_uses_crude_for_high(self, small_catalog):
        profiler, whatif, _ = _setup(small_catalog)
        profiler.set_budget(0)  # force zero measurements
        hot = [small_catalog.index_for("events", "user_id")]
        q = _q(small_catalog, "select amount from events where user_id = 5")
        session = whatif.begin_query(q)
        profiler.profile_query(q, session, hot=hot, materialized=[])
        report = profiler.end_epoch(hot=hot, materialized=[])
        benefit = report[("events", ("user_id",))]
        assert benefit.low == 0.0
        assert benefit.high > 0.0  # crude optimistic fallback

    def test_epoch_state_resets(self, small_catalog):
        profiler, whatif, _ = _setup(small_catalog)
        hot = [small_catalog.index_for("events", "user_id")]
        q = _q(small_catalog, "select amount from events where user_id = 5")
        session = whatif.begin_query(q)
        profiler.profile_query(q, session, hot=hot, materialized=[])
        profiler.end_epoch(hot=hot, materialized=[])
        report = profiler.end_epoch(hot=hot, materialized=[])
        assert report[("events", ("user_id",))].low == 0.0
        assert profiler.whatif_used == 0


class TestConsistency:
    def test_purge_on_config_change(self, small_catalog):
        profiler, whatif, _ = _setup(small_catalog)
        ix_user = small_catalog.index_for("events", "user_id")
        ix_day = small_catalog.index_for("events", "day")
        q = _q(
            small_catalog,
            "select amount from events where user_id = 5 and day = 8000",
        )
        session = whatif.begin_query(q)
        outcome = profiler.profile_query(
            q, session, hot=[ix_user, ix_day], materialized=[]
        )
        cid = outcome.cluster.cluster_id
        assert profiler.interval_for(ix_user, cid) is not None
        # Materializing day changes the local configuration of the
        # cluster (it references both columns) → stats become stale.
        small_catalog.materialize_index(ix_day)
        profiler.purge_stale()
        assert profiler.interval_for(ix_user, cid) is None

    def test_unrelated_change_preserves_stats(self, small_catalog):
        profiler, whatif, _ = _setup(small_catalog)
        ix_user = small_catalog.index_for("events", "user_id")
        q = _q(small_catalog, "select amount from events where user_id = 5")
        session = whatif.begin_query(q)
        outcome = profiler.profile_query(q, session, hot=[ix_user], materialized=[])
        cid = outcome.cluster.cluster_id
        # 'day' is NOT referenced by this cluster: same-table but
        # irrelevant, so measurements stay valid (narrow §4.1 rule).
        small_catalog.materialize_index(small_catalog.index_for("events", "day"))
        profiler.purge_stale()
        assert profiler.interval_for(ix_user, cid) is not None


class TestSampling:
    def test_unprofiled_pair_sampled_with_certainty(self, small_catalog):
        profiler, whatif, _ = _setup(small_catalog)
        q = _q(small_catalog, "select amount from events where user_id = 5")
        cluster = profiler.clusters.assign(q)
        rate = profiler._sample_rate(
            small_catalog.index_for("events", "user_id"), cluster
        )
        assert rate == 1.0

    def test_rate_drops_after_consistent_samples(self, small_catalog):
        profiler, whatif, _ = _setup(small_catalog)
        ix = small_catalog.index_for("events", "user_id")
        q = _q(small_catalog, "select amount from events where user_id = 5")
        cluster = profiler.clusters.assign(q)
        for _ in range(10):
            profiler._record_gain(ix, cluster, 100.0)
        rate = profiler._sample_rate(ix, cluster)
        assert rate < 1.0
