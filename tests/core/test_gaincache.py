"""Unit tests for the cross-query what-if gain cache.

The differential harness (test_gaincache_differential.py) proves the
end-to-end equivalence; these tests pin the mechanisms it relies on --
the structural-zero rule, exact-key replay, every invalidation path,
and the metrics contract.
"""

import random

import pytest

from repro.core import ColtConfig, ColtTuner
from repro.core.gaincache import (
    GainCache,
    query_signature,
    referenced_columns,
)
from repro.obs.registry import MetricsRegistry
from repro.optimizer.optimizer import Optimizer
from repro.optimizer.whatif import WhatIfOptimizer
from repro.sql.binder import bind_query
from repro.sql.parser import parse_query
from repro.workload.datagen import build_catalog


def _query(catalog, sql):
    return bind_query(parse_query(sql), catalog)


@pytest.fixture()
def catalog():
    return build_catalog()


@pytest.fixture()
def whatif(catalog):
    return WhatIfOptimizer(Optimizer(catalog))


@pytest.fixture()
def cache(catalog, whatif):
    return GainCache(catalog, whatif, enabled=True, ttl_epochs=3)


ORDERS_SQL = "select * from orders_1 where o_custkey = 42"


class TestStructuralZero:
    def test_unreferenced_index_served_as_exact_zero(self, catalog, whatif, cache):
        query = _query(catalog, ORDERS_SQL)
        ctx = cache.begin_query(query)
        # An index on a column the query never references: the
        # optimizer strips it from the relevant configuration, so the
        # probe's forward and reverse costs coincide.
        other = catalog.index_for("orders_1", "o_totalprice")
        assert ctx.lookup(other) == 0.0
        assert cache.hits_structural == 1
        assert whatif.call_count == 0

    def test_structural_zero_matches_real_probe(self, catalog, whatif, cache):
        query = _query(catalog, ORDERS_SQL)
        session = whatif.begin_query(query)
        other = catalog.index_for("orders_1", "o_totalprice")
        real = whatif.what_if_optimize(session, [other])[other]
        ctx = cache.begin_query(query)
        assert ctx.lookup(other) == real == 0.0

    def test_referenced_index_is_not_a_structural_zero(self, catalog, cache):
        query = _query(catalog, ORDERS_SQL)
        ctx = cache.begin_query(query)
        probed = catalog.index_for("orders_1", "o_custkey")
        assert ctx.lookup(probed) is None
        assert cache.misses == 1

    def test_join_columns_count_as_referenced(self, catalog):
        query = _query(
            catalog,
            "select * from orders_1, customer_1 "
            "where orders_1.o_custkey = customer_1.c_custkey",
        )
        refs = referenced_columns(query)
        assert ("orders_1", "o_custkey") in refs
        assert ("customer_1", "c_custkey") in refs


class TestExactKeyReplay:
    def test_stored_gain_replays_for_identical_query(self, catalog, whatif, cache):
        query = _query(catalog, ORDERS_SQL)
        session = whatif.begin_query(query)
        index = catalog.index_for("orders_1", "o_custkey")
        gain = whatif.what_if_optimize(session, [index])[index]
        assert gain > 0.0

        ctx = cache.begin_query(query)
        assert ctx.lookup(index) is None  # miss: nothing stored yet
        ctx.store(index, gain)

        replay = cache.begin_query(_query(catalog, ORDERS_SQL))
        assert replay.lookup(index) == gain
        assert cache.hits_exact == 1

    def test_different_literal_is_a_different_key(self, catalog, cache):
        index = catalog.index_for("orders_1", "o_custkey")
        ctx = cache.begin_query(_query(catalog, ORDERS_SQL))
        ctx.lookup(index)
        ctx.store(index, 5.0)
        other = cache.begin_query(
            _query(catalog, "select * from orders_1 where o_custkey = 43")
        )
        assert other.lookup(index) is None

    def test_changed_relevant_config_is_a_different_key(self, catalog, cache):
        index = catalog.index_for("orders_1", "o_custkey")
        ctx = cache.begin_query(_query(catalog, ORDERS_SQL))
        ctx.lookup(index)
        ctx.store(index, 5.0)
        # Materializing an index on the referenced column changes the
        # relevant-config signature: the stored entry must not alias.
        catalog.materialize_index(index)
        try:
            after = cache.begin_query(_query(catalog, ORDERS_SQL))
            assert after.lookup(index) is None
        finally:
            catalog.drop_index(index)

    def test_stats_token_mismatch_invalidates_on_lookup(self, catalog, cache):
        index = catalog.index_for("orders_1", "o_custkey")
        ctx = cache.begin_query(_query(catalog, ORDERS_SQL))
        ctx.lookup(index)
        ctx.store(index, 5.0)
        catalog.table("orders_1").row_count += 1000
        try:
            stale = cache.begin_query(_query(catalog, ORDERS_SQL))
            assert stale.lookup(index) is None
        finally:
            catalog.table("orders_1").row_count -= 1000

    def test_signature_distinguishes_literal_types(self):
        # The binder normally coerces literals to the column type; the
        # signature stays type-tagged anyway so equal-but-differently-
        # typed values (1 == 1.0, same hash) can never alias a key.
        from repro.sql.ast import ColumnExpr, CompareOp, ComparisonPredicate, Query

        def q(value):
            return Query(
                tables=["orders_1"],
                filters=[
                    ComparisonPredicate(
                        ColumnExpr("o_custkey", "orders_1"), CompareOp.EQ, value
                    )
                ],
            )

        assert query_signature(q(1)) != query_signature(q(1.0))
        assert query_signature(q(1)) == query_signature(q(1))


class TestTruncateRefill:
    """Delete-then-insert restoring the row count must still invalidate.

    ``row_count`` alone cannot distinguish a truncate-refill from "no
    change"; the stats *version* component of the token can, provided
    every mutation path bumps it.  These are the regression tests for
    the version-bump sweep across Catalog mutators.
    """

    def test_refill_to_original_count_still_invalidates(
        self, catalog, whatif, cache
    ):
        query = _query(catalog, ORDERS_SQL)
        index = catalog.index_for("orders_1", "o_custkey")
        session = whatif.begin_query(query)
        gain = whatif.what_if_optimize(session, [index])[index]
        ctx = cache.begin_query(query)
        ctx.lookup(index)
        ctx.store(index, gain)
        assert cache.begin_query(query).lookup(index) == gain

        before = catalog.table("orders_1").row_count
        catalog.set_row_count("orders_1", 0.0)  # truncate
        catalog.apply_row_delta("orders_1", before)  # refill
        assert catalog.table("orders_1").row_count == before
        assert cache.begin_query(query).lookup(index) is None

    def test_every_mutator_bumps_the_version(self, catalog):
        versions = [catalog.stats_version("orders_1")]
        catalog.apply_row_delta("orders_1", 100)
        versions.append(catalog.stats_version("orders_1"))
        catalog.apply_row_delta("orders_1", -100)
        versions.append(catalog.stats_version("orders_1"))
        catalog.set_row_count(
            "orders_1", catalog.table("orders_1").row_count
        )
        versions.append(catalog.stats_version("orders_1"))
        catalog.bump_stats_version("orders_1")
        versions.append(catalog.stats_version("orders_1"))
        assert versions == sorted(set(versions))  # strictly increasing

    def test_mutators_validate_the_table(self, catalog):
        with pytest.raises(KeyError):
            catalog.apply_row_delta("no_such_table", 1)
        with pytest.raises(KeyError):
            catalog.set_row_count("no_such_table", 1)
        with pytest.raises(KeyError):
            catalog.bump_stats_version("no_such_table")


class TestInvalidation:
    def _seed_entry(self, catalog, cache, sql=ORDERS_SQL, gain=5.0):
        index = catalog.index_for("orders_1", "o_custkey")
        ctx = cache.begin_query(_query(catalog, sql))
        ctx.lookup(index)
        ctx.store(index, gain)
        return index

    def test_invalidate_indexes_drops_referencing_entries(self, catalog, cache):
        index = self._seed_entry(catalog, cache)
        dropped = cache.invalidate_indexes([index])
        assert dropped == 1
        assert len(cache) == 0

    def test_invalidate_indexes_spares_unrelated_entries(self, catalog, cache):
        self._seed_entry(catalog, cache)
        unrelated = catalog.index_for("part_1", "p_size")
        assert cache.invalidate_indexes([unrelated]) == 0
        assert len(cache) == 1

    def test_invalidate_table_drops_entries_touching_it(self, catalog, cache):
        self._seed_entry(catalog, cache)
        assert cache.invalidate_table("orders_1") == 1
        assert cache.invalidate_table("part_1") == 0

    def test_set_stats_bumps_the_stats_version(self, catalog):
        before = catalog.stats_version("orders_1")
        catalog.set_stats(
            "orders_1", "o_custkey", catalog.stats("orders_1", "o_custkey")
        )
        assert catalog.stats_version("orders_1") == before + 1

    def test_roll_epoch_ages_out_unused_entries(self, catalog, cache):
        self._seed_entry(catalog, cache)
        for _ in range(cache.ttl_epochs + 1):
            cache.roll_epoch()
        assert len(cache) == 0

    def test_clear_empties_the_cache(self, catalog, cache):
        self._seed_entry(catalog, cache)
        assert cache.clear(reason="rebalance") == 1
        assert len(cache) == 0

    def test_capacity_eviction(self, catalog, whatif):
        small = GainCache(catalog, whatif, enabled=True, max_entries=1)
        index = catalog.index_for("orders_1", "o_custkey")
        for value in (41, 42):
            sql = f"select * from orders_1 where o_custkey = {value}"
            ctx = small.begin_query(_query(catalog, sql))
            ctx.lookup(index)
            ctx.store(index, float(value))
        assert len(small) == 1


class TestTunerIntegration:
    def test_scheduler_change_invalidates_cache(self, catalog):
        tuner = ColtTuner(catalog, ColtConfig(gain_cache=True))
        cache = tuner.profiler.gain_cache
        index = catalog.index_for("orders_1", "o_custkey")
        ctx = cache.begin_query(_query(catalog, ORDERS_SQL))
        ctx.lookup(index)
        ctx.store(index, 5.0)
        tuner.scheduler.request_materialization([index])
        assert len(cache) == 0
        assert cache.invalidations >= 1

    def test_process_insert_invalidates_table(self, catalog):
        tuner = ColtTuner(catalog, ColtConfig(gain_cache=True))
        cache = tuner.profiler.gain_cache
        index = catalog.index_for("orders_1", "o_custkey")
        ctx = cache.begin_query(_query(catalog, ORDERS_SQL))
        ctx.lookup(index)
        ctx.store(index, 5.0)
        tuner.process_insert("orders_1", count=10)
        assert len(cache) == 0

    def test_disabled_by_default_and_profiler_skips_it(self, catalog):
        tuner = ColtTuner(catalog, ColtConfig())
        assert tuner.profiler.gain_cache.enabled is False
        rng = random.Random(1)
        for _ in range(15):
            key = rng.randint(1, 10_000)
            tuner.process_query(
                _query(
                    catalog,
                    f"select * from orders_1 where o_custkey = {key}",
                )
            )
        assert tuner.profiler.gain_cache.hits == 0
        assert len(tuner.profiler.gain_cache) == 0

    def test_enabled_tuner_records_hits_on_mixed_workload(self, catalog):
        # Two query shapes on the same table, each referencing only one
        # column: each cluster's relevant hot set then contains the
        # *other* column's index (same-table relevance), whose probe is
        # a structural zero the cache serves without a what-if call.
        tuner = ColtTuner(
            catalog,
            ColtConfig(gain_cache=True, storage_budget_pages=9_000.0),
        )
        rng = random.Random(1)
        for i in range(60):
            if i % 2:
                sql = (
                    "select * from orders_1 where o_custkey = "
                    f"{rng.randint(1, 10_000)}"
                )
            else:
                sql = (
                    "select * from orders_1 where o_totalprice > "
                    f"{rng.uniform(100.0, 200.0):.2f}"
                )
            tuner.process_query(_query(catalog, sql))
        assert tuner.profiler.gain_cache.hits > 0

    def test_metric_families_registered_even_when_disabled(self, catalog):
        registry = MetricsRegistry()
        ColtTuner(catalog, ColtConfig(), registry=registry)
        names = set(registry.names())
        assert {
            "gaincache_hits_total",
            "gaincache_misses_total",
            "gaincache_stores_total",
            "gaincache_invalidations_total",
            "gaincache_entries",
        } <= names

    def test_hit_metrics_track_plain_counters(self, catalog, whatif):
        registry = MetricsRegistry()
        cache = GainCache(catalog, whatif, enabled=True, registry=registry)
        query = _query(catalog, ORDERS_SQL)
        ctx = cache.begin_query(query)
        ctx.lookup(catalog.index_for("orders_1", "o_totalprice"))
        hits = registry.get("gaincache_hits_total")
        assert hits.value(kind="structural") == cache.hits_structural == 1
