"""Unit tests for candidate mining and crude benefit tracking."""

import pytest

from repro.core.candidates import CandidateTracker
from repro.sql.binder import bind_query
from repro.sql.parser import parse_query


def _q(catalog, sql):
    return bind_query(parse_query(sql), catalog)


def _tracker(catalog, h=4, smoothing=0.5):
    return CandidateTracker(catalog, h, smoothing)


class TestMining:
    def test_candidates_from_selection_predicates(self, small_catalog):
        tracker = _tracker(small_catalog)
        tracker.observe_query(
            _q(small_catalog, "select amount from events where user_id = 5"),
            used_indexes=[],
            materialized=[],
        )
        names = [ix.name for ix in tracker.candidates()]
        assert names == ["ix_events_user_id"]

    def test_join_columns_not_mined(self, small_catalog):
        # §3: C is mined from *selection* predicates only.
        tracker = _tracker(small_catalog)
        tracker.observe_query(
            _q(
                small_catalog,
                "select * from events, users "
                "where events.user_id = users.user_id and events.day = 8000",
            ),
            used_indexes=[],
            materialized=[],
        )
        names = {ix.name for ix in tracker.candidates()}
        assert names == {"ix_events_day"}

    def test_non_indexable_column_skipped(self, small_catalog):
        tracker = _tracker(small_catalog)
        tracker.observe_query(
            _q(small_catalog, "select score from users where name = 'x'"),
            used_indexes=[],
            materialized=[],
        )
        assert tracker.candidates() == []


class TestCrudeBenefit:
    def test_selective_predicate_credits_gain(self, small_catalog):
        tracker = _tracker(small_catalog)
        credited = tracker.observe_query(
            _q(small_catalog, "select amount from events where user_id = 5"),
            used_indexes=[],
            materialized=[],
        )
        assert credited[0][1] > 0

    def test_materialized_unused_gets_zero(self, small_catalog):
        """u_{q,I} = 0 when the optimizer had the index and didn't use it."""
        tracker = _tracker(small_catalog)
        index = small_catalog.index_for("events", "user_id")
        credited = tracker.observe_query(
            _q(small_catalog, "select amount from events where user_id = 5"),
            used_indexes=[],
            materialized=[index],
        )
        assert credited[0][1] == 0.0

    def test_materialized_used_gets_gain(self, small_catalog):
        tracker = _tracker(small_catalog)
        index = small_catalog.index_for("events", "user_id")
        credited = tracker.observe_query(
            _q(small_catalog, "select amount from events where user_id = 5"),
            used_indexes=[index],
            materialized=[index],
        )
        assert credited[0][1] > 0

    def test_epoch_roll_computes_average(self, small_catalog):
        tracker = _tracker(small_catalog)
        q = _q(small_catalog, "select amount from events where user_id = 5")
        gain = tracker.observe_query(q, [], [])[0][1]
        tracker.observe_query(q, [], [])
        tracker.roll_epoch(epoch_length=10)
        stats = tracker.stats_for(small_catalog.index_for("events", "user_id"))
        assert stats.smoothed_benefit == pytest.approx(2 * gain / 10)


class TestLifecycle:
    def test_stale_candidates_evicted(self, small_catalog):
        tracker = _tracker(small_catalog, h=2)
        tracker.observe_query(
            _q(small_catalog, "select amount from events where user_id = 5"),
            used_indexes=[],
            materialized=[],
        )
        for _ in range(4):  # fill window with zero epochs
            tracker.roll_epoch(10)
        assert tracker.candidates() == []

    def test_active_candidates_survive(self, small_catalog):
        tracker = _tracker(small_catalog, h=3)
        q = _q(small_catalog, "select amount from events where user_id = 5")
        for _ in range(5):
            tracker.observe_query(q, [], [])
            tracker.roll_epoch(10)
        assert len(tracker.candidates()) == 1

    def test_ranked_excludes(self, small_catalog):
        tracker = _tracker(small_catalog)
        tracker.observe_query(
            _q(small_catalog, "select amount from events where user_id = 5"), [], []
        )
        tracker.observe_query(
            _q(small_catalog, "select amount from events where day = 8000"), [], []
        )
        tracker.roll_epoch(10)
        all_ranked = tracker.ranked()
        assert len(all_ranked) == 2
        excluded = tracker.ranked(exclude=[small_catalog.index_for("events", "user_id")])
        assert len(excluded) == 1

    def test_ranked_descending(self, small_catalog):
        tracker = _tracker(small_catalog)
        selective = _q(small_catalog, "select amount from events where user_id = 5")
        weak = _q(
            small_catalog, "select amount from events where amount between 0 and 900"
        )
        for _ in range(3):
            tracker.observe_query(selective, [], [])
        tracker.observe_query(weak, [], [])
        tracker.roll_epoch(10)
        ranked = tracker.ranked()
        benefits = [s.smoothed_benefit for s in ranked]
        assert benefits == sorted(benefits, reverse=True)
