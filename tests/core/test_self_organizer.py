"""Unit tests for the Self-Organizer (reorganization + re-budgeting)."""

from repro.core.config import ColtConfig
from repro.core.profiler import EpochIndexBenefit, Profiler
from repro.core.self_organizer import SelfOrganizer, two_means_split
from repro.optimizer.optimizer import Optimizer
from repro.optimizer.whatif import WhatIfOptimizer
from repro.sql.binder import bind_query
from repro.sql.parser import parse_query


def _benefit(index, low, high=None, measured=1):
    return EpochIndexBenefit(
        index=index, low=low, high=high if high is not None else low, measured=measured
    )


def _setup(catalog, **kwargs):
    kwargs.setdefault("storage_budget_pages", 5000.0)
    config = ColtConfig(**kwargs)
    so = SelfOrganizer(catalog, config)
    profiler = Profiler(catalog, WhatIfOptimizer(Optimizer(catalog)), config)
    return so, profiler, config


def _feed(so, profiler, index, benefit, epochs, hot=True):
    """Push `epochs` epochs of a constant benefit for one index."""
    if hot:
        so.hot.add(index)
    key = (index.table, index.columns)
    for _ in range(epochs):
        report = {key: _benefit(index, benefit)}
        so.end_epoch(report, profiler)
        if hot:
            so.hot.add(index)  # keep it hot regardless of candidate state


class TestTwoMeans:
    def test_empty(self):
        assert two_means_split([]) == 0

    def test_single(self):
        assert two_means_split([5.0]) == 1

    def test_obvious_gap(self):
        assert two_means_split([100.0, 99.0, 98.0, 2.0, 1.0]) == 3

    def test_two_values(self):
        assert two_means_split([10.0, 1.0]) == 1

    def test_uniform_values_split_somewhere(self):
        split = two_means_split([5.0, 4.0, 3.0, 2.0])
        assert 1 <= split <= 3


class TestReorganization:
    def test_beneficial_index_materialized(self, small_catalog):
        so, profiler, config = _setup(small_catalog, min_history_epochs=2)
        ix = small_catalog.index_for("events", "user_id")
        so.hot.add(ix)
        key = (ix.table, ix.columns)
        # Benefit far above the (scaled) build cost.
        big = small_catalog.index_build_cost(ix)
        result = None
        for _ in range(4):
            result = so.end_epoch({key: _benefit(ix, big)}, profiler)
            so.hot.add(ix)
        assert ix in so.materialized
        assert any(True for _ in [result])

    def test_weak_index_not_materialized(self, small_catalog):
        so, profiler, _ = _setup(small_catalog, min_history_epochs=2)
        ix = small_catalog.index_for("events", "user_id")
        _feed(so, profiler, ix, benefit=0.01, epochs=5)
        assert ix not in so.materialized

    def test_budget_respected(self, small_catalog):
        so, profiler, config = _setup(
            small_catalog, min_history_epochs=1, storage_budget_pages=100.0
        )
        # events indexes are far larger than 100 pages → nothing fits.
        ix = small_catalog.index_for("events", "user_id")
        _feed(so, profiler, ix, benefit=1e9, epochs=3)
        assert so.materialized == set()

    def test_useless_materialized_dropped_for_better(self, small_catalog):
        """A materialized index whose benefit decays loses its slot when a
        better candidate needs the space."""
        so, profiler, config = _setup(
            small_catalog,
            min_history_epochs=1,
            # Both indexes are ~2.4k pages; only one fits.
            storage_budget_pages=3000.0,
            history_epochs=4,
        )
        weak = small_catalog.index_for("events", "user_id")
        strong = small_catalog.index_for("events", "day")
        wkey, skey = (weak.table, weak.columns), (strong.table, strong.columns)

        _feed(so, profiler, weak, benefit=50_000.0, epochs=3)
        assert weak in so.materialized
        # Weak decays to zero while strong rises.
        so.hot.add(strong)
        for _ in range(8):
            so.end_epoch(
                {wkey: _benefit(weak, 0.0), skey: _benefit(strong, 80_000.0)},
                profiler,
            )
            so.hot.add(strong)
        assert strong in so.materialized
        assert weak not in so.materialized

    def test_min_history_gates_eligibility(self, small_catalog):
        so, profiler, _ = _setup(small_catalog, min_history_epochs=3)
        ix = small_catalog.index_for("events", "user_id")
        so.hot.add(ix)
        key = (ix.table, ix.columns)
        so.end_epoch({key: _benefit(ix, 1e9)}, profiler)
        assert ix not in so.materialized  # only 1 epoch of history


class TestRebudgeting:
    def test_budget_zero_when_no_potential(self, small_catalog):
        so, profiler, _ = _setup(small_catalog)
        result = so.end_epoch({}, profiler)
        assert result.whatif_budget == 0
        assert result.improvement_ratio == 1.0

    def test_budget_max_at_knee(self, small_catalog):
        so, profiler, config = _setup(small_catalog)
        assert so._budget_for(config.rebudget_knee) == config.max_whatif_per_epoch
        assert so._budget_for(10.0) == config.max_whatif_per_epoch

    def test_budget_linear_between(self, small_catalog):
        so, profiler, config = _setup(small_catalog)
        mid = 1.0 + (config.rebudget_knee - 1.0) / 2.0
        assert so._budget_for(mid) == round(config.max_whatif_per_epoch / 2)

    def test_budget_zero_at_one(self, small_catalog):
        so, profiler, _ = _setup(small_catalog)
        assert so._budget_for(1.0) == 0

    def test_promising_empty_m_wakes_profiling(self, small_catalog):
        """With nothing materialized and a promising hot index, the ratio
        saturates and profiling gets the full budget."""
        so, profiler, config = _setup(small_catalog, min_history_epochs=10)
        ix = small_catalog.index_for("events", "user_id")
        so.hot.add(ix)
        key = (ix.table, ix.columns)
        result = so.end_epoch(
            {key: _benefit(ix, 1e6, high=1e7)}, profiler
        )
        assert result.whatif_budget == config.max_whatif_per_epoch


class TestHotSelection:
    def test_hot_from_candidates(self, small_catalog):
        so, profiler, _ = _setup(small_catalog)
        q = bind_query(
            parse_query("select amount from events where user_id = 5"), small_catalog
        )
        profiler.candidates.observe_query(q, [], [])
        profiler.candidates.roll_epoch(10)
        result = so.end_epoch({}, profiler)
        assert [ix.name for ix in result.hot] == ["ix_events_user_id"]

    def test_hot_capped(self, small_catalog):
        so, profiler, config = _setup(small_catalog, max_hot_size=1)
        for sql in (
            "select amount from events where user_id = 5",
            "select amount from events where day = 8000",
        ):
            q = bind_query(parse_query(sql), small_catalog)
            profiler.candidates.observe_query(q, [], [])
        profiler.candidates.roll_epoch(10)
        result = so.end_epoch({}, profiler)
        assert len(result.hot) == 1

    def test_materialized_excluded_from_hot(self, small_catalog):
        so, profiler, _ = _setup(small_catalog, min_history_epochs=1)
        ix = small_catalog.index_for("events", "user_id")
        q = bind_query(
            parse_query("select amount from events where user_id = 5"), small_catalog
        )
        _feed(so, profiler, ix, benefit=1e9, epochs=3)
        assert ix in so.materialized
        profiler.candidates.observe_query(q, [], [ix])
        profiler.candidates.roll_epoch(10)
        result = so.end_epoch(
            {(ix.table, ix.columns): _benefit(ix, 1e9)}, profiler
        )
        assert ix not in result.hot
