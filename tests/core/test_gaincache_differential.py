"""Differential harness: cache-on must be *indistinguishable* in policy.

The gain cache's whole contract is that it only serves values a real
what-if probe would have returned, charged against the same ``#WI_lim``
budget -- so a cache-on tuner and a cache-off tuner fed the same
shifting workload must walk in lockstep: identical profiled epoch
benefits (``BenefitH``/``BenefitM``), identical reorganization
decisions, identical materialized sets and execution costs, epoch by
epoch.  The only permitted difference is the overhead ledger: the
cache-on run issues strictly fewer extended-optimizer calls.

The workload is the Figure-4 shape (4 phases with gradual transitions)
at 540 queries -- above the 500-query floor the acceptance criteria set
-- so the equivalence is exercised across several distribution shifts,
epoch reorganizations, and materialization changes.
"""

from repro.core import ColtConfig, ColtTuner
from repro.workload.datagen import build_catalog
from repro.workload.experiments import phase_distributions
from repro.workload.phases import shifting_workload

PHASE_LENGTH = 120
TRANSITION = 20
BUDGET_PAGES = 9_000.0


def _workload():
    return shifting_workload(
        phase_distributions(),
        build_catalog(),
        phase_length=PHASE_LENGTH,
        transition=TRANSITION,
        seed=0,
    )


def _capture_epoch_reports(tuner, sink):
    """Record every epoch's profiled benefit report, then pass it on."""
    original = tuner.profiler.end_epoch

    def wrapper(hot, materialized):
        report = original(hot=hot, materialized=materialized)
        sink.append(
            {
                key: (b.low, b.high, b.measured)
                for key, b in sorted(report.items())
            }
        )
        return report

    tuner.profiler.end_epoch = wrapper


def _run(gain_cache):
    catalog = build_catalog()
    tuner = ColtTuner(
        catalog,
        ColtConfig(
            storage_budget_pages=BUDGET_PAGES,
            seed=0,
            gain_cache=gain_cache,
        ),
    )
    reports = []
    _capture_epoch_reports(tuner, reports)
    workload = _workload()
    outcomes = tuner.run(workload.queries)
    epochs = [
        {
            "materialize": [str(ix) for ix in o.reorganization.materialize],
            "drop": [str(ix) for ix in o.reorganization.drop],
            "hot": [str(ix) for ix in o.reorganization.hot],
            "budget": o.reorganization.whatif_budget,
            "ratio": o.reorganization.improvement_ratio,
        }
        for o in outcomes
        if o.epoch_ended
    ]
    return {
        "tuner": tuner,
        "outcomes": outcomes,
        "reports": reports,
        "epochs": epochs,
        "final_m": [str(ix) for ix in tuner.materialized_set],
        "exec_cost": sum(o.execution_cost for o in outcomes),
        "total_cost": sum(o.total_cost for o in outcomes),
        "call_count": tuner.whatif.call_count,
    }


class TestDifferentialEquivalence:
    def setup_method(self):
        self.off = _run(gain_cache=False)
        self.on = _run(gain_cache=True)

    def test_workload_is_long_enough(self):
        assert len(self.off["outcomes"]) >= 500

    def test_identical_profiled_benefits_every_epoch(self):
        # BenefitH / BenefitM: the (low, high, measured) triple per
        # profiled index, for every one of the ~54 epochs.
        assert len(self.on["reports"]) == len(self.off["reports"])
        for i, (on_r, off_r) in enumerate(
            zip(self.on["reports"], self.off["reports"])
        ):
            assert on_r == off_r, f"benefit report diverged at epoch {i}"

    def test_identical_reorganization_decisions_every_epoch(self):
        assert self.on["epochs"] == self.off["epochs"]

    def test_identical_chosen_m(self):
        assert self.on["final_m"] == self.off["final_m"]

    def test_identical_execution_cost(self):
        assert self.on["exec_cost"] == self.off["exec_cost"]

    def test_cache_saves_whatif_calls(self):
        assert self.on["tuner"].profiler.gain_cache.hits > 0
        assert self.on["call_count"] < self.off["call_count"]

    def test_cache_never_hurts_total_cost(self):
        # Same decisions, fewer charged what-if calls: the ledger can
        # only improve.
        assert self.on["total_cost"] <= self.off["total_cost"]

    def test_budget_accounting_identical(self):
        # Cache hits consume #WI_lim units exactly like real probes, so
        # the per-epoch granted budgets (already compared above) and
        # the final residual spend agree.
        on_p = self.on["tuner"].profiler
        off_p = self.off["tuner"].profiler
        assert on_p.whatif_used == off_p.whatif_used
        assert on_p.whatif_budget == off_p.whatif_budget
