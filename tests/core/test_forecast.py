"""Unit tests for benefit forecasting and NetBenefit."""

import pytest

from repro.core.forecast import (
    BenefitHistory,
    net_benefit,
    predicted_benefit,
    total_predicted_benefit,
)


class TestBenefitHistory:
    def test_window_bounded(self):
        history = BenefitHistory(3)
        for v in range(10):
            history.record(float(v))
        assert history.values() == [7.0, 8.0, 9.0]
        assert len(history) == 3

    def test_clear(self):
        history = BenefitHistory(3)
        history.record(1.0)
        history.clear()
        assert history.values() == []


class TestPredictedBenefit:
    def test_empty_history(self):
        assert predicted_benefit([], 1) == 0.0

    def test_constant_history(self):
        history = [5.0] * 12
        for j in range(1, 13):
            assert predicted_benefit(history, j) == pytest.approx(5.0)

    def test_min_window_smooths_near_term(self):
        history = [10.0, 10.0, 10.0, 0.0]  # one-off bad epoch at the end
        near = predicted_benefit(history, 1, min_window=4)
        assert near == pytest.approx(7.5)  # averaged over 4, not just the 0

    def test_long_horizon_uses_whole_window(self):
        history = [0.0] * 6 + [12.0] * 6
        long_term = predicted_benefit(history, 12, min_window=1)
        assert long_term == pytest.approx(6.0)

    def test_recency_weighting(self):
        # Recently-good index forecasts higher at short horizons.
        rising = [0.0] * 6 + [10.0] * 6
        falling = [10.0] * 6 + [0.0] * 6
        assert predicted_benefit(rising, 1, min_window=1) > predicted_benefit(
            falling, 1, min_window=1
        )


class TestTotals:
    def test_total_is_sum_of_terms(self):
        history = [1.0, 2.0, 3.0, 4.0, 5.0]
        total = total_predicted_benefit(history, 5, min_window=1)
        expected = sum(predicted_benefit(history, j, min_window=1) for j in range(1, 6))
        assert total == pytest.approx(expected)

    def test_constant_scales_with_horizon(self):
        history = [3.0] * 12
        assert total_predicted_benefit(history, 12) == pytest.approx(36.0)

    def test_net_benefit_subtracts_cost(self):
        history = [10.0] * 12
        assert net_benefit(history, 12, materialization_cost=100.0) == pytest.approx(20.0)

    def test_net_benefit_empty_history(self):
        assert net_benefit([], 12, 50.0) == pytest.approx(-50.0)

    def test_burst_memory(self):
        """An index idle for a few epochs retains part of its forecast.

        This is the mechanism behind Figure 6's resilience: raw windowed
        means keep pre-burst benefit alive for up to h epochs.
        """
        history = [20.0] * 8 + [0.0] * 4  # 4 idle epochs
        total = total_predicted_benefit(history, 12, min_window=1)
        assert total > 0.3 * total_predicted_benefit([20.0] * 12, 12, min_window=1)
