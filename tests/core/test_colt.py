"""End-to-end tests for the COLT tuner on the small catalog."""

import random

import pytest

from repro.core import ColtConfig, ColtTuner
from repro.sql.ast import (
    BetweenPredicate,
    ColumnExpr,
    ComparisonPredicate,
    CompareOp,
    Query,
    SelectItem,
)


def _eq_query(value):
    """A selective single-table query on events.user_id."""
    return Query(
        tables=["events"],
        select=[SelectItem(expr=ColumnExpr("amount", "events"))],
        filters=[
            ComparisonPredicate(
                ColumnExpr("user_id", "events"), CompareOp.EQ, value
            )
        ],
    )


def _day_query(lo):
    return Query(
        tables=["events"],
        select=[SelectItem(expr=ColumnExpr("amount", "events"))],
        filters=[BetweenPredicate(ColumnExpr("day", "events"), lo, lo + 19)],
    )


def _config(**kwargs):
    kwargs.setdefault("storage_budget_pages", 6000.0)
    kwargs.setdefault("min_history_epochs", 2)
    return ColtConfig(**kwargs)


class TestLifecycle:
    def test_converges_on_repetitive_workload(self, small_catalog):
        tuner = ColtTuner(small_catalog, _config())
        rng = random.Random(0)
        outcomes = [
            tuner.process_query(_eq_query(rng.randint(1, 10_000)))
            for _ in range(100)
        ]
        ix = small_catalog.index_for("events", "user_id")
        assert ix in tuner.materialized_set
        # Later queries are much cheaper than the first ones.
        assert sum(o.total_cost for o in outcomes[-20:]) < 0.5 * sum(
            o.total_cost for o in outcomes[:20]
        )

    def test_epoch_boundaries(self, small_catalog):
        tuner = ColtTuner(small_catalog, _config(epoch_length=5))
        outcomes = [tuner.process_query(_eq_query(i)) for i in range(12)]
        boundaries = [o.epoch_ended for o in outcomes]
        assert boundaries == [False] * 4 + [True] + [False] * 4 + [True] + [False] * 2
        assert outcomes[4].reorganization is not None
        assert outcomes[3].reorganization is None

    def test_ledger_accounting(self, small_catalog):
        config = _config()
        tuner = ColtTuner(small_catalog, config)
        for i in range(60):
            o = tuner.process_query(_eq_query(i + 1))
            assert o.total_cost == pytest.approx(
                o.execution_cost + o.whatif_overhead + o.build_cost
            )
            assert o.whatif_overhead == o.whatif_calls * config.whatif_call_cost
            if o.build_cost:
                assert o.epoch_ended

    def test_budget_never_exceeded_per_epoch(self, small_catalog):
        config = _config(max_whatif_per_epoch=4, epoch_length=5)
        tuner = ColtTuner(small_catalog, config)
        rng = random.Random(1)
        epoch_calls = 0
        for i in range(50):
            o = tuner.process_query(_eq_query(rng.randint(1, 10_000)))
            epoch_calls += o.whatif_calls
            if o.epoch_ended:
                assert epoch_calls <= 4
                epoch_calls = 0

    def test_storage_budget_respected_always(self, small_catalog):
        config = _config(storage_budget_pages=3000.0)
        tuner = ColtTuner(small_catalog, config)
        rng = random.Random(2)
        queries = [
            _eq_query(rng.randint(1, 10_000)) if i % 2 else _day_query(8000 + i)
            for i in range(120)
        ]
        for q in queries:
            tuner.process_query(q)
            assert small_catalog.materialized_size_pages() <= 3000.0 + 1e-6

    def test_adapts_to_shift(self, small_catalog):
        # Budget fits either events index (~2.2k / ~2.8k pages) but not
        # both, so adapting to the shift forces a swap.
        tuner = ColtTuner(
            small_catalog, _config(storage_budget_pages=3000.0)
        )
        rng = random.Random(3)
        # Phase 1: user_id queries; phase 2: day queries.  The budget
        # only fits one events index, so COLT must swap.
        for _ in range(80):
            tuner.process_query(_eq_query(rng.randint(1, 10_000)))
        assert small_catalog.index_for("events", "user_id") in tuner.materialized_set
        for _ in range(200):
            tuner.process_query(_day_query(8000 + rng.randint(0, 1900)))
        assert small_catalog.index_for("events", "day") in tuner.materialized_set

    def test_adopts_preexisting_materialized_set(self, small_catalog):
        ix = small_catalog.index_for("events", "day")
        small_catalog.materialize_index(ix)
        tuner = ColtTuner(small_catalog, _config())
        assert tuner.materialized_set == [ix]

    def test_run_helper(self, small_catalog):
        tuner = ColtTuner(small_catalog, _config())
        outcomes = tuner.run([_eq_query(i + 1) for i in range(10)])
        assert len(outcomes) == 10
        assert tuner.queries_seen == 10


class TestOverheadRegulation:
    def test_hibernates_when_tuned(self, small_catalog):
        tuner = ColtTuner(small_catalog, _config())
        rng = random.Random(5)
        calls = []
        for i in range(200):
            o = tuner.process_query(_eq_query(rng.randint(1, 10_000)))
            calls.append(o.whatif_calls)
        # After convergence, profiling dies down.
        assert sum(calls[-50:]) < sum(calls[:50])

    def test_wakes_on_shift(self, small_catalog):
        tuner = ColtTuner(small_catalog, _config(storage_budget_pages=3000.0))
        rng = random.Random(6)
        for _ in range(100):
            tuner.process_query(_eq_query(rng.randint(1, 10_000)))
        quiet = tuner.whatif.call_count
        for _ in range(40):
            tuner.process_query(_day_query(8000 + rng.randint(0, 1900)))
        awake = tuner.whatif.call_count
        assert awake > quiet  # profiling resumed after the shift
