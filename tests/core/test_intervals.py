"""Unit and property tests for CLT gain intervals."""

import math
import statistics

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.intervals import GainStats, z_value


class TestZValue:
    def test_known_quantiles(self):
        assert z_value(0.90) == pytest.approx(1.645, abs=0.01)
        assert z_value(0.95) == pytest.approx(1.960, abs=0.01)

    def test_monotone(self):
        values = [z_value(c) for c in (0.6, 0.8, 0.9, 0.95, 0.99)]
        assert values == sorted(values)

    def test_extremes(self):
        assert z_value(0.995) == pytest.approx(2.576, abs=0.01)


class TestGainStats:
    def test_empty(self):
        stats = GainStats()
        assert stats.count == 0
        assert stats.mean == 0.0
        assert stats.low == 0.0
        assert math.isinf(stats.high)

    def test_single_sample(self):
        stats = GainStats()
        stats.add(100.0)
        lo, hi = stats.interval()
        assert lo == pytest.approx(50.0)
        assert hi == pytest.approx(150.0)

    def test_identical_samples_tighten_to_point(self):
        stats = GainStats()
        for _ in range(20):
            stats.add(42.0)
        lo, hi = stats.interval()
        assert lo == pytest.approx(42.0)
        assert hi == pytest.approx(42.0)

    def test_low_floored_at_zero(self):
        stats = GainStats()
        stats.add(1.0)
        stats.add(-100.0)
        assert stats.low == 0.0

    def test_interval_narrows_with_samples(self):
        import random

        rng = random.Random(0)
        stats = GainStats()
        widths = []
        for i in range(1, 101):
            stats.add(rng.gauss(50, 10))
            if i in (5, 25, 100):
                lo, hi = stats.interval()
                widths.append(hi - lo)
        assert widths[0] > widths[1] > widths[2]

    def test_relative_uncertainty(self):
        stats = GainStats()
        assert math.isinf(stats.relative_uncertainty())
        for v in (10.0, 20.0, 30.0):
            stats.add(v)
        assert 0.0 < stats.relative_uncertainty() < 5.0

    @given(samples=st.lists(st.floats(-1e5, 1e5), min_size=2, max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_welford_matches_statistics_module(self, samples):
        stats = GainStats()
        for v in samples:
            stats.add(v)
        assert stats.mean == pytest.approx(statistics.fmean(samples), abs=1e-6, rel=1e-9)
        assert stats.variance == pytest.approx(
            statistics.variance(samples), abs=1e-4, rel=1e-6
        )

    @given(samples=st.lists(st.floats(0, 1e4), min_size=1, max_size=50))
    @settings(max_examples=60, deadline=None)
    def test_interval_contains_mean(self, samples):
        stats = GainStats()
        for v in samples:
            stats.add(v)
        lo, hi = stats.interval()
        assert lo - 1e-9 <= stats.mean <= hi + 1e-9


class TestIntervalProperties:
    """Property tests for the CLT interval's structural guarantees."""

    @staticmethod
    def _stats(samples):
        stats = GainStats()
        for v in samples:
            stats.add(v)
        return stats

    @given(samples=st.lists(st.floats(-1e4, 1e4), min_size=2, max_size=50))
    @settings(max_examples=80, deadline=None)
    def test_half_width_shrinks_when_the_mean_repeats(self, samples):
        # The CLT half-width is z * stddev / sqrt(n): a new sample at
        # the current mean leaves the dispersion numerator unchanged
        # while n grows, so the interval must tighten (never widen).
        # This is the monotone-shrink property stated sample-by-sample;
        # arbitrary new samples may legitimately widen the interval by
        # raising the variance faster than sqrt(n) grows.
        stats = self._stats(samples)
        widths = []
        for _ in range(4):
            widths.append(stats.half_width())
            stats.add(stats.mean)
        assert all(a >= b - 1e-12 for a, b in zip(widths, widths[1:]))

    @given(
        value=st.floats(-1e4, 1e4),
        count=st.integers(min_value=2, max_value=60),
    )
    @settings(max_examples=80, deadline=None)
    def test_identical_samples_shrink_monotonically_to_zero(self, value, count):
        stats = GainStats()
        stats.add(value)
        stats.add(value)
        previous = stats.half_width()
        for _ in range(count):
            stats.add(value)
            width = stats.half_width()
            assert width <= previous + 1e-12
            previous = width
        assert previous == pytest.approx(0.0, abs=1e-9)

    @given(samples=st.lists(st.floats(-1e4, 1e4), min_size=1, max_size=50))
    @settings(max_examples=80, deadline=None)
    def test_upper_bound_always_covers_the_mean(self, samples):
        # interval() floors the low end at 0 (a negative average gain is
        # treated as "no gain" by the conservative side), so for
        # negative means only the upper bound is a true CLT bound: it
        # must still sit at or above the sample mean.
        stats = self._stats(samples)
        _lo, hi = stats.interval()
        assert hi >= stats.mean - 1e-9

    @given(samples=st.lists(st.floats(0, 1e4), min_size=1, max_size=50))
    @settings(max_examples=80, deadline=None)
    def test_interval_contains_nonnegative_means(self, samples):
        # With the zero floor inactive (mean >= 0 and low <= mean by
        # construction) the interval is a genuine two-sided cover.
        stats = self._stats(samples)
        lo, hi = stats.interval()
        assert lo <= stats.mean + 1e-9
        assert hi >= stats.mean - 1e-9
        assert lo >= 0.0

    def test_degenerate_zero_samples_is_maximally_conservative(self):
        stats = GainStats()
        assert math.isinf(stats.half_width())
        lo, hi = stats.interval()
        assert lo == 0.0
        assert math.isinf(hi)

    @given(value=st.floats(-1e4, 1e4))
    @settings(max_examples=80, deadline=None)
    def test_degenerate_single_sample_uses_the_conservative_bound(self, value):
        # One sample has no measurable dispersion: the half-width falls
        # back to half the observed magnitude rather than claiming a
        # zero-width (overconfident) interval.
        stats = GainStats()
        stats.add(value)
        assert stats.half_width() == pytest.approx(0.5 * abs(value))
        _lo, hi = stats.interval()
        assert hi == pytest.approx(value + 0.5 * abs(value))
