"""Unit and property tests for the knapsack solvers."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.knapsack import KnapsackItem, solve_greedy, solve_knapsack


def _items(triples):
    return [KnapsackItem(key=i, size=s, value=v) for i, (s, v) in enumerate(triples)]


class TestExactSolver:
    def test_empty(self):
        assert solve_knapsack([], 10.0) == ([], 0.0)

    def test_zero_capacity(self):
        items = _items([(1.0, 5.0)])
        assert solve_knapsack(items, 0.0) == ([], 0.0)

    def test_takes_everything_that_fits(self):
        items = _items([(2.0, 5.0), (3.0, 4.0)])
        selected, value = solve_knapsack(items, 10.0)
        assert len(selected) == 2
        assert value == 9.0

    def test_classic_tradeoff(self):
        # One big valuable item vs two smaller ones worth more together.
        items = _items([(10.0, 60.0), (6.0, 35.0), (5.0, 30.0)])
        selected, value = solve_knapsack(items, 11.0)
        assert value == 65.0
        assert {it.size for it in selected} == {6.0, 5.0}

    def test_negative_value_never_selected(self):
        items = _items([(1.0, -5.0), (1.0, 3.0)])
        selected, value = solve_knapsack(items, 10.0)
        assert len(selected) == 1
        assert value == 3.0

    def test_oversized_item_excluded(self):
        items = _items([(100.0, 1000.0), (1.0, 1.0)])
        selected, _ = solve_knapsack(items, 10.0)
        assert [it.size for it in selected] == [1.0]

    def test_selection_fits_capacity(self):
        items = _items([(3.3, 10.0), (3.3, 10.0), (3.5, 10.0)])
        selected, _ = solve_knapsack(items, 7.0)
        assert sum(it.size for it in selected) <= 7.0

    @given(
        sizes=st.lists(st.floats(0.1, 20.0), min_size=1, max_size=10),
        values=st.lists(st.floats(0.1, 100.0), min_size=10, max_size=10),
        capacity=st.floats(1.0, 40.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_brute_force(self, sizes, values, capacity):
        items = [
            KnapsackItem(key=i, size=s, value=v)
            for i, (s, v) in enumerate(zip(sizes, values))
        ]
        selected, value = solve_knapsack(items, capacity, resolution=4096)
        assert sum(it.size for it in selected) <= capacity + 1e-9

        best = 0.0
        for r in range(len(items) + 1):
            for combo in itertools.combinations(items, r):
                if sum(it.size for it in combo) <= capacity:
                    best = max(best, sum(it.value for it in combo))
        # Small pools use the exact branch-and-bound solver.
        assert value == pytest.approx(best)


class TestWarmStart:
    """The incumbent seed must never change the returned optimum."""

    def test_incumbent_equal_to_optimum_still_returns_it(self):
        items = _items([(10.0, 60.0), (6.0, 35.0), (5.0, 30.0)])
        cold_selected, cold_value = solve_knapsack(items, 11.0)
        warm_selected, warm_value = solve_knapsack(
            items, 11.0, incumbent_value=cold_value
        )
        assert warm_value == cold_value == 65.0
        assert [it.key for it in warm_selected] == [
            it.key for it in cold_selected
        ]

    def test_incumbent_at_the_optimum_keeps_the_optimum_reachable(self):
        # The tightest valid lower bound (the optimum itself, which the
        # epoch warm-start produces whenever forecasts are stable): the
        # epsilon back-off keeps the optimal leaf from pruning itself.
        items = _items([(2.0, 5.0), (3.0, 4.0)])
        selected, value = solve_knapsack(items, 10.0, incumbent_value=9.0)
        assert value == 9.0
        assert len(selected) == 2

    def test_zero_and_negative_incumbents_are_inert(self):
        items = _items([(2.0, 5.0), (3.0, 4.0)])
        for incumbent in (0.0, -7.5):
            selected, value = solve_knapsack(
                items, 10.0, incumbent_value=incumbent
            )
            assert value == 9.0
            assert len(selected) == 2

    @given(
        sizes=st.lists(st.floats(0.1, 20.0), min_size=1, max_size=10),
        values=st.lists(st.floats(0.1, 100.0), min_size=10, max_size=10),
        capacity=st.floats(1.0, 40.0),
        fraction=st.floats(0.0, 1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_warm_equals_cold_for_any_valid_incumbent(
        self, sizes, values, capacity, fraction
    ):
        items = [
            KnapsackItem(key=i, size=s, value=v)
            for i, (s, v) in enumerate(zip(sizes, values))
        ]
        cold_selected, cold_value = solve_knapsack(items, capacity)
        # Any value in [0, optimum] is a valid lower bound -- the epoch
        # warm-start's feasibility check guarantees it lands here.
        incumbent = cold_value * fraction
        warm_selected, warm_value = solve_knapsack(
            items, capacity, incumbent_value=incumbent
        )
        assert warm_value == cold_value
        assert [it.key for it in warm_selected] == [
            it.key for it in cold_selected
        ]


class TestGridFallback:
    def test_large_pool_uses_grid_and_stays_feasible(self):
        # 30 items exceeds MAX_EXACT_ITEMS → DP grid path.
        items = _items([(1.0 + (i % 7) * 0.37, 1.0 + i) for i in range(30)])
        selected, value = solve_knapsack(items, 20.0)
        assert sum(it.size for it in selected) <= 20.0 + 1e-9
        assert value == pytest.approx(sum(it.value for it in selected))

    def test_grid_close_to_greedy_or_better(self):
        items = _items([(0.5 + (i % 5), 10.0 + (i * 3) % 17) for i in range(40)])
        _, grid_value = solve_knapsack(items, 25.0)
        _, greedy_value = solve_greedy(items, 25.0)
        # The DP should not be much worse than greedy (usually better).
        assert grid_value >= greedy_value * 0.95


class TestGreedy:
    def test_greedy_never_beats_exact(self):
        items = _items([(10.0, 60.0), (6.0, 35.0), (5.0, 30.0)])
        _, greedy_value = solve_greedy(items, 11.0)
        _, exact_value = solve_knapsack(items, 11.0)
        assert greedy_value <= exact_value + 1e-9

    def test_greedy_density_order(self):
        items = _items([(10.0, 10.0), (1.0, 5.0)])
        selected, _ = solve_greedy(items, 10.0)
        # Density picks the small dense item first, then the big one no
        # longer fits.
        assert [it.size for it in selected] == [1.0]

    def test_greedy_respects_capacity(self):
        items = _items([(4.0, 10.0), (4.0, 9.0), (4.0, 8.0)])
        selected, _ = solve_greedy(items, 8.0)
        assert sum(it.size for it in selected) <= 8.0
