"""Tests for adaptive forecast-window tuning (§6.2 future work)."""

import pytest

from repro.core.window_tuner import ForecastWindowTuner
from repro.engine.datatypes import DataType
from repro.engine.index import IndexDef


def _ix(name="c", table="t"):
    return IndexDef(table, name, DataType.INT)


class TestController:
    def test_starts_at_base(self):
        tuner = ForecastWindowTuner(base_window=12)
        assert tuner.window == 12

    def test_rejects_bad_base(self):
        with pytest.raises(ValueError):
            ForecastWindowTuner(base_window=0)

    def test_short_tenure_drop_grows_window(self):
        tuner = ForecastWindowTuner(base_window=12, short_tenure_epochs=4)
        ix = _ix()
        tuner.observe_epoch(materialized=[ix], dropped=[])
        tuner.observe_epoch(materialized=[], dropped=[ix])  # tenure 1 < 4
        assert tuner.window > 12
        assert tuner.short_tenure_drops == 1

    def test_long_tenure_drop_does_not_grow(self):
        tuner = ForecastWindowTuner(base_window=12, short_tenure_epochs=3)
        ix = _ix()
        tuner.observe_epoch(materialized=[ix], dropped=[])
        for _ in range(5):
            tuner.observe_epoch(materialized=[], dropped=[])
        tuner.observe_epoch(materialized=[], dropped=[ix])  # tenure 6 >= 3
        assert tuner.window == 12
        assert tuner.short_tenure_drops == 0

    def test_untracked_drop_ignored(self):
        tuner = ForecastWindowTuner(base_window=12)
        tuner.observe_epoch(materialized=[], dropped=[_ix()])
        assert tuner.window == 12

    def test_window_clamped_at_max(self):
        tuner = ForecastWindowTuner(base_window=10, max_factor=2.0)
        ix = _ix()
        for _ in range(20):
            tuner.observe_epoch(materialized=[ix], dropped=[])
            tuner.observe_epoch(materialized=[], dropped=[ix])
        assert tuner.window <= 20

    def test_window_relaxes_back_to_base(self):
        tuner = ForecastWindowTuner(base_window=8, growth=2.0)
        ix = _ix()
        tuner.observe_epoch(materialized=[ix], dropped=[])
        tuner.observe_epoch(materialized=[], dropped=[ix])
        grown = tuner.window
        assert grown > 8
        for _ in range(100):
            tuner.observe_epoch(materialized=[], dropped=[])
        assert tuner.window == 8

    def test_rebuild_resets_tenure_clock(self):
        tuner = ForecastWindowTuner(base_window=12, short_tenure_epochs=3)
        ix = _ix()
        tuner.observe_epoch(materialized=[ix], dropped=[])
        for _ in range(10):
            tuner.observe_epoch(materialized=[], dropped=[])
        # Drop + rebuild in the same epoch: old tenure is long (no growth),
        # and the new build re-registers the index.
        tuner.observe_epoch(materialized=[ix], dropped=[ix])
        assert tuner.short_tenure_drops == 0
        tuner.observe_epoch(materialized=[], dropped=[ix])  # now short
        assert tuner.short_tenure_drops == 1


class TestIntegration:
    def test_colt_respects_flag(self, small_catalog):
        from repro.core import ColtConfig, ColtTuner

        config = ColtConfig(
            storage_budget_pages=5000.0, adaptive_forecast_window=True
        )
        tuner = ColtTuner(small_catalog, config)
        assert tuner.self_organizer._window_tuner is not None

        config_off = ColtConfig(storage_budget_pages=5000.0)
        tuner_off = ColtTuner(
            __import__("copy").deepcopy(small_catalog), config_off
        )
        assert tuner_off.self_organizer._window_tuner is None

    def test_adaptive_run_completes(self, small_catalog):
        import random

        from repro.core import ColtConfig, ColtTuner
        from repro.sql.ast import (
            ColumnExpr,
            CompareOp,
            ComparisonPredicate,
            Query,
            SelectItem,
        )

        config = ColtConfig(
            storage_budget_pages=5000.0,
            adaptive_forecast_window=True,
            min_history_epochs=2,
        )
        tuner = ColtTuner(small_catalog, config)
        rng = random.Random(0)
        for _ in range(80):
            q = Query(
                tables=["events"],
                select=[SelectItem(expr=ColumnExpr("amount", "events"))],
                filters=[
                    ComparisonPredicate(
                        ColumnExpr("user_id", "events"),
                        CompareOp.EQ,
                        rng.randint(1, 10_000),
                    )
                ],
            )
            tuner.process_query(q)
        assert tuner.materialized_set  # still tunes correctly
