"""Unit tests for on-line query clustering."""

from repro.core.clustering import ClusterStore, cluster_key
from repro.sql.binder import bind_query
from repro.sql.parser import parse_query


def _q(catalog, sql):
    return bind_query(parse_query(sql), catalog)


class TestClusterKey:
    def test_same_shape_same_cluster(self, small_catalog):
        a = _q(small_catalog, "select amount from events where user_id = 5")
        b = _q(small_catalog, "select day from events where user_id = 77")
        assert cluster_key(a, small_catalog) == cluster_key(b, small_catalog)

    def test_different_attribute_different_cluster(self, small_catalog):
        a = _q(small_catalog, "select amount from events where user_id = 5")
        b = _q(small_catalog, "select amount from events where day = 8000")
        assert cluster_key(a, small_catalog) != cluster_key(b, small_catalog)

    def test_selectivity_class_splits(self, small_catalog):
        # eq on user_id → 1e-4 (selective); wide between → non-selective.
        a = _q(small_catalog, "select amount from events where user_id = 5")
        b = _q(small_catalog, "select amount from events where user_id between 1 and 9000")
        assert cluster_key(a, small_catalog) != cluster_key(b, small_catalog)

    def test_join_separates(self, small_catalog):
        a = _q(
            small_catalog,
            "select * from events, users where events.user_id = users.user_id",
        )
        b = _q(small_catalog, "select * from events, users")
        assert cluster_key(a, small_catalog) != cluster_key(b, small_catalog)

    def test_predicate_order_irrelevant(self, small_catalog):
        a = _q(small_catalog, "select * from events where user_id = 5 and day = 8000")
        b = _q(small_catalog, "select * from events where day = 8100 and user_id = 9")
        assert cluster_key(a, small_catalog) == cluster_key(b, small_catalog)


class TestClusterStore:
    def test_assign_and_count(self, small_catalog):
        store = ClusterStore(small_catalog, history_epochs=4)
        q = _q(small_catalog, "select amount from events where user_id = 5")
        c1 = store.assign(q)
        c2 = store.assign(q)
        assert c1 is c2
        assert c1.count() == 2
        assert len(store) == 1

    def test_window_rolls(self, small_catalog):
        store = ClusterStore(small_catalog, history_epochs=2)
        q = _q(small_catalog, "select amount from events where user_id = 5")
        store.assign(q)
        store.roll_epoch()
        store.assign(q)
        store.assign(q)
        cluster = store.assign(q)
        assert cluster.count() == 4  # 1 windowed + 3 current
        store.roll_epoch()
        store.roll_epoch()
        # After 2 more epochs only the (1-epoch old, size-3) entry remains
        # within the 2-epoch window... then it ages out next roll.
        assert cluster.count() == 3

    def test_eviction_of_idle_clusters(self, small_catalog):
        store = ClusterStore(small_catalog, history_epochs=2)
        q = _q(small_catalog, "select amount from events where user_id = 5")
        cluster = store.assign(q)
        cid = cluster.cluster_id
        for _ in range(3):
            store.roll_epoch()
        assert len(store) == 0
        assert not store.has_id(cid)

    def test_ids_not_reused(self, small_catalog):
        store = ClusterStore(small_catalog, history_epochs=1)
        q1 = _q(small_catalog, "select amount from events where user_id = 5")
        c1 = store.assign(q1)
        store.roll_epoch()
        store.roll_epoch()  # evict
        c2 = store.assign(q1)
        assert c2.cluster_id != c1.cluster_id

    def test_total_count(self, small_catalog):
        store = ClusterStore(small_catalog, history_epochs=4)
        store.assign(_q(small_catalog, "select amount from events where user_id = 5"))
        store.assign(_q(small_catalog, "select amount from events where day = 8000"))
        assert store.total_count() == 2


class TestRelevance:
    def test_selection_attribute_relevant(self, small_catalog):
        store = ClusterStore(small_catalog, history_epochs=4)
        cluster = store.assign(
            _q(small_catalog, "select amount from events where user_id = 5")
        )
        assert cluster.is_relevant(small_catalog.index_for("events", "user_id"))
        assert cluster.is_relevant(small_catalog.index_for("events", "day"))  # same table
        assert not cluster.is_relevant(small_catalog.index_for("users", "score"))

    def test_referenced_columns(self, small_catalog):
        store = ClusterStore(small_catalog, history_epochs=4)
        cluster = store.assign(
            _q(
                small_catalog,
                "select * from events, users "
                "where events.user_id = users.user_id and events.day = 8000",
            )
        )
        refs = cluster.referenced_columns()
        assert ("events", "day") in refs
        assert ("events", "user_id") in refs
        assert ("users", "user_id") in refs
        assert ("users", "score") not in refs
