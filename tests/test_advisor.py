"""Tests for the one-shot index advisor."""

import pytest

from repro.advisor import advise
from repro.sql.binder import BindError, bind_query
from repro.sql.parser import ParseError, parse_query


class TestAdvise:
    def test_recommends_obvious_index(self, small_catalog):
        report = advise(
            small_catalog,
            ["select amount from events where user_id = 5"] * 3,
            budget_pages=50_000.0,
        )
        names = [r.index.name for r in report.recommendations]
        assert "ix_events_user_id" in names
        assert report.workload_cost_after < report.workload_cost_before
        assert report.improvement_percent > 50.0

    def test_empty_recommendation_when_nothing_helps(self, small_catalog):
        report = advise(
            small_catalog,
            ["select amount from events where amount between 0 and 900"],
            budget_pages=50_000.0,
        )
        assert report.recommendations == []
        assert "no indexes recommended" in report.to_text()

    def test_budget_zero(self, small_catalog):
        report = advise(
            small_catalog,
            ["select amount from events where user_id = 5"],
            budget_pages=0.0,
        )
        assert report.recommendations == []
        assert report.improvement_percent == 0.0

    def test_accepts_bound_queries(self, small_catalog):
        q = bind_query(
            parse_query("select amount from events where user_id = 5"),
            small_catalog,
        )
        report = advise(small_catalog, [q, q], budget_pages=50_000.0)
        assert report.recommendations

    def test_marginal_gains_positive_and_sorted(self, small_catalog):
        report = advise(
            small_catalog,
            [
                "select amount from events where user_id = 5",
                "select amount from events where day between 8000 and 8010",
                "select score from users where user_id = 3",
            ],
            budget_pages=50_000.0,
        )
        gains = [r.marginal_gain for r in report.recommendations]
        assert gains == sorted(gains, reverse=True)
        assert all(g > 0 for g in gains)
        assert all(r.queries_helped >= 1 for r in report.recommendations)

    def test_report_renders(self, small_catalog):
        report = advise(
            small_catalog,
            ["select amount from events where user_id = 5"],
            budget_pages=50_000.0,
        )
        text = report.to_text()
        assert "ix_events_user_id" in text
        assert "%" in text

    def test_bad_sql_raises(self, small_catalog):
        with pytest.raises(ParseError):
            advise(small_catalog, ["selectt nope"], budget_pages=100.0)
        with pytest.raises(BindError):
            advise(
                small_catalog,
                ["select zzz from events"],
                budget_pages=100.0,
            )

    def test_greedy_strategy(self, small_catalog):
        report = advise(
            small_catalog,
            ["select amount from events where user_id = 5"],
            budget_pages=50_000.0,
            strategy="greedy",
        )
        assert report.recommendations


class TestAdviseCli:
    def test_cli_advise(self, capsys):
        from repro.cli import main

        sql = (
            "select l_orderkey from lineitem_1 "
            "where l_shipdate between '1994-01-01' and '1994-02-01'"
        )
        assert main(["advise", sql]) == 0
        out = capsys.readouterr().out
        assert "ix_lineitem_1_l_shipdate" in out

    def test_cli_advise_bad_sql(self, capsys):
        from repro.cli import main

        assert main(["advise", "selectt nope"]) == 2  # EXIT_PARSE
        assert "error:" in capsys.readouterr().err
