"""Unit tests for the SQL parser."""

import pytest

from repro.sql.ast import (
    AggFunc,
    Aggregate,
    BetweenPredicate,
    ColumnExpr,
    CompareOp,
    ComparisonPredicate,
    InPredicate,
)
from repro.sql.parser import ParseError, parse_query


class TestSelectList:
    def test_star(self):
        q = parse_query("select * from t")
        assert q.select == []
        assert q.tables == ["t"]

    def test_columns(self):
        q = parse_query("select a, t.b from t")
        assert q.select[0].expr == ColumnExpr("a")
        assert q.select[1].expr == ColumnExpr("b", "t")

    def test_alias(self):
        q = parse_query("select a as x from t")
        assert q.select[0].alias == "x"

    def test_count_star(self):
        q = parse_query("select count(*) from t")
        agg = q.select[0].expr
        assert isinstance(agg, Aggregate)
        assert agg.func is AggFunc.COUNT
        assert agg.arg is None

    def test_aggregates(self):
        q = parse_query("select sum(a), avg(b), min(a), max(a), count(a) from t")
        funcs = [item.expr.func for item in q.select]
        assert funcs == [AggFunc.SUM, AggFunc.AVG, AggFunc.MIN, AggFunc.MAX, AggFunc.COUNT]

    def test_sum_star_rejected(self):
        with pytest.raises(ParseError):
            parse_query("select sum(*) from t")


class TestWhere:
    def test_comparison(self):
        q = parse_query("select * from t where a >= 10")
        pred = q.filters[0]
        assert isinstance(pred, ComparisonPredicate)
        assert pred.op is CompareOp.GE
        assert pred.value == 10

    def test_literal_on_left_flipped(self):
        q = parse_query("select * from t where 10 < a")
        pred = q.filters[0]
        assert pred.op is CompareOp.GT
        assert pred.column == ColumnExpr("a")

    def test_between(self):
        q = parse_query("select * from t where a between 1 and 5")
        pred = q.filters[0]
        assert isinstance(pred, BetweenPredicate)
        assert (pred.low, pred.high) == (1, 5)

    def test_in_list(self):
        q = parse_query("select * from t where a in (1, 2, 3)")
        pred = q.filters[0]
        assert isinstance(pred, InPredicate)
        assert pred.values == (1, 2, 3)

    def test_string_literal(self):
        q = parse_query("select * from t where name = 'bob'")
        assert q.filters[0].value == "bob"

    def test_float_literal(self):
        q = parse_query("select * from t where a < 1.5")
        assert q.filters[0].value == 1.5

    def test_conjunction(self):
        q = parse_query("select * from t where a = 1 and b = 2 and c = 3")
        assert len(q.filters) == 3

    def test_not_equal_variants(self):
        for text in ("<>", "!="):
            q = parse_query(f"select * from t where a {text} 5")
            assert q.filters[0].op is CompareOp.NE


class TestJoins:
    def test_equi_join(self):
        q = parse_query("select * from t, s where t.a = s.a")
        assert len(q.joins) == 1
        assert q.joins[0].left == ColumnExpr("a", "t")
        assert q.joins[0].right == ColumnExpr("a", "s")

    def test_join_plus_filter(self):
        q = parse_query("select * from t, s where t.a = s.a and t.b > 5")
        assert len(q.joins) == 1
        assert len(q.filters) == 1

    def test_non_equi_join_rejected(self):
        with pytest.raises(ParseError):
            parse_query("select * from t, s where t.a < s.a")

    def test_self_join_rejected(self):
        with pytest.raises(ParseError):
            parse_query("select * from t, t")


class TestTrailingClauses:
    def test_group_by(self):
        q = parse_query("select a, count(*) from t group by a")
        assert q.group_by == [ColumnExpr("a")]

    def test_order_by_directions(self):
        q = parse_query("select a, b from t order by a desc, b asc")
        assert q.order_by[0].descending
        assert not q.order_by[1].descending

    def test_order_by_default_asc(self):
        q = parse_query("select a from t order by a")
        assert not q.order_by[0].descending

    def test_limit(self):
        q = parse_query("select a from t limit 10")
        assert q.limit == 10

    def test_everything_together(self):
        q = parse_query(
            "select t.a, count(*) from t, s "
            "where t.a = s.a and t.b between 1 and 2 "
            "group by t.a order by t.a limit 3"
        )
        assert q.limit == 3
        assert q.group_by and q.order_by and q.joins and q.filters

    def test_text_preserved(self):
        sql = "select a from t"
        assert parse_query(sql).text == sql


class TestErrors:
    @pytest.mark.parametrize(
        "sql",
        [
            "select",
            "select from t",
            "select a from",
            "select a from t where",
            "select a from t where a",
            "select a from t where a =",
            "select a from t limit x",
            "select a from t extra",
            "select a from t where a in ()",
        ],
    )
    def test_malformed(self, sql):
        with pytest.raises(ParseError):
            parse_query(sql)


class TestQueryHelpers:
    def test_filters_on(self):
        q = parse_query("select * from t, s where t.a > 1 and s.b > 2 and t.a = s.a")
        # Unbound columns carry explicit tables here.
        assert len(q.filters_on("t")) == 1
        assert len(q.filters_on("s")) == 1

    def test_selection_and_join_columns(self):
        q = parse_query("select * from t, s where t.a > 1 and t.b = s.b")
        assert [str(c) for c in q.selection_columns()] == ["t.a"]
        assert len(q.join_columns()) == 2

    def test_is_aggregate(self):
        assert parse_query("select count(*) from t").is_aggregate()
        assert not parse_query("select a from t").is_aggregate()
