"""Unit tests for semantic analysis (binding)."""

import pytest

from repro.sql.ast import ColumnExpr
from repro.sql.binder import BindError, bind_query
from repro.sql.parser import parse_query


class TestResolution:
    def test_unqualified_column_resolved(self, small_catalog):
        q = bind_query(parse_query("select amount from events"), small_catalog)
        assert q.select[0].expr == ColumnExpr("amount", "events")

    def test_qualified_column_kept(self, small_catalog):
        q = bind_query(
            parse_query("select events.amount from events"), small_catalog
        )
        assert q.select[0].expr.table == "events"

    def test_unknown_table(self, small_catalog):
        with pytest.raises(BindError):
            bind_query(parse_query("select a from missing"), small_catalog)

    def test_unknown_column(self, small_catalog):
        with pytest.raises(BindError):
            bind_query(parse_query("select zzz from events"), small_catalog)

    def test_ambiguous_column(self, small_catalog):
        with pytest.raises(BindError):
            bind_query(
                parse_query("select user_id from events, users"), small_catalog
            )

    def test_qualified_disambiguates(self, small_catalog):
        q = bind_query(
            parse_query(
                "select events.user_id from events, users "
                "where events.user_id = users.user_id"
            ),
            small_catalog,
        )
        assert q.select[0].expr.table == "events"

    def test_table_not_in_from(self, small_catalog):
        with pytest.raises(BindError):
            bind_query(parse_query("select users.score from events"), small_catalog)


class TestTypeChecking:
    def test_date_literal_coerced(self, small_catalog):
        q = bind_query(
            parse_query("select day from events where day >= '1992-06-01'"),
            small_catalog,
        )
        assert isinstance(q.filters[0].value, int)

    def test_int_filter_on_float_column(self, small_catalog):
        q = bind_query(
            parse_query("select amount from events where amount > 5"),
            small_catalog,
        )
        assert isinstance(q.filters[0].value, float)

    def test_string_on_numeric_rejected(self, small_catalog):
        with pytest.raises(BindError):
            bind_query(
                parse_query("select amount from events where amount > 'abc'"),
                small_catalog,
            )

    def test_between_coerces_both_bounds(self, small_catalog):
        q = bind_query(
            parse_query(
                "select day from events where day between '1992-01-01' and '1993-01-01'"
            ),
            small_catalog,
        )
        pred = q.filters[0]
        assert isinstance(pred.low, int) and isinstance(pred.high, int)

    def test_in_values_coerced(self, small_catalog):
        q = bind_query(
            parse_query("select user_id from events where user_id in (1, 2.0)"),
            small_catalog,
        )
        assert q.filters[0].values == (1, 2)

    def test_join_type_compatibility(self, small_catalog):
        with pytest.raises(BindError):
            bind_query(
                parse_query("select * from events, users where kind = users.user_id"),
                small_catalog,
            )

    def test_join_same_table_rejected(self, small_catalog):
        # Construct manually: parser can't produce it, the binder guards anyway.
        from repro.sql.ast import JoinPredicate, Query

        q = Query(
            tables=["events"],
            joins=[
                JoinPredicate(
                    ColumnExpr("user_id", "events"), ColumnExpr("amount", "events")
                )
            ],
        )
        with pytest.raises(BindError):
            bind_query(q, small_catalog)


class TestShape:
    def test_binding_does_not_mutate_original(self, small_catalog):
        original = parse_query("select amount from events where amount > 5")
        bind_query(original, small_catalog)
        assert original.select[0].expr.table is None

    def test_group_and_order_bound(self, small_catalog):
        q = bind_query(
            parse_query(
                "select kind, count(*) from events group by kind order by kind"
            ),
            small_catalog,
        )
        assert q.group_by[0].table == "events"
        assert q.order_by[0].column.table == "events"
