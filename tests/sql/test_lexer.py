"""Unit tests for the SQL tokenizer."""

import pytest

from repro.sql.lexer import LexError, Token, TokenType, tokenize


def _types(sql):
    return [t.type for t in tokenize(sql)]


def _values(sql):
    return [t.value for t in tokenize(sql)][:-1]  # drop EOF


class TestBasics:
    def test_keywords_case_insensitive(self):
        assert _values("SELECT select SeLeCt") == ["select", "select", "select"]

    def test_identifiers_lowercased(self):
        tokens = tokenize("MyTable")
        assert tokens[0].type is TokenType.IDENT
        assert tokens[0].value == "mytable"

    def test_eof_always_last(self):
        assert tokenize("")[-1].type is TokenType.EOF
        assert tokenize("select")[-1].type is TokenType.EOF

    def test_full_query(self):
        sql = "select a, b from t where a >= 10 and b = 'x' order by a desc limit 5"
        values = _values(sql)
        assert "select" in values
        assert ">=" in values
        assert "x" in values


class TestNumbers:
    def test_integer(self):
        tok = tokenize("123")[0]
        assert tok.type is TokenType.NUMBER
        assert tok.value == "123"

    def test_decimal(self):
        assert tokenize("1.5")[0].value == "1.5"

    def test_negative(self):
        assert tokenize("-42")[0].value == "-42"

    def test_qualified_name_not_decimal(self):
        values = _values("t.a")
        assert values == ["t", ".", "a"]

    def test_number_then_dot_ident(self):
        # "1.x" lexes as number 1, dot, ident x (not a malformed decimal).
        assert _values("1.x") == ["1", ".", "x"]


class TestStrings:
    def test_quoted_string(self):
        tok = tokenize("'hello world'")[0]
        assert tok.type is TokenType.STRING
        assert tok.value == "hello world"

    def test_empty_string(self):
        assert tokenize("''")[0].value == ""

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize("'oops")


class TestOperators:
    @pytest.mark.parametrize("op", ["=", "<", ">", "<=", ">=", "<>", "!="])
    def test_each_operator(self, op):
        tok = tokenize(op)[0]
        assert tok.type is TokenType.OP
        assert tok.value == op

    def test_two_char_ops_not_split(self):
        assert _values("a<=b") == ["a", "<=", "b"]


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(LexError):
            tokenize("select @")

    def test_position_reported(self):
        try:
            tokenize("ab #")
        except LexError as exc:
            assert "3" in str(exc)
        else:  # pragma: no cover
            pytest.fail("expected LexError")


class TestTokenDataclass:
    def test_frozen(self):
        tok = Token(TokenType.IDENT, "x", 0)
        with pytest.raises(Exception):
            tok.value = "y"  # type: ignore[misc]
