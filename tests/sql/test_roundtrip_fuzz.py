"""Seeded fuzz harness for the render → parse → bind round trip.

Random bound query ASTs are generated straight from the catalog schema
(tables, columns, dtype-correct literals), rendered to SQL text, then
pushed back through the parser and binder.  The re-bound query must be
structurally equivalent to the original -- same tables, projections,
filters (with identical literal values, including DATE ordinals), joins,
grouping, ordering, and limit.

Literal generation stays inside the renderer's exact-round-trip domain:
floats are rounded to two decimals (``repr`` never falls back to
scientific notation there) and strings carry no quote characters (the
renderer does not escape ``'``).
"""

import datetime
import random
import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.datatypes import DataType, date_to_ordinal
from repro.sql.ast import (
    Aggregate,
    AggFunc,
    BetweenPredicate,
    ColumnExpr,
    CompareOp,
    ComparisonPredicate,
    InPredicate,
    JoinPredicate,
    OrderItem,
    Query,
    SelectItem,
)
from repro.sql.binder import bind_query
from repro.sql.parser import parse_query
from repro.sql.render import render_query
from repro.workload.datagen import build_catalog

# Equi-join pairs with matching key domains in the TPC-H-style schema.
JOIN_PAIRS = [
    (("orders_1", "o_custkey"), ("customer_1", "c_custkey")),
    (("lineitem_1", "l_orderkey"), ("orders_1", "o_orderkey")),
    (("supplier_1", "s_nationkey"), ("nation_1", "n_nationkey")),
    (("partsupp_1", "ps_partkey"), ("part_1", "p_partkey")),
]

RANGE_TYPES = (DataType.INT, DataType.FLOAT, DataType.DATE)


@pytest.fixture(scope="module")
def catalog():
    return build_catalog(instances=1)


def _literal(rng, dtype):
    if dtype is DataType.INT:
        return rng.randint(-9_999, 9_999)
    if dtype is DataType.FLOAT:
        # Two decimals: repr() renders positionally, never scientific.
        return round(rng.uniform(0.01, 9_999.99), 2)
    if dtype is DataType.DATE:
        day = datetime.date(1992, 1, 1) + datetime.timedelta(
            days=rng.randint(0, 2_500)
        )
        return date_to_ordinal(day)
    # TEXT: no quote characters (the renderer does not escape them).
    return "".join(
        rng.choice(string.ascii_lowercase + string.digits)
        for _ in range(rng.randint(1, 8))
    )


def _filter(rng, table, column):
    col = ColumnExpr(column.name, table.name)
    kind = rng.random()
    if kind < 0.5 or column.dtype not in RANGE_TYPES:
        if column.dtype in RANGE_TYPES:
            op = rng.choice(list(CompareOp))
        else:
            op = rng.choice([CompareOp.EQ, CompareOp.NE])
        return ComparisonPredicate(col, op, _literal(rng, column.dtype))
    if kind < 0.75:
        lo, hi = sorted(
            (_literal(rng, column.dtype), _literal(rng, column.dtype))
        )
        return BetweenPredicate(col, lo, hi)
    values = {_literal(rng, column.dtype) for _ in range(rng.randint(2, 4))}
    return InPredicate(col, tuple(sorted(values, key=repr)))


def _table_filters(rng, table, max_filters=3):
    columns = rng.sample(
        list(table.columns), k=rng.randint(0, min(max_filters, len(table.columns)))
    )
    return [_filter(rng, table, column) for column in columns]


def _decorate(rng, query, tables):
    """Attach random projections, ordering, grouping, and a limit."""
    table = rng.choice(tables)
    columns = list(table.columns)
    roll = rng.random()
    if roll < 0.2:
        group = ColumnExpr(rng.choice(columns).name, table.name)
        query.select = [
            SelectItem(group),
            SelectItem(Aggregate(AggFunc.COUNT, None)),
        ]
        query.group_by = [group]
    elif roll < 0.6:
        picked = rng.sample(columns, k=rng.randint(1, min(3, len(columns))))
        query.select = [
            SelectItem(ColumnExpr(c.name, table.name)) for c in picked
        ]
    # else: SELECT * (empty select list).
    if not query.group_by and rng.random() < 0.4:
        keys = rng.sample(columns, k=rng.randint(1, 2))
        query.order_by = [
            OrderItem(ColumnExpr(c.name, table.name), rng.random() < 0.5)
            for c in keys
        ]
    if rng.random() < 0.4:
        query.limit = rng.randint(1, 500)
    return query


def _random_query(rng, catalog):
    if rng.random() < 0.3:
        (lt, lc), (rt, rc) = rng.choice(JOIN_PAIRS)
        left, right = catalog.table(lt), catalog.table(rt)
        query = Query(
            tables=[lt, rt],
            filters=_table_filters(rng, left, 2) + _table_filters(rng, right, 2),
            joins=[JoinPredicate(ColumnExpr(lc, lt), ColumnExpr(rc, rt))],
        )
        return _decorate(rng, query, [left, right])
    table = rng.choice(list(catalog.tables()))
    query = Query(tables=[table.name], filters=_table_filters(rng, table))
    return _decorate(rng, query, [table])


def _normalize(query):
    """Structural signature, orientation- and order-insensitive."""
    return (
        tuple(sorted(query.tables)),
        tuple(str(i.expr) for i in query.select),
        tuple(sorted(str(f) for f in query.filters)),
        tuple(sorted(str(j.normalized()) for j in query.joins)),
        tuple(str(c) for c in query.group_by),
        tuple((str(o.column), o.descending) for o in query.order_by),
        query.limit,
    )


def _roundtrip(query, catalog):
    rendered = render_query(query, catalog)
    reparsed = bind_query(parse_query(rendered), catalog)
    assert _normalize(reparsed) == _normalize(query), rendered
    # A second pass must be a fixed point: render(bind(parse(render(q))))
    # produces the same text, so the loop cannot drift.
    assert render_query(reparsed, catalog) == rendered


class TestRoundTripFuzz:
    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=120, deadline=None)
    def test_random_ast_survives_roundtrip(self, seed, catalog):
        rng = random.Random(seed)
        _roundtrip(_random_query(rng, catalog), catalog)

    def test_seeded_sweep(self, catalog):
        # A deterministic deep sweep independent of hypothesis' budget.
        rng = random.Random(1234)
        for _ in range(300):
            _roundtrip(_random_query(rng, catalog), catalog)

    def test_all_predicate_shapes_are_generated(self, catalog):
        rng = random.Random(7)
        shapes = set()
        for _ in range(300):
            for f in _random_query(rng, catalog).filters:
                shapes.add(type(f).__name__)
        assert shapes == {
            "ComparisonPredicate",
            "BetweenPredicate",
            "InPredicate",
        }
