"""Round-trip tests pinning the renderer and parser against each other."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sql.binder import bind_query
from repro.sql.parser import parse_query
from repro.sql.render import render_query
from repro.workload.datagen import build_catalog
from repro.workload.experiments import phase_distributions, stable_distribution


class TestRendering:
    def test_simple_query(self):
        q = parse_query("select a, b from t where a = 5 order by b desc limit 3")
        text = render_query(q)
        assert text == "select a, b from t where a = 5 order by b desc limit 3"

    def test_star(self):
        assert render_query(parse_query("select * from t")) == "select * from t"

    def test_aggregates_and_grouping(self):
        sql = "select kind, count(*) from t group by kind"
        q = parse_query(sql)
        assert render_query(q) == sql

    def test_joins(self):
        sql = "select * from t, s where t.a = s.a and t.b > 5"
        rendered = render_query(parse_query(sql))
        assert "t.a = s.a" in rendered
        assert "t.b > 5" in rendered

    def test_in_and_between(self):
        sql = "select a from t where a in (1, 2) and b between 3 and 4"
        rendered = render_query(parse_query(sql))
        assert "in (1, 2)" in rendered
        assert "between 3 and 4" in rendered

    def test_string_literals_quoted(self):
        rendered = render_query(parse_query("select a from t where b = 'x y'"))
        assert "'x y'" in rendered

    def test_alias(self):
        rendered = render_query(parse_query("select a as z from t"))
        assert "a as z" in rendered

    def test_dates_pretty_with_catalog(self):
        catalog = build_catalog(instances=1)
        q = bind_query(
            parse_query(
                "select l_orderkey from lineitem_1 "
                "where l_shipdate between '1994-01-01' and '1994-02-01'"
            ),
            catalog,
        )
        rendered = render_query(q, catalog)
        assert "'1994-01-01'" in rendered
        assert "'1994-02-01'" in rendered


class TestRoundTrip:
    def _normalize(self, query):
        """Structural signature ignoring the original text."""
        return (
            tuple(query.tables),
            tuple(str(i.expr) for i in query.select),
            tuple(sorted(str(f) for f in query.filters)),
            tuple(sorted(str(j) for j in query.joins)),
            tuple(str(c) for c in query.group_by),
            tuple((str(o.column), o.descending) for o in query.order_by),
            query.limit,
        )

    @pytest.mark.parametrize(
        "sql",
        [
            "select * from t",
            "select a from t where a = 5",
            "select a, b from t where a between 1 and 2 and b <> 'x'",
            "select count(*) from t where a in (1, 2, 3)",
            "select a, sum(b) from t group by a order by a limit 10",
            "select * from t, s where t.a = s.a and 5 < t.b",
        ],
    )
    def test_fixed_cases(self, sql):
        once = parse_query(sql)
        twice = parse_query(render_query(once))
        assert self._normalize(once) == self._normalize(twice)

    def test_workload_queries_roundtrip(self):
        """Every generated workload query survives render → parse → bind."""
        catalog = build_catalog()
        rng = random.Random(0)
        for dist in [stable_distribution(), *phase_distributions()]:
            for _ in range(25):
                query = dist.sample(catalog, rng)
                rendered = render_query(query, catalog)
                reparsed = bind_query(parse_query(rendered), catalog)
                assert self._normalize(query) == self._normalize(reparsed)

    @given(
        value=st.integers(-10_000, 10_000),
        low=st.integers(-100, 100),
        width=st.integers(0, 100),
        limit=st.integers(1, 50),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_roundtrip(self, value, low, width, limit):
        sql = (
            f"select a from t where a = {value} "
            f"and b between {low} and {low + width} limit {limit}"
        )
        once = parse_query(sql)
        twice = parse_query(render_query(once))
        assert self._normalize(once) == self._normalize(twice)
