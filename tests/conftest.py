"""Shared fixtures: a small two-table catalog and a physical store.

The ``small_catalog`` models a fact table (``events``, 1M statistical
rows) and a dimension (``users``, 10k rows) -- large enough that index
versus sequential scan decisions are non-trivial, small enough that
every test stays fast.  ``small_store`` carries physical data (5k/500
rows) with paper-scale statistics, mirroring how the TPC-H workload
layers statistics over sampled data.
"""

from __future__ import annotations

import random

import pytest

from repro.engine.catalog import Catalog, ColumnDef, TableDef
from repro.engine.datatypes import DataType
from repro.engine.stats import ColumnStats
from repro.engine.storage import PhysicalStore


@pytest.fixture
def small_catalog() -> Catalog:
    catalog = Catalog()
    catalog.add_table(
        TableDef(
            "events",
            [
                ColumnDef("user_id", DataType.INT),
                ColumnDef("amount", DataType.FLOAT),
                ColumnDef("day", DataType.DATE),
                ColumnDef("kind", DataType.TEXT),
            ],
            row_count=1_000_000,
        )
    )
    catalog.add_table(
        TableDef(
            "users",
            [
                ColumnDef("user_id", DataType.INT),
                ColumnDef("score", DataType.INT),
                ColumnDef("name", DataType.TEXT, indexable=False),
            ],
            row_count=10_000,
        )
    )
    catalog.set_stats(
        "events",
        "user_id",
        ColumnStats(n_distinct=10_000, min_value=1, max_value=10_000),
    )
    catalog.set_stats(
        "events",
        "amount",
        ColumnStats(n_distinct=1_000_000, min_value=0.0, max_value=1000.0),
    )
    catalog.set_stats(
        "events",
        "day",
        ColumnStats(n_distinct=2000, min_value=8000, max_value=9999, correlation=0.9),
    )
    catalog.set_stats(
        "events",
        "kind",
        ColumnStats(n_distinct=4, min_value="click", max_value="view"),
    )
    catalog.set_stats(
        "users",
        "user_id",
        ColumnStats(n_distinct=10_000, min_value=1, max_value=10_000, correlation=1.0),
    )
    catalog.set_stats(
        "users",
        "score",
        ColumnStats(n_distinct=100, min_value=0, max_value=99),
    )
    return catalog


@pytest.fixture
def small_store() -> PhysicalStore:
    rng = random.Random(1234)
    catalog = Catalog()
    catalog.add_table(
        TableDef(
            "events",
            [
                ColumnDef("user_id", DataType.INT),
                ColumnDef("amount", DataType.FLOAT),
                ColumnDef("day", DataType.DATE),
                ColumnDef("kind", DataType.TEXT),
            ],
        )
    )
    catalog.add_table(
        TableDef(
            "users",
            [
                ColumnDef("user_id", DataType.INT),
                ColumnDef("score", DataType.INT),
            ],
        )
    )
    store = PhysicalStore(catalog)
    events = store.create_heap("events")
    kinds = ("click", "view", "buy", "scroll")
    for i in range(5000):
        events.insert(
            (
                rng.randint(1, 500),
                rng.uniform(0.0, 1000.0),
                8000 + (i // 3),
                rng.choice(kinds),
            )
        )
    users = store.create_heap("users")
    for u in range(1, 501):
        users.insert((u, rng.randint(0, 99)))
    store.analyze("events")
    store.analyze("users")
    return store
