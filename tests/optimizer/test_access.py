"""Unit tests for access path selection."""

import pytest

from repro.optimizer.access import (
    best_access_path,
    crude_index_delta_cost,
    index_paths,
    parameterized_index_path,
    seq_scan_path,
    _extract_sargable,
)
from repro.optimizer.plan import IndexScanNode, SeqScanNode
from repro.sql.ast import (
    BetweenPredicate,
    ColumnExpr,
    CompareOp,
    ComparisonPredicate,
    InPredicate,
)


def _col(column, table="events"):
    return ColumnExpr(column, table)


def _eq(column, value, table="events"):
    return ComparisonPredicate(_col(column, table), CompareOp.EQ, value)


class TestSargable:
    def test_eq_preferred(self):
        preds = [
            _eq("user_id", 5),
            BetweenPredicate(_col("user_id"), 0, 100),
        ]
        sarg = _extract_sargable("user_id", preds)
        assert sarg.lookup_value == 5
        assert sarg.num_lookups == 1

    def test_in_over_range(self):
        preds = [
            InPredicate(_col("user_id"), (1, 2)),
            BetweenPredicate(_col("user_id"), 0, 100),
        ]
        sarg = _extract_sargable("user_id", preds)
        assert sarg.in_values == (1, 2)
        assert sarg.num_lookups == 2

    def test_range_bounds_tightened(self):
        preds = [
            ComparisonPredicate(_col("user_id"), CompareOp.GE, 10),
            ComparisonPredicate(_col("user_id"), CompareOp.GT, 20),
            ComparisonPredicate(_col("user_id"), CompareOp.LE, 90),
        ]
        sarg = _extract_sargable("user_id", preds)
        assert sarg.range_low == 20
        assert not sarg.low_inclusive
        assert sarg.range_high == 90
        assert sarg.high_inclusive

    def test_between_contributes_bounds(self):
        sarg = _extract_sargable(
            "user_id", [BetweenPredicate(_col("user_id"), 5, 15)]
        )
        assert (sarg.range_low, sarg.range_high) == (5, 15)

    def test_irrelevant_column(self):
        assert _extract_sargable("amount", [_eq("user_id", 5)]) is None

    def test_ne_not_sargable(self):
        preds = [ComparisonPredicate(_col("user_id"), CompareOp.NE, 5)]
        assert _extract_sargable("user_id", preds) is None


class TestPathChoice:
    def test_seq_scan_cost_components(self, small_catalog):
        path = seq_scan_path(small_catalog, "events", [])
        assert isinstance(path, SeqScanNode)
        assert path.rows == pytest.approx(1_000_000)
        assert path.cost > 0

    def test_selective_eq_prefers_index(self, small_catalog):
        index = small_catalog.index_for("events", "user_id")
        pred = _eq("user_id", 5)
        path = best_access_path(
            small_catalog, "events", [pred], frozenset([index])
        )
        assert isinstance(path, IndexScanNode)
        assert path.index == index

    def test_unselective_range_prefers_seq(self, small_catalog):
        index = small_catalog.index_for("events", "amount")
        pred = BetweenPredicate(_col("amount"), 0.0, 900.0)
        path = best_access_path(
            small_catalog, "events", [pred], frozenset([index])
        )
        assert isinstance(path, SeqScanNode)

    def test_no_config_means_seq(self, small_catalog):
        path = best_access_path(
            small_catalog, "events", [_eq("user_id", 5)], frozenset()
        )
        assert isinstance(path, SeqScanNode)

    def test_correlated_range_prefers_index(self, small_catalog):
        # 'day' is declared 0.9-correlated: a 1% range scan should win.
        index = small_catalog.index_for("events", "day")
        pred = BetweenPredicate(_col("day"), 8000, 8019)
        path = best_access_path(
            small_catalog, "events", [pred], frozenset([index])
        )
        assert isinstance(path, IndexScanNode)

    def test_residual_filters_kept(self, small_catalog):
        index = small_catalog.index_for("events", "user_id")
        other = BetweenPredicate(_col("amount"), 0.0, 10.0)
        paths = index_paths(
            small_catalog, "events", [_eq("user_id", 5), other], frozenset([index])
        )
        assert len(paths) == 1
        assert other in paths[0].residual

    def test_index_on_other_table_ignored(self, small_catalog):
        index = small_catalog.index_for("users", "user_id")
        paths = index_paths(
            small_catalog, "events", [_eq("user_id", 5)], frozenset([index])
        )
        assert paths == []

    def test_rows_estimate_uses_all_filters(self, small_catalog):
        index = small_catalog.index_for("events", "user_id")
        paths = index_paths(
            small_catalog,
            "events",
            [_eq("user_id", 5), BetweenPredicate(_col("amount"), 0.0, 10.0)],
            frozenset([index]),
        )
        # eq 1e-4 * range 1e-2 over 1M rows ≈ 1
        assert paths[0].rows == pytest.approx(1.0, abs=2.0)


class TestParameterized:
    def test_parameterized_path(self, small_catalog):
        index = small_catalog.index_for("users", "user_id")
        path = parameterized_index_path(
            small_catalog,
            "users",
            [],
            "user_id",
            _col("user_id", "events"),
            frozenset([index]),
        )
        assert path is not None
        assert path.parameterized_by == _col("user_id", "events")
        # Per-lookup output: 10k rows / 10k distinct = 1 row.
        assert path.rows == pytest.approx(1.0, abs=0.1)

    def test_no_index_no_path(self, small_catalog):
        assert (
            parameterized_index_path(
                small_catalog, "users", [], "user_id", _col("user_id", "events"), frozenset()
            )
            is None
        )


class TestCrudeDelta:
    def test_positive_for_selective(self, small_catalog):
        index = small_catalog.index_for("events", "user_id")
        gain = crude_index_delta_cost(small_catalog, index, [_eq("user_id", 5)])
        assert gain > 0

    def test_zero_for_inapplicable(self, small_catalog):
        index = small_catalog.index_for("events", "user_id")
        pred = BetweenPredicate(_col("amount"), 0.0, 10.0)
        assert crude_index_delta_cost(small_catalog, index, [pred]) == 0.0

    def test_zero_when_index_loses(self, small_catalog):
        index = small_catalog.index_for("events", "amount")
        pred = BetweenPredicate(_col("amount"), 0.0, 900.0)
        assert crude_index_delta_cost(small_catalog, index, [pred]) == 0.0

    def test_never_negative(self, small_catalog):
        index = small_catalog.index_for("events", "amount")
        for width in (0.1, 1.0, 10.0, 100.0, 1000.0):
            pred = BetweenPredicate(_col("amount"), 0.0, width)
            assert crude_index_delta_cost(small_catalog, index, [pred]) >= 0.0
