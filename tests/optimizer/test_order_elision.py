"""Tests for ORDER BY elision via index-provided order."""

import pytest

from repro.executor import execute
from repro.optimizer.optimizer import Optimizer, PlanCache
from repro.optimizer.plan import IndexScanNode, SortNode
from repro.sql.binder import bind_query
from repro.sql.parser import parse_query


def _plan(catalog, sql, config):
    q = bind_query(parse_query(sql), catalog)
    return Optimizer(catalog).optimize(q, config=config, cache=PlanCache()).plan


def _has(plan, node_type):
    stack = [plan]
    while stack:
        node = stack.pop()
        if isinstance(node, node_type):
            return True
        stack.extend(node.children())
    return False


class TestElision:
    def test_sort_elided_for_matching_index_scan(self, small_catalog):
        index = small_catalog.index_for("events", "day")
        plan = _plan(
            small_catalog,
            "select day from events where day between 8000 and 8019 order by day",
            frozenset([index]),
        )
        assert _has(plan, IndexScanNode)
        assert not _has(plan, SortNode)

    def test_sort_kept_without_index(self, small_catalog):
        plan = _plan(
            small_catalog,
            "select day from events where day between 8000 and 8019 order by day",
            frozenset(),
        )
        assert _has(plan, SortNode)

    def test_sort_kept_for_descending(self, small_catalog):
        index = small_catalog.index_for("events", "day")
        plan = _plan(
            small_catalog,
            "select day from events where day between 8000 and 8019 order by day desc",
            frozenset([index]),
        )
        if _has(plan, IndexScanNode):
            assert _has(plan, SortNode)

    def test_sort_kept_for_other_column(self, small_catalog):
        index = small_catalog.index_for("events", "day")
        plan = _plan(
            small_catalog,
            "select day, amount from events where day between 8000 and 8019 "
            "order by amount",
            frozenset([index]),
        )
        assert _has(plan, SortNode)

    def test_sort_kept_for_multi_key(self, small_catalog):
        index = small_catalog.index_for("events", "day")
        plan = _plan(
            small_catalog,
            "select day, amount from events where day between 8000 and 8019 "
            "order by day, amount",
            frozenset([index]),
        )
        assert _has(plan, SortNode)

    def test_elision_lowers_cost(self, small_catalog):
        index = small_catalog.index_for("events", "day")
        catalog = small_catalog
        with_order = _plan(
            catalog,
            "select day from events where day between 8000 and 8019 order by day",
            frozenset([index]),
        )
        without_order = _plan(
            catalog,
            "select day from events where day between 8000 and 8019",
            frozenset([index]),
        )
        # The ORDER BY comes for free when the index provides it.
        assert with_order.cost == pytest.approx(without_order.cost)


class TestElidedExecutionOrder:
    def test_results_actually_sorted(self, small_store):
        catalog = small_store.catalog
        index = catalog.index_for("events", "day")
        small_store.build_index(index)
        plan = _plan(
            catalog,
            "select day from events where day between 8100 and 8400 order by day",
            frozenset([index]),
        )
        assert not _has(plan, SortNode)
        rows = execute(plan, small_store)
        values = [r[0] for r in rows]
        assert values == sorted(values)
        assert values, "range should match rows in the fixture data"
