"""Unit tests for selectivity estimation."""

import pytest

from repro.optimizer.selectivity import (
    combined_selectivity,
    join_selectivity,
    operator_count,
    predicate_selectivity,
)
from repro.sql.ast import (
    BetweenPredicate,
    ColumnExpr,
    CompareOp,
    ComparisonPredicate,
    InPredicate,
    JoinPredicate,
)


def _col(column="user_id", table="events"):
    return ColumnExpr(column, table)


class TestComparisons:
    def test_eq(self, small_catalog):
        pred = ComparisonPredicate(_col(), CompareOp.EQ, 500)
        assert predicate_selectivity(small_catalog, pred) == pytest.approx(1e-4)

    def test_ne_near_one(self, small_catalog):
        pred = ComparisonPredicate(_col(), CompareOp.NE, 500)
        sel = predicate_selectivity(small_catalog, pred)
        assert 0.99 < sel < 1.0

    def test_lt_half_domain(self, small_catalog):
        pred = ComparisonPredicate(_col(), CompareOp.LT, 5000)
        assert predicate_selectivity(small_catalog, pred) == pytest.approx(0.5, abs=0.01)

    def test_gt_complementish(self, small_catalog):
        lt = predicate_selectivity(
            small_catalog, ComparisonPredicate(_col(), CompareOp.LE, 5000)
        )
        gt = predicate_selectivity(
            small_catalog, ComparisonPredicate(_col(), CompareOp.GT, 5000)
        )
        assert lt + gt == pytest.approx(1.0, abs=0.01)

    def test_out_of_range(self, small_catalog):
        pred = ComparisonPredicate(_col(), CompareOp.GT, 10_001)
        assert predicate_selectivity(small_catalog, pred) < 0.01


class TestOtherPredicates:
    def test_between(self, small_catalog):
        pred = BetweenPredicate(_col(), 1, 1000)
        assert predicate_selectivity(small_catalog, pred) == pytest.approx(0.1, abs=0.01)

    def test_between_empty(self, small_catalog):
        pred = BetweenPredicate(_col(), 100, 50)
        assert predicate_selectivity(small_catalog, pred) <= 1e-6

    def test_in_scales_with_list(self, small_catalog):
        one = predicate_selectivity(small_catalog, InPredicate(_col(), (1,)))
        three = predicate_selectivity(small_catalog, InPredicate(_col(), (1, 2, 3)))
        assert three == pytest.approx(3 * one)

    def test_in_dedups(self, small_catalog):
        pred = InPredicate(_col(), (1, 1, 1))
        assert predicate_selectivity(small_catalog, pred) == pytest.approx(1e-4)

    def test_unsupported_type(self, small_catalog):
        with pytest.raises(TypeError):
            predicate_selectivity(small_catalog, object())


class TestCombined:
    def test_independence(self, small_catalog):
        preds = [
            ComparisonPredicate(_col(), CompareOp.LT, 5000),
            BetweenPredicate(_col("amount"), 0.0, 100.0),
        ]
        combined = combined_selectivity(small_catalog, preds)
        product = predicate_selectivity(small_catalog, preds[0]) * (
            predicate_selectivity(small_catalog, preds[1])
        )
        assert combined == pytest.approx(product)

    def test_empty_is_one(self, small_catalog):
        assert combined_selectivity(small_catalog, []) == 1.0


class TestJoin:
    def test_join_selectivity(self, small_catalog):
        join = JoinPredicate(_col("user_id", "events"), _col("user_id", "users"))
        assert join_selectivity(small_catalog, join) == pytest.approx(1e-4)


class TestOperatorCount:
    def test_counts(self):
        preds = [
            ComparisonPredicate(_col(), CompareOp.EQ, 1),
            BetweenPredicate(_col(), 1, 2),
            InPredicate(_col(), (1, 2, 3)),
        ]
        assert operator_count(preds) == 1 + 2 + 3
