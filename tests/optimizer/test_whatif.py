"""Unit tests for the what-if optimizer interface."""

import pytest

from repro.optimizer.optimizer import Optimizer
from repro.optimizer.whatif import WhatIfOptimizer
from repro.sql.binder import bind_query
from repro.sql.parser import parse_query


def _query(catalog, sql):
    return bind_query(parse_query(sql), catalog)


class TestForwardWhatIf:
    def test_gain_matches_direct_optimization(self, small_catalog):
        catalog = small_catalog
        q = _query(catalog, "select amount from events where user_id = 5")
        optimizer = Optimizer(catalog)
        whatif = WhatIfOptimizer(optimizer)
        ix = catalog.index_for("events", "user_id")

        session = whatif.begin_query(q)
        gains = whatif.what_if_optimize(session, [ix])

        base = optimizer.optimize(q, config=frozenset()).cost
        with_ix = optimizer.optimize(q, config=frozenset([ix])).cost
        assert gains[ix] == pytest.approx(base - with_ix)
        assert gains[ix] > 0

    def test_useless_index_zero_gain(self, small_catalog):
        catalog = small_catalog
        q = _query(catalog, "select amount from events where user_id = 5")
        whatif = WhatIfOptimizer(Optimizer(catalog))
        session = whatif.begin_query(q)
        gains = whatif.what_if_optimize(
            session, [catalog.index_for("users", "score")]
        )
        assert gains[catalog.index_for("users", "score")] == pytest.approx(0.0)

    def test_call_count_per_probed_index(self, small_catalog):
        catalog = small_catalog
        q = _query(catalog, "select amount from events where user_id = 5")
        whatif = WhatIfOptimizer(Optimizer(catalog))
        session = whatif.begin_query(q)
        whatif.what_if_optimize(
            session,
            [catalog.index_for("events", "user_id"), catalog.index_for("events", "day")],
        )
        assert whatif.call_count == 2
        assert len(whatif.probed_indexes) == 2


class TestReverseWhatIf:
    def test_materialized_index_reverse_gain(self, small_catalog):
        catalog = small_catalog
        ix = catalog.index_for("events", "user_id")
        catalog.materialize_index(ix)
        q = _query(catalog, "select amount from events where user_id = 5")
        whatif = WhatIfOptimizer(Optimizer(catalog))
        session = whatif.begin_query(q)
        gains = whatif.what_if_optimize(session, [ix])
        # Removing the index would make the query slower: positive gain.
        assert gains[ix] > 0

    def test_forward_and_reverse_agree(self, small_catalog):
        """The same index yields the same QueryGain whether probed as
        hypothetical (forward) or as materialized (reverse)."""
        catalog = small_catalog
        ix = catalog.index_for("events", "user_id")
        q = _query(catalog, "select amount from events where user_id = 5")
        whatif = WhatIfOptimizer(Optimizer(catalog))

        session = whatif.begin_query(q)
        forward = whatif.what_if_optimize(session, [ix])[ix]

        catalog.materialize_index(ix)
        session2 = whatif.begin_query(q)
        reverse = whatif.what_if_optimize(session2, [ix])[ix]
        assert forward == pytest.approx(reverse)


class TestSessionCaching:
    def test_repeated_probes_cheap(self, small_catalog):
        catalog = small_catalog
        q = _query(catalog, "select amount from events where user_id = 5")
        optimizer = Optimizer(catalog)
        whatif = WhatIfOptimizer(optimizer)
        session = whatif.begin_query(q)
        ix = catalog.index_for("events", "user_id")
        whatif.what_if_optimize(session, [ix])
        count = optimizer.optimize_count
        whatif.what_if_optimize(session, [ix])
        # Second probe answered entirely from the session's plan cache.
        assert optimizer.optimize_count == count

    def test_gains_for_convenience(self, small_catalog):
        catalog = small_catalog
        q = _query(catalog, "select amount from events where user_id = 5")
        whatif = WhatIfOptimizer(Optimizer(catalog))
        gains = whatif.gains_for(q, [catalog.index_for("events", "user_id")])
        assert len(gains) == 1


class TestExplicitMaterializedSet:
    def test_explicit_m_overrides_catalog(self, small_catalog):
        catalog = small_catalog
        ix_user = catalog.index_for("events", "user_id")
        q = _query(catalog, "select amount from events where user_id = 5")
        whatif = WhatIfOptimizer(Optimizer(catalog))
        session = whatif.begin_query(q)
        gains = whatif.what_if_optimize(
            session, [ix_user], materialized=frozenset([ix_user])
        )
        # Treated as materialized → reverse what-if → still positive.
        assert gains[ix_user] > 0
