"""Unit tests for the optimizer facade and plan caching."""

import pytest

from repro.optimizer.optimizer import Optimizer, PlanCache
from repro.optimizer.plan import (
    AggregateNode,
    LimitNode,
    ProjectNode,
    SeqScanNode,
    SortNode,
    explain,
    plan_signature,
)
from repro.sql.binder import bind_query
from repro.sql.parser import parse_query


def _optimize(catalog, sql, config=None, cache=None):
    q = bind_query(parse_query(sql), catalog)
    return Optimizer(catalog).optimize(q, config=config, cache=cache)


class TestFinalization:
    def test_projection_on_top(self, small_catalog):
        res = _optimize(small_catalog, "select amount from events")
        assert isinstance(res.plan, ProjectNode)

    def test_star_has_no_projection(self, small_catalog):
        res = _optimize(small_catalog, "select * from events")
        assert isinstance(res.plan, SeqScanNode)

    def test_aggregate_node(self, small_catalog):
        res = _optimize(small_catalog, "select kind, count(*) from events group by kind")
        assert isinstance(res.plan, AggregateNode)
        assert res.plan.rows == pytest.approx(4.0)  # 4 distinct kinds

    def test_global_aggregate_one_row(self, small_catalog):
        res = _optimize(small_catalog, "select count(*) from events")
        assert res.plan.rows == 1.0

    def test_sort_above_aggregate(self, small_catalog):
        res = _optimize(
            small_catalog,
            "select kind, count(*) from events group by kind order by kind",
        )
        assert isinstance(res.plan, SortNode)
        assert isinstance(res.plan.child, AggregateNode)

    def test_limit_truncates_rows(self, small_catalog):
        res = _optimize(small_catalog, "select amount from events limit 7")
        limits = [n for n in _walk(res.plan) if isinstance(n, LimitNode)]
        assert limits and limits[0].rows == 7.0

    def test_cost_monotone_up_the_tree(self, small_catalog):
        res = _optimize(
            small_catalog,
            "select kind, count(*) from events where amount > 1 group by kind order by kind",
        )
        for node in _walk(res.plan):
            for child in node.children():
                assert node.cost >= child.cost - 1e-9


class TestConfigSensitivity:
    def test_index_lowers_cost(self, small_catalog):
        index = small_catalog.index_for("events", "user_id")
        sql = "select amount from events where user_id = 5"
        without = _optimize(small_catalog, sql, config=frozenset())
        with_ix = _optimize(small_catalog, sql, config=frozenset([index]))
        assert with_ix.cost < without.cost

    def test_default_config_uses_materialized(self, small_catalog):
        index = small_catalog.index_for("events", "user_id")
        small_catalog.materialize_index(index)
        res = _optimize(small_catalog, "select amount from events where user_id = 5")
        assert index in res.plan.indexes_used()

    def test_irrelevant_index_no_effect(self, small_catalog):
        sql = "select amount from events where user_id = 5"
        base = _optimize(small_catalog, sql, config=frozenset())
        other = _optimize(
            small_catalog,
            sql,
            config=frozenset([small_catalog.index_for("events", "day")]),
        )
        assert base.cost == other.cost
        assert plan_signature(base.plan) == plan_signature(other.plan)


class TestPlanCache:
    def test_cache_hit_on_repeat(self, small_catalog):
        catalog = small_catalog
        q = bind_query(
            parse_query("select amount from events where user_id = 5"), catalog
        )
        optimizer = Optimizer(catalog)
        cache = PlanCache()
        optimizer.optimize(q, config=frozenset(), cache=cache)
        count = optimizer.optimize_count
        optimizer.optimize(q, config=frozenset(), cache=cache)
        assert optimizer.optimize_count == count  # pure cache hit
        assert cache.hits == 1

    def test_cache_distinguishes_relevant_configs(self, small_catalog):
        catalog = small_catalog
        q = bind_query(
            parse_query("select amount from events where user_id = 5"), catalog
        )
        optimizer = Optimizer(catalog)
        cache = PlanCache()
        ix = catalog.index_for("events", "user_id")
        a = optimizer.optimize(q, config=frozenset(), cache=cache)
        b = optimizer.optimize(q, config=frozenset([ix]), cache=cache)
        assert a.cost != b.cost

    def test_cache_collapses_irrelevant_config_changes(self, small_catalog):
        catalog = small_catalog
        q = bind_query(
            parse_query("select amount from events where user_id = 5"), catalog
        )
        optimizer = Optimizer(catalog)
        cache = PlanCache()
        optimizer.optimize(q, config=frozenset(), cache=cache)
        # An index on an unreferenced column maps to the same relevant
        # config; the cached plan is reused without re-optimizing.
        count = optimizer.optimize_count
        optimizer.optimize(
            q,
            config=frozenset([catalog.index_for("events", "day")]),
            cache=cache,
        )
        assert optimizer.optimize_count == count


class TestExplain:
    def test_explain_renders_tree(self, small_catalog):
        res = _optimize(
            small_catalog,
            "select kind, count(*) from events where user_id = 5 group by kind",
        )
        text = explain(res.plan)
        assert "HashAggregate" in text
        assert "SeqScan(events)" in text
        assert "rows=" in text and "cost=" in text


def _walk(plan):
    stack = [plan]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(node.children())
