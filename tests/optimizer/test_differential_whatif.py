"""Differential test: hypothetical vs. really-materialized index costs.

COLT's whole accounting rests on what-if probes being *truthful*: the
cost the optimizer predicts for a hypothetical index must equal the
cost it produces once that index actually exists.  This drives 200
seeded random single-table queries through both paths and demands exact
agreement.
"""

import random

import pytest

from repro.optimizer.optimizer import Optimizer
from repro.optimizer.whatif import WhatIfOptimizer
from repro.workload.datagen import build_catalog
from repro.workload.querygen import PredicateSpec, QueryTemplate, build_query

#: (table, column) pool spanning sizes from 2k to 1.2M rows, numeric
#: and equality-friendly columns, across all four TPC-H instances.
COLUMNS = [
    ("orders_1", "o_custkey"),
    ("orders_3", "o_totalprice"),
    ("lineitem_2", "l_quantity"),
    ("lineitem_4", "l_extendedprice"),
    ("customer_3", "c_acctbal"),
    ("customer_1", "c_custkey"),
    ("part_4", "p_size"),
    ("part_2", "p_retailprice"),
    ("partsupp_1", "ps_availqty"),
    ("supplier_2", "s_acctbal"),
]

N_QUERIES = 200


def _cases():
    """200 seeded (query, index) cases over random columns/selectivities."""
    catalog = build_catalog()
    rng = random.Random(20260805)
    cases = []
    for _ in range(N_QUERIES):
        table, column = COLUMNS[rng.randrange(len(COLUMNS))]
        low = rng.uniform(0.0005, 0.05)
        template = QueryTemplate(
            predicates=(
                PredicateSpec(table, column, selectivity=(low, low * 4)),
            )
        )
        query = build_query(template, catalog, rng)
        cases.append((query, catalog.index_for(table, column)))
    return catalog, cases


class TestWhatIfMatchesMaterialization:
    def test_hypothetical_cost_equals_real_cost(self):
        catalog, cases = _cases()
        for query, index in cases:
            whatif = WhatIfOptimizer(Optimizer(catalog))
            session = whatif.begin_query(query)
            gain = whatif.what_if_optimize(session, [index])[index]
            hypothetical = session.base.cost - gain

            catalog.materialize_index(index)
            try:
                real = Optimizer(catalog).optimize(query).cost
            finally:
                catalog.drop_index(index)

            assert hypothetical == pytest.approx(real, rel=1e-9), (
                f"what-if disagrees with materialization for {index}"
            )

    def test_config_override_equals_materialization(self):
        # The lower-level path the what-if optimizer builds on: passing
        # config= explicitly must match the catalog-backed default.
        catalog, cases = _cases()
        for query, index in cases[:50]:
            override = Optimizer(catalog).optimize(
                query, config=frozenset({index})
            ).cost
            catalog.materialize_index(index)
            try:
                real = Optimizer(catalog).optimize(query).cost
            finally:
                catalog.drop_index(index)
            assert override == pytest.approx(real, rel=1e-9)

    def test_gains_are_nonnegative_for_single_table_probes(self):
        catalog, cases = _cases()
        whatif = WhatIfOptimizer(Optimizer(catalog))
        for query, index in cases[:50]:
            session = whatif.begin_query(query)
            gain = whatif.what_if_optimize(session, [index])[index]
            assert gain >= -1e-9
