"""Unit tests for plan-tree utilities."""

from repro.engine.datatypes import DataType
from repro.engine.index import IndexDef
from repro.optimizer.plan import (
    HashJoinNode,
    IndexScanNode,
    NestedLoopNode,
    PlanNode,
    ProjectNode,
    SeqScanNode,
    explain,
    plan_signature,
)


def _seq(table):
    return SeqScanNode(rows=10.0, cost=5.0, table=table, filters=[])


def _ix(table, column, **kwargs):
    return IndexScanNode(
        rows=2.0,
        cost=1.0,
        table=table,
        index=IndexDef(table, column, DataType.INT),
        **kwargs,
    )


class TestTraversals:
    def test_tables_collects_all_scans(self):
        join = HashJoinNode(
            rows=1.0, cost=1.0, probe=_seq("a"), build=_ix("b", "x"), joins=[]
        )
        assert join.tables() == {"a", "b"}

    def test_indexes_used_deep(self):
        inner = NestedLoopNode(
            rows=1.0, cost=1.0, outer=_ix("a", "x"), inner=_ix("b", "y"), joins=[]
        )
        top = ProjectNode(rows=1.0, cost=1.0, child=inner, output=[])
        names = {ix.name for ix in top.indexes_used()}
        assert names == {"ix_a_x", "ix_b_y"}

    def test_composite_index_in_used_set(self):
        composite = IndexDef(
            "a", "x", DataType.INT, extra_columns=(("y", DataType.INT),)
        )
        node = IndexScanNode(rows=1.0, cost=1.0, table="a", index=composite)
        assert composite in node.indexes_used()

    def test_base_node_has_no_children(self):
        assert PlanNode(rows=1.0, cost=1.0).children() == []


class TestLabels:
    def test_index_scan_labels_by_kind(self):
        assert "eq" in _ix("a", "x", lookup_value=5).label()
        assert "in" in _ix("a", "x", in_values=(1, 2)).label()
        assert "range" in _ix("a", "x", range_low=1).label()
        from repro.sql.ast import ColumnExpr

        assert "param" in _ix("a", "x", parameterized_by=ColumnExpr("k", "b")).label()

    def test_seq_scan_label(self):
        assert _seq("users").label() == "SeqScan(users)"


class TestSignatures:
    def test_signature_distinguishes_structures(self):
        a = HashJoinNode(rows=1, cost=1, probe=_seq("a"), build=_seq("b"), joins=[])
        b = HashJoinNode(rows=1, cost=1, probe=_seq("b"), build=_seq("a"), joins=[])
        assert plan_signature(a) != plan_signature(b) or str(a) == str(b)

    def test_signature_hashable(self):
        node = ProjectNode(rows=1, cost=1, child=_seq("a"), output=[])
        assert {plan_signature(node)}  # usable as a set element

    def test_explain_indents_children(self):
        join = HashJoinNode(
            rows=1.0, cost=1.0, probe=_seq("a"), build=_seq("b"), joins=[]
        )
        text = explain(join)
        lines = text.splitlines()
        assert lines[0].startswith("HashJoin")
        assert lines[1].startswith("  ")
