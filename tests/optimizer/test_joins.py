"""Unit tests for join enumeration."""

import pytest

from repro.optimizer.joins import JoinPlanner, uses_parameterized_inner, _subsets_of_size
from repro.optimizer.optimizer import Optimizer
from repro.optimizer.plan import HashJoinNode, NestedLoopNode
from repro.sql.binder import bind_query
from repro.sql.parser import parse_query


def _plan(small_catalog, sql, config=frozenset()):
    q = bind_query(parse_query(sql), small_catalog)
    optimizer = Optimizer(small_catalog)
    return optimizer.optimize(q, config=config).plan, q


class TestSubsetEnumeration:
    def test_counts(self):
        import math

        for n in range(1, 6):
            for k in range(1, n + 1):
                subsets = list(_subsets_of_size(n, k))
                assert len(subsets) == math.comb(n, k)
                assert all(bin(s).count("1") == k for s in subsets)


class TestJoinChoice:
    def test_hash_join_default(self, small_catalog):
        plan, _ = _plan(
            small_catalog,
            "select * from events, users where events.user_id = users.user_id",
        )
        joins = [n for n in _walk(plan) if isinstance(n, HashJoinNode)]
        assert joins, "expected a hash join"
        # Build side should be the smaller relation (users).
        assert joins[0].build.tables() == {"users"}

    def test_inlj_with_selective_outer(self, small_catalog):
        # amount is effectively unique: the outer side yields ~1 row, so
        # one index lookup into users beats building a hash table.
        config = frozenset(
            [
                small_catalog.index_for("users", "user_id"),
                small_catalog.index_for("events", "amount"),
            ]
        )
        plan, _ = _plan(
            small_catalog,
            "select * from events, users "
            "where events.user_id = users.user_id and events.amount = 3.5",
            config,
        )
        assert uses_parameterized_inner(plan)

    def test_join_cardinality(self, small_catalog):
        plan, _ = _plan(
            small_catalog,
            "select * from events, users where events.user_id = users.user_id",
        )
        # 1M x 10k / 10k distinct = ~1M rows.
        root = next(n for n in _walk(plan) if isinstance(n, (HashJoinNode, NestedLoopNode)))
        assert root.rows == pytest.approx(1_000_000, rel=0.1)

    def test_single_table_no_join_node(self, small_catalog):
        plan, _ = _plan(small_catalog, "select * from events where user_id = 1")
        assert not [n for n in _walk(plan) if isinstance(n, (HashJoinNode, NestedLoopNode))]

    def test_disconnected_cartesian_fallback(self, small_catalog):
        plan, _ = _plan(small_catalog, "select * from events, users")
        nl = [n for n in _walk(plan) if isinstance(n, NestedLoopNode)]
        assert nl, "cartesian product should use a nested loop"
        assert nl[0].rows == pytest.approx(1_000_000 * 10_000, rel=0.01)


class TestPlannerDirect:
    def test_planner_requires_tables(self, small_catalog):
        from repro.sql.ast import Query

        planner = JoinPlanner(small_catalog, Query(tables=[]), frozenset())
        with pytest.raises(ValueError):
            planner.plan({})


def _walk(plan):
    stack = [plan]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(node.children())
