"""Tests for the ``--engine`` flag across run/timeline/fleet-run."""

import pytest

from repro.cli import ENGINE_CHOICES, EXIT_ERROR, build_parser, main

FAST_RUN = ["run", "--queries", "30", "--seed", "2"]


class TestParsing:
    def test_engine_choices(self):
        assert ENGINE_CHOICES == ("colt", "bandit", "offline", "continuous")

    @pytest.mark.parametrize("command", ["run", "timeline", "fleet-run"])
    def test_engine_defaults_to_colt(self, command):
        assert build_parser().parse_args([command]).engine == "colt"

    @pytest.mark.parametrize("command", ["run", "timeline", "fleet-run"])
    def test_unknown_engine_rejected_by_argparse(self, command):
        with pytest.raises(SystemExit):
            build_parser().parse_args([command, "--engine", "quantum"])

    def test_run_accepts_all_four_engines(self):
        for engine in ENGINE_CHOICES:
            args = build_parser().parse_args(["run", "--engine", engine])
            assert args.engine == engine


class TestRunEngines:
    def test_run_bandit_reports_observation_dashboard(self, capsys):
        assert main(FAST_RUN + ["--engine", "bandit"]) == 0
        out = capsys.readouterr().out
        assert "engine:   bandit" in out
        assert "observation overhead dashboard" in out

    def test_run_colt_keeps_whatif_dashboard(self, capsys):
        assert main(FAST_RUN) == 0
        out = capsys.readouterr().out
        assert "what-if overhead dashboard" in out

    def test_run_offline(self, capsys):
        assert main(FAST_RUN + ["--engine", "offline"]) == 0
        out = capsys.readouterr().out
        assert "offline" in out

    def test_run_continuous(self, capsys):
        assert main(FAST_RUN + ["--engine", "continuous"]) == 0

    def test_run_bandit_writes_metrics(self, capsys, tmp_path):
        from repro.obs.export import load_snapshot

        path = tmp_path / "m.json"
        assert (
            main(FAST_RUN + ["--engine", "bandit", "--metrics-out", str(path)])
            == 0
        )
        names = {f["name"] for f in load_snapshot(str(path))["metrics"]}
        assert "bandit_queries_total" in names

    def test_timeline_bandit_renders_rounds(self, capsys):
        assert (
            main(
                [
                    "timeline",
                    "--workload",
                    "stable",
                    "--queries",
                    "40",
                    "--engine",
                    "bandit",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "(engine: bandit)" in out
        assert "exec cost" in out
        assert "final materialized" in out


class TestErrorPaths:
    @pytest.mark.parametrize("engine", ["offline", "continuous"])
    def test_timeline_rejects_one_shot_engines(self, capsys, engine):
        assert main(["timeline", "--engine", engine]) == EXIT_ERROR
        err = capsys.readouterr().err
        assert "error:" in err
        assert "epoch-loop" in err
        assert "Traceback" not in err

    @pytest.mark.parametrize("engine", ["offline", "continuous"])
    def test_fleet_run_rejects_one_shot_engines(self, capsys, engine):
        assert main(["fleet-run", "--engine", engine]) == EXIT_ERROR
        assert "epoch-loop" in capsys.readouterr().err

    @pytest.mark.parametrize("engine", ["bandit", "offline"])
    def test_gain_cache_requires_colt(self, capsys, engine):
        assert (
            main(FAST_RUN + ["--engine", engine, "--gain-cache", "on"])
            == EXIT_ERROR
        )
        assert "requires --engine colt" in capsys.readouterr().err

    @pytest.mark.parametrize("engine", ["offline", "continuous"])
    def test_metrics_out_requires_online_engine(self, capsys, tmp_path, engine):
        path = tmp_path / "m.json"
        assert (
            main(FAST_RUN + ["--engine", engine, "--metrics-out", str(path)])
            == EXIT_ERROR
        )
        err = capsys.readouterr().err
        assert "--metrics-out" in err
        assert not path.exists()


class TestFleetAndSnapshots:
    FAST_FLEET = [
        "fleet-run",
        "--replicas",
        "2",
        "--phase-length",
        "10",
        "--transition",
        "4",
        "--fleet-epoch",
        "10",
    ]

    def test_fleet_run_bandit_engine(self, capsys, tmp_path):
        snap_dir = tmp_path / "fleet"
        assert (
            main(
                self.FAST_FLEET
                + ["--engine", "bandit", "--snapshot-dir", str(snap_dir)]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "bandit" in out
        assert (snap_dir / "fleet.json").exists()

        assert main(["fleet-status", str(snap_dir)]) == 0
        status = capsys.readouterr().out
        assert "bandit" in status

        assert main(["check-snapshot", str(snap_dir / "replica-0.json")]) == 0
        assert "engine bandit" in capsys.readouterr().out

    def test_fleet_metrics_carry_bandit_families(self, capsys, tmp_path):
        from repro.obs.export import load_snapshot

        path = tmp_path / "m.json"
        assert (
            main(
                self.FAST_FLEET
                + ["--engine", "bandit", "--metrics-out", str(path)]
            )
            == 0
        )
        names = {f["name"] for f in load_snapshot(str(path))["metrics"]}
        assert "bandit_queries_total" in names
        assert "bandit_epochs_total" in names
