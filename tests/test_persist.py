"""Tests for tuner state persistence."""

import json
import random

import pytest

from repro.core import ColtConfig, ColtTuner
from repro.persist import (
    SnapshotError,
    checksum,
    load_json,
    load_or_quarantine,
    restore_tuner,
    save_json,
    snapshot_tuner,
)
from repro.resilience import FaultInjector
from repro.sql.ast import (
    ColumnExpr,
    CompareOp,
    ComparisonPredicate,
    Query,
    SelectItem,
)


def _eq_query(value):
    return Query(
        tables=["events"],
        select=[SelectItem(expr=ColumnExpr("amount", "events"))],
        filters=[
            ComparisonPredicate(
                ColumnExpr("user_id", "events"), CompareOp.EQ, value
            )
        ],
    )


def _trained_tuner(catalog, queries=80):
    tuner = ColtTuner(
        catalog,
        ColtConfig(storage_budget_pages=5000.0, min_history_epochs=2),
    )
    rng = random.Random(0)
    for _ in range(queries):
        tuner.process_query(_eq_query(rng.randint(1, 10_000)))
    return tuner


class TestRoundtrip:
    def test_snapshot_is_json_serializable(self, small_catalog, tmp_path):
        tuner = _trained_tuner(small_catalog)
        snapshot = snapshot_tuner(tuner)
        path = tmp_path / "state.json"
        save_json(path, snapshot)
        assert load_json(path) == snapshot

    def test_materialized_set_restored(self, small_catalog, tmp_path):
        import copy

        tuner = _trained_tuner(small_catalog)
        assert tuner.materialized_set  # trained to have indexes
        snapshot = snapshot_tuner(tuner)

        fresh_catalog = copy.deepcopy(small_catalog)
        for ix in fresh_catalog.materialized_indexes():
            fresh_catalog.drop_index(ix)
        restored = restore_tuner(fresh_catalog, snapshot)
        assert restored.materialized_set == tuner.materialized_set
        assert fresh_catalog.materialized_indexes()

    def test_histories_restored(self, small_catalog):
        import copy

        tuner = _trained_tuner(small_catalog)
        snapshot = snapshot_tuner(tuner)
        restored = restore_tuner(copy.deepcopy(small_catalog), snapshot)
        orig = tuner.self_organizer._history
        back = restored.self_organizer._history
        assert set(orig) == set(back)
        for key in orig:
            assert orig[key].values() == back[key].values()

    def test_restored_tuner_keeps_tuning_without_rebuilds(self, small_catalog):
        """After restore, a stable workload causes no immediate rebuild
        churn: the learned state carries over."""
        import copy

        tuner = _trained_tuner(small_catalog)
        snapshot = snapshot_tuner(tuner)
        restored = restore_tuner(copy.deepcopy(small_catalog), snapshot)
        rng = random.Random(1)
        build_cost = sum(
            restored.process_query(_eq_query(rng.randint(1, 10_000))).build_cost
            for _ in range(40)
        )
        assert build_cost == 0.0
        assert restored.materialized_set == tuner.materialized_set

    def test_budget_restored(self, small_catalog):
        import copy

        tuner = _trained_tuner(small_catalog)
        tuner.profiler.set_budget(7)
        snapshot = snapshot_tuner(tuner)
        restored = restore_tuner(copy.deepcopy(small_catalog), snapshot)
        assert restored.profiler.whatif_budget == 7


class TestCompositeRoundtrip:
    def test_composite_indexes_survive_snapshot(self, small_catalog):
        import copy

        from repro.core import ColtConfig, ColtTuner
        from repro.sql.ast import BetweenPredicate

        config = ColtConfig(
            storage_budget_pages=9000.0,
            composite_candidates=True,
            min_history_epochs=2,
        )
        tuner = ColtTuner(small_catalog, config)
        rng = random.Random(5)
        for _ in range(150):
            q = Query(
                tables=["events"],
                select=[SelectItem(expr=ColumnExpr("amount", "events"))],
                filters=[
                    ComparisonPredicate(
                        ColumnExpr("user_id", "events"),
                        CompareOp.EQ,
                        rng.randint(1, 10_000),
                    ),
                    BetweenPredicate(
                        ColumnExpr("day", "events"), 8000, 8000 + rng.randint(10, 60)
                    ),
                ],
            )
            tuner.process_query(q)
        if not any(ix.is_composite for ix in tuner.materialized_set):
            pytest.skip("run did not materialize a composite this seed")
        snapshot = snapshot_tuner(tuner)
        restored = restore_tuner(copy.deepcopy(small_catalog), snapshot)
        assert restored.materialized_set == tuner.materialized_set
        assert any(ix.is_composite for ix in restored.materialized_set)


class TestValidation:
    def test_version_check(self, small_catalog):
        with pytest.raises(SnapshotError):
            restore_tuner(small_catalog, {"version": 99})

    def test_unknown_table_rejected(self, small_catalog):
        tuner = _trained_tuner(small_catalog)
        snapshot = snapshot_tuner(tuner)
        snapshot["materialized"].append(["no_such_table", "x"])
        import copy

        with pytest.raises(SnapshotError):
            restore_tuner(copy.deepcopy(small_catalog), snapshot)

    def test_unknown_column_rejected(self, small_catalog):
        tuner = _trained_tuner(small_catalog)
        snapshot = snapshot_tuner(tuner)
        snapshot["hot"].append(["events", "no_such_column"])
        import copy

        with pytest.raises(SnapshotError):
            restore_tuner(copy.deepcopy(small_catalog), snapshot)


class TestCrashSafety:
    def test_save_is_atomic_no_temp_left_behind(self, small_catalog, tmp_path):
        tuner = _trained_tuner(small_catalog)
        path = tmp_path / "state.json"
        save_json(path, snapshot_tuner(tuner))
        save_json(path, snapshot_tuner(tuner))  # overwrite in place
        assert [p.name for p in tmp_path.iterdir()] == ["state.json"]

    def test_envelope_carries_matching_checksum(self, small_catalog, tmp_path):
        tuner = _trained_tuner(small_catalog)
        snapshot = snapshot_tuner(tuner)
        path = tmp_path / "state.json"
        save_json(path, snapshot)
        envelope = json.loads(path.read_text())
        assert envelope["format"] == "colt-snapshot"
        assert envelope["checksum"] == checksum(snapshot)

    def test_truncated_file_raises_snapshot_error(self, small_catalog, tmp_path):
        tuner = _trained_tuner(small_catalog)
        path = tmp_path / "state.json"
        save_json(path, snapshot_tuner(tuner))
        FaultInjector().corrupt_file(path, mode="truncate")
        with pytest.raises(SnapshotError):
            load_json(path)

    def test_empty_file_raises_snapshot_error(self, small_catalog, tmp_path):
        path = tmp_path / "state.json"
        path.write_text("")
        with pytest.raises(SnapshotError):
            load_json(path)

    def test_bad_checksum_raises_snapshot_error(self, small_catalog, tmp_path):
        tuner = _trained_tuner(small_catalog)
        snapshot = snapshot_tuner(tuner)
        path = tmp_path / "state.json"
        save_json(path, snapshot)
        envelope = json.loads(path.read_text())
        envelope["snapshot"]["whatif_budget"] = 999  # silent payload edit
        path.write_text(json.dumps(envelope))
        with pytest.raises(SnapshotError, match="checksum"):
            load_json(path)

    def test_missing_file_raises_snapshot_error(self, tmp_path):
        with pytest.raises(SnapshotError):
            load_json(tmp_path / "nope.json")

    def test_non_object_json_raises_snapshot_error(self, tmp_path):
        path = tmp_path / "state.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(SnapshotError):
            load_json(path)

    def test_legacy_bare_snapshot_still_loads(self, small_catalog, tmp_path):
        import copy

        tuner = _trained_tuner(small_catalog)
        snapshot = snapshot_tuner(tuner)
        path = tmp_path / "legacy.json"
        path.write_text(json.dumps(snapshot))  # pre-envelope format
        restored = restore_tuner(copy.deepcopy(small_catalog), load_json(path))
        assert restored.materialized_set == tuner.materialized_set


class TestQuarantine:
    def test_corrupt_file_quarantined_and_none_returned(
        self, small_catalog, tmp_path
    ):
        tuner = _trained_tuner(small_catalog)
        path = tmp_path / "state.json"
        save_json(path, snapshot_tuner(tuner))
        FaultInjector().corrupt_file(path, mode="truncate")
        assert load_or_quarantine(path) is None
        assert not path.exists()
        assert (tmp_path / "state.json.corrupt").exists()

    def test_quarantine_names_do_not_collide(self, small_catalog, tmp_path):
        tuner = _trained_tuner(small_catalog)
        path = tmp_path / "state.json"
        for _ in range(2):
            save_json(path, snapshot_tuner(tuner))
            FaultInjector().corrupt_file(path, mode="truncate")
            assert load_or_quarantine(path) is None
        assert (tmp_path / "state.json.corrupt").exists()
        assert (tmp_path / "state.json.corrupt.1").exists()

    def test_healthy_file_loads_normally(self, small_catalog, tmp_path):
        tuner = _trained_tuner(small_catalog)
        snapshot = snapshot_tuner(tuner)
        path = tmp_path / "state.json"
        save_json(path, snapshot)
        assert load_or_quarantine(path) == snapshot
        assert path.exists()

    def test_missing_file_returns_none(self, tmp_path):
        assert load_or_quarantine(tmp_path / "nope.json") is None


class TestMalformedStructure:
    def test_missing_keys_raise_snapshot_error(self, small_catalog):
        with pytest.raises(SnapshotError):
            restore_tuner(small_catalog, {"version": 1})

    def test_non_dict_snapshot_rejected(self, small_catalog):
        with pytest.raises(SnapshotError):
            restore_tuner(small_catalog, ["not", "a", "dict"])

    def test_bad_config_keys_raise_snapshot_error(self, small_catalog):
        tuner = _trained_tuner(small_catalog)
        snapshot = snapshot_tuner(tuner)
        snapshot["config"]["no_such_option"] = True
        import copy

        with pytest.raises(SnapshotError):
            restore_tuner(copy.deepcopy(small_catalog), snapshot)

    def test_bad_history_values_raise_snapshot_error(self, small_catalog):
        tuner = _trained_tuner(small_catalog)
        snapshot = snapshot_tuner(tuner)
        snapshot["histories"]["low"] = "oops"
        import copy

        with pytest.raises(SnapshotError):
            restore_tuner(copy.deepcopy(small_catalog), snapshot)


class TestPhysicalRestore:
    def test_trees_rebuilt_through_store(self, small_store):
        catalog = small_store.catalog
        tuner = ColtTuner(
            catalog,
            ColtConfig(storage_budget_pages=5000.0, min_history_epochs=2),
            store=small_store,
        )
        rng = random.Random(2)
        for _ in range(80):
            tuner.process_query(_eq_query(rng.randint(1, 500)))
        if not tuner.materialized_set:
            pytest.skip("tuner did not materialize on this data")
        snapshot = snapshot_tuner(tuner)

        for ix in list(catalog.materialized_indexes()):
            small_store.drop_index(ix)
        restored = restore_tuner(catalog, snapshot, store=small_store)
        for index in restored.materialized_set:
            assert small_store.tree(index) is not None
