"""Tests for the command-line interface."""

import pytest

from repro.cli import (
    EXIT_BIND,
    EXIT_ERROR,
    EXIT_PARSE,
    EXIT_SNAPSHOT,
    _ascii_bars,
    build_parser,
    main,
)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fig6_burst_parsing(self):
        args = build_parser().parse_args(["fig6", "--bursts", "20,40"])
        assert args.bursts == "20,40"

    def test_explain_index_repeatable(self):
        args = build_parser().parse_args(
            ["explain", "select 1", "--index", "a.b", "--index", "c.d"]
        )
        assert args.index == ["a.b", "c.d"]


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "6,928,120" in out
        assert "244" in out

    def test_fig3(self, capsys):
        assert main(["fig3", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "COLT" in out and "OFFLINE" in out
        assert "deviation after query 100" in out

    def test_fig6_custom_bursts(self, capsys):
        assert main(["fig6", "--bursts", "20"]) == 0
        out = capsys.readouterr().out
        assert "burst" in out

    def test_explain_seq_scan(self, capsys):
        sql = "select l_orderkey from lineitem_1 where l_shipdate = '1994-01-01'"
        assert main(["explain", sql]) == 0
        out = capsys.readouterr().out
        assert "SeqScan(lineitem_1)" in out

    def test_explain_with_hypothetical_index(self, capsys):
        sql = "select l_orderkey from lineitem_1 where l_shipdate = '1994-01-01'"
        assert main(["explain", sql, "--index", "lineitem_1.l_shipdate"]) == 0
        out = capsys.readouterr().out
        assert "IndexScan(ix_lineitem_1_l_shipdate" in out
        assert "used indexes" in out

    def test_explain_bad_sql_is_an_error(self, capsys):
        assert main(["explain", "selectt nope"]) == 2  # EXIT_PARSE
        assert "error:" in capsys.readouterr().err

    def test_explain_bad_index_spec(self, capsys):
        sql = "select l_orderkey from lineitem_1"
        assert main(["explain", sql, "--index", "bogus"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_explain_unknown_table_in_index(self, capsys):
        sql = "select l_orderkey from lineitem_1"
        assert main(["explain", sql, "--index", "zzz.yyy"]) == 1


class TestMoreCommands:
    def test_fig5(self, capsys):
        # The full fig5 run is fast enough for the test suite.
        assert main(["fig5"]) == 0
        out = capsys.readouterr().out
        assert "what-if calls per epoch" in out

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "final configuration" in out


class TestTimeline:
    def test_stable_timeline(self, capsys):
        assert main(["timeline", "--workload", "stable", "--queries", "60"]) == 0
        out = capsys.readouterr().out
        assert "exec cost" in out
        assert "what-if calls" in out

    def test_timeline_workload_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["timeline", "--workload", "bogus"])


class TestExitCodes:
    """Failure classes map to distinct exit codes (no tracebacks)."""

    def test_parse_error_exit_code(self, capsys):
        assert main(["explain", "selectt nope"]) == EXIT_PARSE
        assert "parse error:" in capsys.readouterr().err

    def test_lex_error_exit_code(self, capsys):
        assert main(["explain", "select ~ from lineitem_1"]) == EXIT_PARSE

    def test_bind_error_exit_code(self, capsys):
        sql = "select no_such_column from lineitem_1"
        assert main(["explain", sql]) == EXIT_BIND
        assert "bind error:" in capsys.readouterr().err

    def test_snapshot_error_exit_code(self, capsys, tmp_path):
        path = tmp_path / "state.json"
        path.write_text("{ truncated")
        assert main(["check-snapshot", str(path)]) == EXIT_SNAPSHOT
        assert "snapshot error:" in capsys.readouterr().err

    def test_snapshot_version_skew_exit_code(self, capsys, tmp_path):
        import json

        path = tmp_path / "state.json"
        path.write_text(json.dumps({"version": 99}))
        assert main(["check-snapshot", str(path)]) == EXIT_SNAPSHOT

    def test_generic_error_exit_code(self, capsys):
        sql = "select l_orderkey from lineitem_1"
        assert main(["explain", sql, "--index", "bogus"]) == EXIT_ERROR

    def test_check_snapshot_happy_path(self, capsys, tmp_path):
        from repro.persist import save_json, snapshot_tuner
        from repro.core import ColtTuner
        from repro.workload import build_catalog

        path = tmp_path / "state.json"
        save_json(path, snapshot_tuner(ColtTuner(build_catalog())))
        assert main(["check-snapshot", str(path)]) == 0
        out = capsys.readouterr().out
        assert "OK" in out
        assert "what-if budget" in out


class TestFleetCommands:
    FAST = [
        "fleet-run",
        "--replicas", "2",
        "--phase-length", "15",
        "--transition", "5",
        "--fleet-epoch", "10",
        "--seed", "3",
    ]

    def test_fleet_run_parsing_defaults(self):
        args = build_parser().parse_args(["fleet-run"])
        assert args.replicas == 3
        assert args.policy == "affinity"
        assert args.snapshot_dir is None

    def test_fleet_run_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fleet-run", "--policy", "random"])

    def test_fleet_run_reports_per_replica_table(self, capsys):
        assert main(self.FAST) == 0
        out = capsys.readouterr().out
        assert "policy:   affinity (2 replicas, engine colt)" in out
        assert "fleet execution cost" in out
        assert "config divergence" in out

    def test_fleet_run_round_robin_policy(self, capsys):
        assert main(self.FAST + ["--policy", "round-robin"]) == 0
        assert "round-robin" in capsys.readouterr().out

    def test_fleet_run_saves_snapshot(self, capsys, tmp_path):
        target = tmp_path / "state"
        assert main(self.FAST + ["--snapshot-dir", str(target)]) == 0
        assert "fleet snapshot saved" in capsys.readouterr().out
        assert (target / "fleet.json").exists()
        assert (target / "replica-0.json").exists()

    def test_fleet_status_reads_snapshot(self, capsys, tmp_path):
        target = tmp_path / "state"
        assert main(self.FAST + ["--snapshot-dir", str(target)]) == 0
        capsys.readouterr()
        assert main(["fleet-status", str(target)]) == 0
        out = capsys.readouterr().out
        assert "fleet of 2" in out
        assert out.count(": OK") == 2

    def test_fleet_status_flags_tampered_replica(self, capsys, tmp_path):
        from repro.persist import load_json, save_json

        target = tmp_path / "state"
        assert main(self.FAST + ["--snapshot-dir", str(target)]) == 0
        snap = load_json(target / "replica-0.json")
        snap["whatif_budget"] = 424242
        save_json(target / "replica-0.json", snap)
        capsys.readouterr()
        assert main(["fleet-status", str(target)]) == 0
        out = capsys.readouterr().out
        assert "MISMATCH" in out

    def test_fleet_status_missing_dir_exit_code(self, capsys, tmp_path):
        assert main(["fleet-status", str(tmp_path / "nope")]) == EXIT_SNAPSHOT


class TestRunCommand:
    FAST = ["run", "--queries", "30", "--seed", "2"]

    def test_run_parsing_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.workload == "stable"
        assert args.queries == 200
        assert args.metrics_out is None

    def test_run_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--workload", "bogus"])

    def test_run_prints_overhead_dashboard(self, capsys):
        assert main(self.FAST) == 0
        out = capsys.readouterr().out
        assert "what-if overhead dashboard" in out
        assert "within budget: yes" in out

    def test_run_writes_json_snapshot(self, capsys, tmp_path):
        from repro.obs.export import load_snapshot

        path = tmp_path / "m.json"
        assert main(self.FAST + ["--metrics-out", str(path)]) == 0
        assert "metrics snapshot written" in capsys.readouterr().out
        snapshot = load_snapshot(str(path))
        names = {f["name"] for f in snapshot["metrics"]}
        assert "colt_queries_total" in names
        assert snapshot["overhead"], "expected per-epoch overhead rows"
        for row in snapshot["overhead"]:
            assert row["spent"] <= row["granted"] <= row["requested"]

    def test_run_writes_prometheus_by_extension(self, capsys, tmp_path):
        path = tmp_path / "m.prom"
        assert main(self.FAST + ["--metrics-out", str(path)]) == 0
        text = path.read_text()
        assert "# TYPE colt_queries_total counter" in text

    def test_run_unwritable_metrics_path_is_clean_error(self, capsys, tmp_path):
        path = tmp_path / "missing-dir" / "m.json"
        assert main(self.FAST + ["--metrics-out", str(path)]) == EXIT_ERROR
        err = capsys.readouterr().err
        assert "error:" in err
        assert "Traceback" not in err


class TestMetricsCommand:
    def _snapshot_file(self, tmp_path):
        path = tmp_path / "m.json"
        assert (
            main(["run", "--queries", "30", "--seed", "2", "--metrics-out", str(path)])
            == 0
        )
        return path

    def test_metrics_parsing_defaults(self):
        args = build_parser().parse_args(["metrics"])
        assert args.format == "prom"
        assert args.from_file is None

    def test_metrics_from_file_prom(self, capsys, tmp_path):
        path = self._snapshot_file(tmp_path)
        capsys.readouterr()
        assert main(["metrics", "--from", str(path)]) == 0
        out = capsys.readouterr().out
        assert "# TYPE colt_epochs_total counter" in out

    def test_metrics_from_file_text_renders_overhead(self, capsys, tmp_path):
        path = self._snapshot_file(tmp_path)
        capsys.readouterr()
        assert main(["metrics", "--from", str(path), "--format", "text"]) == 0
        out = capsys.readouterr().out
        assert "grant" in out and "spent" in out

    def test_metrics_missing_file_is_clean_error(self, capsys, tmp_path):
        assert main(["metrics", "--from", str(tmp_path / "nope.json")]) == EXIT_ERROR
        err = capsys.readouterr().err
        assert "error:" in err
        assert "Traceback" not in err

    def test_metrics_foreign_json_is_clean_error(self, capsys, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"format": "not-metrics"}')
        assert main(["metrics", "--from", str(path)]) == EXIT_ERROR
        assert "error:" in capsys.readouterr().err

    def test_metrics_truncated_json_is_clean_error(self, capsys, tmp_path):
        path = tmp_path / "torn.json"
        path.write_text('{"format": "colt-met')
        assert main(["metrics", "--from", str(path)]) == EXIT_ERROR
        err = capsys.readouterr().err
        assert "not valid JSON" in err


class TestQuarantinedSnapshots:
    def test_check_snapshot_on_quarantined_file(self, capsys, tmp_path):
        from repro.persist import load_or_quarantine

        path = tmp_path / "state.json"
        path.write_text("{ torn")
        assert load_or_quarantine(path) is None
        quarantined = tmp_path / "state.json.corrupt"
        assert quarantined.exists()
        assert main(["check-snapshot", str(quarantined)]) == EXIT_SNAPSHOT
        err = capsys.readouterr().err
        assert "snapshot error:" in err
        assert "Traceback" not in err

    def test_check_snapshot_on_missing_original(self, capsys, tmp_path):
        assert main(["check-snapshot", str(tmp_path / "state.json")]) == EXIT_SNAPSHOT
        assert "error:" in capsys.readouterr().err


class TestFleetMetricsOut:
    def test_fleet_run_writes_replica_labeled_snapshot(self, capsys, tmp_path):
        from repro.obs.export import load_snapshot

        path = tmp_path / "fleet.json"
        fast = TestFleetCommands.FAST + ["--metrics-out", str(path)]
        assert main(fast) == 0
        assert "metrics snapshot written" in capsys.readouterr().out
        snapshot = load_snapshot(str(path))
        by_name = {f["name"]: f for f in snapshot["metrics"]}
        assert "fleet_queries_routed_total" in by_name
        colt = by_name["colt_queries_total"]
        replicas = {s["labels"]["replica"] for s in colt["samples"]}
        assert replicas == {"0", "1"}


class TestAsciiBars:
    def test_empty(self):
        assert "no data" in _ascii_bars("x", [])

    def test_monotone_heights(self):
        line = _ascii_bars("x", [1.0, 2.0, 4.0, 8.0])
        # Higher values render as taller (later-in-alphabet) blocks.
        bars = line.split()[1]
        assert bars[0] <= bars[-1]

    def test_peak_annotated(self):
        assert "8" in _ascii_bars("x", [8.0])
