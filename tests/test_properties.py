"""System-level property tests.

These pin the cross-module invariants the whole reproduction leans on:

* the optimizer never gets *worse* when offered more indexes
  (monotonicity of the configuration lattice);
* what-if gains are consistent with direct optimization under any
  configuration;
* COLT never violates its storage budget, never overlaps hot and
  materialized sets, and never exceeds its per-epoch what-if budget --
  whatever the workload.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ColtConfig, ColtTuner
from repro.optimizer.optimizer import Optimizer, PlanCache
from repro.optimizer.whatif import WhatIfOptimizer
from repro.sql.ast import (
    BetweenPredicate,
    ColumnExpr,
    CompareOp,
    ComparisonPredicate,
    Query,
    SelectItem,
)
from repro.workload.datagen import build_catalog
from repro.workload.experiments import stable_distribution

CATALOG = build_catalog()
DIST = stable_distribution()
ALL_RELEVANT = DIST.relevant_indexes(CATALOG)


@st.composite
def _workload_query(draw):
    seed = draw(st.integers(0, 10_000))
    rng = random.Random(seed)
    return DIST.sample(CATALOG, rng)


@st.composite
def _config_pair(draw):
    """A configuration and a superset of it."""
    base_idx = draw(
        st.sets(st.integers(0, len(ALL_RELEVANT) - 1), max_size=4)
    )
    extra_idx = draw(
        st.sets(st.integers(0, len(ALL_RELEVANT) - 1), max_size=3)
    )
    base = frozenset(ALL_RELEVANT[i] for i in base_idx)
    superset = base | frozenset(ALL_RELEVANT[i] for i in extra_idx)
    return base, superset


class TestOptimizerMonotonicity:
    @given(query=_workload_query(), configs=_config_pair())
    @settings(max_examples=60, deadline=None)
    def test_more_indexes_never_hurt(self, query, configs):
        base, superset = configs
        optimizer = Optimizer(CATALOG)
        small = optimizer.optimize(query, config=base, cache=PlanCache()).cost
        large = optimizer.optimize(query, config=superset, cache=PlanCache()).cost
        assert large <= small + 1e-6

    @given(query=_workload_query())
    @settings(max_examples=40, deadline=None)
    def test_plan_cost_positive_and_finite(self, query):
        result = Optimizer(CATALOG).optimize(query, config=frozenset())
        assert 0.0 < result.cost < float("inf")
        assert result.plan.rows >= 0.0

    @given(query=_workload_query(), configs=_config_pair())
    @settings(max_examples=40, deadline=None)
    def test_optimization_deterministic(self, query, configs):
        base, _ = configs
        a = Optimizer(CATALOG).optimize(query, config=base, cache=PlanCache())
        b = Optimizer(CATALOG).optimize(query, config=base, cache=PlanCache())
        assert a.cost == b.cost


class TestWhatIfConsistency:
    @given(query=_workload_query(), index_pos=st.integers(0, len(ALL_RELEVANT) - 1))
    @settings(max_examples=50, deadline=None)
    def test_gain_equals_cost_difference(self, query, index_pos):
        index = ALL_RELEVANT[index_pos]
        optimizer = Optimizer(CATALOG)
        whatif = WhatIfOptimizer(optimizer)
        session = whatif.begin_query(query)
        gain = whatif.what_if_optimize(session, [index], materialized=frozenset())[
            index
        ]
        without = optimizer.optimize(query, config=frozenset(), cache=PlanCache()).cost
        with_ix = optimizer.optimize(
            query, config=frozenset([index]), cache=PlanCache()
        ).cost
        assert gain == pytest.approx(without - with_ix, abs=1e-6)
        assert gain >= -1e-6  # an extra index never hurts this optimizer


class TestColtInvariants:
    @given(
        seed=st.integers(0, 1000),
        budget=st.sampled_from([3_000.0, 6_000.0, 9_000.0]),
        max_wi=st.sampled_from([0, 4, 20]),
    )
    @settings(max_examples=12, deadline=None)
    def test_run_invariants(self, seed, budget, max_wi):
        catalog = build_catalog()
        config = ColtConfig(
            storage_budget_pages=budget,
            max_whatif_per_epoch=max_wi,
            min_history_epochs=2,
            seed=seed,
        )
        tuner = ColtTuner(catalog, config)
        rng = random.Random(seed)
        epoch_calls = 0
        for _ in range(80):
            outcome = tuner.process_query(DIST.sample(catalog, rng))
            epoch_calls += outcome.whatif_calls
            # Budget invariant, checked after every single query.
            assert catalog.materialized_size_pages() <= budget + 1e-6
            # Ledger is internally consistent.
            assert outcome.total_cost >= outcome.execution_cost
            if outcome.epoch_ended:
                assert epoch_calls <= max_wi
                epoch_calls = 0
                # Hot and materialized never overlap.
                hot = set(tuner.hot_set)
                mat = set(tuner.materialized_set)
                assert not hot & mat
        # The self-organizer's view matches the catalog's.
        assert set(tuner.materialized_set) == set(catalog.materialized_indexes())

    def test_zero_whatif_budget_still_safe(self):
        """With profiling fully disabled COLT must never materialize
        (no evidence can reach the conservative knapsack)."""
        catalog = build_catalog()
        config = ColtConfig(
            storage_budget_pages=9_000.0, max_whatif_per_epoch=0
        )
        tuner = ColtTuner(catalog, config)
        rng = random.Random(0)
        for _ in range(100):
            tuner.process_query(DIST.sample(catalog, rng))
        assert tuner.materialized_set == []


class TestQueryCostSanity:
    @given(
        user=st.integers(1, 10_000),
        width_days=st.integers(1, 200),
    )
    @settings(max_examples=40, deadline=None)
    def test_wider_ranges_cost_no_less(self, user, width_days):
        """Under a fixed index config, widening a range predicate never
        reduces the estimated cost."""
        catalog = CATALOG
        index = catalog.index_for("lineitem_1", "l_shipdate")
        config = frozenset([index])
        optimizer = Optimizer(catalog)

        def q(width):
            return Query(
                tables=["lineitem_1"],
                select=[SelectItem(expr=ColumnExpr("l_orderkey", "lineitem_1"))],
                filters=[
                    BetweenPredicate(
                        ColumnExpr("l_shipdate", "lineitem_1"), 8035, 8035 + width
                    )
                ],
            )

        narrow = optimizer.optimize(q(width_days), config=config, cache=PlanCache()).cost
        wide = optimizer.optimize(
            q(width_days * 2), config=config, cache=PlanCache()
        ).cost
        assert wide >= narrow - 1e-6

    def test_eq_cheaper_than_wide_range(self):
        catalog = CATALOG
        optimizer = Optimizer(catalog)
        config = frozenset([catalog.index_for("orders_1", "o_orderkey")])

        def mk(pred):
            return Query(
                tables=["orders_1"],
                select=[SelectItem(expr=ColumnExpr("o_custkey", "orders_1"))],
                filters=[pred],
            )

        eq = mk(
            ComparisonPredicate(
                ColumnExpr("o_orderkey", "orders_1"), CompareOp.EQ, 17
            )
        )
        rng_pred = mk(
            BetweenPredicate(ColumnExpr("o_orderkey", "orders_1"), 1, 150_000)
        )
        assert (
            optimizer.optimize(eq, config=config, cache=PlanCache()).cost
            < optimizer.optimize(rng_pred, config=config, cache=PlanCache()).cost
        )
