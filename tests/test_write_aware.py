"""Tests for the write-aware tuning extension.

Inserts maintain physical indexes, grow catalog statistics, and charge a
per-(row, index) maintenance cost; the Self-Organizer discounts the
NetBenefit of indexes on write-hot tables so a heavily written table
must earn its indexes twice over.
"""

import random

import pytest

from repro.core import ColtConfig, ColtTuner
from repro.sql.ast import (
    ColumnExpr,
    CompareOp,
    ComparisonPredicate,
    Query,
    SelectItem,
)


def _eq_query(value):
    return Query(
        tables=["events"],
        select=[SelectItem(expr=ColumnExpr("amount", "events"))],
        filters=[
            ComparisonPredicate(
                ColumnExpr("user_id", "events"), CompareOp.EQ, value
            )
        ],
    )


class TestPhysicalInserts:
    def test_apply_inserts_maintains_trees(self, small_store):
        catalog = small_store.catalog
        single = catalog.index_for("events", "user_id")
        composite = catalog.composite_index_for("events", ["user_id", "day"])
        small_store.build_index(single)
        small_store.build_index(composite)
        before = len(small_store.heap("events"))

        n = small_store.apply_inserts(
            "events", [(9999, 1.5, 8000, "click"), (9999, 2.5, 8001, "view")]
        )
        assert n == 2
        assert len(small_store.heap("events")) == before + 2
        # Both trees see the new rows.
        assert len(small_store.tree(single).search(9999)) == 2
        assert small_store.tree(composite).search((9999, 8000))
        # Catalog statistics grew.
        assert catalog.table("events").row_count == before + 2

    def test_inserted_rows_queryable_via_index(self, small_store):
        from repro.executor import execute
        from repro.optimizer.optimizer import Optimizer
        from repro.sql.binder import bind_query
        from repro.sql.parser import parse_query

        catalog = small_store.catalog
        index = catalog.index_for("events", "user_id")
        small_store.build_index(index)
        small_store.apply_inserts("events", [(8888, 3.0, 8100, "buy")])
        q = bind_query(
            parse_query("select amount from events where user_id = 8888"), catalog
        )
        plan = Optimizer(catalog).optimize(q).plan
        assert execute(plan, small_store) == [(3.0,)]


class TestInsertLedger:
    def test_maintenance_charged_per_index(self, small_catalog):
        tuner = ColtTuner(small_catalog, ColtConfig(storage_budget_pages=9000.0))
        free = tuner.process_insert("events", count=100)
        assert free.maintenance_cost == 0.0  # no indexes yet

        small_catalog.materialize_index(small_catalog.index_for("events", "user_id"))
        small_catalog.materialize_index(small_catalog.index_for("events", "day"))
        tuner.self_organizer.materialized = set(small_catalog.materialized_indexes())
        charged = tuner.process_insert("events", count=100)
        params = small_catalog.params
        assert charged.maintenance_cost == pytest.approx(
            100 * 2 * params.index_maintain_cost_per_tuple
        )
        assert charged.total_cost == pytest.approx(
            charged.heap_cost + charged.maintenance_cost
        )

    def test_requires_rows_or_count(self, small_catalog):
        tuner = ColtTuner(small_catalog, ColtConfig(storage_budget_pages=9000.0))
        with pytest.raises(ValueError):
            tuner.process_insert("events")

    def test_physical_mode_requires_rows(self, small_store):
        tuner = ColtTuner(
            small_store.catalog,
            ColtConfig(storage_budget_pages=9000.0),
            store=small_store,
        )
        with pytest.raises(ValueError):
            tuner.process_insert("events", count=5)

    def test_row_count_grows_in_cost_model_mode(self, small_catalog):
        tuner = ColtTuner(small_catalog, ColtConfig(storage_budget_pages=9000.0))
        before = small_catalog.table("events").row_count
        tuner.process_insert("events", count=500)
        assert small_catalog.table("events").row_count == before + 500


class TestWriteAwareDecisions:
    def test_write_rate_tracked(self, small_catalog):
        tuner = ColtTuner(small_catalog, ColtConfig(storage_budget_pages=9000.0))
        rng = random.Random(0)
        for i in range(20):
            tuner.process_query(_eq_query(rng.randint(1, 10_000)))
            tuner.process_insert("events", count=50)
        assert tuner.self_organizer.write_rate("events") > 0.0
        assert tuner.self_organizer.write_rate("users") == 0.0

    def test_heavy_writes_suppress_materialization(self, small_catalog):
        """The same read workload materializes an index on a read-only
        table but not when the table sustains heavy inserts."""
        import copy

        def run(inserts_per_query: int):
            catalog = copy.deepcopy(small_catalog)
            tuner = ColtTuner(
                catalog,
                ColtConfig(storage_budget_pages=9000.0, min_history_epochs=2),
            )
            rng = random.Random(3)
            for _ in range(100):
                tuner.process_query(_eq_query(rng.randint(1, 10_000)))
                if inserts_per_query:
                    tuner.process_insert("events", count=inserts_per_query)
            return tuner.materialized_set

        read_only = run(0)
        assert read_only, "read-only run should materialize"
        # Maintenance for 50k inserts/epoch dwarfs the query benefit.
        write_heavy = run(5000)
        assert not write_heavy