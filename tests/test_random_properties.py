"""Seeded randomized property tests for the pure decision kernels.

Unlike ``tests/test_properties.py`` (hypothesis-driven, whole-pipeline),
these use only the stdlib ``random`` module with fixed seeds, so each
case list is fully reproducible, and they target the two pure kernels
the reorganizer trusts blindly: the 0/1 knapsack solver and the 1-D
exact 2-means hot/cold split.
"""

import random

import pytest

from repro.core.knapsack import (
    MAX_EXACT_ITEMS,
    KnapsackItem,
    solve_greedy,
    solve_knapsack,
)
from repro.core.self_organizer import two_means_split


def _random_instance(rng, n=None):
    """A random knapsack instance (items, capacity)."""
    n = n if n is not None else rng.randint(1, 12)
    items = [
        KnapsackItem(
            key=i,
            size=rng.uniform(0.05, 5.0),
            value=rng.uniform(-1.0, 10.0),
        )
        for i in range(n)
    ]
    capacity = rng.uniform(0.1, 12.0)
    return items, capacity


class TestKnapsackProperties:
    def test_never_exceeds_budget(self):
        rng = random.Random(20260805)
        for _ in range(200):
            items, capacity = _random_instance(rng)
            selected, value = solve_knapsack(items, capacity)
            eps = 1e-9 * max(1.0, capacity)
            assert sum(it.size for it in selected) <= capacity + eps
            assert value == pytest.approx(sum(it.value for it in selected))
            assert all(it.value > 0 for it in selected)

    def test_greedy_never_beats_exact(self):
        rng = random.Random(42)
        for _ in range(200):
            items, capacity = _random_instance(rng)
            _, exact = solve_knapsack(items, capacity)
            greedy_sel, greedy = solve_greedy(items, capacity)
            assert greedy <= exact + 1e-9
            eps = 1e-9 * max(1.0, capacity)
            assert sum(it.size for it in greedy_sel) <= capacity + eps

    def test_large_pools_stay_feasible(self):
        rng = random.Random(7)
        for _ in range(20):
            items, capacity = _random_instance(rng, n=MAX_EXACT_ITEMS + 8)
            selected, _ = solve_knapsack(items, capacity)
            assert sum(it.size for it in selected) <= capacity + 1e-9

    def test_deterministic_for_tied_net_benefits(self):
        # Every item identical: density ties everywhere.  Repeated
        # solves must pick the same keys, and any permutation of the
        # input must reach the same total value.
        rng = random.Random(99)
        for _ in range(50):
            n = rng.randint(2, 10)
            items = [
                KnapsackItem(key=i, size=1.0, value=3.0) for i in range(n)
            ]
            capacity = rng.uniform(0.5, n + 1.0)
            first_sel, first_val = solve_knapsack(items, capacity)
            again_sel, again_val = solve_knapsack(items, capacity)
            assert [it.key for it in first_sel] == [it.key for it in again_sel]
            assert first_val == again_val
            shuffled = items[:]
            rng.shuffle(shuffled)
            _, shuffled_val = solve_knapsack(shuffled, capacity)
            assert shuffled_val == pytest.approx(first_val)

    def test_repeated_solves_are_identical_on_random_instances(self):
        rng = random.Random(314)
        for _ in range(100):
            items, capacity = _random_instance(rng)
            a_sel, a_val = solve_knapsack(items, capacity)
            b_sel, b_val = solve_knapsack(items, capacity)
            assert [it.key for it in a_sel] == [it.key for it in b_sel]
            assert a_val == b_val


class TestTwoMeansProperties:
    def test_split_is_valid_and_permutation_invariant(self):
        rng = random.Random(1618)
        for _ in range(200):
            n = rng.randint(1, 40)
            values = [rng.uniform(0.0, 100.0) for _ in range(n)]
            ordered = sorted(values, reverse=True)
            split = two_means_split(ordered)
            assert 1 <= split <= n
            shuffled = values[:]
            rng.shuffle(shuffled)
            assert two_means_split(sorted(shuffled, reverse=True)) == split

    def test_clear_clusters_are_separated_at_the_gap(self):
        rng = random.Random(5)
        for _ in range(50):
            top = [rng.uniform(90.0, 100.0) for _ in range(rng.randint(1, 8))]
            bottom = [rng.uniform(0.0, 10.0) for _ in range(rng.randint(1, 8))]
            values = sorted(top + bottom, reverse=True)
            assert two_means_split(values) == len(top)

    def test_empty_input(self):
        assert two_means_split([]) == 0
