"""Backend-protocol conformance suite.

Every :class:`~repro.backend.base.Backend` the tuning stack can run on
must satisfy the same observable contract: more indexes never price a
query worse, hypothetical indexes are session-local and idempotent,
stats tokens change on every statistics-affecting catalog mutation, and
pricing depends only on the *configuration* -- not on whether an index
happens to be hypothetical or materialized.  The suite is parametrized
over the local engine and the trace replayer; the differential class at
the bottom proves the two produce bit-identical tuning decisions on a
shifting workload.
"""

import random

import pytest

from repro.backend.base import BackendError, TraceMissError
from repro.backend.local import LocalBackend
from repro.backend.trace import (
    CostTrace,
    CostTraceRecorder,
    TraceBackend,
    trace_key,
)
from repro.bench.tracing import trace_run
from repro.core.config import ColtConfig

from tests.fleet.workloads import (
    build_small_catalog,
    day_query,
    eq_query,
    score_query,
)

BACKENDS = ("local", "trace")


def probe_queries():
    """The fixed query set every conformance probe draws from."""
    return [eq_query(7), eq_query(4242), day_query(8100), score_query(17)]


def probe_configs(catalog):
    """Every index configuration the conformance tests price under."""
    user = catalog.index_for("events", "user_id")
    day = catalog.index_for("events", "day")
    score = catalog.index_for("users", "score")
    return [
        frozenset(),
        frozenset({user}),
        frozenset({day}),
        frozenset({score}),
        frozenset({user, day}),
        frozenset({user, day, score}),
    ]


def make_backend(kind, catalog):
    """Build a conformant backend of ``kind`` over ``catalog``.

    The trace backend is seeded by recording the full query x config
    probe grid through a live backend on a structurally identical
    shadow catalog -- exactly the record/replay workflow the CLI
    exposes via ``--record-trace`` / ``--backend trace``.
    """
    if kind == "local":
        return LocalBackend(catalog)
    shadow = build_small_catalog()
    recorder = CostTraceRecorder()
    live = LocalBackend(shadow, recorder=recorder)
    for query in probe_queries():
        for config in probe_configs(shadow):
            live.get_cost(query, config=config)
    return TraceBackend(catalog, recorder.trace)


@pytest.fixture(params=BACKENDS)
def backend(request):
    return make_backend(request.param, build_small_catalog())


class TestCapabilities:
    @pytest.mark.parametrize("kind", BACKENDS)
    def test_name_matches_kind(self, kind):
        b = make_backend(kind, build_small_catalog())
        assert b.capabilities.name == kind
        assert b.capabilities.hypothetical_indexes

    def test_local_supports_plan_cache_reuse_trace_does_not(self):
        local = make_backend("local", build_small_catalog())
        trace = make_backend("trace", build_small_catalog())
        assert local.capabilities.plan_cache_reuse
        assert not trace.capabilities.plan_cache_reuse
        assert local.capabilities.produces_plans
        assert not trace.capabilities.produces_plans


class TestCostMonotonicity:
    def test_relevant_index_never_hurts(self, backend):
        catalog = backend.catalog
        user = catalog.index_for("events", "user_id")
        q = eq_query(7)
        assert backend.get_cost(q, config=frozenset({user})) <= backend.get_cost(
            q, config=frozenset()
        )

    def test_superset_config_never_hurts(self, backend):
        catalog = backend.catalog
        user = catalog.index_for("events", "user_id")
        day = catalog.index_for("events", "day")
        score = catalog.index_for("users", "score")
        for q in probe_queries():
            lo = backend.get_cost(q, config=frozenset())
            hi = backend.get_cost(q, config=frozenset({user, day, score}))
            assert hi <= lo

    def test_irrelevant_index_changes_nothing(self, backend):
        catalog = backend.catalog
        score = catalog.index_for("users", "score")
        q = eq_query(7)  # touches only events
        assert backend.get_cost(q, config=frozenset({score})) == backend.get_cost(
            q, config=frozenset()
        )


class TestSimulateDropIdempotence:
    def test_simulate_is_idempotent(self, backend):
        user = backend.catalog.index_for("events", "user_id")
        backend.simulate_index(user)
        backend.simulate_index(user)
        assert backend.simulated_indexes() == frozenset({user})
        assert user in backend.current_config()

    def test_drop_is_idempotent(self, backend):
        user = backend.catalog.index_for("events", "user_id")
        backend.simulate_index(user)
        backend.drop_simulated_index(user)
        backend.drop_simulated_index(user)
        assert backend.simulated_indexes() == frozenset()
        assert user not in backend.current_config()

    def test_drop_of_never_simulated_index_is_a_no_op(self, backend):
        day = backend.catalog.index_for("events", "day")
        backend.drop_simulated_index(day)
        assert backend.simulated_indexes() == frozenset()

    def test_simulated_index_prices_into_default_config(self, backend):
        user = backend.catalog.index_for("events", "user_id")
        q = eq_query(7)
        explicit = backend.get_cost(q, config=frozenset({user}))
        backend.simulate_index(user)
        try:
            assert backend.get_cost(q) == explicit
        finally:
            backend.drop_simulated_index(user)


class TestStatsTokenInvalidation:
    def test_row_delta_changes_token(self, backend):
        before = backend.stats_token("events")
        backend.catalog.apply_row_delta("events", 1000)
        assert backend.stats_token("events") != before

    def test_token_does_not_revert_when_row_count_reverts(self, backend):
        # Truncate-refill: the row count round-trips back to its old
        # value, but the version component keeps the token fresh.
        before = backend.stats_token("events")
        backend.catalog.apply_row_delta("events", 1000)
        backend.catalog.apply_row_delta("events", -1000)
        assert backend.stats_token("events") != before

    def test_set_row_count_changes_token(self, backend):
        before = backend.stats_token("users")
        backend.catalog.set_row_count("users", 10_000)  # same count
        assert backend.stats_token("users") != before

    def test_refresh_stats_changes_token(self, backend):
        before = backend.stats_token("events")
        backend.refresh_stats("events")
        assert backend.stats_token("events") != before

    def test_tokens_are_per_table(self, backend):
        users_before = backend.stats_token("users")
        backend.catalog.apply_row_delta("events", 500)
        assert backend.stats_token("users") == users_before


class TestReverseWhatIfConsistency:
    """Pricing depends on the configuration, not on materialization.

    QueryGain's reverse direction (probe ``M - {I}`` for a materialized
    ``I``) is only sound if the cost of a configuration is the same
    whether its indexes are hypothetical or real -- the invariant this
    class pins on both backends.
    """

    def test_cost_is_invariant_under_materialization(self, backend):
        catalog = backend.catalog
        user = catalog.index_for("events", "user_id")
        q = eq_query(7)
        with_hyp = backend.get_cost(q, config=frozenset({user}))
        without_hyp = backend.get_cost(q, config=frozenset())
        catalog.materialize_index(user)
        try:
            assert backend.get_cost(q, config=frozenset({user})) == with_hyp
            assert backend.get_cost(q, config=frozenset()) == without_hyp
        finally:
            catalog.drop_index(user)

    def test_forward_and_reverse_gains_agree(self, backend):
        catalog = backend.catalog
        user = catalog.index_for("events", "user_id")
        q = eq_query(7)
        forward = backend.get_cost(q, config=frozenset()) - backend.get_cost(
            q, config=frozenset({user})
        )
        catalog.materialize_index(user)
        try:
            reverse = backend.get_cost(q, config=frozenset()) - backend.get_cost(
                q, config=frozenset({user})
            )
        finally:
            catalog.drop_index(user)
        assert forward == reverse
        assert forward > 0


class TestTraceBackendSpecifics:
    def test_miss_is_a_hard_backend_error(self):
        backend = TraceBackend(build_small_catalog(), CostTrace())
        with pytest.raises(TraceMissError):
            backend.get_cost(eq_query(7))
        assert isinstance(TraceMissError("x"), BackendError)

    def test_key_restricts_to_relevant_config(self):
        catalog = build_small_catalog()
        user = catalog.index_for("events", "user_id")
        score = catalog.index_for("users", "score")
        q = eq_query(7)
        assert trace_key(q, frozenset({user})) == trace_key(
            q, frozenset({user, score})
        )
        assert trace_key(q, frozenset({user})) != trace_key(q, frozenset())

    def test_replay_restores_indexes_used(self):
        catalog = build_small_catalog()
        backend = make_backend("trace", catalog)
        user = catalog.index_for("events", "user_id")
        result = backend.optimize(eq_query(7), config=frozenset({user}))
        assert user in result.plan.indexes_used()
        assert backend.replayed > 0

    def test_round_trips_through_json_files(self, tmp_path):
        catalog = build_small_catalog()
        recorder = CostTraceRecorder()
        live = LocalBackend(catalog, recorder=recorder)
        q = eq_query(7)
        cost = live.get_cost(q, config=frozenset())
        path = tmp_path / "trace.json"
        recorder.trace.save(path)
        replay = TraceBackend(build_small_catalog(), CostTrace.load(path))
        assert replay.get_cost(q, config=frozenset()) == cost

    def test_rejects_foreign_payloads(self):
        with pytest.raises(ValueError):
            CostTrace.from_json({"format": "something-else"})
        with pytest.raises(ValueError):
            CostTrace.from_json({"format": "repro-cost-trace", "version": 99})


def _shifting_workload():
    """120 queries shifting from the user_id cluster to the day cluster."""
    rng = random.Random(11)
    queries = []
    for i in range(120):
        if i < 60:
            queries.append(eq_query(rng.randint(1, 10_000)))
        else:
            queries.append(day_query(8000 + rng.randint(0, 1900)))
    return queries


class TestCrossBackendDifferential:
    """Live pricing vs. trace replay must make *bit-identical* decisions."""

    def test_replay_reproduces_live_run_exactly(self):
        config = ColtConfig(
            epoch_length=20,
            storage_budget_pages=6000.0,
            min_history_epochs=2,
        )
        workload = _shifting_workload()

        live_catalog = build_small_catalog()
        recorder = CostTraceRecorder()
        live = trace_run(
            live_catalog,
            workload,
            config,
            backend=LocalBackend(live_catalog, recorder=recorder),
        )

        replay_catalog = build_small_catalog()
        replay_backend = TraceBackend(replay_catalog, recorder.trace)
        replay = trace_run(
            replay_catalog, workload, config, backend=replay_backend
        )

        assert replay_backend.replayed > 0
        assert len(live.epochs) == len(replay.epochs) > 0
        for a, b in zip(live.epochs, replay.epochs):
            assert a.added == b.added
            assert a.dropped == b.dropped
            assert a.materialized == b.materialized
            assert a.hot == b.hot
            assert a.whatif_used == b.whatif_used
            assert a.budget_granted == b.budget_granted
            assert a.execution_cost == b.execution_cost  # exact, not approx
        assert live.to_json() == replay.to_json()

    def test_replay_with_wrong_workload_fails_loudly(self):
        config = ColtConfig(epoch_length=20, storage_budget_pages=6000.0)
        workload = _shifting_workload()
        live_catalog = build_small_catalog()
        recorder = CostTraceRecorder()
        trace_run(
            live_catalog,
            workload,
            config,
            backend=LocalBackend(live_catalog, recorder=recorder),
        )
        replay_catalog = build_small_catalog()
        foreign = [score_query(v) for v in range(40)]
        with pytest.raises(TraceMissError):
            trace_run(
                replay_catalog,
                foreign,
                config,
                backend=TraceBackend(replay_catalog, recorder.trace),
            )
