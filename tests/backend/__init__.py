"""Backend-protocol conformance and differential tests."""
