"""Unit tests for the HypoPG adapter against a fake DB-API connection.

No PostgreSQL server (or driver) exists in CI, so these tests exercise
the adapter's SQL emission, EXPLAIN parsing, hypothetical-index
bookkeeping, and capability degradation through an injected fake that
speaks just enough of the DB-API cursor protocol.
"""

import json

import pytest

from repro.backend.base import (
    BackendCapabilityError,
    BackendUnavailableError,
)
from repro.backend.hypopg import PostgresHypoBackend, driver_available
from repro.optimizer.whatif import WhatIfOptimizer
from repro.resilience.errors import WhatIfProbeError

from tests.fleet.workloads import build_small_catalog, eq_query


class FakeCursor:
    def __init__(self, conn):
        self._conn = conn
        self._rows = None

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def execute(self, sql, params=None):
        self._conn.statements.append((sql, params))
        self._rows = self._conn.respond(sql, params)

    def fetchall(self):
        if self._rows is None:
            raise RuntimeError("no results to fetch")
        return self._rows


class FakeConnection:
    """Just enough of PostgreSQL+HypoPG for the adapter's SQL surface.

    EXPLAIN answers with a cost that drops by 100 units per registered
    hypothetical index, scanning the newest one -- so forward what-if
    probes observe positive gains.
    """

    def __init__(self):
        self.statements = []
        self.hypo = {}  # oid -> index name
        self._next_oid = 100
        self.n_mod = 0
        self.last_analyze = ""

    def cursor(self):
        return FakeCursor(self)

    def respond(self, sql, params):
        if sql.startswith("CREATE EXTENSION"):
            return None
        if "hypopg_create_index" in sql:
            self._next_oid += 1
            name = f"<{self._next_oid}>btree_hypo"
            self.hypo[self._next_oid] = name
            return [(self._next_oid, name)]
        if "hypopg_drop_index" in sql:
            self.hypo.pop(params[0], None)
            return [(True,)]
        if sql.startswith("EXPLAIN"):
            plan = {"Total Cost": 1000.0 - 100.0 * len(self.hypo)}
            if self.hypo:
                newest = self.hypo[max(self.hypo)]
                plan["Plans"] = [{"Index Name": newest, "Total Cost": 1.0}]
            return [(json.dumps([{"Plan": plan}]),)]
        if sql.startswith("ANALYZE"):
            self.n_mod = 0
            self.last_analyze = f"analyze-{len(self.statements)}"
            return None
        if "pg_class" in sql:
            if params and params[0] not in ("events", "users"):
                return []
            return [(1_000_000.0, self.n_mod, self.last_analyze)]
        return []


@pytest.fixture
def conn():
    return FakeConnection()


@pytest.fixture
def backend(conn):
    return PostgresHypoBackend(connection=conn, catalog=build_small_catalog())


class TestConstruction:
    def test_unavailable_without_driver_or_connection(self, monkeypatch):
        monkeypatch.setattr(
            "repro.backend.hypopg._import_driver", lambda: None
        )
        assert not driver_available()
        with pytest.raises(BackendUnavailableError):
            PostgresHypoBackend(dsn="postgres://nowhere")

    def test_injected_connection_needs_no_driver(self, backend, conn):
        assert conn.statements[0][0].startswith("CREATE EXTENSION")

    def test_capabilities(self, backend):
        caps = backend.capabilities
        assert caps.name == "hypopg"
        assert not caps.reverse_whatif
        assert not caps.produces_plans
        assert caps.hypothetical_indexes

    def test_catalog_mirror_is_optional_but_guarded(self, conn):
        backend = PostgresHypoBackend(connection=conn)
        with pytest.raises(BackendCapabilityError):
            backend.catalog


class TestHypotheticalIndexes:
    def test_simulate_emits_create_and_is_idempotent(self, backend, conn):
        user = backend.catalog.index_for("events", "user_id")
        backend.simulate_index(user)
        backend.simulate_index(user)
        creates = [s for s, _ in conn.statements if "hypopg_create_index" in s]
        assert len(creates) == 1
        assert backend.simulated_indexes() == frozenset({user})

    def test_drop_emits_drop_by_oid(self, backend, conn):
        user = backend.catalog.index_for("events", "user_id")
        backend.simulate_index(user)
        backend.drop_simulated_index(user)
        backend.drop_simulated_index(user)  # no-op
        drops = [p for s, p in conn.statements if "hypopg_drop_index" in s]
        assert len(drops) == 1
        assert not conn.hypo


class TestPricing:
    def test_explain_cost_parsed_from_json(self, backend):
        assert backend.get_cost(eq_query(7)) == 1000.0

    def test_optimize_simulates_then_cleans_up(self, backend, conn):
        user = backend.catalog.index_for("events", "user_id")
        cost = backend.get_cost(eq_query(7), config=frozenset({user}))
        assert cost == 900.0
        assert backend.simulated_indexes() == frozenset()  # restored
        assert not conn.hypo  # dropped server-side too

    def test_used_indexes_matched_back_to_defs(self, backend):
        user = backend.catalog.index_for("events", "user_id")
        result = backend.optimize(eq_query(7), config=frozenset({user}))
        assert user in result.plan.indexes_used()

    def test_reverse_whatif_of_materialized_index_refused(self, backend):
        user = backend.catalog.index_for("events", "user_id")
        backend.catalog.materialize_index(user)
        with pytest.raises(BackendCapabilityError):
            backend.get_cost(eq_query(7), config=frozenset())

    def test_whatif_layer_degrades_reverse_probe_to_probe_error(self, backend):
        # The profiler absorbs WhatIfProbeError as probe noise; the
        # forward gain measured earlier in the batch must ride along.
        user = backend.catalog.index_for("events", "user_id")
        day = backend.catalog.index_for("events", "day")
        backend.catalog.materialize_index(user)
        whatif = WhatIfOptimizer(backend=backend)
        session = whatif.begin_query(eq_query(7))
        with pytest.raises(WhatIfProbeError) as err:
            whatif.what_if_optimize(session, [day, user])
        assert day in err.value.partial_gains


class TestStatistics:
    def test_stats_token_reads_server_statistics(self, backend, conn):
        before = backend.stats_token("events")
        conn.n_mod = 42
        assert backend.stats_token("events") != before

    def test_refresh_stats_issues_analyze(self, backend, conn):
        before = backend.stats_token("events")
        backend.refresh_stats("events")
        assert any(s.startswith("ANALYZE") for s, _ in conn.statements)
        assert backend.stats_token("events") != before

    def test_unknown_table_yields_empty_token(self, backend):
        assert backend.stats_token("no_such_table") == (0.0, 0, "")
