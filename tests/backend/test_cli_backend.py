"""CLI coverage for ``--backend`` / trace record-replay / ``--engine``.

The round-trip test drives the exact workflow CI's parity gate uses:
record a cost trace from a live run, replay it with ``--backend
trace``, and require the two runs' reports to be identical.
"""

import pytest

from repro.cli import EXIT_ERROR, EXIT_SNAPSHOT, build_parser, main

FAST_RUN = ["run", "--queries", "30", "--seed", "2"]


class TestParsing:
    def test_backend_defaults_to_local(self):
        args = build_parser().parse_args(["run"])
        assert args.backend == "local"
        assert args.record_trace is None
        assert args.trace is None

    def test_unknown_backend_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--backend", "oracle"])

    def test_check_snapshot_engine_choices(self):
        args = build_parser().parse_args(
            ["check-snapshot", "x.json", "--engine", "bandit"]
        )
        assert args.engine == "bandit"


class TestRecordReplayRoundTrip:
    def test_replay_report_is_identical_to_live(self, capsys, tmp_path):
        trace = tmp_path / "costs.json"
        assert main(FAST_RUN + ["--record-trace", str(trace)]) == 0
        recorded = capsys.readouterr().out
        assert "cost trace recorded" in recorded
        assert trace.exists()

        assert main(FAST_RUN) == 0
        live = capsys.readouterr().out

        assert (
            main(FAST_RUN + ["--backend", "trace", "--trace", str(trace)]) == 0
        )
        replayed = capsys.readouterr().out
        assert replayed == live

    def test_bandit_engine_records_and_replays(self, capsys, tmp_path):
        trace = tmp_path / "costs.json"
        bandit = FAST_RUN + ["--engine", "bandit"]
        assert main(bandit + ["--record-trace", str(trace)]) == 0
        capsys.readouterr()
        assert main(bandit) == 0
        live = capsys.readouterr().out
        assert (
            main(bandit + ["--backend", "trace", "--trace", str(trace)]) == 0
        )
        assert capsys.readouterr().out == live

    def test_trace_meta_describes_the_run(self, tmp_path, capsys):
        from repro.backend.trace import CostTrace

        trace = tmp_path / "costs.json"
        assert main(FAST_RUN + ["--record-trace", str(trace)]) == 0
        capsys.readouterr()
        loaded = CostTrace.load(trace)
        assert loaded.meta["workload"] == "stable"
        assert loaded.meta["seed"] == 2
        assert loaded.meta["engine"] == "colt"
        assert len(loaded) > 0


class TestBackendFlagErrors:
    def test_trace_backend_requires_trace_path(self, capsys):
        assert main(FAST_RUN + ["--backend", "trace"]) == EXIT_ERROR
        assert "requires --trace" in capsys.readouterr().err

    def test_record_trace_requires_local_backend(self, capsys, tmp_path):
        trace = tmp_path / "t.json"
        trace.write_text("{}")
        assert (
            main(
                FAST_RUN
                + [
                    "--backend",
                    "trace",
                    "--trace",
                    str(trace),
                    "--record-trace",
                    str(tmp_path / "out.json"),
                ]
            )
            == EXIT_ERROR
        )
        assert "--record-trace requires" in capsys.readouterr().err

    def test_stray_trace_flag_rejected(self, capsys, tmp_path):
        trace = tmp_path / "t.json"
        trace.write_text("{}")
        assert main(FAST_RUN + ["--trace", str(trace)]) == EXIT_ERROR
        assert "--backend trace" in capsys.readouterr().err

    def test_stray_dsn_rejected(self, capsys):
        assert main(FAST_RUN + ["--dsn", "postgres://x"]) == EXIT_ERROR
        assert "--backend hypopg" in capsys.readouterr().err

    @pytest.mark.parametrize("engine", ["offline", "continuous"])
    def test_baseline_engines_price_locally(self, capsys, engine, tmp_path):
        trace = tmp_path / "t.json"
        trace.write_text("{}")
        assert (
            main(
                FAST_RUN
                + [
                    "--engine",
                    engine,
                    "--backend",
                    "trace",
                    "--trace",
                    str(trace),
                ]
            )
            == EXIT_ERROR
        )
        assert "on-line engine" in capsys.readouterr().err

    def test_hypopg_without_driver_is_a_backend_error(
        self, capsys, monkeypatch
    ):
        monkeypatch.setattr(
            "repro.backend.hypopg._import_driver", lambda: None
        )
        assert (
            main(FAST_RUN + ["--backend", "hypopg", "--dsn", "postgres://x"])
            == EXIT_ERROR
        )
        err = capsys.readouterr().err
        assert "backend error" in err
        assert "Traceback" not in err

    def test_corrupt_trace_file_reported(self, capsys, tmp_path):
        trace = tmp_path / "bad.json"
        trace.write_text('{"format": "something-else"}')
        assert (
            main(FAST_RUN + ["--backend", "trace", "--trace", str(trace)])
            == EXIT_ERROR
        )
        assert "error" in capsys.readouterr().err


class TestCheckSnapshotEngine:
    def _write(self, tmp_path, engine):
        from repro.bandit import BanditConfig, BanditTuner
        from repro.core import ColtConfig, ColtTuner
        from repro.persist import save_json, snapshot_any
        from repro.workload import build_catalog

        if engine == "bandit":
            tuner = BanditTuner(
                build_catalog(), BanditConfig(storage_budget_pages=6000.0)
            )
        else:
            tuner = ColtTuner(
                build_catalog(), ColtConfig(storage_budget_pages=6000.0)
            )
        path = tmp_path / f"{engine}.json"
        save_json(path, snapshot_any(tuner))
        return path

    @pytest.mark.parametrize("engine", ["colt", "bandit"])
    def test_matching_engine_passes(self, capsys, tmp_path, engine):
        path = self._write(tmp_path, engine)
        assert main(["check-snapshot", str(path), "--engine", engine]) == 0
        assert f"engine {engine}" in capsys.readouterr().out

    @pytest.mark.parametrize(
        ("written", "requested"), [("colt", "bandit"), ("bandit", "colt")]
    )
    def test_mismatch_fails_with_snapshot_exit(
        self, capsys, tmp_path, written, requested
    ):
        path = self._write(tmp_path, written)
        assert (
            main(["check-snapshot", str(path), "--engine", requested])
            == EXIT_SNAPSHOT
        )
        err = capsys.readouterr().err
        assert "engine mismatch" in err
        assert "Traceback" not in err
