"""Tests for the multi-column (composite) index extension.

The paper defers multi-column indexes to future work (§2); this
reproduction implements them end to end: descriptors, sargability along
the key prefix, cost model, physical B+trees over tuple keys, execution,
and COLT candidate mining behind ``ColtConfig(composite_candidates=True)``.
"""

import random

import pytest

from repro.core import ColtConfig, ColtTuner
from repro.engine.datatypes import DataType
from repro.executor import execute
from repro.optimizer.access import extract_for_index
from repro.optimizer.optimizer import Optimizer, PlanCache
from repro.optimizer.plan import IndexScanNode
from repro.sql.ast import (
    BetweenPredicate,
    ColumnExpr,
    CompareOp,
    ComparisonPredicate,
    InPredicate,
    Query,
    SelectItem,
)
from repro.sql.binder import bind_query
from repro.sql.parser import parse_query


def _col(column, table="events"):
    return ColumnExpr(column, table)


def _eq(column, value, table="events"):
    return ComparisonPredicate(_col(column, table), CompareOp.EQ, value)


class TestDescriptor:
    def test_composite_identity(self, small_catalog):
        ab = small_catalog.composite_index_for("events", ["user_id", "day"])
        ba = small_catalog.composite_index_for("events", ["day", "user_id"])
        a = small_catalog.index_for("events", "user_id")
        assert ab != ba  # column order matters
        assert ab != a  # composite is not the single-column index
        assert ab.is_composite and not a.is_composite
        assert ab.columns == ("user_id", "day")
        assert ab.name == "ix_events_user_id_day"

    def test_key_width_sums(self, small_catalog):
        ab = small_catalog.composite_index_for("events", ["user_id", "day"])
        assert ab.key_width == DataType.INT.width + DataType.DATE.width

    def test_composite_bigger_than_single(self, small_catalog):
        ab = small_catalog.composite_index_for("events", ["user_id", "day"])
        a = small_catalog.index_for("events", "user_id")
        assert small_catalog.index_size_pages(ab) > small_catalog.index_size_pages(a)
        assert small_catalog.index_build_cost(ab) > small_catalog.index_build_cost(a)

    def test_validation(self, small_catalog):
        with pytest.raises(ValueError):
            small_catalog.composite_index_for("events", [])
        with pytest.raises(ValueError):
            small_catalog.composite_index_for("events", ["user_id", "user_id"])
        with pytest.raises(KeyError):
            small_catalog.composite_index_for("events", ["user_id", "zzz"])

    def test_materialization_no_collision_with_single(self, small_catalog):
        ab = small_catalog.composite_index_for("events", ["user_id", "day"])
        a = small_catalog.index_for("events", "user_id")
        small_catalog.materialize_index(ab)
        assert small_catalog.is_materialized(ab)
        assert not small_catalog.is_materialized(a)


class TestSargability:
    def test_full_prefix_equality(self, small_catalog):
        index = small_catalog.composite_index_for("events", ["user_id", "day"])
        sarg = extract_for_index(index, [_eq("user_id", 5), _eq("day", 8000)])
        assert sarg.prefix_values == (5,)
        assert sarg.lookup_value == 8000
        assert len(sarg.consumed) == 2

    def test_prefix_eq_plus_range(self, small_catalog):
        index = small_catalog.composite_index_for("events", ["user_id", "day"])
        preds = [
            _eq("user_id", 5),
            BetweenPredicate(_col("day"), 8000, 8100),
        ]
        sarg = extract_for_index(index, preds)
        assert sarg.prefix_values == (5,)
        assert (sarg.range_low, sarg.range_high) == (8000, 8100)

    def test_leading_range_stops_descent(self, small_catalog):
        index = small_catalog.composite_index_for("events", ["user_id", "day"])
        preds = [
            BetweenPredicate(_col("user_id"), 1, 10),
            _eq("day", 8000),
        ]
        sarg = extract_for_index(index, preds)
        assert sarg.prefix_values == ()
        assert (sarg.range_low, sarg.range_high) == (1, 10)
        # The day predicate stays residual.
        assert len(sarg.consumed) == 1

    def test_no_leading_predicate_is_unusable(self, small_catalog):
        index = small_catalog.composite_index_for("events", ["user_id", "day"])
        assert extract_for_index(index, [_eq("day", 8000)]) is None

    def test_in_on_last_column(self, small_catalog):
        index = small_catalog.composite_index_for("events", ["user_id", "day"])
        preds = [_eq("user_id", 5), InPredicate(_col("day"), (8000, 8001))]
        sarg = extract_for_index(index, preds)
        assert sarg.prefix_values == (5,)
        assert sarg.in_values == (8000, 8001)
        assert sarg.num_lookups == 2


class TestOptimizerChoice:
    def test_composite_beats_single_on_conjunction(self, small_catalog):
        """With eq predicates on two columns, the composite absorbs both
        and costs less than either single-column index."""
        q = bind_query(
            parse_query(
                "select amount from events where user_id = 5 and day = 8000"
            ),
            small_catalog,
        )
        optimizer = Optimizer(small_catalog)
        single = frozenset([small_catalog.index_for("events", "user_id")])
        composite = frozenset(
            [small_catalog.composite_index_for("events", ["user_id", "day"])]
        )
        c_single = optimizer.optimize(q, config=single, cache=PlanCache()).cost
        c_comp = optimizer.optimize(q, config=composite, cache=PlanCache()).cost
        assert c_comp < c_single

    def test_relevant_config_includes_composites(self, small_catalog):
        q = bind_query(
            parse_query(
                "select amount from events where user_id = 5 and day = 8000"
            ),
            small_catalog,
        )
        index = small_catalog.composite_index_for("events", ["user_id", "day"])
        result = Optimizer(small_catalog).optimize(q, config=frozenset([index]))
        assert index in result.plan.indexes_used()


class TestExecution:
    def _expected(self, store, sql):
        q = bind_query(parse_query(sql), store.catalog)
        plan = Optimizer(store.catalog).optimize(q, config=frozenset()).plan
        return sorted(execute(plan, store))

    def _with_composite(self, store, sql, columns):
        index = store.catalog.composite_index_for("events", columns)
        store.build_index(index)
        q = bind_query(parse_query(sql), store.catalog)
        plan = Optimizer(store.catalog).optimize(
            q, config=frozenset([index]), cache=PlanCache()
        ).plan
        used = any(
            isinstance(n, IndexScanNode) and n.index == index
            for n in _walk(plan)
        )
        return sorted(execute(plan, store)), used

    def test_full_key_lookup(self, small_store):
        sql = "select amount from events where user_id = 17 and day = 8010"
        expected = self._expected(small_store, sql)
        got, used = self._with_composite(small_store, sql, ["user_id", "day"])
        assert used
        assert got == expected

    def test_prefix_plus_range(self, small_store):
        sql = (
            "select amount from events "
            "where user_id = 17 and day between 8000 and 9000"
        )
        expected = self._expected(small_store, sql)
        got, used = self._with_composite(small_store, sql, ["user_id", "day"])
        assert used
        assert got == expected

    def test_prefix_only_scan(self, small_store):
        sql = "select day from events where user_id = 17"
        expected = self._expected(small_store, sql)
        got, used = self._with_composite(small_store, sql, ["user_id", "day"])
        assert used
        assert got == expected

    def test_prefix_plus_in(self, small_store):
        sql = (
            "select amount from events "
            "where user_id = 17 and day in (8000, 8500, 9000)"
        )
        expected = self._expected(small_store, sql)
        got, _ = self._with_composite(small_store, sql, ["user_id", "day"])
        assert got == expected

    def test_residual_still_applied(self, small_store):
        sql = (
            "select amount from events "
            "where user_id = 17 and day = 8010 and amount > 100"
        )
        expected = self._expected(small_store, sql)
        got, _ = self._with_composite(small_store, sql, ["user_id", "day"])
        assert got == expected


class TestColtComposite:
    def _conjunctive_query(self, rng):
        return Query(
            tables=["events"],
            select=[SelectItem(expr=ColumnExpr("amount", "events"))],
            filters=[
                _eq("user_id", rng.randint(1, 10_000)),
                BetweenPredicate(_col("day"), 8000, 8000 + rng.randint(10, 50)),
            ],
        )

    def test_mining_includes_composites(self, small_catalog):
        config = ColtConfig(storage_budget_pages=9000.0, composite_candidates=True)
        tuner = ColtTuner(small_catalog, config)
        rng = random.Random(0)
        tuner.process_query(self._conjunctive_query(rng))
        mined = {ix.name for ix in tuner.profiler.candidates.candidates()}
        assert "ix_events_user_id" in mined
        assert "ix_events_day" in mined
        assert "ix_events_user_id_day" in mined

    def test_disabled_by_default(self, small_catalog):
        tuner = ColtTuner(small_catalog, ColtConfig(storage_budget_pages=9000.0))
        rng = random.Random(0)
        tuner.process_query(self._conjunctive_query(rng))
        mined = {ix.name for ix in tuner.profiler.candidates.candidates()}
        assert "ix_events_user_id_day" not in mined

    def test_full_loop_with_composites(self, small_catalog):
        """COLT with composite candidates completes a run and tunes."""
        config = ColtConfig(
            storage_budget_pages=9000.0,
            composite_candidates=True,
            min_history_epochs=2,
        )
        tuner = ColtTuner(small_catalog, config)
        rng = random.Random(1)
        for _ in range(150):
            tuner.process_query(self._conjunctive_query(rng))
        assert tuner.materialized_set
        assert small_catalog.materialized_size_pages() <= 9000.0

    def test_physical_store_builds_composite_trees(self, small_store):
        """Composite materializations through the scheduler produce real
        tuple-key trees the executor can use, and results stay correct."""
        from repro.executor import execute
        from repro.optimizer.optimizer import Optimizer, PlanCache

        catalog = small_store.catalog
        config = ColtConfig(
            storage_budget_pages=9000.0,
            composite_candidates=True,
            min_history_epochs=2,
        )
        tuner = ColtTuner(catalog, config, store=small_store)
        rng = random.Random(2)

        def query():
            return Query(
                tables=["events"],
                select=[SelectItem(expr=ColumnExpr("amount", "events"))],
                filters=[
                    _eq("user_id", rng.randint(1, 500)),
                    BetweenPredicate(
                        ColumnExpr("day", "events"), 8000, 8000 + rng.randint(50, 400)
                    ),
                ],
            )

        probe = query()
        reference = sorted(
            execute(
                Optimizer(catalog).optimize(probe, config=frozenset()).plan,
                small_store,
            )
        )
        for _ in range(150):
            tuner.process_query(query())
        for index in tuner.materialized_set:
            tree = small_store.tree(index)
            assert tree is not None
            assert len(tree) == len(small_store.heap(index.table))
        after = sorted(
            execute(
                Optimizer(catalog).optimize(probe, cache=PlanCache()).plan,
                small_store,
            )
        )
        assert after == reference


def _walk(plan):
    stack = [plan]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(node.children())
