"""Tests for the materialized-view extension."""

import pytest

from repro.engine.matview import (
    ViewDef,
    matching_view,
    view_gain,
    view_row_count,
    view_size_pages,
)
from repro.executor import execute
from repro.optimizer.optimizer import Optimizer, PlanCache
from repro.optimizer.plan import SeqScanNode, ViewScanNode
from repro.sql.binder import bind_query
from repro.sql.parser import parse_query


def _view(low=8000, high=8499, name="v_early_days"):
    return ViewDef(name=name, table="events", column="day", low=low, high=high)


def _q(catalog, sql):
    return bind_query(parse_query(sql), catalog)


class TestMatching:
    def test_contained_range_matches(self, small_catalog):
        view = _view()
        q = _q(small_catalog, "select amount from events where day between 8100 and 8200")
        assert matching_view(small_catalog, "events", q.filters, [view]) is view

    def test_overlapping_but_not_contained_rejected(self, small_catalog):
        view = _view()
        q = _q(small_catalog, "select amount from events where day between 8400 and 8600")
        assert matching_view(small_catalog, "events", q.filters, [view]) is None

    def test_eq_predicate_matches(self, small_catalog):
        view = _view()
        q = _q(small_catalog, "select amount from events where day = 8250")
        assert matching_view(small_catalog, "events", q.filters, [view]) is view

    def test_other_column_rejected(self, small_catalog):
        view = _view()
        q = _q(small_catalog, "select amount from events where user_id = 5")
        assert matching_view(small_catalog, "events", q.filters, [view]) is None

    def test_smallest_matching_view_preferred(self, small_catalog):
        wide = _view(8000, 9999, name="v_wide")
        narrow = _view(8000, 8499, name="v_narrow")
        q = _q(small_catalog, "select amount from events where day between 8100 and 8200")
        assert (
            matching_view(small_catalog, "events", q.filters, [wide, narrow])
            is narrow
        )

    def test_size_estimates(self, small_catalog):
        view = _view()  # 500 of 2000 days → about a quarter of the rows
        rows = view_row_count(small_catalog, view)
        assert 0.15 * 1_000_000 < rows < 0.35 * 1_000_000
        assert view_size_pages(small_catalog, view) > 0


class TestOptimizerIntegration:
    def test_view_scan_chosen_when_cheaper(self, small_catalog):
        small_catalog.materialize_view(_view())
        q = _q(small_catalog, "select amount from events where day between 8100 and 8110")
        plan = Optimizer(small_catalog).optimize(q, config=frozenset()).plan
        assert any(isinstance(n, ViewScanNode) for n in _walk(plan))

    def test_seq_scan_without_views(self, small_catalog):
        q = _q(small_catalog, "select amount from events where day between 8100 and 8110")
        plan = Optimizer(small_catalog).optimize(q, config=frozenset()).plan
        assert any(isinstance(n, SeqScanNode) for n in _walk(plan))

    def test_index_still_beats_view_for_point_queries(self, small_catalog):
        small_catalog.materialize_view(_view())
        index = small_catalog.index_for("events", "day")
        q = _q(small_catalog, "select amount from events where day = 8100")
        plan = Optimizer(small_catalog).optimize(q, config=frozenset([index])).plan
        from repro.optimizer.plan import IndexScanNode

        assert any(isinstance(n, IndexScanNode) for n in _walk(plan))

    def test_duplicate_view_name_rejected(self, small_catalog):
        small_catalog.materialize_view(_view())
        with pytest.raises(ValueError):
            small_catalog.materialize_view(_view(low=0, high=1))
        # Re-registering the identical view is fine (idempotent).
        small_catalog.materialize_view(_view())

    def test_view_gain_positive_and_restores_catalog(self, small_catalog):
        optimizer = Optimizer(small_catalog)
        queries = [
            _q(small_catalog, "select amount from events where day between 8100 and 8150"),
            _q(small_catalog, "select amount from events where day between 8200 and 8220"),
        ]
        gain = view_gain(optimizer, _view(), queries)
        assert gain > 0
        assert small_catalog.materialized_views() == []


class TestExecution:
    def test_view_scan_results_match_base(self, small_store):
        catalog = small_store.catalog
        view = ViewDef(
            name="v_slice", table="events", column="day", low=8100, high=8900
        )
        sql = "select user_id, amount from events where day between 8200 and 8400"
        q = _q(catalog, sql)
        reference = sorted(
            execute(Optimizer(catalog).optimize(q, config=frozenset()).plan, small_store)
        )

        small_store.build_view(view)
        plan = Optimizer(catalog).optimize(
            q, config=frozenset(), cache=PlanCache()
        ).plan
        assert any(isinstance(n, ViewScanNode) for n in _walk(plan))
        got = sorted(execute(plan, small_store))
        assert got == reference
        assert reference, "slice should be non-empty on the fixture data"

    def test_unmaterialized_view_raises(self, small_store):
        catalog = small_store.catalog
        catalog.materialize_view(_view(low=8000, high=9999, name="v_ghost"))
        q = _q(catalog, "select amount from events where day between 8100 and 8110")
        plan = Optimizer(catalog).optimize(q, config=frozenset()).plan
        if any(isinstance(n, ViewScanNode) for n in _walk(plan)):
            with pytest.raises(RuntimeError):
                execute(plan, small_store)

    def test_view_scan_does_less_physical_work(self, small_store):
        from repro.executor import CountingStore

        catalog = small_store.catalog
        view = ViewDef(
            name="v_narrow_slice", table="events", column="day", low=8100, high=8300
        )
        q = _q(catalog, "select amount from events where day between 8150 and 8250")

        base_counter = CountingStore(small_store)
        execute(Optimizer(catalog).optimize(q, config=frozenset()).plan, base_counter)

        small_store.build_view(view)
        plan = Optimizer(catalog).optimize(q, config=frozenset(), cache=PlanCache()).plan
        view_counter = CountingStore(small_store)
        execute(plan, view_counter)
        assert (
            view_counter.counters.total_physical_ops
            < base_counter.counters.total_physical_ops
        )


def _walk(plan):
    stack = [plan]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(node.children())
