"""End-to-end guardrails on a live tuner: quarantine, advice, persistence.

These tests run the adversarial ``facts`` scenario from
``repro.workload.adversarial``: catalog statistics over-promise the
skewed column, so an unguarded COLT materializes and keeps
``ix_facts_f_skew`` while guardrails must catch the regression.
"""

import pytest

from repro.core.colt import ColtTuner
from repro.core.config import ColtConfig
from repro.guardrails import (
    AdviceBook,
    ExecutionObserver,
    GuardrailConfig,
    GuardrailManager,
    Verdict,
)
from repro.persist import restore_tuner, snapshot_tuner
from repro.workload import build_adversarial_store, misleading_workload

QUERIES = 240
SKEW_NAME = "ix_facts_f_skew"
HONEST_NAME = "ix_facts_f_grp"


def _run(advice=None, queries=QUERIES, guardrails=True):
    store = build_adversarial_store()
    catalog = store.catalog
    manager = (
        GuardrailManager(
            config=GuardrailConfig(),
            observer=ExecutionObserver(store),
            advice=advice,
        )
        if guardrails
        else None
    )
    tuner = ColtTuner(
        catalog,
        ColtConfig(epoch_length=20, storage_budget_pages=200.0),
        store=store,
        guardrails=manager,
    )
    workload = misleading_workload(catalog, length=queries, seed=1)
    outcomes = tuner.run(workload.queries)
    return store, tuner, manager, outcomes


def _skew_index(catalog):
    return catalog.index_for("facts", "f_skew")


def test_overpromised_index_is_quarantined_within_window():
    store, tuner, manager, outcomes = _run()
    skew = _skew_index(store.catalog)

    assert skew in manager.quarantine
    assert SKEW_NAME not in {ix.name for ix in tuner.materialized_set}
    # The quarantine decision surfaced on an epoch reorganization.
    quarantined = [
        ix.name
        for o in outcomes
        if o.reorganization is not None
        for ix in o.reorganization.quarantined
    ]
    assert SKEW_NAME in quarantined
    # ...and it happened within one verification window of materialization:
    # the verifier needed `verify_window` samples, budgeted per epoch.
    entry = manager.quarantine.entry_for(skew)
    assert entry.ratio is not None and entry.ratio < manager.config.quarantine_ratio


def test_unguarded_tuner_keeps_the_bad_index():
    _, tuner, _, _ = _run(guardrails=False)
    assert SKEW_NAME in {ix.name for ix in tuner.materialized_set}


def test_honest_index_verifies_clean():
    store, tuner, manager, _ = _run()
    honest = store.catalog.index_for("facts", "f_grp")
    assert HONEST_NAME in {ix.name for ix in tuner.materialized_set}
    assert honest not in manager.quarantine
    assert manager.verdict_for(honest) is not Verdict.REGRESSED


def test_pinned_index_survives_regression():
    advice = AdviceBook.parse("pin facts.f_skew")
    store, tuner, manager, _ = _run(advice=advice)
    skew = _skew_index(store.catalog)

    # The DBA pinned it: REGRESSED verdicts are recorded but the index
    # is never quarantined and never leaves M.
    assert SKEW_NAME in {ix.name for ix in tuner.materialized_set}
    assert skew not in manager.quarantine
    rows = {row["index"]: row for row in manager.audit(tuner.materialized_set)}
    assert rows["facts.f_skew"]["pinned"]


def test_banned_index_never_materializes():
    advice = AdviceBook.parse("ban facts.f_skew")
    _, tuner, _, outcomes = _run(advice=advice)
    ever_materialized = {
        ix.name
        for o in outcomes
        if o.reorganization is not None
        for ix in o.reorganization.materialize
    }
    assert SKEW_NAME not in ever_materialized
    assert SKEW_NAME not in {ix.name for ix in tuner.materialized_set}


def test_verification_overhead_is_accounted():
    _, _, _, outcomes = _run()
    calls = sum(o.verify_calls for o in outcomes)
    overhead = sum(o.verify_overhead for o in outcomes)
    assert calls > 0
    assert overhead > 0.0  # execution observer charges shadow runs


def test_snapshot_round_trip_preserves_guardrail_state():
    advice = AdviceBook.parse("prefer facts.f_grp 1.5")
    store, tuner, manager, _ = _run(advice=advice)
    skew = _skew_index(store.catalog)
    assert skew in manager.quarantine

    snapshot = snapshot_tuner(tuner)
    assert "guardrails" in snapshot

    fresh_store = build_adversarial_store()
    restored = restore_tuner(
        fresh_store.catalog,
        snapshot,
        store=fresh_store,
        observer=ExecutionObserver(fresh_store),
    )
    restored_manager = restored.guardrails
    assert restored_manager is not None

    # Quarantine state (entry, strikes, clocks) survived the restart.
    entry = restored_manager.quarantine.entry_for(skew)
    original = manager.quarantine.entry_for(skew)
    assert entry is not None
    assert entry.state == original.state
    assert entry.strikes == original.strikes
    assert entry.ratio == pytest.approx(original.ratio)
    # Advice and config survived too.
    assert restored_manager.advice.to_snapshot() == advice.to_snapshot()
    assert restored_manager.config == manager.config
    # A restart must not amnesty the bad index: run more queries and the
    # quarantined index must stay out of M while blocked.
    workload = misleading_workload(fresh_store.catalog, length=40, seed=3)
    restored.run(workload.queries)
    if skew in restored_manager.quarantine:
        blocked = {ix.name for ix in restored_manager.quarantine.blocked()}
        if SKEW_NAME in blocked:
            assert SKEW_NAME not in {
                ix.name for ix in restored.materialized_set
            }


def test_snapshot_without_guardrails_restores_none():
    store, tuner, _, _ = _run(guardrails=False)
    snapshot = snapshot_tuner(tuner)
    assert "guardrails" not in snapshot
    fresh = build_adversarial_store()
    restored = restore_tuner(fresh.catalog, snapshot, store=fresh)
    assert restored.guardrails is None
