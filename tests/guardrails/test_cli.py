"""CLI surfaces for the guardrail subsystem: audit and fleet-status."""

import json

import pytest

from repro.cli import EXIT_ERROR, build_parser, main


class TestAuditParsing:
    def test_defaults(self):
        args = build_parser().parse_args(["audit"])
        assert args.scenario == "misleading"
        assert args.guardrails == "on"
        assert not args.compare
        assert args.json_out is None

    def test_rejects_unknown_scenario(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["audit", "--scenario", "sunny"])

    def test_fleet_run_guardrails_flag(self):
        args = build_parser().parse_args(["fleet-run", "--guardrails", "on"])
        assert args.guardrails == "on"
        assert build_parser().parse_args(["fleet-run"]).guardrails == "off"


class TestAuditCommand:
    FAST = ["audit", "--queries", "160", "--seed", "1"]

    def test_audit_reports_quarantine(self, capsys):
        assert main(self.FAST) == 0
        out = capsys.readouterr().out
        assert "facts.f_skew" in out
        # The over-promised index is in quarantine (its verdict column
        # may already read "pending" again: dropping it reset evidence).
        assert "quarantined (cooldown" in out

    def test_audit_clean_scenario_no_false_positives(self, capsys):
        assert main(["audit", "--scenario", "clean", "--queries", "160"]) == 0
        out = capsys.readouterr().out
        assert "regressed" not in out
        assert "quarantined (cooldown" not in out

    def test_audit_compare_wins_and_writes_json(self, capsys, tmp_path):
        target = tmp_path / "audit.json"
        assert (
            main(
                [
                    "audit",
                    "--queries",
                    "240",
                    "--seed",
                    "1",
                    "--compare",
                    "--json",
                    str(target),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "regret saved" in out
        document = json.loads(target.read_text())
        assert document["scenario"] == "misleading"
        assert {"on", "off"} <= set(document["arms"])
        assert document["regret_saved"] > 0.0
        on = document["arms"]["on"]
        assert "ix_facts_f_skew" in on["quarantined"]

    def test_audit_respects_advice_file(self, capsys, tmp_path):
        advice = tmp_path / "advice.txt"
        advice.write_text("ban facts.f_skew\n")
        assert main(self.FAST + ["--advice", str(advice)]) == 0
        out = capsys.readouterr().out
        assert "ban" in out

    def test_audit_rejects_bad_advice_file(self, capsys, tmp_path):
        advice = tmp_path / "advice.txt"
        advice.write_text("pin facts.f_skew\nban facts.f_skew\n")
        assert main(self.FAST + ["--advice", str(advice)]) == EXIT_ERROR


class TestFleetStatusGuardrails:
    FLEET = [
        "fleet-run",
        "--replicas", "2",
        "--phase-length", "15",
        "--transition", "5",
        "--fleet-epoch", "10",
        "--seed", "3",
        "--guardrails", "on",
    ]

    def _snapshot(self, tmp_path, capsys):
        target = tmp_path / "state"
        assert main(self.FLEET + ["--snapshot-dir", str(target)]) == 0
        capsys.readouterr()
        return target

    def test_fleet_run_prints_rollout_summary(self, capsys, tmp_path):
        assert main(self.FLEET) == 0
        out = capsys.readouterr().out
        assert "rollouts:" in out
        assert "promoted:" in out

    def test_fleet_status_text_shows_quarantine_column(self, capsys, tmp_path):
        target = self._snapshot(tmp_path, capsys)
        assert main(["fleet-status", str(target)]) == 0
        out = capsys.readouterr().out
        assert "quarantined" in out

    def test_fleet_status_json_document(self, capsys, tmp_path):
        target = self._snapshot(tmp_path, capsys)
        assert main(["fleet-status", str(target), "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert len(document["replicas"]) == 2
        for entry in document["replicas"]:
            assert "quarantined" in entry
            assert entry["integrity"] == "OK"
        assert "rollouts" in document
        for rollout in document["rollouts"]:
            assert {"index", "stage", "canary"} <= set(rollout)
