"""Property tests: constrained knapsack honors pins, bans, and budget."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.knapsack import (
    KnapsackItem,
    SelectionConstraints,
    solve_constrained,
    solve_knapsack,
)

_sizes = st.floats(min_value=0.25, max_value=40.0, allow_nan=False)
_values = st.floats(min_value=-5.0, max_value=50.0, allow_nan=False)


@st.composite
def _instances(draw):
    n = draw(st.integers(min_value=1, max_value=10))
    items = [
        KnapsackItem(key=f"ix{i}", size=draw(_sizes), value=draw(_values))
        for i in range(n)
    ]
    keys = [item.key for item in items]
    pinned = draw(st.sets(st.sampled_from(keys), max_size=min(3, n)))
    bannable = [k for k in keys if k not in pinned]
    banned = (
        draw(st.sets(st.sampled_from(bannable), max_size=min(3, len(bannable))))
        if bannable
        else set()
    )
    preferred = tuple(
        (k, draw(st.floats(min_value=0.1, max_value=4.0)))
        for k in draw(st.sets(st.sampled_from(keys), max_size=2))
    )
    capacity = draw(st.floats(min_value=1.0, max_value=80.0))
    constraints = SelectionConstraints(
        pinned=frozenset(pinned), banned=frozenset(banned), preferred=preferred
    )
    return items, capacity, constraints


@settings(max_examples=200, deadline=None)
@given(_instances())
def test_pins_always_selected_bans_never(instance):
    items, capacity, constraints = instance
    selected, _ = solve_constrained(items, capacity, constraints)
    chosen = {item.key for item in selected}
    assert constraints.pinned <= chosen
    assert not (constraints.banned & chosen)


@settings(max_examples=200, deadline=None)
@given(_instances())
def test_free_items_respect_residual_capacity(instance):
    items, capacity, constraints = instance
    selected, _ = solve_constrained(items, capacity, constraints)
    # Pins may knowingly exceed the budget; the *free* items must fit in
    # whatever capacity the pins leave behind.
    pinned_size = sum(
        item.size for item in selected if item.key in constraints.pinned
    )
    free_size = sum(
        item.size for item in selected if item.key not in constraints.pinned
    )
    assert free_size <= max(0.0, capacity - pinned_size) + 1e-9


@settings(max_examples=100, deadline=None)
@given(_instances())
def test_empty_constraints_match_plain_solver(instance):
    items, capacity, _ = instance
    selected, total = solve_constrained(
        items, capacity, SelectionConstraints()
    )
    _, plain_total = solve_knapsack(items, capacity)
    assert total == pytest.approx(plain_total)
    assert sum(item.size for item in selected) <= capacity + 1e-9


def test_pin_overrides_negative_value_and_budget():
    items = [KnapsackItem(key="bad", size=100.0, value=-7.0)]
    constraints = SelectionConstraints(pinned=frozenset({"bad"}))
    selected, total = solve_constrained(items, 10.0, constraints)
    assert [item.key for item in selected] == ["bad"]
    assert total == pytest.approx(-7.0)


def test_preference_tilts_a_tie():
    items = [
        KnapsackItem(key="a", size=1.0, value=10.0),
        KnapsackItem(key="b", size=1.0, value=10.0),
    ]
    constraints = SelectionConstraints(preferred=(("b", 2.0),))
    selected, _ = solve_constrained(items, 1.0, constraints)
    assert [item.key for item in selected] == ["b"]


def test_pin_ban_overlap_rejected():
    with pytest.raises(ValueError, match="pinned and banned"):
        SelectionConstraints(
            pinned=frozenset({"a"}), banned=frozenset({"a"})
        )


def test_nonpositive_preference_weight_rejected():
    with pytest.raises(ValueError, match="positive"):
        SelectionConstraints(preferred=(("a", 0.0),))
