"""DBA advice files: parsing, contradictions, resolution, round-trip."""

import pytest

from repro.guardrails.advice import (
    AdviceBook,
    AdviceError,
    parse_directive,
)
from tests.fleet.workloads import build_small_catalog


def test_parse_directives():
    assert parse_directive("pin events.user_id").verb == "pin"
    assert parse_directive("ban events.kind").target == "events.kind"
    directive = parse_directive("prefer events.day 2.5")
    assert directive.verb == "prefer"
    assert directive.weight == 2.5
    composite = parse_directive("pin events.user_id+day")
    assert composite.columns == ("user_id", "day")


@pytest.mark.parametrize(
    "line",
    [
        "pin",  # no target
        "freeze events.user_id",  # unknown verb
        "pin events.user_id 2.0",  # pin takes no weight
        "prefer events.day",  # prefer needs a weight
        "prefer events.day nope",  # non-numeric weight
        "prefer events.day 0",  # weight must be positive
        "pin user_id",  # no table qualifier
    ],
)
def test_parse_rejects_malformed(line):
    with pytest.raises(AdviceError):
        parse_directive(line)


def test_parse_book_skips_comments_and_blanks():
    book = AdviceBook.parse(
        """
        # production constraints
        pin events.user_id   # keep the login path fast

        ban events.kind
        prefer events.day 2.0
        """
    )
    assert len(book.directives) == 3


def test_pin_ban_contradiction_raises():
    with pytest.raises(AdviceError, match="pinned and banned"):
        AdviceBook.parse("pin events.user_id\nban events.user_id")


def test_last_directive_wins_per_verb():
    book = AdviceBook.parse("prefer events.day 2.0\nprefer events.day 3.0")
    (directive,) = book.directives
    assert directive.weight == 3.0


def test_resolve_against_catalog():
    catalog = build_small_catalog()
    book = AdviceBook.parse(
        "pin events.user_id\nban events.kind\nprefer events.day 2.0"
    )
    pinned, banned, preferred = book.resolve(catalog)
    assert [ix.name for ix in pinned] == ["ix_events_user_id"]
    assert [ix.name for ix in banned] == ["ix_events_kind"]
    assert [(ix.name, w) for ix, w in preferred] == [("ix_events_day", 2.0)]


def test_resolve_unknown_column_raises():
    catalog = build_small_catalog()
    with pytest.raises(AdviceError, match="unknown column"):
        AdviceBook.parse("pin events.no_such").resolve(catalog)
    with pytest.raises(AdviceError, match="unknown table"):
        AdviceBook.parse("pin nope.user_id").resolve(catalog)


def test_snapshot_round_trip():
    book = AdviceBook.parse(
        "pin events.user_id\nban events.kind\nprefer events.day 2.0"
    )
    restored = AdviceBook.from_snapshot(book.to_snapshot())
    assert restored.to_snapshot() == book.to_snapshot()


def test_load_from_file(tmp_path):
    path = tmp_path / "advice.txt"
    path.write_text("pin events.user_id\n# comment\nban events.kind\n")
    book = AdviceBook.load(path)
    assert len(book.directives) == 2
