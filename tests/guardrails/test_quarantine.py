"""Quarantine lifecycle: cooldown, parole, re-trips, persistence."""

from repro.guardrails.quarantine import Quarantine
from tests.fleet.workloads import build_small_catalog


def _indexes():
    catalog = build_small_catalog()
    return catalog.index_for("events", "user_id"), catalog.index_for(
        "events", "day"
    )


def test_admit_blocks_until_cooldown():
    index, _ = _indexes()
    quarantine = Quarantine(cooldown_epochs=3)
    entry = quarantine.admit(index, ratio=0.1)
    assert entry.state == "quarantined"
    assert entry.cooldown_remaining == 3
    assert index in quarantine
    assert [ix.name for ix in quarantine.blocked()] == [index.name]

    for remaining in (2, 1, 0):
        quarantine.tick_epoch(materialized=[])
        assert quarantine.entry_for(index).cooldown_remaining == remaining
    # Cooldown served: the entry is on parole, ban lifted.
    assert quarantine.entry_for(index).state == "parole"
    assert quarantine.blocked() == []


def test_parole_expires_unused():
    index, _ = _indexes()
    quarantine = Quarantine(cooldown_epochs=2)
    quarantine.admit(index, ratio=0.2)
    quarantine.tick_epoch([])
    # The tick that ends cooldown starts parole AND counts as its first
    # unused epoch.
    quarantine.tick_epoch([])
    assert quarantine.entry_for(index).state == "parole"
    assert quarantine.entry_for(index).parole_ticks == 1
    # A second epoch with the index never re-materialized: released.
    released = quarantine.tick_epoch([])
    assert [ix.name for ix in released] == [index.name]
    assert index not in quarantine
    assert quarantine.total_releases == 1


def test_parole_clock_holds_while_rematerialized():
    index, _ = _indexes()
    quarantine = Quarantine(cooldown_epochs=2)
    quarantine.admit(index, ratio=0.2)
    quarantine.tick_epoch([])
    quarantine.tick_epoch([])  # -> parole
    # Re-materialized: re-verification is running, parole clock holds.
    for _ in range(5):
        assert quarantine.tick_epoch([index]) == []
    assert index in quarantine


def test_retrip_increments_strikes_and_restarts_cooldown():
    index, _ = _indexes()
    quarantine = Quarantine(cooldown_epochs=2)
    quarantine.admit(index, ratio=0.2)
    quarantine.tick_epoch([])
    quarantine.tick_epoch([])  # -> parole
    entry = quarantine.admit(index, ratio=0.1)  # second REGRESSED verdict
    assert entry.strikes == 2
    assert entry.state == "quarantined"
    assert entry.cooldown_remaining == 2
    assert quarantine.total_quarantines == 2


def test_clear_releases_outright():
    index, other = _indexes()
    quarantine = Quarantine()
    quarantine.admit(index, ratio=0.3)
    assert quarantine.clear(index)
    assert index not in quarantine
    assert not quarantine.clear(other)  # never admitted


def test_snapshot_round_trip_preserves_clocks():
    index, other = _indexes()
    quarantine = Quarantine(cooldown_epochs=4)
    quarantine.admit(index, ratio=0.15)
    quarantine.tick_epoch([])  # one epoch of cooldown served
    quarantine.admit(other, ratio=0.4)
    # Push `other`... keep index mid-cooldown; now serialize.
    snapshot = quarantine.to_snapshot()

    restored = Quarantine.from_snapshot(snapshot, build_small_catalog())
    assert len(restored) == 2
    entry = restored.entry_for(index)
    assert entry.state == "quarantined"
    assert entry.cooldown_remaining == 3  # clock survived, not reset
    assert entry.ratio == 0.15
    assert restored.total_quarantines == quarantine.total_quarantines

    # The restored clock keeps ticking from where it stopped.
    for _ in range(3):
        restored.tick_epoch([])
    assert restored.entry_for(index).state == "parole"


def test_snapshot_round_trip_preserves_parole():
    index, _ = _indexes()
    quarantine = Quarantine(cooldown_epochs=2)
    quarantine.admit(index, ratio=0.2)
    quarantine.tick_epoch([])
    quarantine.tick_epoch([])  # -> parole, first unused parole tick

    restored = Quarantine.from_snapshot(
        quarantine.to_snapshot(), build_small_catalog()
    )
    entry = restored.entry_for(index)
    assert entry.state == "parole"
    assert entry.parole_ticks == 1
    # One more unused parole epoch releases it, same as the original.
    released = restored.tick_epoch([])
    assert [ix.name for ix in released] == [index.name]
