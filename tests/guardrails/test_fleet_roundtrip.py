"""Fleet snapshots carry guardrail state: quarantine + rollout survive."""

from repro.core.config import ColtConfig
from repro.fleet.coordinator import FleetCoordinator
from repro.fleet.snapshots import restore_fleet, save_fleet, snapshot_fleet
from repro.guardrails.manager import GuardrailConfig
from repro.guardrails.rollout import RolloutStage
from tests.fleet.workloads import build_small_catalog, day_query, eq_query


def make_fleet(n=2, guardrails=True):
    return FleetCoordinator(
        build_small_catalog,
        n_replicas=n,
        config=ColtConfig(
            storage_budget_pages=6000.0, epoch_length=5, min_history_epochs=2
        ),
        policy="affinity",
        fleet_epoch_length=10,
        guardrails=GuardrailConfig() if guardrails else None,
    )


def warm_fleet(fleet, n=40):
    for i in range(n):
        query = eq_query(i + 1) if i % 2 == 0 else day_query(8000 + i)
        fleet.process_query(query)
    return fleet


def test_manifest_carries_quarantine_and_rollout():
    fleet = warm_fleet(make_fleet())
    # Force one quarantine entry so the manifest has something to carry.
    replica = fleet.replicas[0]
    index = replica.catalog.index_for("events", "kind")
    replica.tuner.guardrails.quarantine.admit(index, ratio=0.2)

    manifest = snapshot_fleet(fleet)
    entry = next(
        e for e in manifest["replicas"] if e["replica_id"] == replica.replica_id
    )
    assert "ix_events_kind" in entry["quarantined"]
    assert "rollout" in manifest
    assert manifest["rollout"]["records"] or manifest["rollout"]["baseline"]


def test_manifest_omits_rollout_without_guardrails():
    fleet = warm_fleet(make_fleet(guardrails=False))
    manifest = snapshot_fleet(fleet)
    assert "rollout" not in manifest
    for entry in manifest["replicas"]:
        assert entry["quarantined"] == []


def test_round_trip_preserves_quarantine_and_rollout(tmp_path):
    fleet = warm_fleet(make_fleet())
    replica = fleet.replicas[0]
    index = replica.catalog.index_for("events", "kind")
    replica.tuner.guardrails.quarantine.admit(index, ratio=0.2)
    stages = {
        f"{r.index.table}.{'+'.join(r.index.columns)}": r.stage
        for r in fleet.rollout.records
    }

    save_fleet(tmp_path, fleet)
    restored = restore_fleet(tmp_path, build_small_catalog)

    # Per-replica quarantine came back through the tuner snapshots.
    r0 = next(
        r for r in restored.replicas if r.replica_id == replica.replica_id
    )
    assert "ix_events_kind" in r0.quarantined_names
    entry = r0.tuner.guardrails.quarantine.entry_for(index)
    assert entry is not None and entry.state == "quarantined"

    # The staged-rollout controller came back through the manifest.
    assert restored.rollout is not None
    restored_stages = {
        f"{r.index.table}.{'+'.join(r.index.columns)}": r.stage
        for r in restored.rollout.records
    }
    assert restored_stages == stages
    # A restored fleet keeps tuning: quarantined index stays banned.
    warm_fleet(restored, n=20)
    assert "ix_events_kind" not in {
        ix.name for ix in r0.tuner.materialized_set
    }


def test_round_trip_without_guardrails(tmp_path):
    fleet = warm_fleet(make_fleet(guardrails=False))
    save_fleet(tmp_path, fleet)
    restored = restore_fleet(tmp_path, build_small_catalog)
    assert restored.rollout is None
    assert all(r.tuner.guardrails is None for r in restored.replicas)
    warm_fleet(restored, n=10)  # still serves queries


def test_rollout_promotes_across_restart(tmp_path):
    fleet = warm_fleet(make_fleet())
    save_fleet(tmp_path, fleet)
    restored = restore_fleet(tmp_path, build_small_catalog)
    # Keep running: canaries eventually verify (plan-cost observer means
    # observed == predicted) and promote on a later fleet epoch.
    warm_fleet(restored, n=60)
    assert restored.rollout is not None
    promoted = [
        r
        for r in restored.rollout.records
        if r.stage is RolloutStage.PROMOTED
    ]
    active = [
        r for r in restored.rollout.records if r.stage is RolloutStage.CANARY
    ]
    # Nothing rolled back on a clean workload.
    assert all(
        r.stage is not RolloutStage.ROLLED_BACK
        for r in restored.rollout.records
    )
    assert promoted or active or restored.rollout.records == []
