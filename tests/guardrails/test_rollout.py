"""Staged rollout: canary promotion, rollback, reassignment, persistence."""

import pytest

from repro.fleet.replica import ReplicaHealth
from repro.guardrails.manager import GuardrailManager
from repro.guardrails.rollout import RolloutController, RolloutStage
from repro.guardrails.verify import Observation
from tests.fleet.workloads import build_small_catalog


class _FakeTuner:
    def __init__(self, materialized, guardrails):
        self.materialized_set = set(materialized)
        self.guardrails = guardrails


class _FakeReplica:
    """Just the surface reconcile() touches on a TunerReplica."""

    def __init__(self, replica_id, materialized=(), manager=None):
        self.replica_id = replica_id
        self.tuner = _FakeTuner(materialized, manager)
        self.health = ReplicaHealth.HEALTHY


def _index():
    return build_small_catalog().index_for("events", "user_id")


def _obs(p_with, p_without, o_with, o_without):
    return Observation(
        predicted_with=p_with,
        predicted_without=p_without,
        observed_with=o_with,
        observed_without=o_without,
    )


def _verify(manager, index, good=True, samples=8):
    observed_with = 10.0 if good else 90.0
    for _ in range(samples):
        manager.verifier.record(
            index, _obs(10.0, 100.0, observed_with, 100.0)
        )


def test_new_index_starts_canary_and_bans_other_replicas():
    index = _index()
    managers = [GuardrailManager(), GuardrailManager()]
    replicas = [
        _FakeReplica(0, [index], managers[0]),
        _FakeReplica(1, [], managers[1]),
    ]
    controller = RolloutController()
    summary = controller.reconcile(replicas)

    assert [ix.name for ix in summary.started] == [index.name]
    assert summary.active_canaries == 1
    record = controller.record_for(index)
    assert record.stage is RolloutStage.CANARY
    assert record.canary_id == 0
    # Only the non-canary replica is banned from materializing it.
    assert managers[0].rollout_bans == []
    assert [ix.name for ix in managers[1].rollout_bans] == [index.name]


def test_verified_canary_promotes_fleet_wide():
    index = _index()
    managers = [GuardrailManager(), GuardrailManager()]
    replicas = [
        _FakeReplica(0, [index], managers[0]),
        _FakeReplica(1, [], managers[1]),
    ]
    controller = RolloutController()
    controller.reconcile(replicas)
    _verify(managers[0], index, good=True)

    summary = controller.reconcile(replicas)
    assert [ix.name for ix in summary.promoted] == [index.name]
    assert controller.stage_for(index) is RolloutStage.PROMOTED
    assert managers[1].rollout_bans == []  # ban lifted
    # Promoted indexes join the baseline: no fresh canary on re-discovery.
    replicas[1].tuner.materialized_set.add(index)
    assert controller.reconcile(replicas).started == []


def test_regressed_canary_rolls_back_and_cooldown_expires():
    index = _index()
    managers = [GuardrailManager(), GuardrailManager()]
    replicas = [
        _FakeReplica(0, [index], managers[0]),
        _FakeReplica(1, [], managers[1]),
    ]
    controller = RolloutController(rollback_cooldown=2)
    controller.reconcile(replicas)
    _verify(managers[0], index, good=False)

    summary = controller.reconcile(replicas)
    assert [ix.name for ix in summary.rolled_back] == [index.name]
    assert controller.stage_for(index) is RolloutStage.ROLLED_BACK
    # Fleet-wide ban while the cooldown runs -- canary included.
    assert [ix.name for ix in managers[0].rollout_bans] == [index.name]
    assert [ix.name for ix in managers[1].rollout_bans] == [index.name]

    # The canary's own reorganization dropped it meanwhile.
    replicas[0].tuner.materialized_set.discard(index)
    controller.reconcile(replicas)  # cooldown 2 -> 1, still banned
    assert controller.stage_for(index) is RolloutStage.ROLLED_BACK
    summary = controller.reconcile(replicas)  # cooldown exhausted
    assert controller.record_for(index) is None
    assert managers[1].rollout_bans == []
    # A later materialization starts a *fresh* rollout.
    replicas[1].tuner.materialized_set.add(index)
    summary = controller.reconcile(replicas)
    assert [ix.name for ix in summary.started] == [index.name]
    assert controller.record_for(index).canary_id == 1


def test_quarantined_canary_counts_as_regressed():
    index = _index()
    manager = GuardrailManager()
    replicas = [_FakeReplica(0, [index], manager)]
    controller = RolloutController()
    controller.reconcile(replicas)
    manager.quarantine.admit(index, ratio=0.1)

    summary = controller.reconcile(replicas)
    assert [ix.name for ix in summary.rolled_back] == [index.name]


def test_dead_canary_reassigns_to_lowest_healthy_holder():
    index = _index()
    managers = [GuardrailManager() for _ in range(3)]
    replicas = [
        _FakeReplica(0, [index], managers[0]),
        _FakeReplica(1, [index], managers[1]),
        _FakeReplica(2, [index], managers[2]),
    ]
    controller = RolloutController()
    controller.reconcile(replicas)
    assert controller.record_for(index).canary_id == 0

    replicas[0].health = ReplicaHealth.DRAINED
    summary = controller.reconcile(replicas)
    assert summary.reassigned == 1
    record = controller.record_for(index)
    assert record.canary_id == 1
    assert record.reassignments == 1
    assert record.stage is RolloutStage.CANARY
    # The drained ex-canary is now "other": it picks up the ban too.
    assert [ix.name for ix in managers[0].rollout_bans] == [index.name]


def test_canary_dies_with_no_successor_cancels():
    index = _index()
    replicas = [
        _FakeReplica(0, [index], GuardrailManager()),
        _FakeReplica(1, [], GuardrailManager()),
    ]
    controller = RolloutController()
    controller.reconcile(replicas)

    replicas[0].health = ReplicaHealth.DRAINED
    summary = controller.reconcile(replicas)
    assert [ix.name for ix in summary.cancelled] == [index.name]
    assert controller.record_for(index) is None


def test_guardrail_free_canary_promotes_immediately():
    index = _index()
    replicas = [_FakeReplica(0, [index], manager=None)]
    controller = RolloutController()
    controller.reconcile(replicas)
    summary = controller.reconcile(replicas)
    assert [ix.name for ix in summary.promoted] == [index.name]


def test_baseline_indexes_never_canary():
    index = _index()
    controller = RolloutController(baseline=[index])
    replicas = [_FakeReplica(0, [index], GuardrailManager())]
    summary = controller.reconcile(replicas)
    assert summary.started == []
    assert controller.record_for(index) is None


def test_snapshot_round_trip_resumes_cooldown():
    catalog = build_small_catalog()
    index = catalog.index_for("events", "user_id")
    other = catalog.index_for("events", "day")
    manager = GuardrailManager()
    replicas = [_FakeReplica(0, [index, other], manager)]
    controller = RolloutController(baseline=[other], rollback_cooldown=3)
    controller.reconcile(replicas)
    _verify(manager, index, good=False)
    controller.reconcile(replicas)  # rolled back, cooldown 3

    restored = RolloutController.from_snapshot(
        controller.to_snapshot(), build_small_catalog()
    )
    record = restored.record_for(index)
    assert record.stage is RolloutStage.ROLLED_BACK
    assert record.cooldown_remaining == 3
    assert restored.stage_for(other) is None  # baseline survived
    replicas[0].tuner.materialized_set.discard(index)
    for _ in range(3):
        restored.reconcile(replicas)
    assert restored.record_for(index) is None


def test_rejects_bad_cooldown():
    with pytest.raises(ValueError):
        RolloutController(rollback_cooldown=0)
