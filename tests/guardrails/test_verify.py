"""Verification math: ratios, windows, trivial verdicts, observers."""

import pytest

from repro.engine.cost_params import CostParams
from repro.executor.instrument import ExecutionCounters
from repro.guardrails.verify import (
    ROWS_PER_SEQ_PAGE,
    IndexVerifier,
    Observation,
    PlanCostObserver,
    Verdict,
    observed_cost,
)
from tests.fleet.workloads import build_small_catalog


def _index():
    return build_small_catalog().index_for("events", "user_id")


def _obs(p_with, p_without, o_with, o_without):
    return Observation(
        predicted_with=p_with,
        predicted_without=p_without,
        observed_with=o_with,
        observed_without=o_without,
    )


def test_verdict_waits_for_window():
    verifier = IndexVerifier(window=3)
    index = _index()
    for _ in range(2):
        state = verifier.record(index, _obs(10.0, 100.0, 10.0, 100.0))
        assert state.verdict is Verdict.PENDING
    state = verifier.record(index, _obs(10.0, 100.0, 10.0, 100.0))
    assert state.verdict is Verdict.VERIFIED
    assert state.ratio == pytest.approx(1.0)


def test_regressed_when_observed_falls_short():
    verifier = IndexVerifier(window=2, quarantine_ratio=0.5)
    index = _index()
    # Predicted 90% savings; observed 10% savings -> ratio ~0.11.
    verifier.record(index, _obs(10.0, 100.0, 90.0, 100.0))
    state = verifier.record(index, _obs(10.0, 100.0, 90.0, 100.0))
    assert state.verdict is Verdict.REGRESSED
    assert state.ratio == pytest.approx((10.0 / 100.0) / (90.0 / 100.0))


def test_ratio_is_scale_free():
    """Observer units differ from optimizer units; ratio is unaffected."""
    verifier = IndexVerifier(window=1)
    # Observed costs are 1000x smaller but save the same fraction.
    state = verifier.record(_index(), _obs(20.0, 100.0, 0.02, 0.1))
    assert state.ratio == pytest.approx(1.0)
    assert state.verdict is Verdict.VERIFIED


def test_negligible_promise_is_trivially_verified():
    verifier = IndexVerifier(window=1, min_predicted_fraction=0.01)
    # Predicted savings 0.1% -- below the promise floor.
    state = verifier.record(_index(), _obs(99.9, 100.0, 200.0, 100.0))
    assert state.ratio is None
    assert state.verdict is Verdict.VERIFIED


def test_negative_observed_gain_regresses():
    verifier = IndexVerifier(window=1, quarantine_ratio=0.5)
    # The index plan was observed *worse* than the seq scan.
    state = verifier.record(_index(), _obs(10.0, 100.0, 150.0, 100.0))
    assert state.ratio < 0.0
    assert state.verdict is Verdict.REGRESSED


def test_reset_forgets_evidence():
    verifier = IndexVerifier(window=1)
    index = _index()
    verifier.record(index, _obs(10.0, 100.0, 10.0, 100.0))
    assert verifier.verdict_for(index) is Verdict.VERIFIED
    verifier.reset(index)
    assert verifier.verdict_for(index) is Verdict.PENDING
    assert verifier.needs_samples(index)


def test_snapshot_round_trip():
    catalog = build_small_catalog()
    verifier = IndexVerifier(window=2)
    index = catalog.index_for("events", "user_id")
    verifier.record(index, _obs(10.0, 100.0, 50.0, 100.0))
    verifier.record(index, _obs(10.0, 100.0, 50.0, 100.0))

    restored = IndexVerifier(window=2)
    restored.restore(verifier.to_snapshot(), build_small_catalog())
    state = restored.state_for(index)
    assert state is not None
    assert state.samples == 2
    assert state.verdict is verifier.state_for(index).verdict
    assert state.ratio == pytest.approx(verifier.state_for(index).ratio)


def test_plan_cost_observer_mirrors_predictions():
    observation = PlanCostObserver().observe(None, None, 12.5, 80.0)
    assert observation.observed_with == 12.5
    assert observation.observed_without == 80.0
    assert observation.charge == 0.0


def test_observed_cost_weighs_counters():
    params = CostParams()
    counters = ExecutionCounters(
        heap_rows_read=ROWS_PER_SEQ_PAGE,  # exactly one sequential page
        heap_cells_read=0,
        index_searches=1,
        index_entries_read=10,
    )
    cost = observed_cost(counters, params)
    expected = (
        ROWS_PER_SEQ_PAGE * (params.cpu_tuple_cost + params.seq_page_cost / ROWS_PER_SEQ_PAGE)
        + params.random_page_cost
        + 10 * (params.cpu_index_tuple_cost + params.random_page_cost)
    )
    assert cost == pytest.approx(expected)
    # Index entries drag random-page fetches: far pricier per row than
    # sequential heap reads -- the term a lying selectivity hides.
    per_index_row = params.cpu_index_tuple_cost + params.random_page_cost
    per_seq_row = params.cpu_tuple_cost + params.seq_page_cost / ROWS_PER_SEQ_PAGE
    assert per_index_row > 100 * per_seq_row


def test_verifier_rejects_bad_params():
    with pytest.raises(ValueError):
        IndexVerifier(window=0)
    with pytest.raises(ValueError):
        IndexVerifier(quarantine_ratio=0.0)
