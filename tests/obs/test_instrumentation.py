"""Tests that the instrumented components report truthful metrics.

Each test cross-checks a metric family against ground truth the
component already exposes (outcome ledgers, dashboard rows, breaker
transition logs), so a broken hook shows up as a disagreement rather
than just a zero.
"""

import random

import pytest

from repro.core import ColtConfig, ColtTuner
from repro.obs.registry import MetricsRegistry
from repro.resilience.breaker import CircuitBreaker

from tests.fleet.workloads import day_query, eq_query


def _tuner(small_catalog, **kwargs):
    config = ColtConfig(
        storage_budget_pages=6000.0, min_history_epochs=2
    )
    return ColtTuner(small_catalog, config, **kwargs)


def _run(tuner, n, seed=7):
    rng = random.Random(seed)
    outcomes = []
    for i in range(n):
        if i % 3 == 2:
            outcomes.append(tuner.process_query(day_query(8000 + i)))
        else:
            outcomes.append(
                tuner.process_query(eq_query(rng.randint(1, 10_000)))
            )
    return outcomes


class TestTunerCounters:
    def test_query_and_epoch_counts_match_ledger(self, small_catalog):
        tuner = _tuner(small_catalog)
        outcomes = _run(tuner, 47)
        registry = tuner.metrics
        assert registry.get("colt_queries_total").value() == 47
        epochs = sum(1 for o in outcomes if o.epoch_ended)
        assert registry.get("colt_epochs_total").value() == epochs
        assert len(tuner.dashboard.records) == epochs

    def test_cost_counters_match_outcome_ledger(self, small_catalog):
        tuner = _tuner(small_catalog)
        outcomes = _run(tuner, 40)
        registry = tuner.metrics
        assert registry.get("colt_whatif_calls_total").value() == sum(
            o.whatif_calls for o in outcomes
        )
        assert registry.get(
            "colt_whatif_overhead_cost_total"
        ).value() == pytest.approx(sum(o.whatif_overhead for o in outcomes))
        assert registry.get("colt_execution_cost_total").value() == pytest.approx(
            sum(o.execution_cost for o in outcomes)
        )
        assert registry.get("colt_build_cost_total").value() == pytest.approx(
            sum(o.build_cost for o in outcomes)
        )
        assert registry.get("colt_query_cost").count() == 40

    def test_gauges_reflect_current_state(self, small_catalog):
        tuner = _tuner(small_catalog)
        _run(tuner, 40)
        registry = tuner.metrics
        assert registry.get("colt_materialized_indexes").value() == len(
            tuner.materialized_set
        )
        assert registry.get("colt_whatif_budget").value() == (
            tuner.profiler.whatif_budget
        )


class TestOverheadDashboard:
    def test_spend_never_exceeds_grant(self, small_catalog):
        tuner = _tuner(small_catalog)
        _run(tuner, 60)
        rows = tuner.dashboard.to_rows()
        assert rows, "expected at least one closed epoch"
        for row in rows:
            assert row["spent"] <= row["granted"] <= row["requested"]
        assert tuner.dashboard.within_budget

    def test_snapshot_carries_overhead_and_spans(self, small_catalog):
        tuner = _tuner(small_catalog)
        _run(tuner, 30)
        snapshot = tuner.metrics_snapshot()
        assert len(snapshot["overhead"]) == len(tuner.dashboard.records)
        assert snapshot["spans"]["query"]["count"] == 30


class TestDisabledRegistry:
    def test_disabled_tuner_records_nothing(self, small_catalog):
        tuner = _tuner(
            small_catalog, registry=MetricsRegistry(enabled=False)
        )
        _run(tuner, 25)
        assert tuner.metrics.get("colt_queries_total").value() == 0
        assert tuner.metrics_snapshot()["spans"] == {}
        assert tuner.dashboard.records  # accounting itself still runs


class TestBreakerTransitions:
    def test_listener_counts_every_transition(self, small_catalog):
        registry = MetricsRegistry()
        breaker = CircuitBreaker(failure_threshold=2, cooldown_ticks=1)
        tuner = _tuner(small_catalog, breaker=breaker, registry=registry)
        for _ in range(2):
            breaker.record_failure()
        breaker.tick()  # cooldown elapses -> HALF_OPEN
        counter = tuner.metrics.get("breaker_transitions_total")
        assert counter.value(from_state="closed", to_state="open") == 1
        assert counter.value(from_state="open", to_state="half_open") == 1
        assert sum(
            s["value"] for s in counter.samples()
        ) == len(breaker.transitions)
