"""Metrics-contract tests: the catalog vs. what is actually exported.

External dashboards key on metric family names, types, and label sets.
These tests pin that contract: every spec in ``repro.obs.names.CATALOG``
must build cleanly, appear in the Prometheus export with its declared
``# TYPE``, and -- for the live tuner and fleet -- actually be
registered by the instrumented components.
"""

import random
import re

from repro.core import ColtConfig, ColtTuner
from repro.fleet.coordinator import FleetCoordinator
from repro.obs.export import to_prometheus_text
from repro.obs.names import (
    BACKEND_METRICS,
    BANDIT_METRICS,
    CATALOG,
    COTUNE_METRICS,
    FLEET_METRICS,
    GAINCACHE_METRICS,
    GUARDRAIL_METRICS,
    PROFILER_METRICS,
    REPLAY_METRICS,
    RESILIENCE_METRICS,
    SCHEDULER_METRICS,
    TUNER_METRICS,
)
from repro.obs.registry import MetricsRegistry

from tests.fleet.workloads import build_small_catalog, day_query, eq_query


def _type_lines(text):
    return dict(re.findall(r"^# TYPE (\S+) (\S+)$", text, flags=re.M))


class TestCatalogShape:
    def test_catalog_is_union_of_component_catalogs(self):
        union = {
            **TUNER_METRICS,
            **PROFILER_METRICS,
            **GAINCACHE_METRICS,
            **SCHEDULER_METRICS,
            **RESILIENCE_METRICS,
            **FLEET_METRICS,
            **BANDIT_METRICS,
            **GUARDRAIL_METRICS,
            **BACKEND_METRICS,
            **REPLAY_METRICS,
            **COTUNE_METRICS,
        }
        assert CATALOG == union

    def test_naming_conventions(self):
        for spec in CATALOG.values():
            if spec.kind == "counter":
                assert spec.name.endswith("_total"), spec.name
            else:
                assert not spec.name.endswith("_total"), spec.name
            if spec.kind == "histogram":
                assert spec.buckets, spec.name

    def test_every_spec_builds_and_exports(self):
        registry = MetricsRegistry()
        for spec in CATALOG.values():
            spec.build(registry)
        types = _type_lines(to_prometheus_text(registry.snapshot()))
        assert types == {spec.name: spec.kind for spec in CATALOG.values()}

    def test_exported_label_sets_match_specs(self):
        registry = MetricsRegistry()
        for spec in CATALOG.values():
            spec.build(registry)
        by_name = {f["name"]: f for f in registry.snapshot()}
        for spec in CATALOG.values():
            assert tuple(by_name[spec.name]["labelnames"]) == spec.labelnames


class TestLiveRegistration:
    def test_tuner_registers_every_core_family(self, small_catalog):
        tuner = ColtTuner(
            small_catalog,
            ColtConfig(storage_budget_pages=6000.0, min_history_epochs=2),
        )
        rng = random.Random(3)
        for _ in range(25):
            tuner.process_query(eq_query(rng.randint(1, 10_000)))
        names = set(tuner.metrics.names())
        expected = (
            set(TUNER_METRICS)
            | set(PROFILER_METRICS)
            | set(GAINCACHE_METRICS)
            | set(SCHEDULER_METRICS)
            | set(RESILIENCE_METRICS)
            | set(BACKEND_METRICS)
        )
        assert expected <= names

    def test_bandit_tuner_registers_every_bandit_family(self, small_catalog):
        from repro.bandit import BanditConfig, BanditTuner

        tuner = BanditTuner(
            small_catalog,
            BanditConfig(epoch_length=5, storage_budget_pages=6000.0),
        )
        rng = random.Random(3)
        for _ in range(25):
            tuner.process_query(eq_query(rng.randint(1, 10_000)))
        names = set(tuner.metrics.names())
        # The bandit registers its own families plus the shared component
        # catalogs its shim keeps alive (breaker, disabled gain cache,
        # scheduler) -- dashboards keyed on those stay populated when a
        # deployment swaps engines.
        expected = (
            set(BANDIT_METRICS)
            | set(GAINCACHE_METRICS)
            | set(SCHEDULER_METRICS)
            | set(RESILIENCE_METRICS)
            | set(BACKEND_METRICS)
        )
        assert expected <= names

    def test_bandit_fleet_snapshot_covers_full_catalog(self):
        fleet = FleetCoordinator(
            build_small_catalog,
            n_replicas=2,
            config=ColtConfig(storage_budget_pages=6000.0),
            policy="round-robin",
            fleet_epoch_length=10,
            engine="bandit",
        )
        fleet.run([eq_query(i + 1) for i in range(25)])
        snapshot = fleet.metrics_snapshot()
        types = _type_lines(to_prometheus_text(snapshot["metrics"]))
        missing = set(CATALOG) - set(types)
        assert not missing

    def test_fleet_snapshot_covers_full_catalog(self):
        fleet = FleetCoordinator(
            build_small_catalog,
            n_replicas=2,
            config=ColtConfig(
                storage_budget_pages=6000.0, min_history_epochs=2
            ),
            policy="cost",
            fleet_epoch_length=10,
        )
        queries = [
            eq_query(i + 1) if i % 2 else day_query(8000 + i)
            for i in range(25)
        ]
        fleet.run(queries)
        snapshot = fleet.metrics_snapshot()
        types = _type_lines(to_prometheus_text(snapshot["metrics"]))
        missing = set(CATALOG) - set(types)
        assert not missing
        for name, kind in types.items():
            assert CATALOG[name].kind == kind
