"""Tests for the per-epoch overhead dashboard."""

import pytest

from repro.obs.dashboard import OverheadDashboard, render_overhead_rows


def _fill(dashboard, spends, granted=20, requested=20):
    for spent in spends:
        dashboard.record(
            requested=requested,
            granted=granted,
            spent=spent,
            ratio=1.0,
            build_cost=0.0,
            breaker_state="closed",
        )


class TestOverheadDashboard:
    def test_records_are_numbered(self):
        d = OverheadDashboard()
        _fill(d, [1, 2, 3])
        assert [r.epoch for r in d.records] == [0, 1, 2]

    def test_within_budget_invariant(self):
        d = OverheadDashboard()
        _fill(d, [5, 20])
        assert d.within_budget
        d.record(
            requested=20,
            granted=10,
            spent=11,
            ratio=1.0,
            build_cost=0.0,
            breaker_state="closed",
        )
        assert not d.within_budget

    def test_total_spent(self):
        d = OverheadDashboard()
        _fill(d, [3, 4, 5])
        assert d.total_spent == 12

    def test_spend_fraction_tail_window(self):
        d = OverheadDashboard()
        _fill(d, [20] * 5 + [0] * 5)
        assert d.spend_fraction(tail=5) == pytest.approx(0.0)
        assert d.spend_fraction(tail=10) == pytest.approx(0.5)

    def test_spend_fraction_empty_is_one(self):
        assert OverheadDashboard().spend_fraction() == 1.0

    def test_zero_requested_counts_as_zero_fraction(self):
        d = OverheadDashboard()
        _fill(d, [0], granted=0, requested=0)
        assert d.spend_fraction() == 0.0

    def test_to_rows_roundtrips_fields(self):
        d = OverheadDashboard()
        _fill(d, [7])
        (row,) = d.to_rows()
        assert row["spent"] == 7
        assert row["breaker_state"] == "closed"

    def test_render_mentions_budget_compliance(self):
        d = OverheadDashboard()
        _fill(d, [5])
        assert "within budget: yes" in d.render()

    def test_render_empty(self):
        assert OverheadDashboard().render() == "(no epochs recorded)"


class TestRenderOverheadRows:
    def test_replica_column_appears_for_fleet_rows(self):
        d = OverheadDashboard()
        _fill(d, [5])
        rows = d.to_rows()
        rows[0]["replica"] = 2
        text = render_overhead_rows(rows)
        assert "repl" in text.splitlines()[0]
        assert text.splitlines()[1].lstrip().startswith("2")

    def test_plain_rows_have_no_replica_column(self):
        d = OverheadDashboard()
        _fill(d, [5])
        assert "repl " not in render_overhead_rows(d.to_rows())
