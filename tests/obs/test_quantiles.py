"""Exact-reference tests for histogram quantiles and worker merging.

The replay driver reports p50/p95/p99 from cumulative-bucket histograms
(``repro.obs.quantiles``).  The estimator interpolates inside one
bucket, so its error is bounded by that bucket's width -- these tests
pin the estimate against a brute-force sorted-list reference on known
synthetic distributions, and prove bucket merging is associative and
commutative (what lets the multiprocess fleet merge per-worker
histograms in any collection order).
"""

from __future__ import annotations

import math
import random

import pytest

from repro.obs.quantiles import (
    histogram_quantile,
    merge_histogram_samples,
    quantile_from_sample,
    summarize_sample,
)
from repro.obs.registry import LATENCY_BUCKETS, MetricsRegistry


QUANTILES = (0.5, 0.95, 0.99)


def make_histogram(name="lat"):
    registry = MetricsRegistry()
    return registry.histogram(name, "test latency", buckets=LATENCY_BUCKETS)


def bucket_width_at(value: float) -> float:
    """Width of the LATENCY_BUCKETS bucket containing ``value``."""
    bounds = list(LATENCY_BUCKETS)
    lower = 0.0
    for bound in bounds:
        if value <= bound:
            return bound - lower
        lower = bound
    return math.inf


def exact_quantile(values, q):
    """Brute-force reference: the value at rank ceil(q * n)."""
    ordered = sorted(values)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


def synthetic_distributions():
    rng = random.Random(7)
    uniform = [rng.uniform(0.000_02, 0.02) for _ in range(5000)]
    lognormal = [
        min(math.exp(rng.gauss(-7.0, 1.0)), 5.0) for _ in range(5000)
    ]
    bimodal = [
        rng.uniform(0.000_05, 0.000_2)
        if rng.random() < 0.9
        else rng.uniform(0.01, 0.05)
        for _ in range(5000)
    ]
    constant = [0.000_3] * 1000
    return {
        "uniform": uniform,
        "lognormal": lognormal,
        "bimodal": bimodal,
        "constant": constant,
    }


class TestExactReference:
    @pytest.mark.parametrize("name", sorted(synthetic_distributions()))
    def test_within_one_bucket_of_sorted_reference(self, name):
        values = synthetic_distributions()[name]
        histogram = make_histogram()
        for v in values:
            histogram.observe(v)
        sample = histogram.samples()[0]
        for q in QUANTILES:
            estimate = quantile_from_sample(sample, q)
            reference = exact_quantile(values, q)
            # The estimate interpolates inside the bucket holding the
            # true quantile: it can never be off by more than that
            # bucket's width.
            assert estimate is not None
            assert abs(estimate - reference) <= bucket_width_at(reference), (
                name,
                q,
                estimate,
                reference,
            )

    def test_constant_distribution_pins_inside_one_bucket(self):
        histogram = make_histogram()
        for _ in range(100):
            histogram.observe(0.000_3)
        sample = histogram.samples()[0]
        for q in QUANTILES:
            estimate = quantile_from_sample(sample, q)
            assert abs(estimate - 0.000_3) <= bucket_width_at(0.000_3)

    def test_empty_sample_returns_none(self):
        sample = {"count": 0, "sum": 0.0, "buckets": {}}
        assert quantile_from_sample(sample, 0.5) is None
        summary = summarize_sample(sample)
        assert summary["p50"] is None
        assert summary["count"] == 0
        assert summary["mean"] is None

    def test_invalid_quantile_raises(self):
        sample = {"count": 1, "sum": 1.0, "buckets": {"+Inf": 1}}
        with pytest.raises(ValueError):
            quantile_from_sample(sample, 1.5)

    def test_overflow_clamps_to_highest_finite_bound(self):
        histogram = make_histogram()
        for _ in range(10):
            histogram.observe(100.0)  # beyond every finite bucket
        sample = histogram.samples()[0]
        assert quantile_from_sample(sample, 0.5) == LATENCY_BUCKETS[-1]

    def test_histogram_quantile_convenience(self):
        histogram = make_histogram()
        for _ in range(100):
            histogram.observe(0.000_3)
        direct = histogram_quantile(histogram, 0.5)
        via_sample = quantile_from_sample(histogram.samples()[0], 0.5)
        assert direct == via_sample

    def test_summarize_sample_keys(self):
        histogram = make_histogram()
        for i in range(100):
            histogram.observe(0.0001 * (i + 1))
        summary = summarize_sample(histogram.samples()[0])
        assert set(summary) == {"p50", "p95", "p99", "count", "mean"}
        assert summary["count"] == 100
        assert summary["p50"] <= summary["p95"] <= summary["p99"]


class TestMergeAcrossWorkers:
    def shards(self):
        """Three per-worker histograms over one combined distribution."""
        values = synthetic_distributions()["bimodal"]
        shards = []
        for w in range(3):
            histogram = make_histogram()
            for v in values[w::3]:
                histogram.observe(v)
            shards.append(histogram.samples()[0])
        return values, shards

    def test_merge_equals_single_histogram(self):
        values, shards = self.shards()
        merged = merge_histogram_samples(shards)
        combined = make_histogram()
        for v in values:
            combined.observe(v)
        single = combined.samples()[0]
        assert merged["count"] == single["count"]
        assert merged["sum"] == pytest.approx(single["sum"])
        assert merged["buckets"] == single["buckets"]

    @staticmethod
    def assert_equivalent(left, right):
        # Bucket counts are integers, so merging them is exactly
        # associative/commutative; the float "sum" reassociates, so it
        # only matches to rounding.
        assert left["count"] == right["count"]
        assert left["buckets"] == right["buckets"]
        assert left["sum"] == pytest.approx(right["sum"])

    def test_merge_is_associative(self):
        _, (a, b, c) = self.shards()
        left = merge_histogram_samples(
            [merge_histogram_samples([a, b]), c]
        )
        right = merge_histogram_samples(
            [a, merge_histogram_samples([b, c])]
        )
        self.assert_equivalent(left, right)

    def test_merge_is_commutative(self):
        _, (a, b, c) = self.shards()
        self.assert_equivalent(
            merge_histogram_samples([a, b, c]),
            merge_histogram_samples([c, a, b]),
        )

    def test_merged_percentiles_match_combined(self):
        values, shards = self.shards()
        merged = merge_histogram_samples(shards)
        for q in QUANTILES:
            estimate = quantile_from_sample(merged, q)
            reference = exact_quantile(values, q)
            assert abs(estimate - reference) <= bucket_width_at(reference)

    def test_mismatched_layouts_rejected(self):
        registry = MetricsRegistry()
        other = registry.histogram("o", "other", buckets=(1.0, 2.0))
        other.observe(1.5)
        _, (a, _, _) = self.shards()
        with pytest.raises(ValueError):
            merge_histogram_samples([a, other.samples()[0]])
