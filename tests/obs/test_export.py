"""Tests for the Prometheus-text and JSON snapshot exporters."""

import json

import pytest

from repro.obs.export import (
    SNAPSHOT_FORMAT,
    build_snapshot,
    format_for_path,
    load_snapshot,
    render_snapshot,
    to_json_text,
    to_prometheus_text,
    write_metrics,
)
from repro.obs.registry import MetricsRegistry


def _sample_registry():
    r = MetricsRegistry()
    r.counter("queries_total", "Queries processed.").inc(3)
    r.gauge("depth", "Queue depth.").set(2)
    r.histogram("latency_seconds", "Latency.", buckets=(0.1, 1.0)).observe(0.5)
    return r


class TestPrometheusText:
    def test_counter_rendering(self):
        text = to_prometheus_text(_sample_registry().snapshot())
        assert "# HELP queries_total Queries processed." in text
        assert "# TYPE queries_total counter" in text
        assert "\nqueries_total 3\n" in text

    def test_gauge_rendering(self):
        text = to_prometheus_text(_sample_registry().snapshot())
        assert "# TYPE depth gauge" in text
        assert "\ndepth 2\n" in text

    def test_histogram_rendering(self):
        text = to_prometheus_text(_sample_registry().snapshot())
        assert "# TYPE latency_seconds histogram" in text
        assert 'latency_seconds_bucket{le="0.1"} 0' in text
        assert 'latency_seconds_bucket{le="1"} 1' in text
        assert 'latency_seconds_bucket{le="+Inf"} 1' in text
        assert "latency_seconds_sum 0.5" in text
        assert "latency_seconds_count 1" in text

    def test_labels_sorted_and_escaped(self):
        r = MetricsRegistry()
        c = r.counter("x_total", "x", ("zone", "app"))
        c.inc(1, zone='a"b', app="line\nbreak")
        text = to_prometheus_text(r.snapshot())
        assert 'x_total{app="line\\nbreak",zone="a\\"b"} 1' in text

    def test_le_label_renders_last(self):
        r = MetricsRegistry()
        h = r.histogram("d", "d", ("replica",), buckets=(1.0,))
        h.observe(0.5, replica="0")
        text = to_prometheus_text(r.snapshot())
        assert 'd_bucket{replica="0",le="1"} 1' in text


class TestSnapshotDocument:
    def test_build_snapshot_structure(self):
        doc = build_snapshot([], overhead=[{"epoch": 0}], spans={"q": {}})
        assert doc["format"] == SNAPSHOT_FORMAT
        assert doc["version"] == 1
        assert doc["overhead"] == [{"epoch": 0}]
        assert doc["spans"] == {"q": {}}

    def test_json_text_is_valid_json(self):
        doc = build_snapshot(_sample_registry().snapshot())
        parsed = json.loads(to_json_text(doc))
        assert parsed["format"] == SNAPSHOT_FORMAT

    def test_render_snapshot_rejects_unknown_format(self):
        with pytest.raises(ValueError):
            render_snapshot(build_snapshot([]), "yaml")


class TestFileRoundtrip:
    def test_format_for_path(self):
        assert format_for_path("m.prom") == "prom"
        assert format_for_path("m.TXT") == "prom"
        assert format_for_path("m.json") == "json"
        assert format_for_path("m") == "json"

    def test_write_and_load_roundtrip(self, tmp_path):
        doc = build_snapshot(_sample_registry().snapshot())
        path = str(tmp_path / "m.json")
        assert write_metrics(path, doc) == "json"
        assert load_snapshot(path) == doc

    def test_write_prom_by_extension(self, tmp_path):
        doc = build_snapshot(_sample_registry().snapshot())
        path = str(tmp_path / "m.prom")
        assert write_metrics(path, doc) == "prom"
        assert "# TYPE queries_total counter" in open(path).read()

    def test_load_rejects_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_snapshot(str(path))

    def test_load_rejects_foreign_document(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"format": "something-else"}')
        with pytest.raises(ValueError, match=SNAPSHOT_FORMAT):
            load_snapshot(str(path))
