"""Tests for the span tracer."""

import pytest

from repro.obs.spans import SpanTracer, merge_span_summaries


class FakeClock:
    """Deterministic clock advancing a fixed step per read."""

    def __init__(self, step=1.0):
        self.now = 0.0
        self.step = step

    def __call__(self):
        value = self.now
        self.now += self.step
        return value


class TestSpanTracer:
    def test_records_duration_and_attrs(self):
        tracer = SpanTracer(clock=FakeClock(step=2.0))
        with tracer.span("query", index=7):
            pass
        (span,) = tracer.recent()
        assert span.name == "query"
        assert span.duration == pytest.approx(2.0)
        assert span.attrs == {"index": 7}

    def test_ring_is_bounded_but_totals_are_not(self):
        tracer = SpanTracer(capacity=2, clock=FakeClock())
        for _ in range(5):
            with tracer.span("query"):
                pass
        assert len(tracer.recent()) == 2
        assert tracer.summary()["query"]["count"] == 5

    def test_recent_filters_by_name(self):
        tracer = SpanTracer(clock=FakeClock())
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        assert [s.name for s in tracer.recent("a")] == ["a"]

    def test_summary_aggregates(self):
        clock = FakeClock(step=1.0)
        tracer = SpanTracer(clock=clock)
        with tracer.span("epoch"):
            clock.now += 3.0  # make this span longer
        with tracer.span("epoch"):
            pass
        stats = tracer.summary()["epoch"]
        assert stats["count"] == 2
        assert stats["max_seconds"] == pytest.approx(4.0)
        assert stats["total_seconds"] == pytest.approx(5.0)

    def test_disabled_tracer_records_nothing(self):
        tracer = SpanTracer(enabled=False)
        with tracer.span("query"):
            pass
        assert tracer.recent() == []
        assert tracer.summary() == {}

    def test_disabled_handles_are_shared(self):
        tracer = SpanTracer(enabled=False)
        assert tracer.span("a") is tracer.span("b")

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            SpanTracer(capacity=0)

    def test_span_recorded_even_when_body_raises(self):
        tracer = SpanTracer(clock=FakeClock())
        with pytest.raises(RuntimeError):
            with tracer.span("query"):
                raise RuntimeError("boom")
        assert tracer.summary()["query"]["count"] == 1


class TestMergeSummaries:
    def test_counts_add_and_maxima_max(self):
        a = {"query": {"count": 2, "total_seconds": 1.0, "max_seconds": 0.8}}
        b = {"query": {"count": 3, "total_seconds": 2.0, "max_seconds": 0.5}}
        merged = merge_span_summaries([a, b])
        assert merged["query"] == {
            "count": 5,
            "total_seconds": 3.0,
            "max_seconds": 0.8,
        }

    def test_disjoint_names_union(self):
        a = {"x": {"count": 1, "total_seconds": 1.0, "max_seconds": 1.0}}
        b = {"y": {"count": 1, "total_seconds": 1.0, "max_seconds": 1.0}}
        assert sorted(merge_span_summaries([a, b])) == ["x", "y"]
