"""Tests for the metrics registry (counters, gauges, histograms)."""

import pytest

from repro.obs.registry import (
    NULL_REGISTRY,
    Counter,
    Histogram,
    MetricError,
    MetricsRegistry,
    merge_snapshots,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = MetricsRegistry().counter("x_total", "x")
        assert c.value() == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value() == 3.5

    def test_rejects_negative_increment(self):
        c = MetricsRegistry().counter("x_total", "x")
        with pytest.raises(MetricError):
            c.inc(-1)

    def test_labeled_series_are_independent(self):
        c = MetricsRegistry().counter("x_total", "x", ("replica",))
        c.inc(1, replica=0)
        c.inc(5, replica=1)
        assert c.value(replica=0) == 1.0
        assert c.value(replica=1) == 5.0

    def test_wrong_labels_rejected(self):
        c = MetricsRegistry().counter("x_total", "x", ("replica",))
        with pytest.raises(MetricError):
            c.inc(1)
        with pytest.raises(MetricError):
            c.inc(1, shard=0)


class TestGauge:
    def test_set_inc_dec(self):
        g = MetricsRegistry().gauge("depth", "d")
        g.set(10)
        g.inc(2)
        g.dec(5)
        assert g.value() == 7.0


class TestHistogram:
    def test_cumulative_buckets(self):
        h = MetricsRegistry().histogram("d", "d", buckets=(1.0, 10.0))
        for v in (0.5, 0.7, 5.0, 50.0):
            h.observe(v)
        (sample,) = h.samples()
        assert sample["count"] == 4
        assert sample["sum"] == pytest.approx(56.2)
        assert sample["buckets"] == {"1.0": 2, "10.0": 3, "+Inf": 4}

    def test_boundary_value_falls_in_its_bucket(self):
        h = MetricsRegistry().histogram("d", "d", buckets=(1.0, 10.0))
        h.observe(1.0)
        (sample,) = h.samples()
        assert sample["buckets"]["1.0"] == 1

    def test_rejects_unsorted_buckets(self):
        with pytest.raises(MetricError):
            Histogram("d", "d", buckets=(2.0, 1.0))

    def test_count_and_sum_accessors(self):
        h = MetricsRegistry().histogram("d", "d", buckets=(1.0,))
        assert h.count() == 0 and h.sum() == 0.0
        h.observe(3.0)
        assert h.count() == 1 and h.sum() == 3.0


class TestRegistry:
    def test_registration_is_idempotent_for_identical_family(self):
        r = MetricsRegistry()
        a = r.counter("x_total", "x")
        b = r.counter("x_total", "x")
        assert a is b

    def test_conflicting_registration_raises(self):
        r = MetricsRegistry()
        r.counter("x_total", "x")
        with pytest.raises(MetricError):
            r.gauge("x_total", "x")
        with pytest.raises(MetricError):
            r.counter("x_total", "x", ("replica",))

    def test_invalid_names_rejected(self):
        r = MetricsRegistry()
        with pytest.raises(MetricError):
            r.counter("bad name", "x")
        with pytest.raises(MetricError):
            r.counter("9starts_with_digit", "x")

    def test_snapshot_preserves_registration_order(self):
        r = MetricsRegistry()
        r.counter("b_total", "b")
        r.counter("a_total", "a")
        assert [f["name"] for f in r.snapshot()] == ["b_total", "a_total"]


class TestDisabledRegistry:
    def test_updates_are_noops(self):
        r = MetricsRegistry(enabled=False)
        c = r.counter("x_total", "x")
        g = r.gauge("depth", "d")
        h = r.histogram("d", "d", buckets=(1.0,))
        c.inc(5)
        g.set(3)
        h.observe(0.5)
        assert c.value() == 0.0
        assert g.value() == 0.0
        assert h.count() == 0

    def test_null_registry_is_disabled(self):
        assert NULL_REGISTRY.enabled is False

    def test_families_still_registered_when_disabled(self):
        r = MetricsRegistry(enabled=False)
        r.counter("x_total", "x")
        assert "x_total" in r.names()


class TestMergeSnapshots:
    def _registry_with_counter(self, value):
        r = MetricsRegistry()
        r.counter("x_total", "x").inc(value)
        return r

    def test_extra_labels_applied_per_part(self):
        a = self._registry_with_counter(1)
        b = self._registry_with_counter(2)
        merged = merge_snapshots(
            [(a.snapshot(), {"replica": "0"}), (b.snapshot(), {"replica": "1"})]
        )
        (family,) = merged
        assert family["labelnames"] == ["replica"]
        values = {s["labels"]["replica"]: s["value"] for s in family["samples"]}
        assert values == {"0": 1.0, "1": 2.0}

    def test_type_conflict_raises(self):
        a = MetricsRegistry()
        a.counter("x_total", "x")
        b = MetricsRegistry()
        b.gauge("x_total", "x")
        with pytest.raises(MetricError):
            merge_snapshots([(a.snapshot(), {}), (b.snapshot(), {})])

    def test_counter_type_survives_merge(self):
        a = self._registry_with_counter(1)
        merged = merge_snapshots([(a.snapshot(), {})])
        assert merged[0]["type"] == Counter.kind
