"""Tests for query distributions and literal drawing."""

import random

import pytest

from repro.optimizer.selectivity import predicate_selectivity
from repro.sql.ast import BetweenPredicate, ComparisonPredicate
from repro.sql.binder import bind_query
from repro.workload.datagen import build_catalog
from repro.workload.experiments import (
    noise_distributions,
    phase_distributions,
    relevant_index_count,
    stable_distribution,
)
from repro.workload.querygen import (
    JoinSpec,
    PredicateSpec,
    QueryDistribution,
    QueryTemplate,
    build_query,
)


@pytest.fixture(scope="module")
def catalog():
    return build_catalog()


class TestBuildQuery:
    def test_single_table_query(self, catalog):
        template = QueryTemplate(
            predicates=(PredicateSpec("lineitem_1", "l_shipdate", (0.001, 0.01)),)
        )
        q = build_query(template, catalog, random.Random(1))
        assert q.tables == ["lineitem_1"]
        assert len(q.filters) == 1
        assert q.filters[0].column.column == "l_shipdate"
        # Queries come out bound (tables resolved); bind is a no-op check.
        bind_query(q, catalog)

    def test_join_query(self, catalog):
        template = QueryTemplate(
            predicates=(PredicateSpec("lineitem_1", "l_shipdate", (0.001, 0.01)),),
            join=JoinSpec("orders_1", "l_orderkey", "o_orderkey"),
        )
        q = build_query(template, catalog, random.Random(1))
        assert set(q.tables) == {"lineitem_1", "orders_1"}
        assert len(q.joins) == 1

    def test_aggregate_query(self, catalog):
        template = QueryTemplate(
            predicates=(PredicateSpec("part_1", "p_size", (0.02, 0.08)),),
            aggregate=True,
        )
        q = build_query(template, catalog, random.Random(1))
        assert q.is_aggregate()

    def test_selectivity_within_band(self, catalog):
        rng = random.Random(42)
        spec = PredicateSpec("lineitem_1", "l_shipdate", (0.002, 0.01))
        template = QueryTemplate(predicates=(spec,))
        for _ in range(50):
            q = build_query(template, catalog, rng)
            sel = predicate_selectivity(catalog, q.filters[0])
            assert 0.0005 <= sel <= 0.03  # band with estimation slack

    def test_eq_for_tiny_targets(self, catalog):
        # Target below 1.5/ndistinct → equality predicate.
        spec = PredicateSpec("orders_1", "o_orderkey", (1e-7, 1e-7))
        template = QueryTemplate(predicates=(spec,))
        q = build_query(template, catalog, random.Random(0))
        assert isinstance(q.filters[0], ComparisonPredicate)

    def test_range_for_wide_targets(self, catalog):
        spec = PredicateSpec("lineitem_1", "l_quantity", (0.05, 0.05))
        template = QueryTemplate(predicates=(spec,))
        q = build_query(template, catalog, random.Random(0))
        assert isinstance(q.filters[0], BetweenPredicate)


class TestDistributions:
    def test_weighted_sampling_respects_weights(self, catalog):
        heavy = QueryTemplate(
            predicates=(PredicateSpec("lineitem_1", "l_shipdate"),), weight=9.0
        )
        light = QueryTemplate(
            predicates=(PredicateSpec("orders_1", "o_orderdate"),), weight=1.0
        )
        dist = QueryDistribution("d", (heavy, light))
        rng = random.Random(5)
        tables = [dist.sample(catalog, rng).tables[0] for _ in range(500)]
        heavy_frac = tables.count("lineitem_1") / 500
        assert 0.8 < heavy_frac < 0.99

    def test_relevant_indexes_dedup(self, catalog):
        dist = stable_distribution()
        rel = dist.relevant_indexes(catalog)
        assert len(rel) == len(set(rel))

    def test_stable_has_18_relevant(self, catalog):
        assert relevant_index_count(catalog) == 18

    def test_phases_overlap_consecutively(self, catalog):
        phases = phase_distributions()
        assert len(phases) == 4
        for a, b in zip(phases, phases[1:]):
            overlap = set(a.relevant_indexes(catalog)) & set(b.relevant_indexes(catalog))
            assert overlap, f"{a.name} and {b.name} share no relevant index"

    def test_noise_pair_disjoint(self, catalog):
        q1, q2 = noise_distributions()
        assert not set(q1.relevant_indexes(catalog)) & set(q2.relevant_indexes(catalog))

    def test_samples_are_bindable(self, catalog):
        rng = random.Random(11)
        for dist in [stable_distribution(), *phase_distributions(), *noise_distributions()]:
            for _ in range(20):
                q = dist.sample(catalog, rng)
                bind_query(q, catalog)  # raises on any inconsistency
