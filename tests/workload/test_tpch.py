"""Tests that the synthetic schema reproduces Table 1 exactly."""

import pytest

from repro.workload.datagen import build_catalog
from repro.workload.tpch import (
    base_row_counts,
    dataset_summary,
    instance_table,
    tpch_schema,
)


class TestTable1:
    def test_number_of_tables(self):
        assert dataset_summary().num_tables == 32

    def test_total_tuples(self):
        assert dataset_summary().total_tuples == 6_928_120

    def test_largest_table(self):
        assert dataset_summary().max_table_tuples == 1_200_000

    def test_smallest_table(self):
        assert dataset_summary().min_table_tuples == 5

    def test_indexable_attributes(self):
        assert dataset_summary().indexable_attributes == 244

    def test_size_near_paper(self):
        # Paper reports 1.4 GB; width-based accounting lands close.
        size_gb = dataset_summary().size_bytes / 2**30
        assert 0.8 <= size_gb <= 1.6

    def test_single_instance_scales(self):
        one = dataset_summary(instances=1)
        assert one.num_tables == 8
        assert one.total_tuples == 6_928_120 // 4
        assert one.indexable_attributes == 61


class TestSchema:
    def test_instance_naming(self):
        assert instance_table("lineitem", 3) == "lineitem_3"

    def test_per_instance_tables(self):
        names = {spec.name for spec in tpch_schema(2)}
        assert "lineitem_1" in names and "lineitem_2" in names
        assert "lineitem_3" not in names

    def test_row_counts_match_tpch_ratios(self):
        rows = base_row_counts()
        assert rows["lineitem"] == 4 * rows["orders"]
        assert rows["partsupp"] == 4 * rows["part"]
        assert rows["region"] == 5

    def test_61_columns_per_instance(self):
        specs = tpch_schema(1)
        assert sum(len(s.columns) for s in specs) == 61

    def test_column_lookup(self):
        spec = next(s for s in tpch_schema(1) if s.name == "lineitem_1")
        assert spec.column("l_shipdate").name == "l_shipdate"
        with pytest.raises(KeyError):
            spec.column("nope")


class TestBuiltCatalog:
    def test_catalog_matches_summary(self):
        catalog = build_catalog()
        assert len(catalog.tables()) == 32
        assert sum(t.row_count for t in catalog.tables()) == 6_928_120
        assert len(catalog.indexable_columns()) == 244

    def test_stats_installed_for_every_column(self):
        catalog = build_catalog(instances=1)
        for table in catalog.tables():
            for col in table.columns:
                stats = catalog.stats(table.name, col.name)
                assert stats.n_distinct > 0

    def test_date_columns_correlated(self):
        catalog = build_catalog(instances=1)
        assert catalog.stats("lineitem_1", "l_shipdate").correlation == pytest.approx(0.9)
        assert catalog.stats("lineitem_1", "l_quantity").correlation == 0.0

    def test_primary_keys_unique(self):
        catalog = build_catalog(instances=1)
        stats = catalog.stats("orders_1", "o_orderkey")
        assert stats.n_distinct == catalog.table("orders_1").row_count
