"""Tests that generated physical data matches the declared statistics."""

import random


from repro.engine.datatypes import DataType
from repro.workload.datagen import build_physical
from repro.workload.spec import (
    ColumnKind,
    ColumnSpec,
    TableSpec,
    generate_rows,
    scaled_rows,
)


class TestColumnSpecStats:
    def test_pk_stats(self):
        spec = ColumnSpec("id", DataType.INT, ColumnKind.PRIMARY_KEY)
        stats = spec.stats(1000)
        assert stats.n_distinct == 1000
        assert (stats.min_value, stats.max_value) == (1, 1000)
        assert stats.correlation == 1.0

    def test_fk_stats_capped_by_parent(self):
        spec = ColumnSpec(
            "fk", DataType.INT, ColumnKind.FOREIGN_KEY, fk_parent_rows=50
        )
        assert spec.stats(1000).n_distinct == 50
        assert spec.stats(10).n_distinct == 10

    def test_uniform_int_domain(self):
        spec = ColumnSpec("x", DataType.INT, ColumnKind.UNIFORM_INT, low=1, high=10)
        assert spec.stats(1000).n_distinct == 10

    def test_choice_stats(self):
        spec = ColumnSpec(
            "c", DataType.TEXT, ColumnKind.CHOICE, choices=("b", "a", "c")
        )
        stats = spec.stats(100)
        assert stats.n_distinct == 3
        assert stats.min_value == "a" and stats.max_value == "c"

    def test_date_stats_are_ordinals(self):
        spec = ColumnSpec(
            "d", DataType.DATE, ColumnKind.DATE_RANGE,
            low="1992-01-01", high="1992-12-31",
        )
        stats = spec.stats(10_000)
        assert isinstance(stats.min_value, int)
        assert stats.n_distinct == 366  # 1992 is a leap year


class TestGeneratedDataMatchesSpec:
    def _spec(self):
        return TableSpec(
            "t",
            (
                ColumnSpec("id", DataType.INT, ColumnKind.PRIMARY_KEY),
                ColumnSpec("x", DataType.INT, ColumnKind.UNIFORM_INT, low=0, high=9),
                ColumnSpec(
                    "d", DataType.DATE, ColumnKind.DATE_RANGE,
                    low="1992-01-01", high="1998-12-01",
                ),
                ColumnSpec("c", DataType.TEXT, ColumnKind.CHOICE, choices=("a", "b")),
            ),
            row_count=100_000,
        )

    def test_values_within_declared_bounds(self):
        spec = self._spec()
        rows = generate_rows(spec, 500, random.Random(3))
        stats = {col.name: col.stats(spec.row_count) for col in spec.columns}
        for row in rows:
            for col, value in zip(spec.columns, row):
                s = stats[col.name]
                if col.kind is ColumnKind.PRIMARY_KEY:
                    continue  # sample PKs occupy a prefix of the domain
                assert s.min_value <= value <= s.max_value

    def test_pk_values_dense(self):
        spec = self._spec()
        rows = generate_rows(spec, 100, random.Random(0))
        assert [r[0] for r in rows] == list(range(1, 101))

    def test_scaled_rows(self):
        spec = self._spec()
        assert scaled_rows(spec, 0.01) == 1000
        assert scaled_rows(spec, 1e-9) == 5  # floor
        assert scaled_rows(spec, 2.0) == spec.row_count  # cap


class TestBuildPhysical:
    def test_paper_scale_stats_over_sampled_data(self):
        store = build_physical(instances=1, scale=0.001, seed=1)
        table = store.catalog.table("lineitem_1")
        assert table.row_count == 1_200_000  # declared
        assert len(store.heap("lineitem_1")) == 1_200  # physical

    def test_physical_stats_mode(self):
        store = build_physical(instances=1, scale=0.001, paper_scale_stats=False)
        table = store.catalog.table("lineitem_1")
        assert table.row_count == 1_200

    def test_deterministic_given_seed(self):
        a = build_physical(instances=1, scale=0.0005, seed=7)
        b = build_physical(instances=1, scale=0.0005, seed=7)
        assert a.heap("orders_1").row(0) == b.heap("orders_1").row(0)

    def test_every_table_has_rows(self):
        store = build_physical(instances=1, scale=0.0005)
        for table in store.catalog.tables():
            assert len(store.heap(table.name)) >= 5
