"""Tests for the adversarial bandit scenario generators.

Each scenario must be a pure function of its arguments: same seed, same
event stream, in any process.  The golden signatures below pin the
exact streams the committed ``BENCH_bandit.json`` was measured on -- a
generator change that shifts them must consciously update both.
"""

import os
import subprocess
import sys

import pytest

import repro
from repro.workload.adversarial import (
    DRIFT_AT,
    HTAP_WRITE_FRACTION,
    SCENARIOS,
    Scenario,
    build_adhoc_scenario,
    build_correlated_scenario,
    build_drift_scenario,
    build_htap_scenario,
)

#: Golden signatures of the default-argument streams (seeds 11/13/17/19).
GOLDEN_SIGNATURES = {
    "adhoc": "30f1fab7ba08f59ab5aeee28aabcd140dbc9dfebb75b2f60905d3d630ae7d96e",
    "htap": "5e0b746d8953f33fac46da6c4350cf01d59a8ac2d2f57ac55130b8d0ecdadd57",
    "correlated": "b64ea73cd8370769bb2cc88f4c94d744f224784df6ce61686ce4f17262bf4a42",
    "drift": "dbc5a51aa142f4b6991106a502a7ca641b63bb7b457657f2bb986d95b83045a3",
}


class TestRegistry:
    def test_all_four_regimes_registered(self):
        assert set(SCENARIOS) == {"adhoc", "htap", "correlated", "drift"}

    def test_builders_return_named_scenarios(self):
        for name, build in SCENARIOS.items():
            scenario = build()
            assert isinstance(scenario, Scenario)
            assert scenario.name == name
            assert scenario.description
            assert scenario.events
            assert scenario.catalog is scenario.store.catalog

    def test_each_build_owns_a_fresh_store(self):
        # Tuners mutate stores; benchmark arms must never share one.
        assert build_htap_scenario().store is not build_htap_scenario().store


class TestDistributionalProperties:
    def test_adhoc_never_repeats(self):
        scenario = build_adhoc_scenario()
        assert scenario.repeat_rate() == 0.0
        assert scenario.write_fraction() == 0.0
        assert len(scenario.queries) == 240

    def test_adhoc_statistics_overpromise(self):
        from repro.workload.adversarial import (
            ADHOC_CLAIMED_DOMAIN,
            ADHOC_LIE_COLUMNS,
            ADHOC_ROWS,
            ADHOC_TABLE,
        )

        scenario = build_adhoc_scenario()
        for j in range(ADHOC_LIE_COLUMNS):
            stats = scenario.catalog.stats(ADHOC_TABLE, f"w_c{j:02d}")
            # Claimed domain far exceeds the physical row count: the
            # equality predicates look needle-selective but are not.
            assert stats.n_distinct == ADHOC_CLAIMED_DOMAIN > ADHOC_ROWS

    def test_htap_write_mix(self):
        scenario = build_htap_scenario()
        assert scenario.write_fraction() == pytest.approx(
            HTAP_WRITE_FRACTION, abs=0.08
        )
        # The read side repeats heavily (it is not the ad-hoc regime).
        assert scenario.repeat_rate() > 0.1

    def test_correlated_columns_always_agree(self):
        scenario = build_correlated_scenario()
        pair_queries = 0
        for query in scenario.queries:
            if len(query.filters) == 2:
                a, b = query.filters
                assert {a.column.column, b.column.column} == {"c_a", "c_b"}
                assert a.value == b.value
                pair_queries += 1
        assert pair_queries > len(scenario.queries) // 2

    def test_correlated_data_is_perfectly_correlated(self):
        scenario = build_correlated_scenario()
        heap = scenario.store.heap("corr")
        for _rid, row in heap.scan():
            assert row[1] == row[2]  # c_a == c_b physically

    def test_drift_flips_mid_epoch(self):
        scenario = build_drift_scenario()
        assert scenario.drift_at == DRIFT_AT == 157
        # 157 aligns with no common epoch length.
        assert all(DRIFT_AT % length != 0 for length in (10, 20, 25, 50))
        for i, query in enumerate(scenario.queries):
            (predicate,) = query.filters
            expected = "k_early" if i < DRIFT_AT else "k_late"
            assert predicate.column.column == expected

    def test_length_and_seed_are_honoured(self):
        scenario = build_drift_scenario(length=50, seed=99, drift_at=20)
        assert len(scenario.events) == 50
        assert scenario.drift_at == 20
        assert scenario.signature() != build_drift_scenario().signature()


class TestDeterminism:
    def test_signatures_are_stable_within_process(self):
        for build in SCENARIOS.values():
            assert build().signature() == build().signature()

    def test_golden_seed_signatures(self):
        measured = {
            name: build().signature() for name, build in SCENARIOS.items()
        }
        assert measured == GOLDEN_SIGNATURES

    def test_signatures_match_across_processes(self):
        # Hash-order leakage (dict/set iteration feeding the stream)
        # would survive an in-process comparison; a child interpreter
        # with randomized hashing catches it.
        src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env = dict(os.environ, PYTHONPATH=src, PYTHONHASHSEED="random")
        code = (
            "from repro.workload.adversarial import SCENARIOS\n"
            "for name, build in sorted(SCENARIOS.items()):\n"
            "    print(name, build().signature())\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            env=env,
            capture_output=True,
            text=True,
            check=True,
        ).stdout
        child = dict(line.split() for line in out.strip().splitlines())
        assert child == GOLDEN_SIGNATURES
