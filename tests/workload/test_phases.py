"""Tests for workload builders (stable / shifting / noisy)."""

import pytest

from repro.workload.datagen import build_catalog
from repro.workload.experiments import noise_distributions, phase_distributions, stable_distribution
from repro.workload.phases import (
    multi_client_workload,
    noisy_workload,
    shifting_workload,
    stable_workload,
)


@pytest.fixture(scope="module")
def catalog():
    return build_catalog()


class TestStable:
    def test_length_and_labels(self, catalog):
        wl = stable_workload(stable_distribution(), 120, catalog, seed=1)
        assert len(wl) == 120
        assert set(wl.source) == {"stable"}
        assert wl.phase_boundaries() == []

    def test_deterministic(self, catalog):
        a = stable_workload(stable_distribution(), 30, catalog, seed=9)
        b = stable_workload(stable_distribution(), 30, catalog, seed=9)
        assert [q.filters[0].column for q in a.queries] == [
            q.filters[0].column for q in b.queries
        ]


class TestShifting:
    def test_paper_dimensions(self, catalog):
        wl = shifting_workload(
            phase_distributions(), catalog, phase_length=300, transition=50
        )
        # 4 x 300 + 3 x 50 = 1350 queries, as in §6.2.
        assert len(wl) == 1350

    def test_transition_mixes_distributions(self, catalog):
        wl = shifting_workload(
            phase_distributions(), catalog, phase_length=100, transition=40, seed=3
        )
        # Within a transition window both sources should appear.
        window = wl.source[100:140]
        assert "phase1" in window and "phase2" in window

    def test_phases_in_order(self, catalog):
        wl = shifting_workload(
            phase_distributions(), catalog, phase_length=50, transition=0
        )
        assert wl.source[0] == "phase1"
        assert wl.source[-1] == "phase4"
        assert len(wl) == 200


class TestNoisy:
    def test_noise_fraction(self, catalog):
        q1, q2 = noise_distributions()
        wl = noisy_workload(q1, q2, catalog, burst_length=40)
        noise = sum(1 for s in wl.source if s == "q2_noise")
        assert noise / len(wl) == pytest.approx(0.2, abs=0.02)

    def test_warmup_is_noise_free(self, catalog):
        q1, q2 = noise_distributions()
        wl = noisy_workload(q1, q2, catalog, burst_length=30, warmup=100)
        assert all(s == "q1_base" for s in wl.source[:100])

    def test_min_two_bursts(self, catalog):
        q1, q2 = noise_distributions()
        wl = noisy_workload(q1, q2, catalog, burst_length=80)
        runs = _noise_runs(wl.source)
        assert len(runs) >= 2
        assert all(r == 80 for r in runs)

    def test_many_bursts_for_short_lengths(self, catalog):
        q1, q2 = noise_distributions()
        wl = noisy_workload(q1, q2, catalog, burst_length=20)
        assert len(_noise_runs(wl.source)) >= 5
        assert len(wl) >= 500

    def test_rejects_bad_fraction(self, catalog):
        q1, q2 = noise_distributions()
        with pytest.raises(ValueError):
            noisy_workload(q1, q2, catalog, burst_length=10, noise_fraction=1.5)


class TestMultiClient:
    def test_all_queries_present(self, catalog):
        a = stable_workload(stable_distribution(), 30, catalog, seed=1)
        b = stable_workload(stable_distribution(), 50, catalog, seed=2)
        merged = multi_client_workload([a, b], seed=0)
        assert len(merged) == 80

    def test_per_client_order_preserved(self, catalog):
        a = stable_workload(stable_distribution(), 40, catalog, seed=1)
        b = stable_workload(stable_distribution(), 40, catalog, seed=2)
        merged = multi_client_workload([a, b], seed=3)
        client0 = [
            q for q, s in zip(merged.queries, merged.source) if s.startswith("client0:")
        ]
        assert client0 == a.queries  # same objects, same order

    def test_source_labels_prefixed(self, catalog):
        a = stable_workload(stable_distribution(), 10, catalog, seed=1)
        merged = multi_client_workload([a], seed=0)
        assert all(s == "client0:stable" for s in merged.source)

    def test_interleaving_is_mixed(self, catalog):
        a = stable_workload(stable_distribution(), 50, catalog, seed=1)
        b = stable_workload(stable_distribution(), 50, catalog, seed=2)
        merged = multi_client_workload([a, b], seed=4)
        first_half = merged.source[:50]
        assert any(s.startswith("client0") for s in first_half)
        assert any(s.startswith("client1") for s in first_half)

    def test_deterministic(self, catalog):
        a = stable_workload(stable_distribution(), 20, catalog, seed=1)
        b = stable_workload(stable_distribution(), 20, catalog, seed=2)
        m1 = multi_client_workload([a, b], seed=5)
        m2 = multi_client_workload([a, b], seed=5)
        assert m1.source == m2.source


class TestClientIds:
    def test_every_query_is_tagged(self, catalog):
        a = stable_workload(stable_distribution(), 30, catalog, seed=1)
        b = stable_workload(stable_distribution(), 20, catalog, seed=2)
        merged = multi_client_workload([a, b], seed=0)
        assert merged.client_ids is not None
        assert len(merged.client_ids) == len(merged.queries)
        assert set(merged.client_ids) == {0, 1}

    def test_tags_agree_with_source_labels(self, catalog):
        a = stable_workload(stable_distribution(), 25, catalog, seed=1)
        b = stable_workload(stable_distribution(), 25, catalog, seed=2)
        merged = multi_client_workload([a, b], seed=7)
        for label, client in zip(merged.source, merged.client_ids):
            assert label.startswith(f"client{client}:")

    def test_tag_counts_match_client_stream_lengths(self, catalog):
        a = stable_workload(stable_distribution(), 30, catalog, seed=1)
        b = stable_workload(stable_distribution(), 50, catalog, seed=2)
        merged = multi_client_workload([a, b], seed=0)
        assert merged.client_ids.count(0) == 30
        assert merged.client_ids.count(1) == 50

    def test_same_seeds_give_identical_interleaving(self, catalog):
        def build():
            a = stable_workload(stable_distribution(), 40, catalog, seed=11)
            b = stable_workload(stable_distribution(), 40, catalog, seed=12)
            return multi_client_workload([a, b], seed=13)

        m1, m2 = build(), build()
        assert m1.client_ids == m2.client_ids
        assert m1.source == m2.source
        assert [q.filters[0].column for q in m1.queries] == [
            q.filters[0].column for q in m2.queries
        ]

    def test_different_seed_changes_interleaving(self, catalog):
        a = stable_workload(stable_distribution(), 40, catalog, seed=11)
        b = stable_workload(stable_distribution(), 40, catalog, seed=12)
        m1 = multi_client_workload([a, b], seed=1)
        m2 = multi_client_workload([a, b], seed=2)
        assert m1.client_ids != m2.client_ids

    def test_single_client_workloads_stay_untagged(self, catalog):
        wl = stable_workload(stable_distribution(), 10, catalog, seed=1)
        assert wl.client_ids is None


def _noise_runs(source):
    runs = []
    current = 0
    for s in source:
        if s == "q2_noise":
            current += 1
        elif current:
            runs.append(current)
            current = 0
    if current:
        runs.append(current)
    return runs
