"""Cross-checks: index-driven plans return exactly what seq plans return.

This is the executor's core correctness property and also exercises the
plumbing COLT relies on: after the scheduler builds an index, the same
query must produce the same rows through the new plan.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.executor.executor import execute
from repro.optimizer.optimizer import Optimizer, PlanCache
from repro.optimizer.plan import IndexScanNode
from repro.sql.binder import bind_query
from repro.sql.parser import parse_query


def _results(store, sql, config):
    q = bind_query(parse_query(sql), store.catalog)
    plan = Optimizer(store.catalog).optimize(q, config=config, cache=PlanCache()).plan
    return sorted(execute(plan, store)), plan


def _indexed_config(store, *cols):
    config = []
    for table, column in cols:
        index = store.catalog.index_for(table, column)
        store.build_index(index)
        config.append(index)
    return frozenset(config)


class TestIndexSeqEquivalence:
    def test_eq_lookup(self, small_store):
        sql = "select user_id, amount from events where user_id = 33"
        seq, _ = _results(small_store, sql, frozenset())
        config = _indexed_config(small_store, ("events", "user_id"))
        idx, plan = _results(small_store, sql, config)
        assert any(isinstance(n, IndexScanNode) for n in _walk(plan))
        assert seq == idx

    def test_range_scan(self, small_store):
        sql = "select day from events where day between 8100 and 8150"
        seq, _ = _results(small_store, sql, frozenset())
        config = _indexed_config(small_store, ("events", "day"))
        idx, plan = _results(small_store, sql, config)
        assert any(isinstance(n, IndexScanNode) for n in _walk(plan))
        assert seq == idx

    def test_in_scan(self, small_store):
        sql = "select user_id from events where user_id in (5, 6, 7)"
        seq, _ = _results(small_store, sql, frozenset())
        config = _indexed_config(small_store, ("events", "user_id"))
        idx, _ = _results(small_store, sql, config)
        assert seq == idx

    def test_residual_filter_applied(self, small_store):
        sql = "select user_id, amount from events where user_id = 9 and amount > 400"
        seq, _ = _results(small_store, sql, frozenset())
        config = _indexed_config(small_store, ("events", "user_id"))
        idx, _ = _results(small_store, sql, config)
        assert seq == idx

    def test_join_with_inner_index(self, small_store):
        sql = (
            "select events.user_id, users.score from events, users "
            "where events.user_id = users.user_id and events.day = 8000"
        )
        seq, _ = _results(small_store, sql, frozenset())
        config = _indexed_config(
            small_store, ("users", "user_id"), ("events", "day")
        )
        idx, _ = _results(small_store, sql, config)
        assert seq == idx

    def test_unbuilt_index_raises(self, small_store):
        # Materialized in the catalog but never physically built.
        index = small_store.catalog.index_for("events", "user_id")
        small_store.catalog.materialize_index(index)
        sql = "select user_id from events where user_id = 3"
        q = bind_query(parse_query(sql), small_store.catalog)
        plan = Optimizer(small_store.catalog).optimize(q).plan
        if any(isinstance(n, IndexScanNode) for n in _walk(plan)):
            with pytest.raises(RuntimeError):
                execute(plan, small_store)


class TestPropertyEquivalence:
    @given(
        user=st.integers(1, 500),
        lo=st.floats(0, 900),
        width=st.floats(1, 300),
        seed=st.integers(0, 3),
    )
    @settings(max_examples=25, deadline=None)
    def test_random_conjunctions(self, small_store_factory, user, lo, width, seed):
        store = small_store_factory(seed)
        sql = (
            f"select user_id, amount from events "
            f"where user_id = {user} and amount between {lo:.2f} and {lo + width:.2f}"
        )
        seq, _ = _results(store, sql, frozenset())
        index = store.catalog.index_for("events", "user_id")
        store.build_index(index)
        idx, _ = _results(store, sql, frozenset([index]))
        assert seq == idx


@pytest.fixture(scope="module")
def small_store_factory():
    """Factory producing deterministic small stores, cached per seed."""
    from repro.engine.catalog import Catalog, ColumnDef, TableDef
    from repro.engine.datatypes import DataType
    from repro.engine.storage import PhysicalStore

    cache = {}

    def build(seed: int) -> PhysicalStore:
        if seed in cache:
            return cache[seed]
        rng = random.Random(seed)
        catalog = Catalog()
        catalog.add_table(
            TableDef(
                "events",
                [
                    ColumnDef("user_id", DataType.INT),
                    ColumnDef("amount", DataType.FLOAT),
                ],
            )
        )
        store = PhysicalStore(catalog)
        heap = store.create_heap("events")
        for _ in range(2000):
            heap.insert((rng.randint(1, 500), rng.uniform(0, 1000)))
        store.analyze("events")
        cache[seed] = store
        return store

    return build


def _walk(plan):
    stack = [plan]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(node.children())
