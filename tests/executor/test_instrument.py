"""Tests for execution counters and cost-model validation.

The second half is the important one: it checks that the optimizer's
cost estimates order plans the same way the *actual physical work*
orders them -- the property that makes a cost-model simulation a
meaningful stand-in for wall-clock measurements (see DESIGN.md §2).
"""

from repro.executor import CountingStore, execute
from repro.optimizer.optimizer import Optimizer, PlanCache
from repro.sql.binder import bind_query
from repro.sql.parser import parse_query


def _run_counted(store, sql, config):
    q = bind_query(parse_query(sql), store.catalog)
    plan = Optimizer(store.catalog).optimize(q, config=config, cache=PlanCache()).plan
    counting = CountingStore(store)
    rows = execute(plan, counting)
    return rows, counting.counters, plan


class TestCounters:
    def test_seq_scan_reads_every_row(self, small_store):
        _, counters, _ = _run_counted(
            small_store, "select * from users", frozenset()
        )
        assert counters.heap_rows_read == 500
        assert counters.index_searches == 0

    def test_eq_index_scan_touches_few(self, small_store):
        index = small_store.catalog.index_for("events", "user_id")
        small_store.build_index(index)
        rows, counters, _ = _run_counted(
            small_store,
            "select user_id from events where user_id = 17",
            frozenset([index]),
        )
        assert counters.index_searches == 1
        assert counters.index_entries_read == len(rows)
        # Cell fetches instead of full-row scans; far below table size.
        assert counters.heap_rows_read == 0
        assert counters.heap_cells_read < 500

    def test_transparent_results(self, small_store):
        plain, _, _ = _run_counted(
            small_store, "select user_id from users where score > 50", frozenset()
        )
        again, counters, _ = _run_counted(
            small_store, "select user_id from users where score > 50", frozenset()
        )
        assert sorted(plain) == sorted(again)
        assert counters.heap_rows_read == 500

    def test_reset(self, small_store):
        _, counters, _ = _run_counted(small_store, "select * from users", frozenset())
        counters.reset()
        assert counters.total_physical_ops == 0


class TestCostModelValidation:
    def test_cheaper_plan_does_less_work(self, small_store):
        """Index vs. seq scan: the optimizer's preference matches reality."""
        catalog = small_store.catalog
        index = catalog.index_for("events", "user_id")
        small_store.build_index(index)
        sql = "select user_id from events where user_id = 44"

        q = bind_query(parse_query(sql), catalog)
        optimizer = Optimizer(catalog)
        seq_cost = optimizer.optimize(q, config=frozenset(), cache=PlanCache()).cost
        idx_cost = optimizer.optimize(
            q, config=frozenset([index]), cache=PlanCache()
        ).cost
        assert idx_cost < seq_cost

        _, seq_work, _ = _run_counted(small_store, sql, frozenset())
        _, idx_work, _ = _run_counted(small_store, sql, frozenset([index]))
        assert idx_work.total_physical_ops < seq_work.total_physical_ops

    def test_cost_ordering_tracks_work_ordering(self, small_store):
        """Across a range of selectivities, estimated cost and physical
        work must be positively rank-correlated."""
        catalog = small_store.catalog
        index = catalog.index_for("events", "day")
        small_store.build_index(index)
        config = frozenset([index])
        optimizer = Optimizer(catalog)

        pairs = []
        for width in (0, 5, 20, 80, 300, 1200):
            sql = f"select day from events where day between 8000 and {8000 + width}"
            q = bind_query(parse_query(sql), catalog)
            cost = optimizer.optimize(q, config=config, cache=PlanCache()).cost
            _, counters, _ = _run_counted(small_store, sql, config)
            pairs.append((cost, counters.total_physical_ops))

        costs = [c for c, _ in pairs]
        work = [w for _, w in pairs]
        assert costs == sorted(costs)
        assert work == sorted(work)

    def test_join_work_scales_with_outer(self, small_store):
        catalog = small_store.catalog
        users_ix = catalog.index_for("users", "user_id")
        day_ix = catalog.index_for("events", "day")
        small_store.build_index(users_ix)
        small_store.build_index(day_ix)
        config = frozenset([users_ix, day_ix])
        narrow = (
            "select users.score from events, users "
            "where events.user_id = users.user_id and events.day = 8000"
        )
        wide = (
            "select users.score from events, users "
            "where events.user_id = users.user_id and events.day between 8000 and 8500"
        )
        _, narrow_work, _ = _run_counted(small_store, narrow, config)
        _, wide_work, _ = _run_counted(small_store, wide, config)
        assert wide_work.total_physical_ops > narrow_work.total_physical_ops
