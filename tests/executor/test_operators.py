"""Unit tests for individual executor operators."""

import pytest

from repro.executor.executor import execute
from repro.optimizer.optimizer import Optimizer
from repro.sql.binder import bind_query
from repro.sql.parser import parse_query


def _run(store, sql):
    q = bind_query(parse_query(sql), store.catalog)
    plan = Optimizer(store.catalog).optimize(q).plan
    return execute(plan, store)


class TestScansAndFilters:
    def test_full_scan_count(self, small_store):
        rows = _run(small_store, "select * from users")
        assert len(rows) == 500

    def test_eq_filter(self, small_store):
        rows = _run(small_store, "select user_id, score from users where user_id = 42")
        assert len(rows) == 1
        assert rows[0][0] == 42

    def test_between_filter(self, small_store):
        rows = _run(small_store, "select user_id from users where user_id between 10 and 19")
        assert sorted(r[0] for r in rows) == list(range(10, 20))

    def test_in_filter(self, small_store):
        rows = _run(small_store, "select user_id from users where user_id in (1, 2, 999)")
        assert sorted(r[0] for r in rows) == [1, 2]

    def test_string_filter(self, small_store):
        rows = _run(small_store, "select kind from events where kind = 'buy'")
        assert rows and all(r[0] == "buy" for r in rows)

    def test_conjunction(self, small_store):
        rows = _run(
            small_store,
            "select user_id, amount from events where user_id = 7 and amount < 500",
        )
        assert all(r[0] == 7 and r[1] < 500 for r in rows)

    def test_empty_result(self, small_store):
        assert _run(small_store, "select * from users where user_id = 99999") == []


class TestProjection:
    def test_column_order(self, small_store):
        rows = _run(small_store, "select score, user_id from users where user_id = 5")
        # score first, then user_id, per the SELECT list.
        assert rows[0][1] == 5

    def test_star_deterministic_order(self, small_store):
        a = _run(small_store, "select * from users where user_id = 5")
        b = _run(small_store, "select * from users where user_id = 5")
        assert a == b


class TestSortLimit:
    def test_order_by_asc(self, small_store):
        rows = _run(small_store, "select user_id from users order by user_id")
        assert [r[0] for r in rows] == sorted(r[0] for r in rows)

    def test_order_by_desc(self, small_store):
        rows = _run(small_store, "select user_id from users order by user_id desc")
        values = [r[0] for r in rows]
        assert values == sorted(values, reverse=True)

    def test_multi_key_sort(self, small_store):
        rows = _run(small_store, "select score, user_id from users order by score desc, user_id asc")
        for a, b in zip(rows, rows[1:]):
            assert a[0] > b[0] or (a[0] == b[0] and a[1] <= b[1])

    def test_limit(self, small_store):
        rows = _run(small_store, "select user_id from users order by user_id limit 3")
        assert [r[0] for r in rows] == [1, 2, 3]

    def test_limit_larger_than_result(self, small_store):
        rows = _run(small_store, "select user_id from users where user_id = 1 limit 50")
        assert len(rows) == 1


class TestAggregation:
    def test_count_star(self, small_store):
        rows = _run(small_store, "select count(*) from users")
        assert rows == [(500,)]

    def test_count_star_empty_input(self, small_store):
        rows = _run(small_store, "select count(*) from users where user_id = 99999")
        assert rows == [(0,)]

    def test_sum_avg_consistency(self, small_store):
        total = _run(small_store, "select sum(score) from users")[0][0]
        avg = _run(small_store, "select avg(score) from users")[0][0]
        assert avg == pytest.approx(total / 500)

    def test_min_max(self, small_store):
        lo = _run(small_store, "select min(user_id) from users")[0][0]
        hi = _run(small_store, "select max(user_id) from users")[0][0]
        assert (lo, hi) == (1, 500)

    def test_group_by(self, small_store):
        rows = _run(small_store, "select kind, count(*) from events group by kind")
        assert sum(r[1] for r in rows) == 5000
        assert len(rows) == 4

    def test_group_by_with_filter(self, small_store):
        rows = _run(
            small_store,
            "select kind, count(*) from events where user_id = 3 group by kind",
        )
        direct = _run(small_store, "select kind from events where user_id = 3")
        assert sum(r[1] for r in rows) == len(direct)

    def test_group_order_limit(self, small_store):
        rows = _run(
            small_store,
            "select kind, count(*) from events group by kind order by kind limit 2",
        )
        assert len(rows) == 2
        assert rows[0][0] < rows[1][0]


class TestJoins:
    def test_hash_join_matches_manual(self, small_store):
        rows = _run(
            small_store,
            "select events.user_id, users.score from events, users "
            "where events.user_id = users.user_id and events.user_id = 17",
        )
        events = _run(small_store, "select user_id from events where user_id = 17")
        assert len(rows) == len(events)
        scores = _run(small_store, "select score from users where user_id = 17")
        assert all(r[1] == scores[0][0] for r in rows)

    def test_join_aggregate(self, small_store):
        rows = _run(
            small_store,
            "select count(*) from events, users "
            "where events.user_id = users.user_id",
        )
        # Every event's user_id is within 1..500, all present in users.
        assert rows == [(5000,)]
