"""Direct unit tests for executor join internals."""

from repro.executor.joins import _split_keys, hash_join, nested_loop
from repro.optimizer.plan import HashJoinNode, NestedLoopNode, SeqScanNode
from repro.sql.ast import ColumnExpr, JoinPredicate


def _scan(table):
    return SeqScanNode(rows=1.0, cost=1.0, table=table, filters=[])


def _join_node(cls, left_table, right_table, pairs, **kwargs):
    joins = [
        JoinPredicate(ColumnExpr(lc, left_table), ColumnExpr(rc, right_table))
        for lc, rc in pairs
    ]
    if cls is HashJoinNode:
        return HashJoinNode(
            rows=1.0, cost=1.0, probe=_scan(left_table), build=_scan(right_table),
            joins=joins,
        )
    return NestedLoopNode(
        rows=1.0, cost=1.0, outer=_scan(left_table), inner=_scan(right_table),
        joins=joins,
    )


class TestSplitKeys:
    def test_orientation_follows_probe_side(self):
        node = _join_node(HashJoinNode, "a", "b", [("x", "y")])
        build_keys, probe_keys = _split_keys(node)
        assert [str(k) for k in probe_keys] == ["a.x"]
        assert [str(k) for k in build_keys] == ["b.y"]

    def test_reversed_predicate_still_oriented(self):
        # Join written b.y = a.x while probing a.
        node = HashJoinNode(
            rows=1.0,
            cost=1.0,
            probe=_scan("a"),
            build=_scan("b"),
            joins=[JoinPredicate(ColumnExpr("y", "b"), ColumnExpr("x", "a"))],
        )
        build_keys, probe_keys = _split_keys(node)
        assert [str(k) for k in probe_keys] == ["a.x"]
        assert [str(k) for k in build_keys] == ["b.y"]

    def test_multi_key_order_consistent(self):
        node = _join_node(HashJoinNode, "a", "b", [("x", "y"), ("u", "v")])
        build_keys, probe_keys = _split_keys(node)
        assert [str(k) for k in probe_keys] == ["a.x", "a.u"]
        assert [str(k) for k in build_keys] == ["b.y", "b.v"]


class TestHashJoinIterator:
    def _rows(self, table, pairs):
        return [
            {(table, "k"): k, (table, "v"): v} for k, v in pairs
        ]

    def test_matches_and_merges(self):
        node = _join_node(HashJoinNode, "l", "r", [("k", "k")])
        left = self._rows("l", [(1, "a"), (2, "b")])
        right = self._rows("r", [(1, "x"), (3, "y")])
        out = list(hash_join(node, probe=lambda: iter(left), build=lambda: iter(right)))
        assert len(out) == 1
        assert out[0][("l", "v")] == "a"
        assert out[0][("r", "v")] == "x"

    def test_duplicate_build_keys_multiply(self):
        node = _join_node(HashJoinNode, "l", "r", [("k", "k")])
        left = self._rows("l", [(1, "a")])
        right = self._rows("r", [(1, "x"), (1, "y")])
        out = list(hash_join(node, probe=lambda: iter(left), build=lambda: iter(right)))
        assert len(out) == 2


class TestNestedLoopIterator:
    def test_cartesian_when_no_predicates(self, small_store):
        node = NestedLoopNode(
            rows=1.0, cost=1.0, outer=_scan("l"), inner=_scan("r"), joins=[]
        )
        left = [{("l", "k"): i} for i in range(3)]
        right = [{("r", "k"): i} for i in range(4)]
        out = list(
            nested_loop(
                node, small_store, outer=lambda: iter(left), inner=lambda: iter(right)
            )
        )
        assert len(out) == 12

    def test_predicates_filter(self, small_store):
        node = _join_node(NestedLoopNode, "l", "r", [("k", "k")])
        left = [{("l", "k"): i} for i in range(3)]
        right = [{("r", "k"): i} for i in range(3)]
        out = list(
            nested_loop(
                node, small_store, outer=lambda: iter(left), inner=lambda: iter(right)
            )
        )
        assert len(out) == 3
