"""The executor vs. a brute-force reference evaluator.

The reference evaluator below interprets bound queries directly over the
raw heap data -- no plans, no indexes, no operators -- using the most
naive semantics possible.  Property tests then generate random queries
and random physical configurations and check that the optimizer+executor
pipeline always produces exactly the reference answer.  This is the
strongest end-to-end correctness net in the suite: any planner bug that
changes results (wrong residual filters, broken composite scans, bad
join keys) fails here.
"""

import random
from typing import Dict, List, Tuple

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.executor import execute
from repro.executor.predicates import eval_filters, eval_join
from repro.optimizer.optimizer import Optimizer, PlanCache
from repro.sql.ast import (
    AggFunc,
    Aggregate,
    BetweenPredicate,
    ColumnExpr,
    CompareOp,
    ComparisonPredicate,
    InPredicate,
    JoinPredicate,
    Query,
    SelectItem,
)


# ----------------------------------------------------------------------
# Reference evaluator
# ----------------------------------------------------------------------
def reference_evaluate(query: Query, store) -> List[Tuple]:
    """Evaluate a bound query by brute force over the heaps."""
    # Cartesian product of all tables, as row dicts.
    rows: List[Dict] = [{}]
    for table in query.tables:
        heap = store.heap(table)
        expanded = []
        for partial in rows:
            for _rid, values in heap.scan():
                row = dict(partial)
                for name, value in zip(heap.column_names, values):
                    row[(table, name)] = value
                expanded.append(row)
        rows = expanded

    rows = [
        r
        for r in rows
        if eval_filters(query.filters, r)
        and all(eval_join(j, r) for j in query.joins)
    ]

    aggregates = [
        item.expr for item in query.select if isinstance(item.expr, Aggregate)
    ]
    if aggregates or query.group_by:
        return _reference_aggregate(query, rows)

    if query.select:
        out = [
            tuple(r[(c.expr.table, c.expr.column)] for c in query.select)
            for r in rows
        ]
    else:
        out = [tuple(r[k] for k in sorted(r)) for r in rows]
    out = _order_and_limit(query, out)
    return out


def _reference_aggregate(query: Query, rows: List[Dict]) -> List[Tuple]:
    groups: Dict[Tuple, List[Dict]] = {}
    for r in rows:
        key = tuple(r[(c.table, c.column)] for c in query.group_by)
        groups.setdefault(key, []).append(r)
    if not query.group_by and not groups:
        groups[()] = []

    def agg_value(agg: Aggregate, members: List[Dict]):
        if agg.arg is None:
            return len(members)
        values = [m[(agg.arg.table, agg.arg.column)] for m in members]
        if agg.func is AggFunc.COUNT:
            return len(values)
        if agg.func is AggFunc.SUM:
            return sum(values) if values else None
        if agg.func is AggFunc.AVG:
            return sum(values) / len(values) if values else None
        if agg.func is AggFunc.MIN:
            return min(values) if values else None
        return max(values) if values else None

    out = []
    for key, members in groups.items():
        row = []
        for item in query.select:
            if isinstance(item.expr, Aggregate):
                row.append(agg_value(item.expr, members))
            else:
                position = [
                    (c.table, c.column) for c in query.group_by
                ].index((item.expr.table, item.expr.column))
                row.append(key[position])
        out.append(tuple(row))
    return _order_and_limit(query, out)


def _order_and_limit(query: Query, out: List[Tuple]) -> List[Tuple]:
    if query.limit is not None and not query.order_by:
        # Unordered LIMIT: any subset is acceptable; compare as sets in
        # the caller instead (we avoid generating this case).
        out = out[: query.limit]
    return out


# ----------------------------------------------------------------------
# Random query generation over the fixture schema
# ----------------------------------------------------------------------
@st.composite
def _random_query(draw):
    preds = []
    n_preds = draw(st.integers(0, 3))
    for _ in range(n_preds):
        kind = draw(st.sampled_from(["eq_user", "range_amount", "in_user", "range_day"]))
        if kind == "eq_user":
            preds.append(
                ComparisonPredicate(
                    ColumnExpr("user_id", "events"),
                    CompareOp.EQ,
                    draw(st.integers(1, 500)),
                )
            )
        elif kind == "range_amount":
            lo = draw(st.floats(0, 900))
            preds.append(
                BetweenPredicate(
                    ColumnExpr("amount", "events"), lo, lo + draw(st.floats(1, 200))
                )
            )
        elif kind == "in_user":
            preds.append(
                InPredicate(
                    ColumnExpr("user_id", "events"),
                    tuple(draw(st.sets(st.integers(1, 500), min_size=1, max_size=4))),
                )
            )
        else:
            lo = draw(st.integers(8000, 9500))
            preds.append(
                BetweenPredicate(
                    ColumnExpr("day", "events"), lo, lo + draw(st.integers(0, 300))
                )
            )

    join = draw(st.booleans())
    tables = ["events"]
    joins = []
    select = [SelectItem(expr=ColumnExpr("user_id", "events"))]
    if join:
        tables.append("users")
        joins.append(
            JoinPredicate(
                ColumnExpr("user_id", "events"), ColumnExpr("user_id", "users")
            )
        )
        select.append(SelectItem(expr=ColumnExpr("score", "users")))
    if draw(st.booleans()):
        select = [SelectItem(expr=Aggregate(func=AggFunc.COUNT, arg=None))]

    indexes = draw(
        st.sets(
            st.sampled_from(["user_id", "amount", "day", "users.user_id", "composite"]),
            max_size=3,
        )
    )
    return Query(tables=tables, select=select, filters=preds, joins=joins), indexes


class TestAgainstReference:
    @given(data=_random_query())
    @settings(max_examples=50, deadline=None)
    def test_pipeline_matches_reference(self, reference_store, data):
        query, index_names = data
        store = reference_store
        catalog = store.catalog
        config = set()
        for name in index_names:
            if name == "users.user_id":
                index = catalog.index_for("users", "user_id")
            elif name == "composite":
                index = catalog.composite_index_for("events", ["user_id", "day"])
            else:
                index = catalog.index_for("events", name)
            store.build_index(index)
            config.add(index)

        plan = Optimizer(catalog).optimize(
            query, config=frozenset(config), cache=PlanCache()
        ).plan
        got = sorted(execute(plan, store))
        want = sorted(reference_evaluate(query, store))
        if got != want:  # pragma: no cover - debugging aid
            from repro.optimizer.plan import explain

            pytest.fail(
                f"mismatch\nplan:\n{explain(plan)}\n"
                f"got {len(got)} rows, want {len(want)}"
            )


@pytest.fixture(scope="module")
def reference_store():
    from repro.engine.catalog import Catalog, ColumnDef, TableDef
    from repro.engine.datatypes import DataType
    from repro.engine.storage import PhysicalStore

    rng = random.Random(77)
    catalog = Catalog()
    catalog.add_table(
        TableDef(
            "events",
            [
                ColumnDef("user_id", DataType.INT),
                ColumnDef("amount", DataType.FLOAT),
                ColumnDef("day", DataType.DATE),
            ],
        )
    )
    catalog.add_table(
        TableDef(
            "users",
            [ColumnDef("user_id", DataType.INT), ColumnDef("score", DataType.INT)],
        )
    )
    store = PhysicalStore(catalog)
    events = store.create_heap("events")
    for _ in range(400):
        events.insert(
            (rng.randint(1, 500), rng.uniform(0, 1000), rng.randint(8000, 9999))
        )
    users = store.create_heap("users")
    for uid in rng.sample(range(1, 501), 120):  # some users missing: join filters
        users.insert((uid, rng.randint(0, 99)))
    store.analyze("events")
    store.analyze("users")
    return store
