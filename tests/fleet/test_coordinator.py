"""Tests for fleet coordination: epochs, drains, restores, divergence."""

import pytest

from repro.core.config import ColtConfig
from repro.fleet.coordinator import FleetCoordinator
from repro.fleet.replica import ReplicaHealth
from repro.resilience.breaker import CircuitBreaker
from repro.workload.phases import Workload

from tests.fleet.workloads import (
    build_small_catalog,
    day_query,
    eq_query,
    score_query,
)


def make_fleet(n=3, policy="affinity", fleet_epoch_length=10, breakers=None, **cfg):
    cfg.setdefault("storage_budget_pages", 6000.0)
    cfg.setdefault("min_history_epochs", 2)
    return FleetCoordinator(
        build_small_catalog,
        n_replicas=n,
        config=ColtConfig(**cfg),
        policy=policy,
        fleet_epoch_length=fleet_epoch_length,
        breakers=breakers,
    )


def mixed_queries(n):
    makers = [eq_query, day_query, score_query]
    return [makers[i % 3](8000 + i if i % 3 == 1 else i + 1) for i in range(n)]


class TestValidation:
    def test_rejects_empty_fleet(self):
        with pytest.raises(ValueError):
            make_fleet(n=0)

    def test_rejects_bad_epoch_length(self):
        with pytest.raises(ValueError):
            make_fleet(fleet_epoch_length=0)


class TestEpochs:
    def test_reorganizes_every_fleet_epoch(self):
        fleet = make_fleet(fleet_epoch_length=10)
        run = fleet.run(mixed_queries(35))
        assert len(run.reorganizations) == 3
        assert [r.epoch for r in run.reorganizations] == [0, 1, 2]
        boundaries = [o.index for o in run.outcomes if o.reorganization]
        assert boundaries == [9, 19, 29]

    def test_run_ledger_is_complete(self):
        fleet = make_fleet()
        queries = mixed_queries(30)
        run = fleet.run(queries)
        assert len(run.outcomes) == 30
        assert sum(run.queries_per_replica) == 30
        assert run.execution_cost > 0
        assert run.total_cost >= run.execution_cost
        assert run.failed_queries == 0
        assert run.policy == "affinity"

    def test_workload_client_ids_flow_to_router(self):
        queries = [eq_query(i + 1) for i in range(20)]
        workload = Workload(
            queries=queries,
            source=["x"] * 20,
            description="two clients",
            client_ids=[i % 2 for i in range(20)],
        )
        fleet = make_fleet(n=2, policy="client")
        run = fleet.run(workload)
        by_client = {0: set(), 1: set()}
        for outcome, client in zip(run.outcomes, workload.client_ids):
            by_client[client].add(outcome.replica_id)
        # Every client's queries stayed on one replica, and the two
        # clients landed on different replicas.
        assert all(len(v) == 1 for v in by_client.values())
        assert by_client[0] != by_client[1]


class TestDrain:
    def _fleet_with_tripped_replica(self, cooldown=30):
        breakers = [
            CircuitBreaker(failure_threshold=1, cooldown_ticks=cooldown,
                           recovery_threshold=1),
            None,
            None,
        ]
        fleet = make_fleet(breakers=breakers, fleet_epoch_length=10)
        # Warm the router so replica 0 owns at least one assignment.
        for query in mixed_queries(10):
            fleet.process_query(query)
        assert 0 in fleet.router.assignments.values()
        fleet.replicas[0].breaker.record_failure()  # trips OPEN
        assert fleet.replicas[0].health is ReplicaHealth.DRAINED
        return fleet

    def test_open_replica_is_drained_without_dropping_queries(self):
        fleet = self._fleet_with_tripped_replica(cooldown=1000)
        outcomes = [fleet.process_query(q) for q in mixed_queries(30)]
        # The drain is recorded on the first boundary after the trip.
        drains = [o.reorganization for o in outcomes if o.reorganization]
        assert drains[0].drained == [0]
        assert drains[0].drained_total == [0]
        assert drains[0].moved_assignments >= 1
        statuses = {s.replica_id: s.health for s in drains[0].replicas}
        assert statuses[0] == "drained"
        # Every query completed; after the drain boundary none reached
        # the drained replica.
        assert all(not o.outcome.failed for o in outcomes)
        boundary = next(i for i, o in enumerate(outcomes) if o.reorganization)
        after_drain = outcomes[boundary + 1:]
        assert after_drain
        assert all(o.replica_id != 0 for o in after_drain)

    def test_drained_replica_recovers_and_is_restored(self):
        fleet = self._fleet_with_tripped_replica(cooldown=15)
        outcomes = [fleet.process_query(q) for q in mixed_queries(60)]
        reorgs = [o.reorganization for o in outcomes if o.reorganization]
        assert any(r.drained == [0] for r in reorgs)
        restored = [r for r in reorgs if r.restored == [0]]
        # Idle ticks advanced the breaker through cooldown; the replica
        # re-entered the rotation at a later boundary.
        assert restored
        assert restored[0].drained_total == []
        # Rebalancing handed the starved, just-restored replica some
        # assignments back, so it serves traffic again.
        position = next(
            i for i, o in enumerate(outcomes)
            if o.reorganization is restored[0]
        )
        assert any(o.replica_id == 0 for o in outcomes[position + 1:])


class TestDivergence:
    def test_identical_sets_are_zero(self):
        fleet = make_fleet(n=2)
        for replica in fleet.replicas:
            ix = replica.catalog.index_for("events", "user_id")
            replica.tuner.self_organizer.materialized.add(ix)
        assert fleet.configuration_divergence() == 0.0

    def test_disjoint_sets_are_one(self):
        fleet = make_fleet(n=2)
        ix0 = fleet.replicas[0].catalog.index_for("events", "user_id")
        ix1 = fleet.replicas[1].catalog.index_for("events", "day")
        fleet.replicas[0].tuner.self_organizer.materialized.add(ix0)
        fleet.replicas[1].tuner.self_organizer.materialized.add(ix1)
        assert fleet.configuration_divergence() == 1.0

    def test_empty_sets_are_zero(self):
        assert make_fleet(n=2).configuration_divergence() == 0.0

    def test_single_replica_is_zero(self):
        assert make_fleet(n=1).configuration_divergence() == 0.0


class TestSpecialization:
    def test_affinity_specializes_replicas(self):
        fleet = make_fleet(n=3, policy="affinity", epoch_length=5)
        fleet.run(mixed_queries(120))
        # Each replica saw one coherent cluster and materialized for it;
        # the sets must have diverged.
        assert fleet.configuration_divergence() > 0.5
        materialized = [set(r.materialized_names) for r in fleet.replicas]
        assert sum(1 for m in materialized if m) >= 2
