"""Tests for the fleet routing policies."""

import pytest

from repro.core.config import ColtConfig
from repro.fleet.replica import TunerReplica
from repro.fleet.router import (
    MIN_PROBE_BUDGET,
    AffinityRouter,
    CostBasedRouter,
    RoundRobinRouter,
    make_router,
)

from tests.fleet.workloads import (
    build_small_catalog,
    day_query,
    eq_query,
    score_query,
)


@pytest.fixture(scope="module")
def catalog():
    return build_small_catalog()


class TestRoundRobin:
    def test_cycles_over_replicas(self, catalog):
        router = RoundRobinRouter(3)
        picks = [router.route(eq_query(i)).replica_id for i in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_skips_drained(self, catalog):
        router = RoundRobinRouter(3)
        router.set_drained([1])
        picks = {router.route(eq_query(i)).replica_id for i in range(6)}
        assert picks == {0, 2}

    def test_all_drained_falls_back_to_everyone(self, catalog):
        router = RoundRobinRouter(2)
        router.set_drained([0, 1])
        assert router.route(eq_query(1)).replica_id in (0, 1)

    def test_rejects_empty_fleet(self):
        with pytest.raises(ValueError):
            RoundRobinRouter(0)


class TestAffinity:
    def test_same_shape_same_replica(self, catalog):
        router = AffinityRouter(3, catalog)
        picks = {router.route(eq_query(v)).replica_id for v in range(10)}
        assert len(picks) == 1  # one cluster -> one replica

    def test_distinct_shapes_spread_by_load(self, catalog):
        router = AffinityRouter(3, catalog)
        a = router.route(eq_query(1)).replica_id
        b = router.route(day_query(8000)).replica_id
        c = router.route(score_query(5)).replica_id
        assert len({a, b, c}) == 3  # least-loaded assignment spreads keys

    def test_drained_assignment_moves_and_sticks(self, catalog):
        router = AffinityRouter(2, catalog)
        home = router.route(eq_query(1)).replica_id
        router.set_drained([home])
        moved = router.route(eq_query(2)).replica_id
        assert moved != home
        assert router.moves == 1
        # The new assignment is sticky after the drain ends.
        router.set_drained([])
        assert router.route(eq_query(3)).replica_id == moved

    def test_reassign_from_bulk_moves(self, catalog):
        router = AffinityRouter(2, catalog)
        victims = {router.route(q).replica_id for q in (eq_query(1), day_query(8000))}
        assert victims == {0, 1}
        router.set_drained([0])
        moved = router.reassign_from([0])
        assert moved == 1
        assert all(r != 0 for r in router.assignments.values())

    def test_client_mode_keys_on_client_id(self, catalog):
        router = AffinityRouter(2, catalog, by="client")
        a = router.route(eq_query(1), client_id=0).replica_id
        b = router.route(day_query(8000), client_id=0).replica_id
        assert a == b  # different clusters, same client
        c = router.route(eq_query(2), client_id=1).replica_id
        assert c != a  # second client balances onto the other replica

    def test_client_mode_untagged_falls_back_to_cluster(self, catalog):
        router = AffinityRouter(2, catalog, by="client")
        a = router.route(eq_query(1)).replica_id
        assert router.route(eq_query(2)).replica_id == a

    def test_rejects_unknown_key_mode(self, catalog):
        with pytest.raises(ValueError):
            AffinityRouter(2, catalog, by="table")


class ProbeCounter:
    """Wrap a replica so every what-if probe against it is counted."""

    def __init__(self, replica):
        self._replica = replica
        self.probes = 0

    def __getattr__(self, name):
        return getattr(self._replica, name)

    def probe_cost(self, query):
        self.probes += 1
        return self._replica.probe_cost(query)


def make_cost_fleet(n=2, probe_budget=30):
    catalog = build_small_catalog()
    replicas = [
        TunerReplica(i, build_small_catalog(), ColtConfig()) for i in range(n)
    ]
    router = CostBasedRouter(n, catalog, probe_budget=probe_budget)
    router.bind(replicas)
    return router, replicas


class TestCostBased:
    def test_requires_bind(self):
        router = CostBasedRouter(2, build_small_catalog())
        with pytest.raises(RuntimeError):
            router.route(eq_query(1))

    def test_bind_checks_size(self):
        router, replicas = make_cost_fleet(2)
        with pytest.raises(ValueError):
            router.bind(replicas[:1])

    def test_routes_to_cheapest_replica(self):
        router, replicas = make_cost_fleet(2)
        ix = replicas[1].catalog.index_for("events", "user_id")
        replicas[1].catalog.materialize_index(ix)
        route = router.route(eq_query(1))
        assert route.replica_id == 1
        assert route.probes == 2

    def test_cached_routes_spend_no_probes(self):
        router, replicas = make_cost_fleet(2)
        first = router.route(eq_query(1))
        assert first.probes == 2
        again = router.route(eq_query(2))
        assert again.replica_id == first.replica_id
        assert again.probes == 0
        assert router.probes_used == 2

    def test_config_change_invalidates_cache(self):
        router, replicas = make_cost_fleet(2)
        first = router.route(eq_query(1))
        assert first.replica_id == 0  # tie broken by id
        ix = replicas[1].catalog.index_for("events", "user_id")
        replicas[1].catalog.materialize_index(ix)
        replicas[1].config_version += 1
        rerouted = router.route(eq_query(2))
        assert rerouted.probes == 2  # re-probed after the version bump
        assert rerouted.replica_id == 1
        assert router.route_changes == 1

    def test_budget_exhaustion_falls_back_to_cache(self):
        router, replicas = make_cost_fleet(2, probe_budget=3)
        router.route(eq_query(1))  # spends 2 of 3
        # A new shape would need 2 more probes: over budget, so the
        # router balances blindly without probing.
        route = router.route(day_query(8000))
        assert route.probes == 0
        # The cached shape still routes consistently without probes.
        assert router.route(eq_query(2)).probes == 0

    def test_drained_replica_never_probed_mid_epoch(self):
        # Regression: a drain installed between roll_epoch boundaries
        # must take effect immediately -- no probe may land on a
        # drained replica while the epoch is still open.
        router, replicas = make_cost_fleet(2)
        counters = [ProbeCounter(r) for r in replicas]
        router.bind(counters)
        router.set_drained([1])
        route = router.route(eq_query(1))
        assert route.replica_id == 0
        assert route.probes == 1
        assert counters[1].probes == 0

    def test_all_drained_routes_blind_without_probes(self):
        # Regression: with the whole fleet drained the router used to
        # fall back to probing every (drained) replica.  Degraded
        # service still routes, but blind and probe-free.
        router, replicas = make_cost_fleet(2)
        counters = [ProbeCounter(r) for r in replicas]
        router.bind(counters)
        router.set_drained([0, 1])
        route = router.route(eq_query(1))
        assert route.replica_id in (0, 1)
        assert route.probes == 0
        assert router.probes_used == 0
        assert all(c.probes == 0 for c in counters)

    def test_probe_budget_self_regulates(self):
        router, replicas = make_cost_fleet(2, probe_budget=40)
        router.route(eq_query(1))
        router.roll_epoch()  # no route changes: decay
        assert router.probe_budget == 20
        for _ in range(3):
            router.roll_epoch()
        assert router.probe_budget >= MIN_PROBE_BUDGET
        # A route change restores the full grant.
        ix = replicas[1].catalog.index_for("events", "user_id")
        replicas[1].catalog.materialize_index(ix)
        replicas[1].config_version += 1
        router.route(eq_query(2))
        router.roll_epoch()
        assert router.probe_budget == 40


class TestFactory:
    @pytest.mark.parametrize(
        "policy,name",
        [
            ("round-robin", "round-robin"),
            ("affinity", "affinity"),
            ("client", "client"),
            ("cost", "cost"),
        ],
    )
    def test_known_policies(self, catalog, policy, name):
        assert make_router(policy, 3, catalog).name == name

    def test_unknown_policy(self, catalog):
        with pytest.raises(ValueError):
            make_router("random", 3, catalog)
