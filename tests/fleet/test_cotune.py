"""Co-tuning loop tests: differential parity plus loop mechanics.

Two differential contracts anchor this file (ISSUE: parity satellite):

* **off = today.**  A fleet constructed with ``cotune=False`` (or with
  the argument omitted) must be bit-identical to the pre-co-tuning
  coordinator across every routing policy and engine -- same outcomes,
  same what-if ledger, same total cost, same decision traces.  The
  co-tuning hooks sit on the routing hot path and inside both tuners'
  ``_close_epoch``, so "dormant" has to be proven, not assumed.
* **serial = workers at cotune=on.**  Partition routing, boundary
  probes, and advisory pushes all travel the worker pipe chunk-aligned;
  the multiprocess fleet must reproduce the serial coordinator's run
  bit for bit, including the co-tuning history.

The remaining tests pin the loop mechanics: inherit-then-refine
placement, hysteresis-gated migration, convergence freeze/resume, and
the self-regulating probe budget.
"""

import json

import pytest

from repro.core.config import ColtConfig
from repro.fleet import FleetCoordinator
from repro.fleet.cotune import CotuneConfig, CotuneController
from repro.fleet.snapshots import restore_fleet, save_fleet

from tests.fleet.workloads import (
    build_small_catalog,
    day_query,
    eq_query,
    score_query,
)

POLICIES = ["round-robin", "affinity", "client", "cost"]
ENGINES = ["colt", "bandit"]


def mixed_queries(n):
    makers = [eq_query, day_query, score_query]
    return [
        makers[i % 3](8000 + i if i % 3 == 1 else i + 1) for i in range(n)
    ]


def make_fleet(n=2, policy="affinity", engine="colt", cotune=None, **cfg):
    cfg.setdefault("storage_budget_pages", 6000.0)
    cfg.setdefault("min_history_epochs", 2)
    if engine == "bandit":
        cfg.setdefault("epoch_length", 5)
    kwargs = {} if cotune is None else {"cotune": cotune}
    return FleetCoordinator(
        build_small_catalog,
        n_replicas=n,
        config=ColtConfig(**cfg),
        policy=policy,
        fleet_epoch_length=10,
        engine=engine,
        **kwargs,
    )


def outcome_key(fleet_outcome):
    o = fleet_outcome.outcome
    return (
        fleet_outcome.index,
        fleet_outcome.replica_id,
        fleet_outcome.routing_overhead,
        o.execution_cost,
        o.whatif_calls,
        o.build_cost,
        o.total_cost,
        o.failed,
    )


def run_key(fleet, run):
    return (
        [outcome_key(o) for o in run.outcomes],
        run.total_cost,
        [sorted(r.materialized_names) for r in fleet.replicas],
        [json.loads(r.trace().to_json()) for r in fleet.replicas],
    )


class TestOffParity:
    """cotune=off is bit-identical to the pre-co-tuning fleet."""

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("policy", POLICIES)
    def test_off_matches_default_everywhere(self, policy, engine):
        queries = mixed_queries(45)
        baseline = make_fleet(policy=policy, engine=engine)
        explicit = make_fleet(policy=policy, engine=engine, cotune=False)
        assert baseline.cotune is None
        assert explicit.cotune is None
        baseline_run = baseline.run(queries)
        explicit_run = explicit.run(queries)
        assert run_key(explicit, explicit_run) == run_key(
            baseline, baseline_run
        )
        # Dormant means dormant: no boundary ever produced a report.
        assert all(
            r.cotune is None for r in baseline_run.reorganizations
        )


class TestOnVsOffDifferential:
    """Enabling co-tuning inherits the incumbent layout, not a reshuffle.

    On a stream the affinity policy already partitions cleanly, the
    fallback-hint placement makes cotune=on reproduce cotune=off's
    *execution* decisions exactly; the runs differ only by the probe
    overhead charged at boundaries.  This is the regression test for
    the inherit-then-refine design -- a partitioner that reshuffles the
    working layout on enable shows up here as an execution-cost split.
    """

    def test_on_inherits_off_layout_under_affinity(self):
        queries = mixed_queries(90)
        off = make_fleet(n=3, policy="affinity")
        on = make_fleet(n=3, policy="affinity", cotune=True)
        off_run = off.run(queries)
        on_run = on.run(queries)
        assert on_run.execution_cost == off_run.execution_cost
        assert [sorted(r.materialized_names) for r in on.replicas] == [
            sorted(r.materialized_names) for r in off.replicas
        ]
        probe_cost = sum(
            r.cotune.probe_cost
            for r in on_run.reorganizations
            if r.cotune
        )
        assert probe_cost > 0
        assert on_run.total_cost == pytest.approx(
            off_run.total_cost + probe_cost
        )

    def test_reports_appear_at_every_boundary(self):
        fleet = make_fleet(n=2, cotune=True)
        run = fleet.run(mixed_queries(40))
        reports = [r.cotune for r in run.reorganizations]
        assert reports and all(r is not None for r in reports)
        assert [r.epoch for r in reports] == list(range(len(reports)))
        assert fleet.cotune.epochs == len(reports)


class TestWorkersParity:
    """Serial and multiprocess co-tuned fleets agree bit for bit."""

    @pytest.mark.parametrize("engine", ENGINES)
    def test_cotune_on_parity(self, engine):
        queries = mixed_queries(60)
        serial = make_fleet(n=2, engine=engine, cotune=True)
        serial_run = serial.run(queries)
        cfg = {"storage_budget_pages": 6000.0, "min_history_epochs": 2}
        if engine == "bandit":
            cfg["epoch_length"] = 5
        with FleetCoordinator(
            build_small_catalog,
            config=ColtConfig(**cfg),
            policy="affinity",
            fleet_epoch_length=10,
            engine=engine,
            workers=2,
            cotune=True,
        ) as fleet:
            worker_run = fleet.run(queries)
            assert [outcome_key(o) for o in worker_run.outcomes] == [
                outcome_key(o) for o in serial_run.outcomes
            ]
            assert worker_run.total_cost == serial_run.total_cost
            assert worker_run.queries_per_replica == (
                serial_run.queries_per_replica
            )
            assert [
                sorted(h.materialized_names) for h in fleet.replicas
            ] == [sorted(r.materialized_names) for r in serial.replicas]
            assert fleet.replica_traces() == [
                json.loads(r.trace().to_json()) for r in serial.replicas
            ]
            # The co-tuning ledgers match too: same partitions, same
            # probes, same convergence trajectory.
            assert fleet.cotune.history == serial.cotune.history
            assert fleet.cotune.assignment == serial.cotune.assignment


class TestPartitionRouting:
    def test_assigned_signatures_route_to_their_partition(self):
        fleet = make_fleet(n=2, cotune=True)
        fleet.run(mixed_queries(20))  # past the first boundary
        assignment = dict(fleet.cotune.assignment)
        assert assignment
        for query in mixed_queries(20):
            sig = fleet.cotune.signature_of(query)
            if sig in assignment:
                outcome = fleet.process_query(query)
                assert outcome.replica_id == assignment[sig]

    def test_drained_partition_falls_back_to_base_router(self):
        controller = CotuneController(2, build_small_catalog())
        query = eq_query(1)
        controller.admit(query, drained=())
        controller.end_epoch(
            active=[0, 1],
            cost_per_query=10.0,
            epoch_queries=1,
            probe_costs=lambda reps, ids: {},
        )
        sig = controller.signature_of(query)
        home = controller.assignment[sig]
        assert controller.admit(query, drained=()) == home
        assert controller.admit(query, drained=(home,)) is None


class TestRefinement:
    def probe_map(self, prices):
        """A probe_costs callback quoting fixed per-replica prices."""
        return lambda reps, ids: {
            r: [prices[r]] * len(reps) for r in ids if r in prices
        }

    def seeded(self):
        controller = CotuneController(
            2, build_small_catalog(), config=CotuneConfig(hysteresis=0.1)
        )
        controller.admit(eq_query(1), drained=())
        controller.end_epoch(
            active=[0, 1],
            cost_per_query=10.0,
            epoch_queries=1,
            probe_costs=lambda reps, ids: {},
        )
        controller.admit(eq_query(1), drained=())
        return controller, controller.assignment[
            controller.signature_of(eq_query(1))
        ]

    def test_migrates_past_the_hysteresis_band(self):
        controller, home = self.seeded()
        other = 1 - home
        report = controller.end_epoch(
            active=[0, 1],
            cost_per_query=10.0,
            epoch_queries=1,
            probe_costs=self.probe_map({home: 100.0, other: 50.0}),
        )
        assert report.migrations == 1
        assert controller.assignment[
            controller.signature_of(eq_query(1))
        ] == other

    def test_stays_inside_the_hysteresis_band(self):
        controller, home = self.seeded()
        other = 1 - home
        report = controller.end_epoch(
            active=[0, 1],
            cost_per_query=10.0,
            epoch_queries=1,
            # 5% cheaper: inside the 10% band, must not thrash.
            probe_costs=self.probe_map({home: 100.0, other: 95.0}),
        )
        assert report.migrations == 0
        assert controller.assignment[
            controller.signature_of(eq_query(1))
        ] == home

    def test_drain_orphans_are_reassigned(self):
        controller, home = self.seeded()
        report = controller.end_epoch(
            active=[1 - home],
            cost_per_query=10.0,
            epoch_queries=1,
            probe_costs=lambda reps, ids: {},
        )
        assert report.forced_moves == 1
        assert set(controller.assignment.values()) == {1 - home}


class TestConvergence:
    def close_flat_epoch(self, controller, cost=10.0):
        controller.admit(eq_query(1), drained=())
        controller.admit(day_query(8000), drained=())
        return controller.end_epoch(
            active=[0, 1],
            cost_per_query=cost,
            epoch_queries=2,
            probe_costs=lambda reps, ids: {r: [5.0, 5.0] for r in ids},
        )

    def make(self, patience=2):
        return CotuneController(
            2,
            build_small_catalog(),
            config=CotuneConfig(patience=patience, probe_budget=8),
        )

    def test_flat_cost_freezes_after_patience(self):
        controller = self.make(patience=2)
        reports = [self.close_flat_epoch(controller) for _ in range(4)]
        assert not reports[0].converged
        assert reports[-1].converged
        # Frozen boundaries spend no probes.
        assert self.close_flat_epoch(controller).probes == 0

    def test_new_signature_resumes_refinement(self):
        controller = self.make(patience=2)
        for _ in range(4):
            self.close_flat_epoch(controller)
        assert controller.converged
        controller.admit(score_query(3), drained=())
        report = controller.end_epoch(
            active=[0, 1],
            cost_per_query=10.0,
            epoch_queries=1,
            probe_costs=lambda reps, ids: {},
        )
        assert not report.converged

    def test_cost_regression_resumes_refinement(self):
        controller = self.make(patience=2)
        for _ in range(4):
            self.close_flat_epoch(controller)
        assert controller.converged
        report = self.close_flat_epoch(controller, cost=100.0)
        assert not report.converged

    def test_probe_budget_halves_when_quiet_and_regrants_on_change(self):
        controller = self.make(patience=10)
        first = self.close_flat_epoch(controller)
        assert first.probe_budget == controller.config.probe_budget
        quiet = self.close_flat_epoch(controller)
        assert quiet.probe_budget < first.probe_budget
        controller.admit(score_query(3), drained=())
        regrant = controller.end_epoch(
            active=[0, 1],
            cost_per_query=10.0,
            epoch_queries=1,
            probe_costs=lambda reps, ids: {},
        )
        assert regrant.probe_budget == controller.config.probe_budget


class TestAdvisory:
    def test_payloads_cover_partition_footprints(self):
        fleet = make_fleet(n=2, cotune=True)
        fleet.run(mixed_queries(30))
        payloads = fleet.cotune.advisory_payloads()
        assert set(payloads) == {0, 1}
        for replica_id, entries in payloads.items():
            footprint = {
                pair
                for sig, r in fleet.cotune.assignment.items()
                if r == replica_id
                for pair in sig
            }
            assert {
                (table, columns[0]) for table, columns, _ in entries
            } == footprint

    def test_advice_reaches_replica_tuners(self):
        fleet = make_fleet(n=2, cotune=True)
        fleet.run(mixed_queries(30))
        advised = [
            {
                (ix.table, tuple(ix.columns))
                for ix, _ in replica.tuner._advisory
            }
            for replica in fleet.replicas
        ]
        expected = [
            {
                (pair[0], (pair[1],))
                for sig, r in fleet.cotune.assignment.items()
                if r == replica.replica_id
                for pair in sig
            }
            for replica in fleet.replicas
        ]
        assert advised == expected


class TestSnapshotIntegration:
    def test_cotuned_fleet_round_trips(self, tmp_path):
        fleet = make_fleet(n=2, cotune=True)
        fleet.run(mixed_queries(40))
        save_fleet(tmp_path, fleet)
        restored = restore_fleet(tmp_path, build_small_catalog)
        assert restored.cotune is not None
        assert restored.cotune.assignment == fleet.cotune.assignment
        assert restored.cotune.weights == fleet.cotune.weights
        assert restored.cotune.converged == fleet.cotune.converged
        assert restored.cotune.history == fleet.cotune.history

    def test_off_fleet_manifest_has_no_cotune_key(self, tmp_path):
        fleet = make_fleet(n=2)
        fleet.run(mixed_queries(20))
        save_fleet(tmp_path, fleet)
        manifest = json.loads((tmp_path / "fleet.json").read_text())
        assert "cotune" not in manifest.get("payload", manifest)
        restored = restore_fleet(tmp_path, build_small_catalog)
        assert restored.cotune is None
