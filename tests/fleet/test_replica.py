"""Tests for the fleet replica wrapper."""

import pytest

from repro.core.config import ColtConfig
from repro.fleet.replica import ReplicaHealth, TunerReplica
from repro.resilience.breaker import BreakerState, CircuitBreaker

from tests.fleet.workloads import bad_query, build_small_catalog, eq_query


def make_replica(replica_id=0, breaker=None, **config_kwargs):
    config_kwargs.setdefault("storage_budget_pages", 6000.0)
    config_kwargs.setdefault("min_history_epochs", 2)
    return TunerReplica(
        replica_id,
        build_small_catalog(),
        ColtConfig(**config_kwargs),
        breaker=breaker,
    )


class TestHealth:
    def test_fresh_replica_is_healthy(self):
        assert make_replica().health is ReplicaHealth.HEALTHY

    def test_open_breaker_means_drained(self):
        breaker = CircuitBreaker(failure_threshold=1)
        replica = make_replica(breaker=breaker)
        breaker.record_failure()
        assert replica.breaker.state is BreakerState.OPEN
        assert replica.health is ReplicaHealth.DRAINED

    def test_half_open_breaker_means_degraded(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_ticks=2)
        replica = make_replica(breaker=breaker)
        breaker.record_failure()
        replica.idle_tick()
        replica.idle_tick()
        assert replica.breaker.state is BreakerState.HALF_OPEN
        assert replica.health is ReplicaHealth.DEGRADED

    @pytest.mark.parametrize(
        "state,health",
        [
            (BreakerState.CLOSED, ReplicaHealth.HEALTHY),
            (BreakerState.HALF_OPEN, ReplicaHealth.DEGRADED),
            (BreakerState.OPEN, ReplicaHealth.DRAINED),
        ],
    )
    def test_mapping_is_total(self, state, health):
        assert ReplicaHealth.from_breaker(state) is health


class TestProcessing:
    def test_stats_accumulate(self):
        replica = make_replica()
        for i in range(5):
            outcome = replica.process(eq_query(i + 1))
        assert replica.stats.queries == 5
        assert replica.stats.execution_cost > 0
        assert replica.stats.total_cost >= replica.stats.execution_cost
        assert outcome.index == 4

    def test_skip_mode_records_failures(self):
        replica = make_replica()
        outcome = replica.process(bad_query(), on_error="skip")
        assert outcome.failed
        assert replica.stats.failed == 1
        assert replica.stats.queries == 1

    def test_trace_grows_one_entry_per_epoch(self):
        replica = make_replica(epoch_length=5)
        for i in range(17):
            replica.process(eq_query(i + 1))
        trace = replica.trace()
        assert len(trace.epochs) == 3
        assert [e.epoch for e in trace.epochs] == [0, 1, 2]
        # Per-epoch costs partition the running totals (last partial
        # epoch still open).
        assert sum(e.total_cost for e in trace.epochs) <= replica.stats.total_cost

    def test_config_version_bumps_on_materialization(self):
        replica = make_replica(epoch_length=5)
        assert replica.config_version == 0
        for i in range(60):
            replica.process(eq_query(i + 1))
        assert replica.materialized_names  # it specialized
        assert replica.config_version >= 1


class TestProbe:
    def test_probe_cost_is_side_effect_free(self):
        replica = make_replica()
        replica.process(eq_query(1))
        before_seen = replica.tuner.queries_seen
        before_calls = replica.tuner.whatif.call_count
        cost = replica.probe_cost(eq_query(2))
        assert cost > 0
        assert replica.tuner.queries_seen == before_seen
        assert replica.tuner.whatif.call_count == before_calls
        assert replica.stats.queries == 1

    def test_probe_cost_reflects_materialized_indexes(self):
        replica = make_replica()
        query = eq_query(7)
        cold = replica.probe_cost(query)
        ix = replica.catalog.index_for("events", "user_id")
        replica.catalog.materialize_index(ix)
        assert replica.probe_cost(query) < cold
