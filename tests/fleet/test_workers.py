"""Multiprocess fleet tests: serial parity, crash handling, validation.

The headline invariant (ISSUE: parity satellite): running
``FleetCoordinator(..., workers=N)`` routes every arrival parent-side
and ships each replica its own serial-order event sequence, so every
per-replica epoch decision -- and therefore the final index
configuration -- is **bit-identical** to the single-process
coordinator's.  The crash tests pin the regression fix: a worker
hard-killed mid-epoch trips its breaker and is drained at the next
boundary instead of deadlocking the coordinator.
"""

import json

import pytest

from repro.core.config import ColtConfig
from repro.fleet import FleetCoordinator, WorkerCrash, WorkerFleetCoordinator
from repro.fleet.replica import ReplicaHealth
from repro.fleet.snapshots import restore_fleet, save_fleet

from tests.fleet.workloads import (
    build_small_catalog,
    day_query,
    eq_query,
    score_query,
)


def mixed_queries(n):
    makers = [eq_query, day_query, score_query]
    return [makers[i % 3](8000 + i if i % 3 == 1 else i + 1) for i in range(n)]


def make_config(**cfg):
    cfg.setdefault("storage_budget_pages", 6000.0)
    cfg.setdefault("min_history_epochs", 2)
    return ColtConfig(**cfg)


def make_worker_fleet(workers=2, policy="affinity", fleet_epoch_length=10,
                      **kwargs):
    return FleetCoordinator(
        build_small_catalog,
        config=make_config(),
        policy=policy,
        fleet_epoch_length=fleet_epoch_length,
        workers=workers,
        **kwargs,
    )


def make_serial_fleet(n=2, policy="affinity", fleet_epoch_length=10):
    return FleetCoordinator(
        build_small_catalog,
        n_replicas=n,
        config=make_config(),
        policy=policy,
        fleet_epoch_length=fleet_epoch_length,
    )


def outcome_key(fleet_outcome):
    """The decision-relevant fields of one outcome (plans stay worker-side)."""
    o = fleet_outcome.outcome
    return (
        fleet_outcome.index,
        fleet_outcome.replica_id,
        o.execution_cost,
        o.whatif_calls,
        o.build_cost,
        o.total_cost,
        o.failed,
    )


class TestParity:
    """Multiprocess run is bit-identical to the serial coordinator."""

    @pytest.mark.parametrize("policy", ["affinity", "round-robin"])
    def test_bit_identical_decisions_and_configs(self, policy):
        queries = mixed_queries(60)
        serial = make_serial_fleet(n=2, policy=policy)
        serial_run = serial.run(queries)
        with make_worker_fleet(workers=2, policy=policy) as fleet:
            worker_run = fleet.run(queries)

            # Every per-query decision matches exactly: same routing,
            # same costs, same what-if ledger.  No tolerance.
            assert [outcome_key(o) for o in worker_run.outcomes] == [
                outcome_key(o) for o in serial_run.outcomes
            ]
            assert worker_run.total_cost == serial_run.total_cost
            assert worker_run.queries_per_replica == (
                serial_run.queries_per_replica
            )
            assert len(worker_run.reorganizations) == len(
                serial_run.reorganizations
            )

            # Final per-replica index configurations match by name.
            assert [
                sorted(h.materialized_names) for h in fleet.replicas
            ] == [sorted(r.materialized_names) for r in serial.replicas]

            # Full per-epoch decision traces are identical JSON.
            worker_traces = fleet.replica_traces()
            serial_traces = [
                json.loads(r.trace().to_json()) for r in serial.replicas
            ]
            assert worker_traces == serial_traces

    def test_client_ids_route_identically(self):
        queries = [eq_query(i + 1) for i in range(40)]
        client_ids = [i % 2 for i in range(40)]
        serial = make_serial_fleet(n=2, policy="client")
        serial_run = serial.run(queries, client_ids=client_ids)
        with make_worker_fleet(workers=2, policy="client") as fleet:
            worker_run = fleet.run(queries, client_ids=client_ids)
            assert [o.replica_id for o in worker_run.outcomes] == [
                o.replica_id for o in serial_run.outcomes
            ]
            assert worker_run.total_cost == serial_run.total_cost

    def test_latency_summary_merges_worker_histograms(self):
        with make_worker_fleet(workers=2) as fleet:
            fleet.run(mixed_queries(30))
            summary = fleet.latency_summary()
            assert summary["count"] == 30
            assert summary["p50"] is not None
            assert summary["p50"] <= summary["p95"] <= summary["p99"]

    def test_snapshot_roundtrip_restores_serial_fleet(self, tmp_path):
        queries = mixed_queries(40)
        with make_worker_fleet(workers=2) as fleet:
            fleet.run(queries)
            save_fleet(tmp_path, fleet)
            expected = [sorted(h.materialized_names) for h in fleet.replicas]
        restored = restore_fleet(tmp_path, build_small_catalog)
        assert not getattr(restored, "is_multiprocess", False)
        assert [
            sorted(r.materialized_names) for r in restored.replicas
        ] == expected


class TestCrashHandling:
    """A worker killed mid-epoch must drain, not deadlock (regression)."""

    def test_crash_mid_epoch_skip_mode_drains_and_continues(self):
        # round-robin so both replicas receive queries; affinity can
        # starve the crashing replica and never exercise the kill.
        with make_worker_fleet(
            workers=2, policy="round-robin", _crash_plan={1: 5}
        ) as fleet:
            run = fleet.run(mixed_queries(40), on_error="skip")

            # The run completed (no deadlock) and accounted for every
            # arrival; the crashed worker's unacknowledged chunk came
            # back as failed outcomes.
            assert len(run.outcomes) == 40
            assert run.failed_queries > 0
            failed = [o for o in run.outcomes if o.outcome.failed]
            assert {o.replica_id for o in failed} == {1}
            assert all(
                isinstance(o.outcome.error, WorkerCrash) for o in failed
            )

            # The crash tripped the handle's breaker: the replica reads
            # as drained and the crash counter fired.
            handle = fleet.replicas[1]
            assert handle.crashed
            assert handle.health is ReplicaHealth.DRAINED
            assert fleet._m_crashes.value() >= 1

            # After the drain boundary, arrivals are reassigned to the
            # surviving replica instead of the dead one.
            drains = [r for r in run.reorganizations if 1 in r.drained_total]
            assert drains
            boundary = next(
                i for i, o in enumerate(run.outcomes) if o.reorganization
                and 1 in o.reorganization.drained_total
            )
            tail = run.outcomes[boundary + 1:]
            assert tail
            assert all(o.replica_id == 0 for o in tail)
            assert all(not o.outcome.failed for o in tail)

    def test_crash_mid_epoch_raise_mode_surfaces_worker_crash(self):
        with make_worker_fleet(
            workers=2, policy="round-robin", _crash_plan={1: 5}
        ) as fleet:
            with pytest.raises(WorkerCrash):
                fleet.run(mixed_queries(40), on_error="raise")

    def test_snapshot_of_crashed_fleet_refuses_partial_manifest(self):
        with make_worker_fleet(
            workers=2, policy="round-robin", _crash_plan={1: 5}
        ) as fleet:
            fleet.run(mixed_queries(40), on_error="skip")
            with pytest.raises(WorkerCrash):
                fleet.replica_snapshots()


class TestValidation:
    def test_front_door_dispatches_to_worker_subclass(self):
        with make_worker_fleet(workers=2) as fleet:
            assert isinstance(fleet, WorkerFleetCoordinator)
            assert fleet.is_multiprocess
            assert len(fleet.replicas) == 2

    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError):
            WorkerFleetCoordinator(
                build_small_catalog, config=make_config(), workers=0
            )

    def test_guardrails_rejected(self):
        from repro.guardrails import GuardrailConfig

        with pytest.raises(ValueError, match="guardrails"):
            make_worker_fleet(workers=2, guardrails=GuardrailConfig())

    def test_breakers_rejected(self):
        with pytest.raises(ValueError, match="breaker"):
            make_worker_fleet(workers=2, breakers=[None, None])

    def test_cost_policy_rejected(self):
        with pytest.raises(ValueError, match="cost"):
            make_worker_fleet(workers=2, policy="cost")

    def test_process_query_not_supported(self):
        with make_worker_fleet(workers=2) as fleet:
            with pytest.raises(NotImplementedError):
                fleet.process_query(eq_query(1))

    def test_close_is_idempotent(self):
        fleet = make_worker_fleet(workers=2)
        fleet.run(mixed_queries(10))
        fleet.close()
        fleet.close()
