"""Tests for atomic fleet snapshots and manifest-bound restore."""

import json

import pytest

from repro.core.config import ColtConfig
from repro.fleet.coordinator import FleetCoordinator
from repro.fleet.snapshots import (
    FLEET_MANIFEST,
    FLEET_SNAPSHOT_VERSION,
    load_manifest,
    restore_fleet,
    save_fleet,
    snapshot_fleet,
)
from repro.persist import SnapshotError, load_json, save_json

from tests.fleet.workloads import build_small_catalog, day_query, eq_query


def make_fleet(n=2, policy="affinity", **cfg):
    cfg.setdefault("storage_budget_pages", 6000.0)
    cfg.setdefault("epoch_length", 5)
    cfg.setdefault("min_history_epochs", 2)
    return FleetCoordinator(
        build_small_catalog,
        n_replicas=n,
        config=ColtConfig(**cfg),
        policy=policy,
        fleet_epoch_length=10,
    )


def warm_fleet(fleet, n=40):
    for i in range(n):
        query = eq_query(i + 1) if i % 2 == 0 else day_query(8000 + i)
        fleet.process_query(query)
    return fleet


class TestManifest:
    def test_snapshot_fleet_structure(self):
        fleet = warm_fleet(make_fleet())
        manifest = snapshot_fleet(fleet)
        assert manifest["version"] == FLEET_SNAPSHOT_VERSION
        assert manifest["policy"] == "affinity"
        assert manifest["fleet_epoch_length"] == 10
        assert manifest["queries_routed"] == 40
        assert len(manifest["replicas"]) == 2
        for entry in manifest["replicas"]:
            assert {"replica_id", "file", "checksum", "health"} <= set(entry)

    def test_save_writes_manifest_and_replica_files(self, tmp_path):
        fleet = warm_fleet(make_fleet())
        path = save_fleet(tmp_path, fleet)
        assert path == tmp_path / FLEET_MANIFEST
        assert path.exists()
        manifest = load_manifest(tmp_path)
        for entry in manifest["replicas"]:
            assert (tmp_path / entry["file"]).exists()

    def test_load_manifest_rejects_missing_directory(self, tmp_path):
        with pytest.raises(SnapshotError):
            load_manifest(tmp_path / "nowhere")

    def test_load_manifest_rejects_bad_version(self, tmp_path):
        save_json(tmp_path / FLEET_MANIFEST, {"version": 99, "replicas": []})
        with pytest.raises(SnapshotError, match="version"):
            load_manifest(tmp_path)

    def test_load_manifest_rejects_empty_replica_list(self, tmp_path):
        save_json(
            tmp_path / FLEET_MANIFEST,
            {"version": FLEET_SNAPSHOT_VERSION, "replicas": []},
        )
        with pytest.raises(SnapshotError, match="no replicas"):
            load_manifest(tmp_path)

    def test_load_manifest_rejects_malformed_entry(self, tmp_path):
        save_json(
            tmp_path / FLEET_MANIFEST,
            {
                "version": FLEET_SNAPSHOT_VERSION,
                "replicas": [{"replica_id": 0}],  # no file/checksum
            },
        )
        with pytest.raises(SnapshotError, match="malformed"):
            load_manifest(tmp_path)


class TestRoundtrip:
    def test_restore_preserves_materialized_sets(self, tmp_path):
        fleet = warm_fleet(make_fleet())
        before = [set(r.materialized_names) for r in fleet.replicas]
        assert any(before)  # the warmup materialized something
        save_fleet(tmp_path, fleet)
        restored = restore_fleet(tmp_path, build_small_catalog)
        after = [set(r.materialized_names) for r in restored.replicas]
        assert after == before
        assert restored.policy == "affinity"
        assert restored.fleet_epoch_length == 10

    def test_restored_fleet_keeps_serving(self, tmp_path):
        fleet = warm_fleet(make_fleet())
        save_fleet(tmp_path, fleet)
        restored = restore_fleet(tmp_path, build_small_catalog)
        outcome = restored.process_query(eq_query(123))
        assert not outcome.outcome.failed
        assert restored.replicas[outcome.replica_id].stats.queries == 1

    def test_restore_honours_policy_override(self, tmp_path):
        fleet = warm_fleet(make_fleet(policy="round-robin"))
        save_fleet(tmp_path, fleet)
        restored = restore_fleet(tmp_path, build_small_catalog, policy="cost")
        assert restored.policy == "cost"
        # The cost router is bound to the restored replicas.
        assert restored.process_query(eq_query(1)).outcome.execution_cost > 0

    def test_save_is_idempotent(self, tmp_path):
        fleet = warm_fleet(make_fleet())
        save_fleet(tmp_path, fleet)
        save_fleet(tmp_path, fleet)  # overwrite in place
        restored = restore_fleet(tmp_path, build_small_catalog)
        assert len(restored.replicas) == 2


class TestTornWrites:
    def test_checksum_mismatch_detected_on_restore(self, tmp_path):
        fleet = warm_fleet(make_fleet())
        save_fleet(tmp_path, fleet)
        # Simulate a crash that rewrote one replica file after the
        # manifest was fixed: valid envelope, different payload.
        stale = load_json(tmp_path / "replica-0.json")
        stale["queries_seen"] = 9999
        save_json(tmp_path / "replica-0.json", stale)
        with pytest.raises(SnapshotError, match="checksum mismatch"):
            restore_fleet(tmp_path, build_small_catalog)

    def test_missing_replica_file_detected(self, tmp_path):
        fleet = warm_fleet(make_fleet())
        save_fleet(tmp_path, fleet)
        (tmp_path / "replica-1.json").unlink()
        with pytest.raises(SnapshotError):
            restore_fleet(tmp_path, build_small_catalog)

    def test_corrupt_replica_file_detected(self, tmp_path):
        fleet = warm_fleet(make_fleet())
        save_fleet(tmp_path, fleet)
        target = tmp_path / "replica-0.json"
        payload = json.loads(target.read_text())
        payload["snapshot"]["queries_seen"] = 12345  # envelope checksum broken
        target.write_text(json.dumps(payload))
        with pytest.raises(SnapshotError):
            restore_fleet(tmp_path, build_small_catalog)
