"""Property tests for the co-tuning partitioner (hypothesis).

Partition routing only composes with the multiprocess fleet because
:func:`repro.fleet.cotune.assign_partitions` is pure and deterministic:
the map may depend on the *aggregated* epoch weights, never on arrival
order within an epoch, dict iteration order, or the interpreter's hash
seed.  These properties let hypothesis hunt for an ordering, weighting,
or drain pattern that breaks the contract, instead of trusting a few
hand-picked cases:

* within-epoch **permutation invariance** -- admitting the same queries
  in any order yields the same partition map at the boundary;
* **cross-process determinism** -- a subprocess with a different
  ``PYTHONHASHSEED`` computes the identical assignment;
* **no active replica starves** while there are signatures to go
  around;
* **reassignment is a permutation** -- every signature appears exactly
  once, always on an active replica.
"""

import json
import os
import subprocess
import sys

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet.cotune import (
    CotuneConfig,
    CotuneController,
    assign_partitions,
    partition_signature,
    signature_label,
)

from tests.fleet.workloads import (
    build_small_catalog,
    day_query,
    eq_query,
    score_query,
)

# The (table, column) pool signatures draw from.  Small on purpose:
# overlapping footprints are what stress the Jaccard placement.
_PAIRS = [
    ("events", "user_id"),
    ("events", "amount"),
    ("events", "day"),
    ("users", "user_id"),
    ("users", "score"),
]

signatures = st.frozensets(st.sampled_from(_PAIRS), min_size=1, max_size=4)


@st.composite
def partition_inputs(draw):
    """Weights, a previous assignment, and an active replica set."""
    n_replicas = draw(st.integers(1, 5))
    sigs = draw(st.lists(signatures, min_size=1, max_size=8, unique=True))
    weights = {
        sig: draw(
            st.floats(0.001, 1e6, allow_nan=False, allow_infinity=False)
        )
        for sig in sigs
    }
    # `previous` may reference replicas that have since drained (ids
    # outside `active`) and signatures that have since been evicted.
    previous = {
        sig: draw(st.integers(0, n_replicas))
        for sig in sigs
        if draw(st.booleans())
    }
    active = draw(
        st.lists(
            st.integers(0, n_replicas - 1),
            min_size=1,
            max_size=n_replicas,
            unique=True,
        )
    )
    return weights, previous, active


class TestAssignPartitions:
    @given(partition_inputs())
    @settings(max_examples=200, deadline=None)
    def test_reassignment_is_a_permutation(self, drawn):
        weights, previous, active = drawn
        assignment = assign_partitions(weights, previous, active)
        # Every input signature appears exactly once ...
        assert set(assignment) == set(weights)
        # ... on an active replica.
        assert set(assignment.values()) <= set(active)

    @given(partition_inputs())
    @settings(max_examples=200, deadline=None)
    def test_no_active_replica_starves(self, drawn):
        weights, previous, active = drawn
        assignment = assign_partitions(weights, previous, active)
        if len(weights) >= len(set(active)):
            owned = set(assignment.values())
            assert owned == set(active)

    @given(partition_inputs())
    @settings(max_examples=200, deadline=None)
    def test_sticky_when_no_fill_needed(self, drawn):
        """Previously placed signatures stay put unless orphaned.

        The forced fill may move a signature off an overloaded replica,
        but only toward a replica that would otherwise starve -- so
        when every active replica already owns a previous signature,
        stickiness is absolute.
        """
        weights, previous, active = drawn
        assignment = assign_partitions(weights, previous, active)
        kept_homes = {
            previous[sig]
            for sig in weights
            if sig in previous and previous[sig] in set(active)
        }
        if kept_homes == set(active):
            for sig in weights:
                if sig in previous and previous[sig] in set(active):
                    assert assignment[sig] == previous[sig]

    @given(partition_inputs())
    @settings(max_examples=100, deadline=None)
    def test_dict_order_is_irrelevant(self, drawn):
        """Reversing dict insertion order cannot change the output."""
        weights, previous, active = drawn
        forward = assign_partitions(weights, previous, active)
        backward = assign_partitions(
            dict(reversed(list(weights.items()))),
            dict(reversed(list(previous.items()))),
            list(reversed(active)),
        )
        assert forward == backward


def _drive_controller(queries, active):
    """Admit `queries` as one epoch and close it; return the label map."""
    controller = CotuneController(
        max(active) + 1, build_small_catalog()
    )
    for query in queries:
        controller.admit(query, drained=())
    controller.end_epoch(
        active=active,
        cost_per_query=100.0,
        epoch_queries=len(queries),
        # Refinement needs >1 active replica AND representatives; an
        # empty price map means "nothing probed" and nothing migrates.
        probe_costs=lambda reps, ids: {},
    )
    return {
        signature_label(sig): replica
        for sig, replica in controller.assignment.items()
    }


@st.composite
def query_stream(draw):
    picks = draw(
        st.lists(
            st.tuples(st.integers(0, 2), st.integers(1, 50)),
            min_size=1,
            max_size=30,
        )
    )
    makers = (eq_query, day_query, score_query)
    return [makers[kind](value) for kind, value in picks]


class TestControllerInvariance:
    @given(query_stream(), st.randoms(use_true_random=False))
    @settings(max_examples=50, deadline=None)
    def test_within_epoch_permutation_invariance(self, queries, rng):
        """Arrival order within an epoch cannot change the partition map."""
        shuffled = list(queries)
        rng.shuffle(shuffled)
        assert _drive_controller(queries, active=[0, 1, 2]) == (
            _drive_controller(shuffled, active=[0, 1, 2])
        )

    @given(query_stream())
    @settings(max_examples=25, deadline=None)
    def test_signatures_restricted_to_catalog(self, queries):
        catalog = build_small_catalog()
        for query in queries:
            sig = partition_signature(query, catalog)
            for table, column in sig:
                assert catalog.has_table(table)
                assert catalog.table(table).has_column(column)
                assert table in query.tables


_SUBPROCESS_PROGRAM = """
import json, sys
from repro.fleet.cotune import assign_partitions

weights_raw, previous_raw, active = json.load(sys.stdin)
weights = {frozenset(map(tuple, pairs)): w for pairs, w in weights_raw}
previous = {frozenset(map(tuple, pairs)): r for pairs, r in previous_raw}
assignment = assign_partitions(weights, previous, active)
out = sorted(
    (sorted(map(list, sig)), replica) for sig, replica in assignment.items()
)
json.dump(out, sys.stdout)
"""


class TestCrossProcessDeterminism:
    @given(partition_inputs(), st.integers(0, 2**32 - 1))
    @settings(max_examples=8, deadline=None)
    def test_assignment_survives_hash_seed_change(self, drawn, hash_seed):
        """A subprocess under another PYTHONHASHSEED agrees exactly.

        This is the property the worker fleet's serial-order parity
        rests on: partition maps computed in different interpreter
        processes (different hash randomization) must be identical.
        """
        weights, previous, active = drawn
        payload = json.dumps(
            [
                [
                    [sorted(map(list, sig)), w]
                    for sig, w in sorted(
                        weights.items(), key=lambda kv: sorted(kv[0])
                    )
                ],
                [
                    [sorted(map(list, sig)), r]
                    for sig, r in sorted(
                        previous.items(), key=lambda kv: sorted(kv[0])
                    )
                ],
                active,
            ]
        )
        env = dict(os.environ, PYTHONHASHSEED=str(hash_seed))
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (env.get("PYTHONPATH"), "src") if p
        )
        result = subprocess.run(
            [sys.executable, "-c", _SUBPROCESS_PROGRAM],
            input=payload,
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        local = assign_partitions(weights, previous, active)
        expected = sorted(
            [sorted(map(list, sig)), replica]
            for sig, replica in local.items()
        )
        # json round-trip normalizes tuples to lists on both sides.
        assert json.loads(result.stdout) == json.loads(
            json.dumps(expected)
        )


class TestConfigValidation:
    def test_rejects_bad_knobs(self):
        import pytest

        with pytest.raises(ValueError):
            CotuneConfig(hysteresis=1.0)
        with pytest.raises(ValueError):
            CotuneConfig(hysteresis=-0.1)
        with pytest.raises(ValueError):
            CotuneConfig(probe_budget=0)
        with pytest.raises(ValueError):
            CotuneConfig(min_probe_budget=0)
        with pytest.raises(ValueError):
            CotuneConfig(probe_budget=4, min_probe_budget=5)
        with pytest.raises(ValueError):
            CotuneConfig(patience=0)
        with pytest.raises(ValueError):
            CotuneConfig(preference_weight=0.0)
        with pytest.raises(ValueError):
            CotuneConfig(decay=1.0)

    def test_round_trips_through_dict(self):
        config = CotuneConfig(hysteresis=0.2, patience=5, decay=0.25)
        assert CotuneConfig.from_dict(config.to_dict()) == config


class TestSnapshotRoundTrip:
    def test_controller_round_trips(self):
        controller = CotuneController(3, build_small_catalog())
        for value in range(1, 8):
            controller.admit(eq_query(value), drained=())
            controller.admit(day_query(value * 100), drained=())
        controller.end_epoch(
            active=[0, 1, 2],
            cost_per_query=42.0,
            epoch_queries=14,
            probe_costs=lambda reps, ids: {},
        )
        snap = json.loads(json.dumps(controller.to_snapshot()))
        restored = CotuneController.from_snapshot(
            snap, build_small_catalog()
        )
        assert restored.assignment == controller.assignment
        assert restored.weights == controller.weights
        assert restored.probe_budget == controller.probe_budget
        assert restored.converged == controller.converged
        assert restored.epochs == controller.epochs
        assert restored.history == controller.history
