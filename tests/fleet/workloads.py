"""Shared helpers for fleet tests: a small catalog factory and queries.

The catalog mirrors ``tests/conftest.py``'s ``small_catalog`` (a 1M-row
fact table plus a 10k-row dimension), but as a *factory*: every fleet
replica must own a private, structurally identical catalog.
"""

from __future__ import annotations

from repro.engine.catalog import Catalog, ColumnDef, TableDef
from repro.engine.datatypes import DataType
from repro.engine.stats import ColumnStats
from repro.sql.ast import (
    BetweenPredicate,
    ColumnExpr,
    CompareOp,
    ComparisonPredicate,
    Query,
    SelectItem,
)


def build_small_catalog() -> Catalog:
    """A fresh events/users catalog with paper-style statistics."""
    catalog = Catalog()
    catalog.add_table(
        TableDef(
            "events",
            [
                ColumnDef("user_id", DataType.INT),
                ColumnDef("amount", DataType.FLOAT),
                ColumnDef("day", DataType.DATE),
                ColumnDef("kind", DataType.TEXT),
            ],
            row_count=1_000_000,
        )
    )
    catalog.add_table(
        TableDef(
            "users",
            [
                ColumnDef("user_id", DataType.INT),
                ColumnDef("score", DataType.INT),
            ],
            row_count=10_000,
        )
    )
    catalog.set_stats(
        "events",
        "user_id",
        ColumnStats(n_distinct=10_000, min_value=1, max_value=10_000),
    )
    catalog.set_stats(
        "events",
        "amount",
        ColumnStats(n_distinct=1_000_000, min_value=0.0, max_value=1000.0),
    )
    catalog.set_stats(
        "events",
        "day",
        ColumnStats(n_distinct=2000, min_value=8000, max_value=9999, correlation=0.9),
    )
    catalog.set_stats(
        "events",
        "kind",
        ColumnStats(n_distinct=4, min_value="click", max_value="view"),
    )
    catalog.set_stats(
        "users",
        "user_id",
        ColumnStats(n_distinct=10_000, min_value=1, max_value=10_000, correlation=1.0),
    )
    catalog.set_stats(
        "users",
        "score",
        ColumnStats(n_distinct=100, min_value=0, max_value=99),
    )
    return catalog


def eq_query(value: int) -> Query:
    """A selective single-table query on events.user_id."""
    return Query(
        tables=["events"],
        select=[SelectItem(expr=ColumnExpr("amount", "events"))],
        filters=[
            ComparisonPredicate(ColumnExpr("user_id", "events"), CompareOp.EQ, value)
        ],
    )


def day_query(lo: int) -> Query:
    """A range query on events.day (a different cluster than eq_query)."""
    return Query(
        tables=["events"],
        select=[SelectItem(expr=ColumnExpr("amount", "events"))],
        filters=[BetweenPredicate(ColumnExpr("day", "events"), lo, lo + 19)],
    )


def score_query(value: int) -> Query:
    """A selective query on users.score (a third cluster/table)."""
    return Query(
        tables=["users"],
        select=[SelectItem(expr=ColumnExpr("user_id", "users"))],
        filters=[
            ComparisonPredicate(ColumnExpr("score", "users"), CompareOp.EQ, value)
        ],
    )


def bad_query() -> Query:
    """A query over a table no catalog has (forces processing errors)."""
    return Query(
        tables=["no_such_table"],
        select=[SelectItem(expr=ColumnExpr("x", "no_such_table"))],
        filters=[],
    )
