"""Golden-trace regression pin for the co-tuned fleet.

A 3-client shifting workload (the ``fleet-run`` CLI shape, scaled
down) is driven through a co-tuned affinity fleet and compared against
``tests/data/golden_fleet_cotune.json``: the fleet cost totals, the
per-replica routing split, every boundary's partition-assignment
history (which signature lived on which replica, migrations, probes,
convergence), and the final per-replica materialized sets.  Any change
to the partitioner, the hysteresis rule, the probe budget, advisory
synthesis, or the underlying tuners that shifts one co-tuning decision
fails loudly with the first diverging boundary.

When a change *intentionally* alters co-tuning behaviour, regenerate:

    GOLDEN_REGEN=1 PYTHONPATH=src python -m pytest \
        tests/fleet/test_cotune_golden.py -q
"""

import json
import os
import pathlib

import pytest

from repro.core.config import ColtConfig
from repro.fleet import FleetCoordinator
from repro.workload import build_catalog, multi_client_workload
from repro.workload.experiments import phase_distributions
from repro.workload.phases import shifting_workload

GOLDEN_PATH = (
    pathlib.Path(__file__).parent.parent / "data" / "golden_fleet_cotune.json"
)

N_REPLICAS = 3
PHASE_LENGTH = 40
TRANSITION = 10
FLEET_EPOCH = 20
BUDGET_PAGES = 9_000.0
SEED = 11

#: History fields that hold floats (JSON round-trip -> approx compare).
_FLOAT_KEYS = ("cost_per_query",)


def _cotuned_run():
    catalog = build_catalog()
    phases = phase_distributions()
    clients = [
        shifting_workload(
            [phases[i % len(phases)], phases[(i + 1) % len(phases)]],
            catalog,
            phase_length=PHASE_LENGTH,
            transition=TRANSITION,
            seed=SEED + i,
        )
        for i in range(N_REPLICAS)
    ]
    merged = multi_client_workload(clients, seed=SEED + 7)
    fleet = FleetCoordinator(
        build_catalog,
        n_replicas=N_REPLICAS,
        config=ColtConfig(storage_budget_pages=BUDGET_PAGES),
        policy="affinity",
        fleet_epoch_length=FLEET_EPOCH,
        cotune=True,
    )
    run = fleet.run(merged)
    return {
        "workload": merged.description,
        "execution_cost": run.execution_cost,
        "routing_overhead": run.routing_overhead,
        "total_cost": run.total_cost,
        "queries_per_replica": list(run.queries_per_replica),
        "whatif_calls": sum(o.outcome.whatif_calls for o in run.outcomes),
        "materialized": [
            sorted(r.materialized_names) for r in fleet.replicas
        ],
        "converged": fleet.cotune.converged,
        "migrations_total": fleet.cotune.migrations_total,
        "history": list(fleet.cotune.history),
    }


@pytest.fixture(scope="module")
def document():
    return _cotuned_run()


def test_golden_exists_or_regenerates(document):
    if os.environ.get("GOLDEN_REGEN") == "1":
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(json.dumps(document, indent=1) + "\n")
    assert GOLDEN_PATH.exists(), (
        "co-tuned fleet golden trace missing -- regenerate with "
        "GOLDEN_REGEN=1 (see module docstring)"
    )


def test_partition_history_matches_golden(document):
    golden = json.loads(GOLDEN_PATH.read_text())
    assert len(document["history"]) == len(golden["history"])
    for current, pinned in zip(document["history"], golden["history"]):
        label = f"boundary {pinned['epoch']}"
        for key in pinned:
            if key in _FLOAT_KEYS:
                assert current[key] == pytest.approx(
                    pinned[key], rel=1e-12
                ), label
            else:
                # The partition assignment map, migrations, probes,
                # and the convergence flag: exact.
                assert current[key] == pinned[key], (label, key)


def test_costs_and_routing_match_golden(document):
    golden = json.loads(GOLDEN_PATH.read_text())
    assert document["workload"] == golden["workload"]
    assert document["queries_per_replica"] == golden["queries_per_replica"]
    assert document["whatif_calls"] == golden["whatif_calls"]
    for key in ("execution_cost", "routing_overhead", "total_cost"):
        assert document[key] == pytest.approx(golden[key], rel=1e-12), key


def test_final_state_matches_golden(document):
    golden = json.loads(GOLDEN_PATH.read_text())
    assert document["materialized"] == golden["materialized"]
    assert document["converged"] == golden["converged"]
    assert document["migrations_total"] == golden["migrations_total"]
