"""Tests for fleets running the bandit engine end to end."""

import pytest

from repro.bandit.tuner import BanditTuner
from repro.core.config import ColtConfig
from repro.fleet.coordinator import FleetCoordinator
from repro.fleet.snapshots import restore_fleet, save_fleet, snapshot_fleet

from tests.fleet.workloads import build_small_catalog, day_query, eq_query


def make_bandit_fleet(n=2, policy="round-robin", **cfg):
    cfg.setdefault("storage_budget_pages", 6000.0)
    cfg.setdefault("epoch_length", 5)
    return FleetCoordinator(
        build_small_catalog,
        n_replicas=n,
        config=ColtConfig(**cfg),
        policy=policy,
        fleet_epoch_length=10,
        engine="bandit",
    )


def mixed_queries(n):
    return [
        eq_query(i + 1) if i % 2 == 0 else day_query(8000 + i)
        for i in range(n)
    ]


class TestConstruction:
    def test_replicas_run_bandit_tuners(self):
        fleet = make_bandit_fleet()
        assert fleet.engine == "bandit"
        for replica in fleet.replicas:
            assert isinstance(replica.tuner, BanditTuner)
            assert replica.engine == "bandit"

    def test_default_engine_is_colt(self):
        fleet = FleetCoordinator(
            build_small_catalog, n_replicas=2, fleet_epoch_length=10
        )
        assert fleet.engine == "colt"
        assert all(r.engine == "colt" for r in fleet.replicas)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="engine"):
            FleetCoordinator(
                build_small_catalog,
                n_replicas=2,
                fleet_epoch_length=10,
                engine="quantum",
            )

    def test_colt_budget_carries_over(self):
        fleet = make_bandit_fleet(storage_budget_pages=1234.0)
        for replica in fleet.replicas:
            assert replica.tuner.config.storage_budget_pages == 1234.0


class TestRuns:
    def test_fleet_run_completes_with_ledger(self):
        fleet = make_bandit_fleet()
        run = fleet.run(mixed_queries(30))
        assert len(run.outcomes) == 30
        assert sum(run.queries_per_replica) == 30
        assert run.execution_cost > 0
        assert run.failed_queries == 0

    def test_metrics_snapshot_merges_bandit_families(self):
        fleet = make_bandit_fleet()
        fleet.run(mixed_queries(30))
        names = {f["name"] for f in fleet.metrics_snapshot()["metrics"]}
        assert "bandit_queries_total" in names
        assert "bandit_epochs_total" in names
        assert "fleet_queries_routed_total" in names


class TestSnapshots:
    def test_manifest_entries_carry_engine(self):
        fleet = make_bandit_fleet()
        fleet.run(mixed_queries(20))
        manifest = snapshot_fleet(fleet)
        assert all(e["engine"] == "bandit" for e in manifest["replicas"])

    def test_round_trip_preserves_engine_and_state(self, tmp_path):
        fleet = make_bandit_fleet()
        fleet.run(mixed_queries(30))
        save_fleet(tmp_path, fleet)
        restored = restore_fleet(tmp_path, build_small_catalog)
        assert restored.engine == "bandit"
        for before, after in zip(fleet.replicas, restored.replicas):
            assert isinstance(after.tuner, BanditTuner)
            assert after.engine == "bandit"
            assert after.materialized_names == before.materialized_names
            assert after.tuner.model.v == before.tuner.model.v

    def test_restored_bandit_fleet_keeps_running(self, tmp_path):
        fleet = make_bandit_fleet()
        fleet.run(mixed_queries(20))
        save_fleet(tmp_path, fleet)
        restored = restore_fleet(tmp_path, build_small_catalog)
        run = restored.run(mixed_queries(20))
        assert len(run.outcomes) == 20
        assert run.failed_queries == 0
