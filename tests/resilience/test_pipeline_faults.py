"""End-to-end fault injection through the ColtTuner pipeline.

Covers the degraded-profiling circuit (open -> half-open -> closed)
and build-failure surfacing/recovery in ``ReorganizationResult``.
"""

import random

import pytest

from repro.core import ColtConfig, ColtTuner
from repro.resilience import (
    BreakerState,
    CircuitBreaker,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
)
from repro.sql.ast import (
    ColumnExpr,
    CompareOp,
    ComparisonPredicate,
    Query,
    SelectItem,
)


def _eq_query(value):
    return Query(
        tables=["events"],
        select=[SelectItem(expr=ColumnExpr("amount", "events"))],
        filters=[
            ComparisonPredicate(
                ColumnExpr("user_id", "events"), CompareOp.EQ, value
            )
        ],
    )


def _stream(tuner, n, seed=0):
    rng = random.Random(seed)
    return [tuner.process_query(_eq_query(rng.randint(1, 10_000))) for _ in range(n)]


def _config(**overrides):
    defaults = dict(storage_budget_pages=5000.0, min_history_epochs=2)
    defaults.update(overrides)
    return ColtConfig(**defaults)


class TestBreakerCircuit:
    def test_open_half_open_closed_cycle(self, small_catalog):
        breaker = CircuitBreaker(
            failure_threshold=3, cooldown_ticks=15, recovery_threshold=1
        )
        injector = FaultInjector(
            FaultPlan(whatif=FaultSpec(every=1, limit=6)), seed=0
        )
        tuner = ColtTuner(
            small_catalog, _config(), breaker=breaker, fault_injector=injector
        )
        outcomes = _stream(tuner, 200)

        states = [(frm, to) for frm, to, _ in breaker.transitions]
        assert ("closed", "open") in states
        assert ("open", "half_open") in states
        assert ("half_open", "closed") in states
        assert breaker.state is BreakerState.CLOSED
        assert tuner.profiler.probe_failures >= 3
        # The run survived the storm end to end.
        assert len(outcomes) == 200

    def test_open_breaker_suspends_whatif_calls(self, small_catalog):
        breaker = CircuitBreaker(
            failure_threshold=1, cooldown_ticks=10_000, recovery_threshold=1
        )
        injector = FaultInjector(FaultPlan(whatif=FaultSpec(every=1, limit=1)))
        tuner = ColtTuner(
            small_catalog, _config(), breaker=breaker, fault_injector=injector
        )
        _stream(tuner, 120)
        assert breaker.is_open
        assert tuner.profiler.effective_budget == 0
        # Exactly one probe was attempted (the one that tripped it).
        assert tuner.whatif.call_count == 1
        assert tuner.profiler.degraded_queries > 0

    def test_degraded_mode_keeps_crude_statistics(self, small_catalog):
        breaker = CircuitBreaker(
            failure_threshold=1, cooldown_ticks=10_000, recovery_threshold=1
        )
        injector = FaultInjector(FaultPlan(whatif=FaultSpec(every=1, limit=1)))
        tuner = ColtTuner(
            small_catalog, _config(), breaker=breaker, fault_injector=injector
        )
        _stream(tuner, 100)
        # Crude BenefitC tracking never stopped.
        assert tuner.profiler.candidates.ranked()
        # Epoch boundaries report the breaker on the ledger.
        assert tuner.self_organizer is not None

    def test_reorganization_reports_breaker_state(self, small_catalog):
        breaker = CircuitBreaker(
            failure_threshold=1, cooldown_ticks=10_000, recovery_threshold=1
        )
        injector = FaultInjector(FaultPlan(whatif=FaultSpec(every=1, limit=1)))
        tuner = ColtTuner(
            small_catalog, _config(), breaker=breaker, fault_injector=injector
        )
        outcomes = _stream(tuner, 60)
        reorgs = [o.reorganization for o in outcomes if o.epoch_ended]
        assert reorgs
        assert reorgs[-1].breaker_state == "open"


class TestBuildFaultsThroughTuner:
    def test_failed_build_surfaced_and_excluded_from_m(self, small_catalog):
        injector = FaultInjector(FaultPlan(build=FaultSpec(every=1)))
        tuner = ColtTuner(small_catalog, _config(), fault_injector=injector)
        outcomes = _stream(tuner, 120)
        failures = [
            o.reorganization
            for o in outcomes
            if o.reorganization and o.reorganization.build_failures
        ]
        assert failures, "expected at least one failed materialization"
        # Every build failed, so nothing may ever be materialized.
        assert tuner.materialized_set == []
        assert not small_catalog.materialized_indexes()
        # No build cost was ever charged.
        assert all(o.build_cost == 0.0 for o in outcomes)

    def test_retry_recovers_after_transient_failure(self, small_catalog):
        injector = FaultInjector(FaultPlan(build=FaultSpec(at_calls=(1,))))
        tuner = ColtTuner(
            small_catalog,
            _config(),
            retry=RetryPolicy(base_delay_epochs=1),
            fault_injector=injector,
        )
        outcomes = _stream(tuner, 160)
        recovered = [
            o.reorganization
            for o in outcomes
            if o.reorganization and o.reorganization.recovered_builds
        ]
        assert recovered, "expected the failed build to recover via retry"
        assert tuner.materialized_set  # M healed
        # The recovered index is really materialized in the catalog.
        for ix in tuner.materialized_set:
            assert small_catalog.is_materialized(ix)

    def test_unhandled_exception_free_under_combined_storm(self, small_catalog):
        injector = FaultInjector(
            FaultPlan(
                whatif=FaultSpec(probability=0.3),
                build=FaultSpec(probability=0.5),
            ),
            seed=42,
        )
        tuner = ColtTuner(small_catalog, _config(), fault_injector=injector)
        outcomes = _stream(tuner, 250)
        assert len(outcomes) == 250
        assert injector.injected["whatif"] > 0


class TestRunOnError:
    def _bad_query(self):
        return Query(
            tables=["no_such_table"],
            select=[SelectItem(expr=ColumnExpr("x", "no_such_table"))],
            filters=[],
        )

    def test_raise_mode_propagates(self, small_catalog):
        tuner = ColtTuner(small_catalog, _config())
        with pytest.raises(Exception):
            tuner.run([_eq_query(1), self._bad_query()])

    def test_skip_mode_records_failure_and_continues(self, small_catalog):
        tuner = ColtTuner(small_catalog, _config())
        queries = [_eq_query(1), self._bad_query(), _eq_query(2)]
        outcomes = tuner.run(queries, on_error="skip")
        assert len(outcomes) == 3
        assert not outcomes[0].failed
        assert outcomes[1].failed
        assert isinstance(outcomes[1].error, Exception)
        assert outcomes[1].total_cost == 0.0
        assert not outcomes[2].failed
        # The failed arrival still advanced the epoch clock.
        assert tuner.queries_seen == 3

    def test_skip_mode_preserves_epoch_cadence(self, small_catalog):
        tuner = ColtTuner(small_catalog, _config(epoch_length=5))
        queries = [
            self._bad_query() if i % 3 == 1 else _eq_query(i + 1)
            for i in range(20)
        ]
        outcomes = tuner.run(queries, on_error="skip")
        ended = [o.index for o in outcomes if o.epoch_ended]
        # Failed arrivals tick the epoch clock but cannot themselves
        # close an epoch: queries 4 and 19 failed, so those boundaries
        # are skipped and their statistics roll into the next epoch.
        assert ended == [9, 14]
        assert tuner.queries_seen == 20

    def test_unknown_mode_rejected(self, small_catalog):
        tuner = ColtTuner(small_catalog, _config())
        with pytest.raises(ValueError):
            tuner.run([], on_error="ignore")
