"""Regression tests: failed what-if probes no longer lose paid-for gains.

A multi-index ``what_if_optimize`` batch that fails midway used to
discard every gain measured before the failing call, even though those
calls were already counted and charged.  Now the exception carries them
(``WhatIfProbeError.partial_gains``) and the profiler consumes them --
recording the measurements and feeding the gain cache -- before
treating the failure as probe noise.
"""

import pytest

from repro.core.config import ColtConfig
from repro.core.profiler import Profiler
from repro.optimizer.optimizer import Optimizer
from repro.optimizer.whatif import WhatIfOptimizer
from repro.resilience import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedWhatIfFault,
)
from repro.resilience.errors import WhatIfProbeError

from tests.fleet.workloads import eq_query


@pytest.fixture
def whatif(small_catalog):
    return WhatIfOptimizer(Optimizer(small_catalog))


class TestWhatIfPartialGains:
    def test_fault_mid_batch_carries_earlier_gains(self, small_catalog, whatif):
        injector = FaultInjector(FaultPlan(whatif=FaultSpec(at_calls=(2,))))
        whatif.failpoint = injector.whatif_failpoint
        user = small_catalog.index_for("events", "user_id")
        day = small_catalog.index_for("events", "day")
        session = whatif.begin_query(eq_query(7))
        with pytest.raises(InjectedWhatIfFault) as err:
            whatif.what_if_optimize(session, [user, day])
        assert set(err.value.partial_gains) == {user}
        assert err.value.partial_gains[user] > 0
        # The failed call was still counted (and charged).
        assert whatif.call_count == 2

    def test_fault_on_first_probe_carries_empty_gains(self, small_catalog, whatif):
        injector = FaultInjector(FaultPlan(whatif=FaultSpec(at_calls=(1,))))
        whatif.failpoint = injector.whatif_failpoint
        user = small_catalog.index_for("events", "user_id")
        session = whatif.begin_query(eq_query(7))
        with pytest.raises(InjectedWhatIfFault) as err:
            whatif.what_if_optimize(session, [user])
        assert err.value.partial_gains == {}

    def test_partial_gains_match_a_clean_batch(self, small_catalog):
        user = small_catalog.index_for("events", "user_id")
        day = small_catalog.index_for("events", "day")
        clean = WhatIfOptimizer(Optimizer(small_catalog))
        session = clean.begin_query(eq_query(7))
        reference = clean.what_if_optimize(session, [user, day])

        faulty = WhatIfOptimizer(Optimizer(small_catalog))
        injector = FaultInjector(FaultPlan(whatif=FaultSpec(at_calls=(2,))))
        faulty.failpoint = injector.whatif_failpoint
        session = faulty.begin_query(eq_query(7))
        with pytest.raises(InjectedWhatIfFault) as err:
            faulty.what_if_optimize(session, [user, day])
        assert err.value.partial_gains[user] == reference[user]

    def test_wrapped_optimizer_errors_carry_partial_gains(
        self, small_catalog, whatif
    ):
        user = small_catalog.index_for("events", "user_id")
        day = small_catalog.index_for("events", "day")
        session = whatif.begin_query(eq_query(7))
        calls = []
        real = whatif.backend.get_cost

        def flaky(query, config=None, session=None):
            calls.append(config)
            if len(calls) >= 2:  # call 1 prices user; call 2 prices day
                raise RuntimeError("optimizer exploded")
            return real(query, config=config, session=session)

        whatif.backend.get_cost = flaky
        with pytest.raises(WhatIfProbeError) as err:
            whatif.what_if_optimize(session, [user, day])
        assert set(err.value.partial_gains) == {user}


class TestProfilerConsumesPartialGains:
    def _profiler(self, catalog, gain_cache=False):
        whatif = WhatIfOptimizer(Optimizer(catalog))
        config = ColtConfig(storage_budget_pages=6000.0, gain_cache=gain_cache)
        return Profiler(catalog, whatif, config), whatif

    def test_partial_gains_recorded_despite_failure(self, small_catalog):
        profiler, whatif = self._profiler(small_catalog)
        user = small_catalog.index_for("events", "user_id")
        day = small_catalog.index_for("events", "day")

        def always_fail(session, probation, materialized=None):
            raise WhatIfProbeError("boom", partial_gains={day: 42.0})

        whatif.what_if_optimize = always_fail
        query = eq_query(7)
        session = whatif.begin_query(query)
        outcome = profiler.profile_query(query, session, hot=[user], materialized=[])
        assert outcome.gains == {day: 42.0}
        assert profiler.probe_failures == 1

    def test_partial_gains_feed_the_gain_cache(self, small_catalog):
        profiler, whatif = self._profiler(small_catalog, gain_cache=True)
        user = small_catalog.index_for("events", "user_id")

        def always_fail(session, probation, materialized=None):
            raise WhatIfProbeError("boom", partial_gains={user: 7.0})

        whatif.what_if_optimize = always_fail
        query = eq_query(7)
        session = whatif.begin_query(query)
        profiler.profile_query(query, session, hot=[user], materialized=[])
        ctx = profiler.gain_cache.begin_query(eq_query(7))
        assert ctx.lookup(user) == 7.0
