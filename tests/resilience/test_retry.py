"""Unit tests for the build retry policy."""

import pytest

from repro.resilience import RetryPolicy


class TestRetryPolicy:
    def test_backoff_grows_exponentially_and_caps(self):
        policy = RetryPolicy(
            base_delay_epochs=1, multiplier=2.0, max_delay_epochs=8
        )
        assert [policy.delay_for(n) for n in (1, 2, 3, 4, 5)] == [1, 2, 4, 8, 8]

    def test_exhausted(self):
        policy = RetryPolicy(max_attempts=3)
        assert not policy.exhausted(2)
        assert policy.exhausted(3)
        assert policy.exhausted(4)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"base_delay_epochs": 0},
            {"multiplier": 0.5},
            {"base_delay_epochs": 4, "max_delay_epochs": 2},
            {"max_attempts": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)
