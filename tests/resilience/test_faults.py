"""Unit tests for the fault injector."""

import pytest

from repro.resilience import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedBuildFault,
    InjectedFault,
    InjectedWhatIfFault,
)


class TestFaultSpec:
    def test_probability_range_validated(self):
        with pytest.raises(ValueError):
            FaultSpec(probability=1.5)
        with pytest.raises(ValueError):
            FaultSpec(probability=-0.1)

    def test_every_validated(self):
        with pytest.raises(ValueError):
            FaultSpec(every=0)


class TestFaultPlan:
    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(bogus=FaultSpec(probability=1.0))

    def test_missing_site_never_fails(self):
        injector = FaultInjector(FaultPlan())
        assert not any(injector.should_fail("whatif") for _ in range(100))


class TestTriggers:
    def test_at_calls_schedule(self):
        injector = FaultInjector(FaultPlan(whatif=FaultSpec(at_calls=(2, 4))))
        fired = [injector.should_fail("whatif") for _ in range(5)]
        assert fired == [False, True, False, True, False]

    def test_every_nth_call(self):
        injector = FaultInjector(FaultPlan(build=FaultSpec(every=3)))
        fired = [injector.should_fail("build") for _ in range(6)]
        assert fired == [False, False, True, False, False, True]

    def test_limit_caps_injections(self):
        injector = FaultInjector(FaultPlan(whatif=FaultSpec(every=1, limit=2)))
        fired = [injector.should_fail("whatif") for _ in range(5)]
        assert fired == [True, True, False, False, False]
        assert injector.injected["whatif"] == 2

    def test_probability_is_deterministic_per_seed(self):
        def storm(seed):
            injector = FaultInjector(
                FaultPlan(whatif=FaultSpec(probability=0.3)), seed=seed
            )
            return [injector.should_fail("whatif") for _ in range(200)]

        assert storm(7) == storm(7)
        assert storm(7) != storm(8)
        assert 20 < sum(storm(7)) < 100  # roughly 30%

    def test_arm_forces_next_calls(self):
        injector = FaultInjector()
        injector.arm("build", count=2)
        assert injector.should_fail("build")
        assert injector.should_fail("build")
        assert not injector.should_fail("build")

    def test_arm_unknown_site(self):
        with pytest.raises(ValueError):
            FaultInjector().arm("bogus")


class TestFailpoints:
    def test_whatif_failpoint_raises_injected_fault(self):
        injector = FaultInjector(FaultPlan(whatif=FaultSpec(every=1)))
        with pytest.raises(InjectedWhatIfFault):
            injector.whatif_failpoint("ix_events_user_id")

    def test_build_failpoint_raises_injected_fault(self):
        injector = FaultInjector(FaultPlan(build=FaultSpec(every=1)))
        with pytest.raises(InjectedBuildFault) as err:
            injector.build_failpoint("ix_events_user_id")
        assert isinstance(err.value, InjectedFault)

    def test_quiet_failpoints_pass_through(self):
        injector = FaultInjector()
        injector.whatif_failpoint("ix")  # no plan, no fault
        injector.build_failpoint("ix")
        assert injector.injected == {"whatif": 0, "build": 0, "snapshot": 0}


class TestFileCorruption:
    def test_truncate(self, tmp_path):
        path = tmp_path / "snap.json"
        path.write_bytes(b"x" * 100)
        FaultInjector().corrupt_file(path, mode="truncate")
        assert len(path.read_bytes()) == 50

    def test_flip(self, tmp_path):
        path = tmp_path / "snap.json"
        original = b'{"key": "value", "other": 123}'
        path.write_bytes(original)
        FaultInjector().corrupt_file(path, mode="flip")
        damaged = path.read_bytes()
        assert damaged != original
        assert len(damaged) == len(original)

    def test_empty(self, tmp_path):
        path = tmp_path / "snap.json"
        path.write_bytes(b"data")
        FaultInjector().corrupt_file(path, mode="empty")
        assert path.read_bytes() == b""

    def test_unknown_mode(self, tmp_path):
        path = tmp_path / "snap.json"
        path.write_bytes(b"data")
        with pytest.raises(ValueError):
            FaultInjector().corrupt_file(path, mode="bogus")
