"""Scheduler build-failure handling: retry queue, backoff, abandonment."""

import pytest

from repro.core.scheduler import IndexBuildError, Scheduler
from repro.resilience import FaultInjector, FaultPlan, FaultSpec, RetryPolicy


def failing_injector(**spec_kwargs):
    return FaultInjector(FaultPlan(build=FaultSpec(**spec_kwargs)))


class TestBuildFailure:
    def test_failed_build_stays_unmaterialized_and_queued(self, small_catalog):
        injector = failing_injector(every=1, limit=1)
        scheduler = Scheduler(small_catalog, failpoint=injector.build_failpoint)
        ix = small_catalog.index_for("events", "user_id")
        charged = scheduler.request_materialization([ix])
        assert charged == 0.0
        assert not small_catalog.is_materialized(ix)
        assert [f.index for f in scheduler.retry_queue] == [ix]
        assert scheduler.failure_count == 1
        assert scheduler.builds == []

    def test_retry_waits_for_backoff(self, small_catalog):
        injector = failing_injector(every=1, limit=1)
        scheduler = Scheduler(
            small_catalog,
            failpoint=injector.build_failpoint,
            retry=RetryPolicy(base_delay_epochs=2),
        )
        ix = small_catalog.index_for("events", "user_id")
        scheduler.request_materialization([ix])
        report = scheduler.advance_epoch()  # epoch 1 < next_retry_epoch 2
        assert report.recovered == [] and report.charged == 0.0
        assert not small_catalog.is_materialized(ix)
        report = scheduler.advance_epoch()  # epoch 2: due
        assert report.recovered == [ix]
        assert report.charged > 0.0
        assert small_catalog.is_materialized(ix)
        assert scheduler.retry_queue == []

    def test_backoff_doubles_across_failed_retries(self, small_catalog):
        injector = failing_injector(every=1)  # always fails
        scheduler = Scheduler(
            small_catalog,
            failpoint=injector.build_failpoint,
            retry=RetryPolicy(base_delay_epochs=1, max_delay_epochs=8,
                              max_attempts=10),
        )
        ix = small_catalog.index_for("events", "user_id")
        scheduler.request_materialization([ix])
        gaps = []
        last_attempt_epoch = 0
        for _ in range(16):
            before = scheduler.retry_queue[0].attempts
            scheduler.advance_epoch()
            after = scheduler.retry_queue[0].attempts
            if after > before:
                gaps.append(scheduler.epoch - last_attempt_epoch)
                last_attempt_epoch = scheduler.epoch
        assert gaps[:4] == [1, 2, 4, 8]

    def test_abandoned_after_max_attempts(self, small_catalog):
        injector = failing_injector(every=1)
        scheduler = Scheduler(
            small_catalog,
            failpoint=injector.build_failpoint,
            retry=RetryPolicy(base_delay_epochs=1, max_delay_epochs=1,
                              max_attempts=3),
        )
        ix = small_catalog.index_for("events", "user_id")
        scheduler.request_materialization([ix])
        for _ in range(3):
            scheduler.advance_epoch()
        assert scheduler.retry_queue == []
        assert [f.index for f in scheduler.abandoned] == [ix]
        assert not small_catalog.is_materialized(ix)

    def test_drop_cancels_pending_retry(self, small_catalog):
        injector = failing_injector(every=1, limit=1)
        scheduler = Scheduler(small_catalog, failpoint=injector.build_failpoint)
        ix = small_catalog.index_for("events", "user_id")
        scheduler.request_materialization([ix])
        assert scheduler.retry_queue
        scheduler.request_drop([ix])
        assert scheduler.retry_queue == []
        assert scheduler.advance_epoch().recovered == []

    def test_rerequest_before_backoff_can_succeed(self, small_catalog):
        """The knapsack re-requesting a queued index builds it at once."""
        injector = failing_injector(every=1, limit=1)
        scheduler = Scheduler(small_catalog, failpoint=injector.build_failpoint)
        ix = small_catalog.index_for("events", "user_id")
        scheduler.request_materialization([ix])
        charged = scheduler.request_materialization([ix])
        assert charged > 0.0
        assert small_catalog.is_materialized(ix)
        # The stale retry entry is skipped once the index exists.
        assert scheduler.advance_epoch().recovered == []


class TestPhysicalRollback:
    def test_store_error_normalized_and_rolled_back(self, small_store, monkeypatch):
        scheduler = Scheduler(small_store.catalog, store=small_store)
        ix = small_store.catalog.index_for("events", "user_id")

        def exploding_build(index):
            raise RuntimeError("disk full")

        monkeypatch.setattr(small_store, "build_index", exploding_build)
        with pytest.raises(IndexBuildError):
            scheduler._build(ix)
        assert not small_store.catalog.is_materialized(ix)
        assert small_store.tree(ix) is None

    def test_request_materialization_absorbs_store_error(
        self, small_store, monkeypatch
    ):
        scheduler = Scheduler(small_store.catalog, store=small_store)
        ix = small_store.catalog.index_for("events", "user_id")
        monkeypatch.setattr(
            small_store,
            "build_index",
            lambda index: (_ for _ in ()).throw(RuntimeError("disk full")),
        )
        assert scheduler.request_materialization([ix]) == 0.0
        assert [f.index for f in scheduler.retry_queue] == [ix]
