"""Unit tests for the profiling circuit breaker."""

import pytest

from repro.resilience import BreakerState, CircuitBreaker


def make(threshold=3, cooldown=5, recovery=2):
    return CircuitBreaker(
        failure_threshold=threshold,
        cooldown_ticks=cooldown,
        recovery_threshold=recovery,
    )


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"failure_threshold": 0},
            {"cooldown_ticks": 0},
            {"recovery_threshold": 0},
        ],
    )
    def test_positive_params_required(self, kwargs):
        with pytest.raises(ValueError):
            CircuitBreaker(**kwargs)


class TestTrip:
    def test_starts_closed(self):
        breaker = make()
        assert breaker.is_closed
        assert breaker.allows_probes()

    def test_opens_after_consecutive_failures(self):
        breaker = make(threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.is_closed
        breaker.record_failure()
        assert breaker.is_open
        assert not breaker.allows_probes()
        assert breaker.total_trips == 1

    def test_success_resets_failure_streak(self):
        breaker = make(threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.is_closed  # streak restarted after the success


class TestRecovery:
    def _tripped(self, cooldown=5, recovery=2):
        breaker = make(threshold=1, cooldown=cooldown, recovery=recovery)
        breaker.record_failure()
        assert breaker.is_open
        return breaker

    def test_cooldown_ticks_to_half_open(self):
        breaker = self._tripped(cooldown=5)
        for _ in range(4):
            breaker.tick()
        assert breaker.is_open
        breaker.tick()
        assert breaker.state is BreakerState.HALF_OPEN
        assert breaker.allows_probes()

    def test_half_open_successes_close(self):
        breaker = self._tripped(cooldown=1, recovery=2)
        breaker.tick()
        breaker.record_success()
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.record_success()
        assert breaker.is_closed

    def test_half_open_failure_reopens(self):
        breaker = self._tripped(cooldown=1)
        breaker.tick()
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.record_failure()
        assert breaker.is_open
        assert breaker.total_trips == 2
        # Cooldown restarted: one tick is again enough here.
        breaker.tick()
        assert breaker.state is BreakerState.HALF_OPEN

    def test_transition_log_records_full_cycle(self):
        breaker = self._tripped(cooldown=1, recovery=1)
        breaker.tick()
        breaker.record_success()
        states = [(frm, to) for frm, to, _tick in breaker.transitions]
        assert states == [
            ("closed", "open"),
            ("open", "half_open"),
            ("half_open", "closed"),
        ]
