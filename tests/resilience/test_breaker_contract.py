"""Contract tests for :class:`CircuitBreaker` as an external consumer.

The fleet layer (``repro.fleet``) reads breaker state from outside the
profiler: it maps states to replica health, drives the clock with
``tick()`` for replicas that receive no traffic, and expects the
transition log to tell the full story.  These tests pin the behaviour
that external readers depend on -- the full
closed -> open -> half-open -> closed cycle as observed step by step.
"""

from repro.fleet.replica import ReplicaHealth
from repro.resilience.breaker import BreakerState, CircuitBreaker


def make_breaker(**kwargs):
    kwargs.setdefault("failure_threshold", 2)
    kwargs.setdefault("cooldown_ticks", 3)
    kwargs.setdefault("recovery_threshold", 2)
    return CircuitBreaker(**kwargs)


class TestFullCycle:
    def test_closed_to_open_to_half_open_to_closed(self):
        breaker = make_breaker()
        # CLOSED: probing allowed, failures below threshold don't trip.
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allows_probes()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED
        # Threshold reached: trip OPEN, probing suspended.
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allows_probes()
        # Cooldown measured in ticks; one short of it stays OPEN.
        breaker.tick()
        breaker.tick()
        assert breaker.state is BreakerState.OPEN
        breaker.tick()
        assert breaker.state is BreakerState.HALF_OPEN
        assert breaker.allows_probes()
        # Recovery needs consecutive successes.
        breaker.record_success()
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allows_probes()

    def test_transition_log_records_each_hop_with_ticks(self):
        breaker = make_breaker()
        breaker.record_failure()
        breaker.record_failure()
        for _ in range(3):
            breaker.tick()
        breaker.record_success()
        breaker.record_success()
        assert [(a, b) for a, b, _ in breaker.transitions] == [
            ("closed", "open"),
            ("open", "half_open"),
            ("half_open", "closed"),
        ]
        ticks = [t for _, _, t in breaker.transitions]
        assert ticks == sorted(ticks)
        assert ticks[1] - ticks[0] == 3  # the cooldown, in ticks

    def test_half_open_failure_reopens_and_restarts_cooldown(self):
        breaker = make_breaker()
        breaker.record_failure()
        breaker.record_failure()
        for _ in range(3):
            breaker.tick()
        assert breaker.state is BreakerState.HALF_OPEN
        # A single failure while probing trickles reopens immediately.
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert breaker.total_trips == 2
        # The cooldown starts over from zero.
        breaker.tick()
        breaker.tick()
        assert breaker.state is BreakerState.OPEN
        breaker.tick()
        assert breaker.state is BreakerState.HALF_OPEN

    def test_success_in_closed_resets_failure_streak(self):
        breaker = make_breaker(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()  # streak broken
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN


class TestExternalReaders:
    def test_health_mapping_tracks_cycle(self):
        breaker = make_breaker()
        states = []
        states.append(ReplicaHealth.from_breaker(breaker.state))
        breaker.record_failure()
        breaker.record_failure()
        states.append(ReplicaHealth.from_breaker(breaker.state))
        for _ in range(3):
            breaker.tick()
        states.append(ReplicaHealth.from_breaker(breaker.state))
        breaker.record_success()
        breaker.record_success()
        states.append(ReplicaHealth.from_breaker(breaker.state))
        assert states == [
            ReplicaHealth.HEALTHY,
            ReplicaHealth.DRAINED,
            ReplicaHealth.DEGRADED,
            ReplicaHealth.HEALTHY,
        ]

    def test_ticks_while_closed_are_harmless(self):
        breaker = make_breaker()
        for _ in range(100):
            breaker.tick()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.transitions == []

    def test_counters_visible_to_monitors(self):
        breaker = make_breaker(failure_threshold=1)
        breaker.record_failure()
        assert breaker.total_failures == 1
        assert breaker.total_trips == 1
