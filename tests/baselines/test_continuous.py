"""Tests for the QUIET-style continuous tuner baseline."""

import random

import pytest

from repro.baselines import ContinuousConfig, ContinuousTuner
from repro.sql.ast import (
    ColumnExpr,
    CompareOp,
    ComparisonPredicate,
    Query,
    SelectItem,
)


def _eq_query(value):
    return Query(
        tables=["events"],
        select=[SelectItem(expr=ColumnExpr("amount", "events"))],
        filters=[
            ComparisonPredicate(
                ColumnExpr("user_id", "events"), CompareOp.EQ, value
            )
        ],
    )


class TestAdoption:
    def test_adopts_after_enough_credit(self, small_catalog):
        tuner = ContinuousTuner(
            small_catalog, ContinuousConfig(storage_budget_pages=5000.0)
        )
        rng = random.Random(0)
        for _ in range(60):
            tuner.process_query(_eq_query(rng.randint(1, 10_000)))
        assert small_catalog.index_for("events", "user_id") in tuner.materialized_set

    def test_single_query_insufficient(self, small_catalog):
        tuner = ContinuousTuner(small_catalog)
        tuner.process_query(_eq_query(5))
        assert tuner.materialized_set == []

    def test_budget_respected(self, small_catalog):
        config = ContinuousConfig(storage_budget_pages=100.0)
        tuner = ContinuousTuner(small_catalog, config)
        rng = random.Random(1)
        for _ in range(80):
            tuner.process_query(_eq_query(rng.randint(1, 10_000)))
            assert small_catalog.materialized_size_pages() <= 100.0

    def test_build_cost_charged_once(self, small_catalog):
        tuner = ContinuousTuner(
            small_catalog, ContinuousConfig(storage_budget_pages=5000.0)
        )
        rng = random.Random(2)
        build_events = [
            tuner.process_query(_eq_query(rng.randint(1, 10_000))).build_cost
            for _ in range(80)
        ]
        assert sum(1 for b in build_events if b > 0) == 1


class TestOverhead:
    def test_profiles_every_query(self, small_catalog):
        """The defining flaw of the prior-work model: constant intensity."""
        tuner = ContinuousTuner(
            small_catalog, ContinuousConfig(storage_budget_pages=5000.0)
        )
        rng = random.Random(3)
        outcomes = [
            tuner.process_query(_eq_query(rng.randint(1, 10_000)))
            for _ in range(100)
        ]
        # Even long after convergence, every query pays a what-if call.
        assert all(o.whatif_calls >= 1 for o in outcomes)
        assert outcomes[-1].whatif_calls >= 1

    def test_ledger_consistent(self, small_catalog):
        tuner = ContinuousTuner(small_catalog)
        o = tuner.process_query(_eq_query(1))
        assert o.total_cost == pytest.approx(
            o.execution_cost + o.whatif_overhead + o.build_cost
        )


class TestRetirement:
    def test_unused_index_retired(self, small_catalog):
        config = ContinuousConfig(storage_budget_pages=5000.0, decay=0.9)
        tuner = ContinuousTuner(small_catalog, config)
        rng = random.Random(4)
        for _ in range(60):
            tuner.process_query(_eq_query(rng.randint(1, 10_000)))
        assert tuner.materialized_set  # adopted
        # Switch the workload to a column the index cannot serve.
        other = Query(
            tables=["users"],
            select=[SelectItem(expr=ColumnExpr("score", "users"))],
            filters=[
                ComparisonPredicate(ColumnExpr("score", "users"), CompareOp.EQ, 5)
            ],
        )
        for _ in range(120):
            tuner.process_query(other)
        assert small_catalog.index_for("events", "user_id") not in tuner.materialized_set

    def test_eviction_prefers_weak_incumbents(self, small_catalog):
        # Budget fits one events index only; shifting the workload must
        # eventually evict the stale incumbent.
        config = ContinuousConfig(storage_budget_pages=3000.0, decay=0.9)
        tuner = ContinuousTuner(small_catalog, config)
        rng = random.Random(5)
        for _ in range(60):
            tuner.process_query(_eq_query(rng.randint(1, 10_000)))
        day_query = Query(
            tables=["events"],
            select=[SelectItem(expr=ColumnExpr("amount", "events"))],
            filters=[
                ComparisonPredicate(ColumnExpr("day", "events"), CompareOp.EQ, 8500)
            ],
        )
        for _ in range(150):
            tuner.process_query(day_query)
        assert small_catalog.index_for("events", "day") in tuner.materialized_set
