"""Tests for the OFFLINE baseline tuner."""

import itertools

import pytest

from repro.baselines import OfflineTuner
from repro.optimizer.optimizer import Optimizer, PlanCache
from repro.sql.binder import bind_query
from repro.sql.parser import parse_query
from repro.workload.datagen import build_catalog
from repro.workload.experiments import stable_distribution
from repro.workload.phases import stable_workload


def _queries(catalog, *sqls):
    return [bind_query(parse_query(s), catalog) for s in sqls]


class TestBasics:
    def test_empty_budget_selects_nothing(self, small_catalog):
        queries = _queries(
            small_catalog, "select amount from events where user_id = 5"
        )
        result = OfflineTuner(small_catalog).tune(queries, budget_pages=0.0)
        assert result.indexes == []
        assert result.total_cost == result.baseline_cost

    def test_selects_obviously_good_index(self, small_catalog):
        queries = _queries(
            small_catalog,
            "select amount from events where user_id = 5",
            "select amount from events where user_id = 6",
        )
        result = OfflineTuner(small_catalog).tune(queries, budget_pages=50_000.0)
        assert small_catalog.index_for("events", "user_id") in result.indexes
        assert result.total_cost < result.baseline_cost

    def test_budget_constraint_respected(self, small_catalog):
        queries = _queries(
            small_catalog,
            "select amount from events where user_id = 5",
            "select amount from events where day = 8000",
        )
        # Fits one events index, not two.
        result = OfflineTuner(small_catalog).tune(queries, budget_pages=3000.0)
        used = sum(small_catalog.index_size_pages(ix) for ix in result.indexes)
        assert used <= 3000.0

    def test_invalid_strategy(self, small_catalog):
        with pytest.raises(ValueError):
            OfflineTuner(small_catalog, strategy="magic")

    def test_candidate_mining_covers_joins(self, small_catalog):
        queries = _queries(
            small_catalog,
            "select * from events, users "
            "where events.user_id = users.user_id and events.day = 8000",
        )
        tuner = OfflineTuner(small_catalog)
        pool = tuner._mine(queries)
        names = {ix.name for ix in pool}
        assert "ix_events_day" in names
        assert "ix_users_user_id" in names


class TestOptimality:
    def test_matches_brute_force_on_paper_workload(self):
        catalog = build_catalog()
        workload = stable_workload(stable_distribution(), 40, catalog, seed=21)
        budget = 7000.0
        tuner = OfflineTuner(catalog)
        result = tuner.tune(workload.queries, budget)

        pool = [
            ix
            for ix in tuner._mine(workload.queries)
            if catalog.index_size_pages(ix) <= budget
        ]
        optimizer = Optimizer(catalog)

        def total(config):
            return sum(
                optimizer.optimize(q, config=frozenset(config), cache=PlanCache()).cost
                for q in workload.queries
            )

        best = total(())
        for r in range(1, min(len(pool), 4) + 1):
            for combo in itertools.combinations(pool, r):
                if sum(catalog.index_size_pages(ix) for ix in combo) <= budget:
                    best = min(best, total(combo))
        # Brute force capped at 4-subsets; branch-and-bound may find even
        # better, never worse.
        assert result.total_cost <= best + 1e-6

    def test_greedy_never_beats_exhaustive(self):
        catalog = build_catalog()
        workload = stable_workload(stable_distribution(), 60, catalog, seed=8)
        exact = OfflineTuner(catalog).tune(workload.queries, 9000.0)
        greedy = OfflineTuner(catalog, strategy="greedy").tune(
            workload.queries, 9000.0
        )
        assert exact.total_cost <= greedy.total_cost + 1e-6

    def test_result_reports_search_size(self):
        catalog = build_catalog()
        workload = stable_workload(stable_distribution(), 30, catalog, seed=4)
        result = OfflineTuner(catalog).tune(workload.queries, 9000.0)
        assert result.configurations_examined >= 1
