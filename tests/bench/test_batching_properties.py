"""Property tests for the batched hot path (hypothesis).

The batched replay mode is only admissible because it is **decision
preserving**: for *any* query stream and *any* batch split, the
interner, the batch binder, and the :class:`BatchedPricer` memo must
produce results element-wise identical to the per-query loop -- even
with index materializations and statistics bumps interleaved between
batches.  These properties let hypothesis hunt for a split or mutation
schedule that breaks that, instead of trusting a few hand-picked cases.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backend.local import LocalBackend
from repro.core.batching import BatchedPricer, SignatureInterner, bind_batch
from repro.core.gaincache import query_signature
from repro.sql.binder import bind_query
from repro.workload.datagen import build_catalog
from repro.workload.experiments import stable_distribution

DIST = stable_distribution()


def sample_queries(seed, n):
    catalog = build_catalog()
    rng = random.Random(seed)
    return catalog, [DIST.sample(catalog, rng) for _ in range(n)]


def split(items, cut_points):
    """Partition ``items`` at the (possibly ragged) cut points."""
    cuts = sorted({c % (len(items) + 1) for c in cut_points})
    batches, last = [], 0
    for cut in cuts:
        if cut > last:
            batches.append(items[last:cut])
            last = cut
    if last < len(items):
        batches.append(items[last:])
    return batches


@st.composite
def stream_and_split(draw):
    seed = draw(st.integers(0, 10_000))
    n = draw(st.integers(1, 24))
    cuts = draw(st.lists(st.integers(0, 100), max_size=6))
    # Repeat some queries (replay streams cycle), preserving identity.
    repeats = draw(st.lists(st.integers(0, n - 1), max_size=8))
    return seed, n, cuts, repeats


class TestInterner:
    @given(stream_and_split())
    @settings(max_examples=50, deadline=None)
    def test_never_conflates_and_never_splits(self, drawn):
        seed, n, _, repeats = drawn
        _, queries = sample_queries(seed, n)
        queries = queries + [queries[i] for i in repeats]
        interner = SignatureInterner()
        results = [interner.signature_index(q) for q in queries]
        for (sig_a, idx_a), qa in zip(results, queries):
            # Ground truth is the raw structural signature (includes
            # literals): the interner must agree with it exactly.
            assert sig_a == query_signature(qa)
            for (sig_b, idx_b), qb in zip(results, queries):
                same = query_signature(qa) == query_signature(qb)
                assert (sig_a is sig_b) == same  # interned to one object
                assert (idx_a == idx_b) == same  # indices biject

    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_indices_stable_and_fresh_after_clear(self, seed):
        _, queries = sample_queries(seed, 8)
        interner = SignatureInterner()
        before = [interner.signature_index(q)[1] for q in queries]
        # Stable: re-asking yields the same indices.
        assert [interner.signature_index(q)[1] for q in queries] == before
        interner.clear()
        after = [interner.signature_index(q)[1] for q in queries]
        # Fresh: post-clear indices never reuse pre-clear ones, so a
        # consumer that kept an index-keyed memo across the clear can
        # miss but never alias.
        assert not (set(before) & set(after))


class TestBindBatch:
    @given(stream_and_split())
    @settings(max_examples=25, deadline=None)
    def test_equals_per_query_loop_for_any_split(self, drawn):
        seed, n, cuts, repeats = drawn
        catalog, queries = sample_queries(seed, n)
        queries = queries + [queries[i] for i in repeats]
        interner = SignatureInterner()
        batched = []
        for batch in split(queries, cuts):
            batched.extend(bind_batch(batch, catalog, interner))
        reference = [bind_query(q, catalog) for q in queries]
        assert len(batched) == len(reference)
        for got, want in zip(batched, reference):
            assert query_signature(got) == query_signature(want)

    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_identical_structures_share_one_bound_object(self, seed):
        catalog, queries = sample_queries(seed, 6)
        doubled = queries + list(queries)
        bound = bind_batch(doubled, catalog)
        for i in range(len(queries)):
            assert bound[i] is bound[i + len(queries)]


class TestBatchedPricerParity:
    @given(stream_and_split(), st.lists(st.integers(0, 3), max_size=4))
    @settings(max_examples=20, deadline=None)
    def test_sessions_identical_under_any_split_and_mutations(
        self, drawn, mutations
    ):
        seed, n, cuts, repeats = drawn
        catalog, queries = sample_queries(seed, n)
        queries = queries + [queries[i] for i in repeats]
        relevant = DIST.relevant_indexes(catalog)

        inner = LocalBackend(catalog)
        pricer = BatchedPricer(inner)
        reference = LocalBackend(catalog)

        batches = split(queries, cuts)
        for b, batch in enumerate(batches):
            # Interleave config/stats mutations between batches: the
            # memo must revalidate, not serve stale bases.
            if b < len(mutations):
                op = mutations[b]
                index = relevant[b % len(relevant)]
                if op == 0:
                    catalog.materialize_index(index)
                elif op == 1:
                    catalog.drop_index(index)
                elif op == 2:
                    catalog.bump_stats_version(index.table)
                else:
                    inner.simulate_index(index)
                    reference.simulate_index(index)

            sessions = pricer.begin_queries(batch)
            for query, session in zip(batch, sessions):
                want = reference.begin_query(query)
                assert session.query is query
                assert session.base.cost == want.base.cost
                assert session.base.plan.indexes_used() == (
                    want.base.plan.indexes_used()
                )
                # A what-if probe through the (possibly warmed) session
                # prices exactly like a fresh one.
                probe = frozenset(
                    reference.current_config()
                    | {relevant[b % len(relevant)]}
                )
                assert pricer.get_cost(
                    query, config=probe, session=session
                ) == reference.get_cost(query, config=probe, session=want)

    @given(st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_repeat_objects_hit_the_memo(self, seed):
        catalog, queries = sample_queries(seed, 4)
        pricer = BatchedPricer(LocalBackend(catalog))
        pricer.begin_queries(queries)
        misses = pricer.misses
        pricer.begin_queries(queries)  # same objects, same config
        assert pricer.misses == misses
        assert pricer.hits >= len(queries)
