"""Golden-trace regression pin for the seeded Figure-4 tuner run.

A small (270-query) Figure-4-shaped workload is traced end to end and
compared epoch-by-epoch against ``tests/data/golden_trace.json``: the
chosen materialized set, the boundary adds/drops, the hot set, the
granted what-if budget, the improvement ratio, and the costs.  Any
change to profiling, re-budgeting, the knapsack, or the scheduler that
shifts a single decision fails loudly with the first diverging epoch.

When a change *intentionally* alters tuner behaviour, regenerate with:

    GOLDEN_REGEN=1 PYTHONPATH=src python -m pytest \
        tests/bench/test_golden_trace.py -q
"""

import json
import os
import pathlib

import pytest

from repro.bench.tracing import TunerTrace, trace_run
from repro.core import ColtConfig
from repro.workload.datagen import build_catalog
from repro.workload.experiments import phase_distributions
from repro.workload.phases import shifting_workload

GOLDEN_PATH = pathlib.Path(__file__).parent.parent / "data" / "golden_trace.json"

PHASE_LENGTH = 60
TRANSITION = 10
BUDGET_PAGES = 9_000.0
SEED = 0


def _traced_run():
    catalog = build_catalog()
    workload = shifting_workload(
        phase_distributions(),
        catalog,
        phase_length=PHASE_LENGTH,
        transition=TRANSITION,
        seed=SEED,
    )
    config = ColtConfig(storage_budget_pages=BUDGET_PAGES, seed=SEED)
    return trace_run(catalog, workload.queries, config)


@pytest.fixture(scope="module")
def trace():
    return _traced_run()


def test_golden_trace_exists_or_regenerates(trace):
    if os.environ.get("GOLDEN_REGEN") == "1":
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(trace.to_json(indent=2) + "\n")
    assert GOLDEN_PATH.exists(), (
        "golden trace missing -- regenerate with GOLDEN_REGEN=1 (see module "
        "docstring)"
    )


def test_trace_matches_golden(trace):
    golden = TunerTrace.from_json(GOLDEN_PATH.read_text())
    assert len(trace.epochs) == len(golden.epochs)
    for current, pinned in zip(trace.epochs, golden.epochs):
        label = f"epoch {pinned.epoch}"
        # Decisions: exact.
        assert current.materialized == pinned.materialized, label
        assert current.added == pinned.added, label
        assert current.dropped == pinned.dropped, label
        assert current.hot == pinned.hot, label
        assert current.whatif_used == pinned.whatif_used, label
        assert current.budget_granted == pinned.budget_granted, label
        # Costs/ratios: floats through a JSON round trip, so approx at
        # tight tolerance (repr round-trips exactly; this guards only
        # against accumulation-order changes that are real regressions
        # anyway).
        assert current.improvement_ratio == pytest.approx(
            pinned.improvement_ratio, rel=1e-12
        ), label
        assert current.execution_cost == pytest.approx(
            pinned.execution_cost, rel=1e-12
        ), label
        assert current.total_cost == pytest.approx(
            pinned.total_cost, rel=1e-12
        ), label


def test_total_cost_matches_golden(trace):
    golden = TunerTrace.from_json(GOLDEN_PATH.read_text())
    assert trace.total_cost == pytest.approx(golden.total_cost, rel=1e-12)
    assert trace.total_whatif == golden.total_whatif


def test_golden_config_round_trips_current_fields(trace):
    # from_json rebuilds ColtConfig(**data["config"]): the pinned file
    # must carry every current config field (catches forgotten
    # regeneration after a config-schema change).
    golden = json.loads(GOLDEN_PATH.read_text())
    import dataclasses

    current_fields = {f.name for f in dataclasses.fields(ColtConfig)}
    assert set(golden["config"]) == current_fields
