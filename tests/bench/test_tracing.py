"""Tests for the experiment tracing module."""

import pytest

from repro.bench.tracing import trace_run
from repro.core.config import ColtConfig
from repro.workload.datagen import build_catalog
from repro.workload.experiments import stable_distribution
from repro.workload.phases import stable_workload


@pytest.fixture(scope="module")
def trace():
    catalog = build_catalog()
    workload = stable_workload(stable_distribution(), 100, catalog, seed=1)
    return trace_run(
        build_catalog(),
        workload.queries,
        ColtConfig(storage_budget_pages=9_000.0),
    )


class TestTraceStructure:
    def test_one_entry_per_epoch(self, trace):
        assert len(trace.epochs) == 10  # 100 queries / w=10

    def test_epoch_numbering(self, trace):
        assert [e.epoch for e in trace.epochs] == list(range(10))

    def test_costs_accumulate(self, trace):
        assert trace.total_cost == pytest.approx(
            sum(e.total_cost for e in trace.epochs)
        )
        for e in trace.epochs:
            assert e.total_cost >= e.execution_cost

    def test_whatif_within_budget(self, trace):
        for e in trace.epochs:
            assert 0 <= e.whatif_used <= trace.config.max_whatif_per_epoch

    def test_set_changes_recorded(self, trace):
        added = [name for e in trace.epochs for name in e.added]
        assert added, "a stable workload run should materialize something"
        # |M| grows consistently with recorded additions/drops.
        size = 0
        for e in trace.epochs:
            size += len(e.added) - len(e.dropped)
            assert len(e.materialized) == size

    def test_ratio_at_least_one(self, trace):
        assert all(e.improvement_ratio >= 1.0 for e in trace.epochs)


class TestRendering:
    def test_timeline_renders(self, trace):
        text = trace.render_timeline()
        assert "exec cost" in text
        assert text.count("\n") >= len(trace.epochs)
        assert "what-if calls" in text

    def test_empty_trace(self):
        from repro.bench.tracing import TunerTrace

        empty = TunerTrace(epochs=[], config=ColtConfig())
        assert "empty" in empty.render_timeline()


class TestJsonRoundtrip:
    def test_roundtrip_preserves_epochs_and_config(self, trace):
        from repro.bench.tracing import TunerTrace

        restored = TunerTrace.from_json(trace.to_json())
        assert restored.epochs == trace.epochs
        assert restored.config == trace.config
        assert restored.total_cost == pytest.approx(trace.total_cost)

    def test_accepts_parsed_dict(self, trace):
        import json

        from repro.bench.tracing import TunerTrace

        payload = json.loads(trace.to_json())
        restored = TunerTrace.from_json(payload)
        assert len(restored.epochs) == len(trace.epochs)

    def test_indent_produces_readable_output(self, trace):
        assert trace.to_json(indent=2).count("\n") > len(trace.epochs)

    def test_empty_trace_roundtrips(self):
        from repro.bench.tracing import TunerTrace

        empty = TunerTrace(epochs=[], config=ColtConfig())
        restored = TunerTrace.from_json(empty.to_json())
        assert restored.epochs == []

    def test_missing_keys_rejected(self):
        from repro.bench.tracing import TunerTrace

        with pytest.raises(ValueError, match="missing keys"):
            TunerTrace.from_json('{"epochs": []}')
        with pytest.raises(ValueError, match="missing keys"):
            TunerTrace.from_json("[1, 2, 3]")

    def test_malformed_epoch_rejected(self, trace):
        import json

        from repro.bench.tracing import TunerTrace

        payload = json.loads(trace.to_json())
        payload["epochs"][0].pop("execution_cost")
        with pytest.raises(ValueError, match="malformed"):
            TunerTrace.from_json(payload)
