"""Replay-driver tests: stream semantics, decision parity, reports.

The replay driver (``repro.bench.replay``) is a throughput benchmark,
so its numbers only mean something if the *decisions* are mode-
invariant: batched and fleet modes must spend exactly the same
cost-model totals and what-if calls as the serial baseline.  These
tests pin that anchor along with the stream's determinism and the
``BENCH_throughput.json`` layout the CI gate consumes.
"""

import json

import pytest

from repro.bench.replay import (
    ReplayStream,
    build_replay_tuner,
    replay_fleet,
    replay_serial,
    write_throughput_report,
)
from repro.core.config import ColtConfig
from repro.fleet import FleetCoordinator
from repro.workload.phases import Workload

from tests.fleet.workloads import (
    build_small_catalog,
    day_query,
    eq_query,
    score_query,
)


def mixed_queries(n):
    makers = [eq_query, day_query, score_query]
    return [makers[i % 3](8000 + i if i % 3 == 1 else i + 1) for i in range(n)]


def make_config(**cfg):
    cfg.setdefault("storage_budget_pages", 6000.0)
    cfg.setdefault("min_history_epochs", 2)
    return ColtConfig(**cfg)


def make_stream(events=200, seed=3):
    return ReplayStream(mixed_queries(30), events=events, seed=seed)


class TestStream:
    def test_same_seed_same_arrivals(self):
        a = list(make_stream(seed=5))
        b = list(make_stream(seed=5))
        assert [e.timestamp for e in a] == [e.timestamp for e in b]
        assert [e.index for e in a] == list(range(200))

    def test_different_seed_different_timestamps(self):
        a = list(make_stream(seed=5))
        b = list(make_stream(seed=6))
        assert [e.timestamp for e in a] != [e.timestamp for e in b]

    def test_timestamps_are_monotone(self):
        events = list(make_stream())
        stamps = [e.timestamp for e in events]
        assert stamps == sorted(stamps)
        assert stamps[0] > 0

    def test_cycling_reuses_query_objects(self):
        queries = mixed_queries(10)
        stream = ReplayStream(queries, events=25, seed=0)
        events = list(stream)
        assert len(events) == 25
        # Identity, not just equality: the batched memos key on the
        # interned signature of these exact objects.
        assert events[13].query is queries[3]

    def test_from_workload_carries_client_ids(self):
        queries = mixed_queries(10)
        workload = Workload(
            queries=queries,
            source=["x"] * 10,
            description="tagged",
            client_ids=[i % 2 for i in range(10)],
        )
        stream = ReplayStream.from_workload(workload, events=14)
        events = list(stream)
        assert [e.client_id for e in events[:4]] == [0, 1, 0, 1]
        assert events[12].client_id == 0  # cycled with the queries

    def test_chunks_cover_the_stream_in_order(self):
        stream = make_stream(events=50)
        chunks = list(stream.chunks(16))
        assert [len(c) for c in chunks] == [16, 16, 16, 2]
        flat = [e.index for chunk in chunks for e in chunk]
        assert flat == list(range(50))

    def test_validation(self):
        with pytest.raises(ValueError):
            ReplayStream([])
        with pytest.raises(ValueError):
            ReplayStream(mixed_queries(4), client_ids=[0])
        with pytest.raises(ValueError):
            ReplayStream(mixed_queries(4), arrival_rate=0.0)
        with pytest.raises(ValueError):
            ReplayStream(mixed_queries(4), events=0)
        with pytest.raises(ValueError):
            list(make_stream().chunks(0))


class TestDecisionParity:
    def test_batched_matches_serial_exactly(self):
        stream = make_stream(events=300)
        serial = replay_serial(
            build_replay_tuner(build_small_catalog(), make_config()), stream
        )
        batched = replay_serial(
            build_replay_tuner(
                build_small_catalog(), make_config(), batched=True
            ),
            stream,
            batch_size=32,
        )
        # The throughput numbers are only comparable because the
        # decisions are bit-identical -- same cost-model total, same
        # what-if ledger, nothing skipped.
        assert batched.total_cost == serial.total_cost
        assert batched.whatif_calls == serial.whatif_calls
        assert batched.failed == serial.failed == 0
        assert batched.events == serial.events == 300
        assert batched.mode == "batched"
        assert serial.mode == "serial"
        # The batched hot path actually exercised its memo.
        assert batched.detail["memo_hits"] > 0
        assert batched.detail["memo_hits"] + batched.detail["memo_misses"] > 0

    def test_latency_summary_is_populated(self):
        report = replay_serial(
            build_replay_tuner(build_small_catalog(), make_config()),
            make_stream(events=100),
        )
        assert report.latency["count"] == 100
        assert report.latency["p50"] is not None
        assert report.latency["p50"] <= report.latency["p95"]
        assert report.qps > 0
        assert report.wall_seconds > 0

    def test_fleet_serial_replay(self):
        fleet = FleetCoordinator(
            build_small_catalog,
            n_replicas=2,
            config=make_config(),
            fleet_epoch_length=20,
        )
        report = replay_fleet(fleet, make_stream(events=100))
        assert report.mode == "fleet-serial"
        assert report.events == 100
        assert report.detail["replicas"] == 2
        assert report.total_cost > 0
        assert report.failed == 0

    def test_workers_replay_matches_fleet_serial_decisions(self):
        stream = make_stream(events=100)
        serial_fleet = FleetCoordinator(
            build_small_catalog,
            n_replicas=2,
            config=make_config(),
            fleet_epoch_length=20,
        )
        serial_report = replay_fleet(serial_fleet, stream)
        with FleetCoordinator(
            build_small_catalog,
            config=make_config(),
            fleet_epoch_length=20,
            workers=2,
        ) as fleet:
            worker_report = replay_fleet(fleet, stream)
            assert worker_report.mode == "workers"
            assert worker_report.detail["workers"] == 2
            assert worker_report.events == 100
            # Same routing, same per-replica decisions: the cost-model
            # anchors agree exactly with the single-process fleet.
            assert worker_report.total_cost == serial_report.total_cost
            assert worker_report.whatif_calls == serial_report.whatif_calls
            assert worker_report.latency["count"] == 100


class TestReportFile:
    def test_layout_and_speedups(self, tmp_path):
        stream = make_stream(events=60)
        serial = replay_serial(
            build_replay_tuner(build_small_catalog(), make_config()), stream
        )
        batched = replay_serial(
            build_replay_tuner(
                build_small_catalog(), make_config(), batched=True
            ),
            stream,
            batch_size=16,
        )
        path = write_throughput_report(
            tmp_path / "BENCH_throughput.json",
            [serial, batched],
            meta={"events": 60, "cpu_cores": 1},
        )
        report = json.loads(path.read_text())
        assert report["benchmark"] == "replay-throughput"
        assert report["meta"]["cpu_cores"] == 1
        assert set(report["modes"]) == {"serial", "batched"}
        assert report["speedups_vs_serial"]["serial"] == 1.0
        expected = round(batched.qps / serial.qps, 3)
        assert report["speedups_vs_serial"]["batched"] == expected
        assert report["modes"]["batched"]["latency"]["p50"] is not None

    def test_gate_script_accepts_report(self, tmp_path):
        """The committed CI gate parses what the driver writes."""
        import subprocess
        import sys

        stream = make_stream(events=60)
        serial = replay_serial(
            build_replay_tuner(build_small_catalog(), make_config()), stream
        )
        path = write_throughput_report(
            tmp_path / "BENCH_throughput.json",
            [serial],
            meta={"cpu_cores": 1},
        )
        proc = subprocess.run(
            [sys.executable, "tools/check_throughput.py", str(path)],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stderr
        assert "OK" in proc.stdout
