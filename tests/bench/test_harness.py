"""Tests for the simulation harness and figure drivers."""

import pytest

from repro.bench.harness import bar_series, run_colt, run_offline
from repro.bench.figures import table1_dataset
from repro.core.config import ColtConfig
from repro.workload.datagen import build_catalog
from repro.workload.experiments import stable_distribution
from repro.workload.phases import stable_workload


class TestBarSeries:
    def test_even_split(self):
        assert bar_series([1.0] * 100, width=50) == [50.0, 50.0]

    def test_ragged_tail(self):
        assert bar_series([1.0] * 120, width=50) == [50.0, 50.0, 20.0]

    def test_empty(self):
        assert bar_series([], width=50) == []


class TestRuns:
    @pytest.fixture(scope="class")
    def setup(self):
        catalog = build_catalog()
        workload = stable_workload(stable_distribution(), 100, catalog, seed=13)
        return workload

    def test_colt_run_structure(self, setup):
        workload = setup
        run = run_colt(
            build_catalog(), workload.queries, ColtConfig(storage_budget_pages=9000)
        )
        assert len(run.total_costs) == 100
        assert len(run.whatif_per_epoch) == 10
        assert run.total_cost == pytest.approx(sum(run.total_costs))
        assert all(t >= e for t, e in zip(run.total_costs, run.execution_costs))
        assert run.profiled_index_count >= 1

    def test_offline_run_structure(self, setup):
        workload = setup
        run = run_offline(build_catalog(), workload.queries, 9000.0)
        assert len(run.per_query_costs) == 100
        assert run.result.total_cost == pytest.approx(run.total_cost)

    def test_offline_can_tune_on_different_workload(self, setup):
        workload = setup
        half = workload.queries[:50]
        run = run_offline(
            build_catalog(), workload.queries, 9000.0, tuning_workload=half
        )
        assert len(run.per_query_costs) == 100


class TestTable1Driver:
    def test_values_match_paper(self):
        result = table1_dataset()
        s = result.summary
        assert s.num_tables == 32
        assert s.total_tuples == 6_928_120
        assert s.max_table_tuples == 1_200_000
        assert s.min_table_tuples == 5
        assert s.indexable_attributes == 244

    def test_rendering(self):
        text = table1_dataset().to_text()
        assert "6,928,120" in text
        assert "244" in text
