"""Fast smoke tests for the figure drivers.

The full experiments live in ``benchmarks/``; these scaled-down runs
protect the drivers themselves (parameter plumbing, series extraction,
renderers) inside the regular test suite.
"""

import pytest

from repro.bench.figures import (
    figure3_stable,
    figure4_shifting,
    figure5_overhead,
    figure6_noise,
)


class TestFigure3Driver:
    @pytest.fixture(scope="class")
    def result(self):
        return figure3_stable(length=120, seed=1)

    def test_bar_structure(self, result):
        assert len(result.colt_bars) == len(result.offline_bars) > 0
        assert all(b > 0 for b in result.offline_bars)

    def test_reduction_percent_ranges(self, result):
        full = result.reduction_percent()
        assert -200.0 < full < 100.0
        assert result.reduction_percent(50) != 0.0

    def test_to_text(self, result):
        text = result.to_text()
        assert "COLT" in text and "OFFLINE" in text and "ratio" in text


class TestFigure4Driver:
    def test_custom_phase_dimensions(self):
        result = figure4_shifting(phase_length=40, transition=10)
        # 4 x 40 + 3 x 10 = 190 queries → 4 bars of 50.
        assert len(result.colt_bars) == 4
        assert len(result.colt.total_costs) == 190


class TestFigure5Driver:
    def test_overhead_series(self):
        result = figure5_overhead(phase_length=40, transition=10)
        assert len(result.whatif_per_epoch) == 19  # 190 queries / w=10
        assert all(c >= 0 for c in result.whatif_per_epoch)
        assert 0.0 <= result.profiled_fraction <= 1.0
        assert result.phase_boundaries_epochs
        assert "epoch" in result.to_text()

    def test_mean_calls_helper(self):
        result = figure5_overhead(phase_length=30, transition=10)
        assert result.mean_calls([]) == 0.0
        assert result.mean_calls(range(1000)) >= 0.0


class TestFigure6Driver:
    def test_single_burst_point(self):
        result = figure6_noise(burst_lengths=(30,), warmup=50)
        assert len(result.points) == 1
        point = result.points[0]
        assert point.burst_length == 30
        assert point.ratio == pytest.approx(
            point.colt_cost / point.offline_cost
        )
        assert "burst" in result.to_text()
