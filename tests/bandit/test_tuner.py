"""Tests for the C³-UCB bandit tuner's epoch loop and safety rails."""

import random

import pytest

from repro.bandit import BanditConfig, BanditTuner
from repro.bandit.tuner import _key
from repro.engine.datatypes import DataType
from repro.engine.index import IndexDef
from repro.obs.registry import MetricsRegistry
from repro.resilience.breaker import CircuitBreaker
from repro.sql.ast import (
    ColumnExpr,
    CompareOp,
    ComparisonPredicate,
    Query,
    SelectItem,
)


def _eq_query(value, table="events", column="user_id"):
    return Query(
        tables=[table],
        select=[SelectItem(expr=ColumnExpr("amount", "events"))],
        filters=[
            ComparisonPredicate(ColumnExpr(column, table), CompareOp.EQ, value)
        ],
    )


def _make_tuner(catalog, **overrides):
    overrides.setdefault("epoch_length", 5)
    overrides.setdefault("storage_budget_pages", 5000.0)
    return BanditTuner(catalog, BanditConfig(**overrides))


def _metric_total(tuner, name):
    for family in tuner.metrics_snapshot()["metrics"]:
        if family["name"] == name:
            return sum(sample["value"] for sample in family["samples"])
    return 0.0


class TestEpochLoop:
    def test_epoch_boundaries_carry_reorganizations(self, small_catalog):
        tuner = _make_tuner(small_catalog)
        outcomes = tuner.run([_eq_query(i + 1) for i in range(12)])
        assert len(outcomes) == 12
        for i, outcome in enumerate(outcomes):
            if i in (4, 9):
                assert outcome.epoch_ended
                assert outcome.reorganization is not None
            else:
                assert not outcome.epoch_ended
                assert outcome.reorganization is None
        assert tuner.epochs_closed == 2

    def test_forced_exploration_materializes_arms(self, small_catalog):
        tuner = _make_tuner(small_catalog)
        rng = random.Random(0)
        tuner.run([_eq_query(rng.randint(1, 10_000)) for _ in range(30)])
        # The first forced_exploration_epochs rounds select optimistically
        # (no build-cost hysteresis), so the hot candidate gets built.
        assert tuner.materialized_set
        assert _metric_total(tuner, "bandit_forced_exploration_epochs_total") >= 1
        assert _metric_total(tuner, "bandit_reward_samples_total") >= 1

    def test_outcome_ledger_is_cost_consistent(self, small_catalog):
        tuner = _make_tuner(small_catalog)
        for outcome in tuner.run([_eq_query(i + 1) for i in range(10)]):
            assert outcome.total_cost >= outcome.execution_cost
            assert outcome.total_cost == pytest.approx(
                outcome.execution_cost
                + outcome.whatif_overhead
                + outcome.verify_overhead
                + outcome.build_cost
            )

    def test_queries_metric_counts_queries(self, small_catalog):
        tuner = _make_tuner(small_catalog)
        tuner.run([_eq_query(i + 1) for i in range(7)])
        assert _metric_total(tuner, "bandit_queries_total") == 7
        assert tuner.queries_seen == 7


class TestRunErrors:
    def test_invalid_on_error_rejected(self, small_catalog):
        tuner = _make_tuner(small_catalog)
        with pytest.raises(ValueError, match="on_error"):
            tuner.run([], on_error="ignore")

    def test_raise_mode_propagates(self, small_catalog):
        tuner = _make_tuner(small_catalog)
        with pytest.raises(Exception):
            tuner.run([_eq_query(1, table="no_such_table")])

    def test_skip_mode_records_failure_and_continues(self, small_catalog):
        tuner = _make_tuner(small_catalog)
        queries = [_eq_query(1), _eq_query(2, table="no_such_table"), _eq_query(3)]
        outcomes = tuner.run(queries, on_error="skip")
        assert len(outcomes) == 3
        assert not outcomes[0].failed
        assert outcomes[1].failed
        assert outcomes[1].error is not None
        assert outcomes[1].total_cost == 0.0
        assert not outcomes[2].failed
        # The epoch clock keeps ticking through the failure.
        assert tuner.queries_seen == 3
        assert _metric_total(tuner, "bandit_query_failures_total") == 1


class TestInserts:
    def test_requires_rows_or_count(self, small_catalog):
        tuner = _make_tuner(small_catalog)
        with pytest.raises(ValueError):
            tuner.process_insert("events")

    def test_count_mode_grows_table(self, small_catalog):
        tuner = _make_tuner(small_catalog)
        before = small_catalog.table("events").row_count
        outcome = tuner.process_insert("events", count=500)
        assert outcome.count == 500
        assert small_catalog.table("events").row_count == before + 500
        assert outcome.total_cost >= outcome.heap_cost > 0.0


class TestSafetyFallback:
    def _index(self):
        return IndexDef("events", "user_id", DataType.INT)

    def test_regression_bans_the_added_arms(self, small_catalog):
        tuner = _make_tuner(small_catalog)
        ix = self._index()
        tuner.materialized.add(ix)
        tuner._safety_watch = ([ix], 10.0)
        # safety_factor defaults to 1.5: 100 > 1.5 * 10 trips the rail.
        tuner._tick_safety(100.0)
        assert _key(ix) in tuner._safety_bans
        _, remaining = tuner._safety_bans[_key(ix)]
        assert remaining == tuner.config.safety_cooldown_epochs
        assert tuner._safety_watch is None
        assert _metric_total(tuner, "bandit_safety_fallbacks_total") == 1

    def test_no_trip_within_safety_factor(self, small_catalog):
        tuner = _make_tuner(small_catalog)
        ix = self._index()
        tuner.materialized.add(ix)
        tuner._safety_watch = ([ix], 10.0)
        tuner._tick_safety(14.0)  # below 1.5x baseline
        assert not tuner._safety_bans
        assert _metric_total(tuner, "bandit_safety_fallbacks_total") == 0

    def test_dropped_arm_cannot_trip(self, small_catalog):
        # The watched index was already dropped again: nothing to revert.
        tuner = _make_tuner(small_catalog)
        tuner._safety_watch = ([self._index()], 10.0)
        tuner._tick_safety(100.0)
        assert not tuner._safety_bans

    def test_bans_expire_after_cooldown(self, small_catalog):
        tuner = _make_tuner(small_catalog, safety_cooldown_epochs=2)
        ix = self._index()
        tuner._safety_bans[_key(ix)] = (ix, 2)
        tuner._tick_safety(0.0)
        assert tuner._safety_bans[_key(ix)][1] == 1
        tuner._tick_safety(0.0)
        assert _key(ix) not in tuner._safety_bans


class TestWiring:
    def test_custom_breaker_guards_probes(self, small_catalog):
        breaker = CircuitBreaker(failure_threshold=1)
        tuner = _make_tuner(small_catalog)
        assert tuner.profiler.breaker is not breaker
        tuner = BanditTuner(
            small_catalog, BanditConfig(epoch_length=5), breaker=breaker
        )
        assert tuner.profiler.breaker is breaker

    def test_registry_receives_bandit_families(self, small_catalog):
        registry = MetricsRegistry()
        tuner = BanditTuner(
            small_catalog, BanditConfig(epoch_length=5), registry=registry
        )
        tuner.run([_eq_query(i + 1) for i in range(6)])
        names = {f["name"] for f in registry.snapshot()}
        assert "bandit_queries_total" in names
        assert "bandit_epochs_total" in names

    def test_colt_surface_attributes_present(self, small_catalog):
        # The fleet, guardrails and CLI reach these attributes on either
        # engine; their absence would break engine swapping.
        tuner = _make_tuner(small_catalog)
        for attr in (
            "run",
            "process_query",
            "process_insert",
            "materialized_set",
            "hot_set",
            "metrics_snapshot",
            "optimizer",
            "whatif",
            "scheduler",
            "profiler",
            "dashboard",
            "config",
        ):
            assert hasattr(tuner, attr), attr
        assert hasattr(tuner.profiler, "breaker")
        assert hasattr(tuner.profiler, "candidates")
        assert hasattr(tuner.profiler, "gain_cache")
