"""Tests for bandit snapshot/restore and engine-dispatch persistence."""

import json
import random

import pytest

from repro.bandit import BanditConfig, BanditTuner
from repro.bandit.linucb import RidgeModel
from repro.bandit.persist import (
    ENGINE,
    restore_bandit_tuner,
    snapshot_bandit_tuner,
)
from repro.core import ColtConfig, ColtTuner
from repro.persist import (
    SnapshotError,
    load_json,
    restore_any,
    save_json,
    snapshot_any,
    snapshot_tuner,
)
from repro.sql.ast import (
    ColumnExpr,
    CompareOp,
    ComparisonPredicate,
    Query,
    SelectItem,
)

from tests.fleet.workloads import build_small_catalog


def _eq_query(value):
    return Query(
        tables=["events"],
        select=[SelectItem(expr=ColumnExpr("amount", "events"))],
        filters=[
            ComparisonPredicate(
                ColumnExpr("user_id", "events"), CompareOp.EQ, value
            )
        ],
    )


def _trained_bandit(catalog, queries=40):
    tuner = BanditTuner(
        catalog,
        BanditConfig(epoch_length=5, storage_budget_pages=5000.0),
    )
    rng = random.Random(0)
    for _ in range(queries):
        tuner.process_query(_eq_query(rng.randint(1, 10_000)))
    return tuner


class TestRoundtrip:
    def test_snapshot_is_json_serializable(self, small_catalog, tmp_path):
        tuner = _trained_bandit(small_catalog)
        snap = snapshot_bandit_tuner(tuner)
        assert snap["engine"] == ENGINE
        assert json.loads(json.dumps(snap)) == snap
        save_json(tmp_path / "b.json", snap)
        assert load_json(tmp_path / "b.json") == snap

    def test_learned_state_restored(self, small_catalog):
        tuner = _trained_bandit(small_catalog)
        snap = snapshot_bandit_tuner(tuner)
        restored = restore_bandit_tuner(build_small_catalog(), snap)
        assert [str(ix) for ix in restored.materialized_set] == [
            str(ix) for ix in tuner.materialized_set
        ]
        assert [str(ix) for ix in restored.hot_set] == [
            str(ix) for ix in tuner.hot_set
        ]
        assert restored.model.v == tuner.model.v
        assert restored.model.b == tuner.model.b
        assert restored.epochs_closed == tuner.epochs_closed
        assert restored.config == tuner.config
        assert restored.features.to_snapshot() == tuner.features.to_snapshot()

    def test_restored_tuner_keeps_tuning(self, small_catalog):
        tuner = _trained_bandit(small_catalog)
        snap = snapshot_bandit_tuner(tuner)
        restored = restore_bandit_tuner(build_small_catalog(), snap)
        rng = random.Random(1)
        outcomes = restored.run(
            [_eq_query(rng.randint(1, 10_000)) for _ in range(10)]
        )
        assert len(outcomes) == 10
        assert restored.epochs_closed == tuner.epochs_closed + 2

    def test_safety_state_round_trips(self, small_catalog):
        from repro.bandit.tuner import _key
        from repro.engine.datatypes import DataType
        from repro.engine.index import IndexDef

        tuner = _trained_bandit(small_catalog)
        ix = IndexDef("events", "user_id", DataType.INT)
        tuner._safety_bans[_key(ix)] = (ix, 3)
        tuner._safety_watch = ([ix], 42.0)
        snap = snapshot_bandit_tuner(tuner)
        restored = restore_bandit_tuner(build_small_catalog(), snap)
        assert _key(ix) in restored._safety_bans
        assert restored._safety_bans[_key(ix)][1] == 3
        watched, baseline = restored._safety_watch
        assert baseline == 42.0
        assert [str(w) for w in watched] == [str(ix)]


class TestEngineDispatch:
    def test_snapshot_any_tags_bandit(self, small_catalog):
        snap = snapshot_any(_trained_bandit(small_catalog))
        assert snap["engine"] == "bandit"

    def test_snapshot_any_matches_colt_snapshot(self, small_catalog):
        tuner = ColtTuner(small_catalog, ColtConfig())
        assert snapshot_any(tuner) == snapshot_tuner(tuner)

    def test_restore_any_returns_bandit_tuner(self, small_catalog):
        snap = snapshot_any(_trained_bandit(small_catalog))
        restored = restore_any(build_small_catalog(), snap)
        assert isinstance(restored, BanditTuner)

    def test_restore_any_defaults_to_colt(self, small_catalog):
        # Pre-bandit snapshots carry no engine key: they are COLT's.
        tuner = ColtTuner(small_catalog, ColtConfig())
        snap = snapshot_tuner(tuner)
        assert "engine" not in snap or snap["engine"] == "colt"
        restored = restore_any(build_small_catalog(), snap)
        assert isinstance(restored, ColtTuner)

    def test_restore_any_rejects_unknown_engine(self, small_catalog):
        snap = snapshot_any(_trained_bandit(small_catalog))
        snap["engine"] = "quantum"
        with pytest.raises(SnapshotError, match="engine"):
            restore_any(build_small_catalog(), snap)

    def test_restore_any_asserts_requested_engine(self, small_catalog):
        bandit_snap = snapshot_any(_trained_bandit(small_catalog))
        colt_snap = snapshot_any(ColtTuner(small_catalog, ColtConfig()))
        with pytest.raises(SnapshotError, match="engine mismatch"):
            restore_any(build_small_catalog(), bandit_snap, engine="colt")
        with pytest.raises(SnapshotError, match="engine mismatch"):
            restore_any(build_small_catalog(), colt_snap, engine="bandit")
        # Matching assertions restore normally.
        assert isinstance(
            restore_any(build_small_catalog(), bandit_snap, engine="bandit"),
            BanditTuner,
        )
        assert isinstance(
            restore_any(build_small_catalog(), colt_snap, engine="colt"),
            ColtTuner,
        )

    def test_colt_restore_rejects_bandit_snapshot(self, small_catalog):
        from repro.persist import restore_tuner

        snap = snapshot_any(_trained_bandit(small_catalog))
        with pytest.raises(SnapshotError, match="engine mismatch"):
            restore_tuner(build_small_catalog(), snap)


class TestValidation:
    def test_colt_snapshot_rejected(self, small_catalog):
        snap = snapshot_tuner(ColtTuner(small_catalog, ColtConfig()))
        with pytest.raises(SnapshotError, match="engine"):
            restore_bandit_tuner(build_small_catalog(), snap)

    def test_version_skew_rejected(self, small_catalog):
        snap = snapshot_bandit_tuner(_trained_bandit(small_catalog))
        snap["version"] = 999
        with pytest.raises(SnapshotError, match="version"):
            restore_bandit_tuner(build_small_catalog(), snap)

    def test_non_dict_rejected(self):
        with pytest.raises(SnapshotError):
            restore_bandit_tuner(build_small_catalog(), ["not", "a", "dict"])

    def test_model_dimension_mismatch_rejected(self, small_catalog):
        snap = snapshot_bandit_tuner(_trained_bandit(small_catalog))
        snap["model"] = RidgeModel(3).to_snapshot()
        with pytest.raises(SnapshotError, match="dimension"):
            restore_bandit_tuner(build_small_catalog(), snap)

    def test_unknown_table_rejected(self, small_catalog):
        snap = snapshot_bandit_tuner(_trained_bandit(small_catalog))
        snap["materialized"] = [["no_such_table", ["x"]]]
        with pytest.raises(SnapshotError):
            restore_bandit_tuner(build_small_catalog(), snap)

    def test_malformed_structure_is_snapshot_error(self, small_catalog):
        snap = snapshot_bandit_tuner(_trained_bandit(small_catalog))
        del snap["model"]
        with pytest.raises(SnapshotError, match="malformed"):
            restore_bandit_tuner(build_small_catalog(), snap)
