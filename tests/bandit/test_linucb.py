"""Tests for the pure-Python ridge model behind the C³-UCB bandit."""

import math

import pytest

from repro.bandit.linucb import (
    RidgeModel,
    dot,
    mat_identity,
    mat_inverse,
    mat_vec,
)


class TestMatrixHelpers:
    def test_identity(self):
        assert mat_identity(2) == [[1.0, 0.0], [0.0, 1.0]]
        assert mat_identity(2, scale=3.0)[0][0] == 3.0

    def test_mat_vec_and_dot(self):
        assert mat_vec([[1.0, 2.0], [3.0, 4.0]], [1.0, 1.0]) == [3.0, 7.0]
        assert dot([1.0, 2.0], [3.0, 4.0]) == 11.0

    def test_inverse_known_2x2(self):
        # [[4,7],[2,6]]^-1 = 1/10 [[6,-7],[-2,4]]
        inv = mat_inverse([[4.0, 7.0], [2.0, 6.0]])
        expected = [[0.6, -0.7], [-0.2, 0.4]]
        for row, want in zip(inv, expected):
            for value, target in zip(row, want):
                assert value == pytest.approx(target)

    def test_inverse_times_original_is_identity(self):
        matrix = [[2.0, 1.0, 0.0], [1.0, 3.0, 1.0], [0.0, 1.0, 2.0]]
        inv = mat_inverse(matrix)
        for i in range(3):
            col = mat_vec(inv, [matrix[r][i] for r in range(3)])
            for j in range(3):
                assert col[j] == pytest.approx(1.0 if i == j else 0.0)

    def test_singular_matrix_raises(self):
        with pytest.raises(ValueError, match="singular"):
            mat_inverse([[1.0, 2.0], [2.0, 4.0]])

    def test_pivoting_handles_zero_leading_entry(self):
        # Without partial pivoting the first pivot would be 0.
        inv = mat_inverse([[0.0, 1.0], [1.0, 0.0]])
        assert inv == [[0.0, 1.0], [1.0, 0.0]]


class TestRidgeModel:
    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            RidgeModel(0)
        with pytest.raises(ValueError):
            RidgeModel(2, lambda_reg=0.0)
        with pytest.raises(ValueError):
            RidgeModel(2, forgetting=0.0)
        with pytest.raises(ValueError):
            RidgeModel(2, forgetting=1.5)

    def test_update_dimension_check(self):
        model = RidgeModel(2)
        with pytest.raises(ValueError, match="dim"):
            model.update([1.0, 0.0, 0.0], 1.0)

    def test_hand_computed_single_observation(self):
        # dim=2, lambda=1, one observation x=[1,0] with reward 2:
        # V = [[2,0],[0,1]], b = [2,0], theta = [1,0].
        model = RidgeModel(2, lambda_reg=1.0)
        model.update([1.0, 0.0], 2.0)
        assert model.v == [[2.0, 0.0], [0.0, 1.0]]
        assert model.b == [2.0, 0.0]
        assert model.theta() == pytest.approx([1.0, 0.0])
        assert model.mean([1.0, 0.0]) == pytest.approx(1.0)
        # width([1,0]) = sqrt([1,0] V^-1 [1,0]^T) = sqrt(1/2)
        assert model.width([1.0, 0.0]) == pytest.approx(math.sqrt(0.5))
        assert model.ucb([1.0, 0.0], alpha=2.0) == pytest.approx(
            1.0 + 2.0 * math.sqrt(0.5)
        )

    def test_orthogonal_observations_decouple(self):
        model = RidgeModel(2, lambda_reg=1.0)
        model.update([1.0, 0.0], 2.0)
        model.update([0.0, 1.0], 3.0)
        assert model.theta() == pytest.approx([1.0, 1.5])
        assert model.updates == 2

    def test_width_shrinks_with_evidence(self):
        model = RidgeModel(2)
        x = [1.0, 0.5]
        before = model.width(x)
        for _ in range(10):
            model.update(x, 1.0)
        assert model.width(x) < before

    def test_decay_blends_toward_prior(self):
        # gamma=0.5: V <- 0.5 V + 0.5 lambda I, b <- 0.5 b.
        model = RidgeModel(2, lambda_reg=1.0, forgetting=0.5)
        model.update([1.0, 0.0], 2.0)
        model.decay()
        assert model.v == [[1.5, 0.0], [0.0, 1.0]]
        assert model.b == [1.0, 0.0]

    def test_decay_reinflates_confidence(self):
        model = RidgeModel(2, lambda_reg=1.0, forgetting=0.5)
        x = [1.0, 0.0]
        for _ in range(5):
            model.update(x, 1.0)
        narrowed = model.width(x)
        for _ in range(20):
            model.decay()
        # Evidence fades, width re-expands toward the cold-start value
        # (never past it: V stays anchored at lambda*I).
        assert model.width(x) > narrowed
        assert model.width(x) <= RidgeModel(2).width(x) + 1e-9

    def test_decay_noop_without_forgetting(self):
        model = RidgeModel(2, forgetting=1.0)
        model.update([1.0, 1.0], 1.0)
        v_before = [list(row) for row in model.v]
        model.decay()
        assert model.v == v_before

    def test_updates_counter_survives_decay(self):
        model = RidgeModel(2, forgetting=0.5)
        model.update([1.0, 0.0], 1.0)
        model.decay()
        assert model.updates == 1


class TestSnapshot:
    def test_round_trip(self):
        model = RidgeModel(3, lambda_reg=2.0, forgetting=0.9)
        model.update([1.0, 0.0, 2.0], 1.5)
        model.update([0.0, 1.0, 0.0], -0.5)
        restored = RidgeModel.from_snapshot(model.to_snapshot())
        assert restored.dim == 3
        assert restored.lambda_reg == 2.0
        assert restored.forgetting == 0.9
        assert restored.v == model.v
        assert restored.b == model.b
        assert restored.updates == 2
        assert restored.theta() == pytest.approx(model.theta())

    def test_snapshot_is_json_shaped(self):
        import json

        model = RidgeModel(2)
        model.update([1.0, 1.0], 1.0)
        assert json.loads(json.dumps(model.to_snapshot())) == model.to_snapshot()

    def test_wrong_v_shape_rejected(self):
        snap = RidgeModel(2).to_snapshot()
        snap["v"] = [[1.0]]
        with pytest.raises(ValueError, match="shape"):
            RidgeModel.from_snapshot(snap)

    def test_wrong_b_shape_rejected(self):
        snap = RidgeModel(2).to_snapshot()
        snap["b"] = [0.0]
        with pytest.raises(ValueError, match="shape"):
            RidgeModel.from_snapshot(snap)
