"""Unit tests for index descriptors."""

from repro.engine.cost_params import CostParams
from repro.engine.datatypes import DataType
from repro.engine.index import IndexDef


class TestIndexDef:
    def test_identity_is_table_column(self):
        a = IndexDef("t", "c", DataType.INT)
        b = IndexDef("t", "c", DataType.INT)
        assert a == b
        assert hash(a) == hash(b)
        assert a != IndexDef("t", "d", DataType.INT)

    def test_name(self):
        assert IndexDef("lineitem_1", "l_shipdate", DataType.DATE).name == (
            "ix_lineitem_1_l_shipdate"
        )

    def test_usable_in_sets(self):
        s = {IndexDef("t", "c", DataType.INT)}
        assert IndexDef("t", "c", DataType.INT) in s


class TestSizing:
    def test_size_grows_with_rows(self):
        params = CostParams()
        ix = IndexDef("t", "c", DataType.INT)
        assert ix.size_pages(1_000_000, params) > ix.size_pages(1_000, params)

    def test_wider_keys_bigger_index(self):
        params = CostParams()
        narrow = IndexDef("t", "c", DataType.INT).size_pages(100_000, params)
        wide = IndexDef("t", "c", DataType.TEXT).size_pages(100_000, params)
        assert wide > narrow

    def test_materialization_cost_components(self):
        params = CostParams()
        ix = IndexDef("t", "c", DataType.INT)
        cost = ix.materialization_cost(100_000, 1000.0, params)
        # Must at least cover the heap scan.
        assert cost > 1000.0 * params.seq_page_cost

    def test_materialization_cost_monotone_in_rows(self):
        params = CostParams()
        ix = IndexDef("t", "c", DataType.INT)
        assert ix.materialization_cost(200_000, 2000.0, params) > (
            ix.materialization_cost(100_000, 1000.0, params)
        )
