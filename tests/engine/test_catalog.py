"""Unit tests for the system catalog."""

import pytest

from repro.engine.catalog import Catalog, ColumnDef, ColumnRef, TableDef
from repro.engine.datatypes import DataType
from repro.engine.stats import ColumnStats


def _table(name="t", rows=1000.0):
    return TableDef(
        name,
        [ColumnDef("a", DataType.INT), ColumnDef("b", DataType.TEXT, indexable=False)],
        row_count=rows,
    )


class TestTables:
    def test_add_and_lookup(self):
        catalog = Catalog()
        catalog.add_table(_table())
        assert catalog.has_table("t")
        assert catalog.table("t").row_count == 1000.0

    def test_duplicate_table_rejected(self):
        catalog = Catalog()
        catalog.add_table(_table())
        with pytest.raises(ValueError):
            catalog.add_table(_table())

    def test_duplicate_column_rejected(self):
        with pytest.raises(ValueError):
            TableDef("x", [ColumnDef("a", DataType.INT), ColumnDef("a", DataType.INT)])

    def test_unknown_table(self):
        with pytest.raises(KeyError):
            Catalog().table("missing")

    def test_row_width(self):
        table = _table()
        assert table.row_width == DataType.INT.width + DataType.TEXT.width

    def test_indexable_columns_respects_flag(self):
        catalog = Catalog()
        catalog.add_table(_table())
        refs = catalog.indexable_columns()
        assert ColumnRef("t", "a") in refs
        assert ColumnRef("t", "b") not in refs


class TestStats:
    def test_declared_stats_roundtrip(self):
        catalog = Catalog()
        catalog.add_table(_table())
        stats = ColumnStats(n_distinct=10, min_value=0, max_value=9)
        catalog.set_stats("t", "a", stats)
        assert catalog.stats("t", "a") is stats

    def test_default_stats_fallback(self):
        catalog = Catalog()
        catalog.add_table(_table())
        stats = catalog.stats("t", "a")
        assert stats.n_distinct > 0

    def test_set_stats_validates_column(self):
        catalog = Catalog()
        catalog.add_table(_table())
        with pytest.raises(KeyError):
            catalog.set_stats("t", "zzz", ColumnStats(1, 0, 0))

    def test_analyze_table(self):
        catalog = Catalog()
        catalog.add_table(_table())
        catalog.analyze_table("t", {"a": [1, 1, 2, 3]})
        assert catalog.stats("t", "a").n_distinct == 3


class TestIndexes:
    def test_index_for(self):
        catalog = Catalog()
        catalog.add_table(_table())
        index = catalog.index_for("t", "a")
        assert index.name == "ix_t_a"
        assert index.dtype is DataType.INT

    def test_materialize_and_drop(self):
        catalog = Catalog()
        catalog.add_table(_table())
        index = catalog.index_for("t", "a")
        assert not catalog.is_materialized(index)
        catalog.materialize_index(index)
        assert catalog.is_materialized(index)
        assert catalog.materialized_indexes() == [index]
        catalog.drop_index(index)
        assert not catalog.is_materialized(index)
        catalog.drop_index(index)  # idempotent

    def test_materialized_by_table(self):
        catalog = Catalog()
        catalog.add_table(_table("t1"))
        catalog.add_table(_table("t2"))
        ix1 = catalog.index_for("t1", "a")
        ix2 = catalog.index_for("t2", "a")
        catalog.materialize_index(ix1)
        catalog.materialize_index(ix2)
        assert catalog.materialized_indexes("t1") == [ix1]

    def test_sizes_scale_with_rows(self):
        catalog = Catalog()
        catalog.add_table(_table("small", rows=1000))
        catalog.add_table(_table("big", rows=1_000_000))
        assert catalog.index_size_pages(
            catalog.index_for("big", "a")
        ) > catalog.index_size_pages(catalog.index_for("small", "a"))

    def test_build_cost_positive_and_monotone(self):
        catalog = Catalog()
        catalog.add_table(_table("small", rows=1000))
        catalog.add_table(_table("big", rows=1_000_000))
        small = catalog.index_build_cost(catalog.index_for("small", "a"))
        big = catalog.index_build_cost(catalog.index_for("big", "a"))
        assert 0 < small < big

    def test_materialized_size_total(self):
        catalog = Catalog()
        catalog.add_table(_table())
        assert catalog.materialized_size_pages() == 0.0
        catalog.materialize_index(catalog.index_for("t", "a"))
        assert catalog.materialized_size_pages() > 0.0
