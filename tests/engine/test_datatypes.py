"""Unit tests for scalar types and coercion."""

import datetime

import pytest

from repro.engine.datatypes import (
    DataType,
    coerce,
    comparable,
    date_to_ordinal,
    ordinal_to_date,
    parse_date,
)


class TestWidths:
    def test_every_type_has_positive_width(self):
        for dtype in DataType:
            assert dtype.width > 0

    def test_numeric_flags(self):
        assert DataType.INT.is_numeric
        assert DataType.FLOAT.is_numeric
        assert DataType.DATE.is_numeric
        assert not DataType.TEXT.is_numeric


class TestDates:
    def test_epoch_is_zero(self):
        assert date_to_ordinal(datetime.date(1970, 1, 1)) == 0

    def test_roundtrip(self):
        for day in (0, 1, 365, 10_000, -400):
            assert date_to_ordinal(ordinal_to_date(day)) == day

    def test_parse_iso(self):
        assert parse_date("1970-01-02") == 1
        assert parse_date("1992-01-01") == 8035

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_date("not-a-date")


class TestCoerce:
    def test_int_accepts_int(self):
        assert coerce(42, DataType.INT) == 42

    def test_int_accepts_integral_float(self):
        assert coerce(42.0, DataType.INT) == 42

    def test_int_rejects_fractional_float(self):
        with pytest.raises(TypeError):
            coerce(42.5, DataType.INT)

    def test_int_rejects_bool(self):
        with pytest.raises(TypeError):
            coerce(True, DataType.INT)

    def test_float_widens_int(self):
        value = coerce(7, DataType.FLOAT)
        assert value == 7.0
        assert isinstance(value, float)

    def test_float_rejects_string(self):
        with pytest.raises(TypeError):
            coerce("7", DataType.FLOAT)

    def test_text_accepts_str_only(self):
        assert coerce("abc", DataType.TEXT) == "abc"
        with pytest.raises(TypeError):
            coerce(3, DataType.TEXT)

    def test_date_accepts_many_forms(self):
        d = datetime.date(1995, 6, 1)
        ordinal = date_to_ordinal(d)
        assert coerce(d, DataType.DATE) == ordinal
        assert coerce(ordinal, DataType.DATE) == ordinal
        assert coerce("1995-06-01", DataType.DATE) == ordinal

    def test_null_rejected(self):
        with pytest.raises(TypeError):
            coerce(None, DataType.INT)


class TestComparable:
    def test_same_type(self):
        for dtype in DataType:
            assert comparable(dtype, dtype)

    def test_int_float_cross(self):
        assert comparable(DataType.INT, DataType.FLOAT)
        assert comparable(DataType.FLOAT, DataType.INT)

    def test_text_not_comparable_to_numbers(self):
        assert not comparable(DataType.TEXT, DataType.INT)
        assert not comparable(DataType.DATE, DataType.TEXT)

    def test_date_not_comparable_to_int(self):
        # Dates are stored as ints but are semantically distinct.
        assert not comparable(DataType.DATE, DataType.INT)
