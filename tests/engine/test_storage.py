"""Unit tests for heap storage and the physical store."""

import pytest

from repro.engine.catalog import Catalog, ColumnDef, TableDef
from repro.engine.datatypes import DataType
from repro.engine.storage import HeapTable, PhysicalStore


def _catalog():
    catalog = Catalog()
    catalog.add_table(
        TableDef(
            "t",
            [ColumnDef("a", DataType.INT), ColumnDef("b", DataType.TEXT)],
        )
    )
    return catalog


class TestHeapTable:
    def test_insert_and_read(self):
        heap = HeapTable(_catalog().table("t"))
        rid = heap.insert((1, "x"))
        assert rid == 0
        assert heap.row(0) == (1, "x")
        assert heap.value(0, "a") == 1
        assert len(heap) == 1

    def test_wrong_arity(self):
        heap = HeapTable(_catalog().table("t"))
        with pytest.raises(ValueError):
            heap.insert((1,))

    def test_type_enforcement(self):
        heap = HeapTable(_catalog().table("t"))
        with pytest.raises(TypeError):
            heap.insert(("not-an-int", "x"))

    def test_scan_order(self):
        heap = HeapTable(_catalog().table("t"))
        heap.insert_many([(i, str(i)) for i in range(10)])
        rows = list(heap.scan())
        assert [rid for rid, _ in rows] == list(range(10))
        assert rows[3][1] == (3, "3")

    def test_column_access(self):
        heap = HeapTable(_catalog().table("t"))
        heap.insert_many([(5, "a"), (6, "b")])
        assert heap.column("a") == [5, 6]


class TestPhysicalStore:
    def test_create_heap_idempotent(self):
        store = PhysicalStore(_catalog())
        h1 = store.create_heap("t")
        h2 = store.create_heap("t")
        assert h1 is h2
        assert store.has_heap("t")

    def test_build_index_registers_catalog(self):
        store = PhysicalStore(_catalog())
        heap = store.create_heap("t")
        heap.insert_many([(3, "x"), (1, "y"), (3, "z")])
        index = store.catalog.index_for("t", "a")
        tree = store.build_index(index)
        assert store.catalog.is_materialized(index)
        assert sorted(tree.search(3)) == [0, 2]
        assert store.tree(index) is tree

    def test_drop_index_removes_both(self):
        store = PhysicalStore(_catalog())
        store.create_heap("t")
        index = store.catalog.index_for("t", "a")
        store.build_index(index)
        store.drop_index(index)
        assert store.tree(index) is None
        assert not store.catalog.is_materialized(index)

    def test_build_index_without_heap(self):
        store = PhysicalStore(_catalog())
        index = store.catalog.index_for("t", "a")
        tree = store.build_index(index)
        assert len(tree) == 0

    def test_analyze_measures_stats(self):
        store = PhysicalStore(_catalog())
        heap = store.create_heap("t")
        heap.insert_many([(i % 5, "x") for i in range(100)])
        store.analyze("t")
        assert store.catalog.table("t").row_count == 100
        assert store.catalog.stats("t", "a").n_distinct == 5

    def test_analyze_scale_to_declares_paper_scale(self):
        store = PhysicalStore(_catalog())
        heap = store.create_heap("t")
        heap.insert_many([(i, "x") for i in range(100)])
        store.analyze("t", scale_to=1_000_000)
        assert store.catalog.table("t").row_count == 1_000_000
        # Distinct count scaled up, capped at the declared rows.
        assert store.catalog.stats("t", "a").n_distinct == pytest.approx(1_000_000)
