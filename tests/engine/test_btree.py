"""Unit and property tests for the B+tree."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.btree import BPlusTree


class TestBasicOperations:
    def test_empty_tree(self):
        tree = BPlusTree()
        assert len(tree) == 0
        assert tree.search(5) == []
        assert list(tree.range_scan()) == []

    def test_insert_and_search(self):
        tree = BPlusTree(order=4)
        tree.insert(10, 0)
        tree.insert(20, 1)
        tree.insert(10, 2)
        assert tree.search(10) == [0, 2]
        assert tree.search(20) == [1]
        assert tree.search(15) == []
        assert len(tree) == 3

    def test_rejects_tiny_order(self):
        with pytest.raises(ValueError):
            BPlusTree(order=2)

    def test_many_inserts_stay_balanced(self):
        tree = BPlusTree(order=4)
        rng = random.Random(99)
        keys = [rng.randrange(10_000) for _ in range(2000)]
        for rid, key in enumerate(keys):
            tree.insert(key, rid)
        tree.check_invariants()
        assert len(tree) == 2000
        assert tree.height > 1

    def test_delete(self):
        tree = BPlusTree(order=4)
        for rid, key in enumerate([5, 5, 7, 9]):
            tree.insert(key, rid)
        assert tree.delete(5, 0)
        assert tree.search(5) == [1]
        assert not tree.delete(5, 0)  # already gone
        assert not tree.delete(100, 0)  # never existed
        assert len(tree) == 3

    def test_delete_last_rid_removes_key(self):
        tree = BPlusTree()
        tree.insert(1, 0)
        assert tree.delete(1, 0)
        assert tree.search(1) == []
        assert list(tree.keys()) == []


class TestRangeScan:
    def _build(self):
        tree = BPlusTree(order=4)
        for rid, key in enumerate(range(0, 100, 2)):  # even keys 0..98
            tree.insert(key, rid)
        return tree

    def test_inclusive_range(self):
        tree = self._build()
        keys = [k for k, _ in tree.range_scan(10, 20)]
        assert keys == [10, 12, 14, 16, 18, 20]

    def test_exclusive_bounds(self):
        tree = self._build()
        keys = [k for k, _ in tree.range_scan(10, 20, low_inclusive=False, high_inclusive=False)]
        assert keys == [12, 14, 16, 18]

    def test_unbounded_low(self):
        tree = self._build()
        keys = [k for k, _ in tree.range_scan(None, 6)]
        assert keys == [0, 2, 4, 6]

    def test_unbounded_high(self):
        tree = self._build()
        keys = [k for k, _ in tree.range_scan(94, None)]
        assert keys == [94, 96, 98]

    def test_full_scan_sorted(self):
        tree = self._build()
        keys = [k for k, _ in tree.range_scan()]
        assert keys == sorted(keys)

    def test_range_between_keys(self):
        tree = self._build()
        assert [k for k, _ in tree.range_scan(11, 11)] == []


class TestBulkLoad:
    def test_matches_incremental(self):
        rng = random.Random(5)
        pairs = [(rng.randrange(500), rid) for rid in range(1500)]
        bulk = BPlusTree.bulk_load(pairs, order=8)
        incremental = BPlusTree(order=8)
        for key, rid in pairs:
            incremental.insert(key, rid)
        bulk.check_invariants()
        assert len(bulk) == len(incremental)
        for key in range(500):
            assert sorted(bulk.search(key)) == sorted(incremental.search(key))

    def test_empty_bulk_load(self):
        tree = BPlusTree.bulk_load([])
        assert len(tree) == 0

    def test_items_grouped(self):
        tree = BPlusTree.bulk_load([(1, 10), (1, 11), (2, 20)])
        items = list(tree.items())
        assert items[0][0] == 1
        assert sorted(items[0][1]) == [10, 11]


@st.composite
def _operations(draw):
    n = draw(st.integers(1, 150))
    ops = []
    for rid in range(n):
        key = draw(st.integers(0, 50))
        ops.append((key, rid))
    return ops


class TestProperties:
    @given(ops=_operations(), order=st.sampled_from([4, 8, 64]))
    @settings(max_examples=60, deadline=None)
    def test_model_equivalence(self, ops, order):
        """The tree behaves like a sorted multimap."""
        tree = BPlusTree(order=order)
        model = {}
        for key, rid in ops:
            tree.insert(key, rid)
            model.setdefault(key, []).append(rid)
        tree.check_invariants()
        assert len(tree) == sum(len(v) for v in model.values())
        for key in range(51):
            assert tree.search(key) == model.get(key, [])
        scanned = [k for k, _ in tree.range_scan()]
        expected = sorted(k for k, rids in model.items() for _ in rids)
        assert scanned == expected

    @given(
        ops=_operations(),
        low=st.integers(0, 50),
        width=st.integers(0, 25),
    )
    @settings(max_examples=60, deadline=None)
    def test_range_scan_model(self, ops, low, width):
        tree = BPlusTree(order=4)
        model = []
        for key, rid in ops:
            tree.insert(key, rid)
            model.append((key, rid))
        high = low + width
        got = sorted(tree.range_scan(low, high))
        want = sorted((k, r) for k, r in model if low <= k <= high)
        assert got == want

    @given(ops=_operations())
    @settings(max_examples=40, deadline=None)
    def test_delete_everything(self, ops):
        tree = BPlusTree(order=4)
        for key, rid in ops:
            tree.insert(key, rid)
        for key, rid in ops:
            assert tree.delete(key, rid)
        assert len(tree) == 0
        assert list(tree.keys()) == []
