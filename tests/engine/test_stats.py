"""Unit and property tests for column statistics and histograms."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.datatypes import DataType
from repro.engine.stats import (
    ColumnStats,
    Histogram,
    _order_correlation,
    default_stats_for,
)


class TestHistogram:
    def test_empty(self):
        h = Histogram.from_values([])
        assert h.num_buckets == 0
        assert h.fraction_below(5) == 0.0

    def test_uniform_fractions(self):
        h = Histogram.from_values(list(range(1000)), num_buckets=50)
        assert abs(h.fraction_below(500) - 0.5) < 0.05
        assert abs(h.fraction_below(100) - 0.1) < 0.05

    def test_bounds(self):
        h = Histogram.from_values(list(range(100)))
        assert h.fraction_below(-1) == 0.0
        assert h.fraction_below(1000) == 1.0

    def test_skewed_data(self):
        # 90% of values are 0; the histogram should reflect that mass.
        values = [0] * 900 + list(range(1, 101))
        h = Histogram.from_values(values, num_buckets=20)
        assert h.range_fraction(0, 0) > 0.5

    def test_range_fraction_empty_range(self):
        h = Histogram.from_values(list(range(100)))
        assert h.range_fraction(50, 40) == 0.0

    @given(
        values=st.lists(st.integers(-1000, 1000), min_size=1, max_size=300),
        low=st.integers(-1200, 1200),
        width=st.integers(0, 500),
    )
    @settings(max_examples=80, deadline=None)
    def test_range_fraction_properties(self, values, low, width):
        h = Histogram.from_values(values)
        frac = h.range_fraction(low, low + width)
        assert 0.0 <= frac <= 1.0
        wider = h.range_fraction(low, low + width + 100)
        assert wider >= frac - 1e-9

    @given(values=st.lists(st.integers(0, 100), min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_full_range_covers_everything(self, values):
        h = Histogram.from_values(values)
        assert h.range_fraction(min(values), max(values)) >= 0.99 or len(set(values)) == 1


class TestColumnStats:
    def test_from_values(self):
        stats = ColumnStats.from_values([1, 2, 2, 3, 3, 3])
        assert stats.n_distinct == 3
        assert stats.min_value == 1
        assert stats.max_value == 3

    def test_eq_selectivity(self):
        stats = ColumnStats(n_distinct=100, min_value=0, max_value=999)
        assert stats.eq_selectivity(5) == pytest.approx(0.01)

    def test_eq_selectivity_out_of_bounds(self):
        stats = ColumnStats(n_distinct=100, min_value=0, max_value=999)
        assert stats.eq_selectivity(5000) == 0.0
        assert stats.eq_selectivity(-1) == 0.0

    def test_range_selectivity_uniform(self):
        stats = ColumnStats(n_distinct=1000, min_value=0, max_value=1000)
        assert stats.range_selectivity(0, 500) == pytest.approx(0.5, abs=0.01)

    def test_range_selectivity_open_bounds(self):
        stats = ColumnStats(n_distinct=1000, min_value=0, max_value=1000)
        assert stats.range_selectivity(None, None) == pytest.approx(1.0)

    def test_range_selectivity_floor(self):
        # An inclusive non-empty range matches at least one value's rows.
        stats = ColumnStats(n_distinct=100, min_value=0, max_value=1000)
        assert stats.range_selectivity(5, 5) >= 1.0 / 100

    def test_empty_column(self):
        stats = ColumnStats.from_values([])
        assert stats.n_distinct == 0
        assert stats.eq_selectivity(1) == 0.0
        assert stats.range_selectivity(0, 10) == 0.0

    def test_scaled(self):
        stats = ColumnStats.from_values([1, 2, 3])
        scaled = stats.scaled(100.0)
        assert scaled.n_distinct == 300.0
        assert scaled.min_value == stats.min_value

    def test_histogram_beats_uniform_on_skew(self):
        values = [0] * 990 + [1000] * 10
        stats = ColumnStats.from_values(values)
        # Uniform interpolation would say [0, 10] covers ~1% of the span;
        # the histogram knows it covers ~99% of the rows.
        assert stats.range_selectivity(0, 10) > 0.5

    @given(
        values=st.lists(st.floats(0, 1e6, allow_nan=False), min_size=2, max_size=200),
        lo=st.floats(0, 1e6),
        hi=st.floats(0, 1e6),
    )
    @settings(max_examples=60, deadline=None)
    def test_selectivities_bounded(self, values, lo, hi):
        stats = ColumnStats.from_values(values)
        assert 0.0 <= stats.eq_selectivity(lo) <= 1.0
        assert 0.0 <= stats.range_selectivity(min(lo, hi), max(lo, hi)) <= 1.0


class TestCorrelation:
    def test_sorted_data_fully_correlated(self):
        assert _order_correlation(list(range(100))) == pytest.approx(1.0)

    def test_reversed_data_anticorrelated(self):
        assert _order_correlation(list(range(100))[::-1]) == pytest.approx(-1.0)

    def test_constant_data(self):
        # Ties rank by position, yielding full correlation for constants.
        assert -1.0 <= _order_correlation([5] * 50) <= 1.0

    def test_shuffled_data_low_correlation(self):
        import random

        values = list(range(1000))
        random.Random(7).shuffle(values)
        assert abs(_order_correlation(values)) < 0.2


class TestDefaults:
    def test_numeric_default(self):
        stats = default_stats_for(DataType.INT, 500.0)
        assert stats.n_distinct > 0
        assert stats.min_value is not None

    def test_text_default(self):
        stats = default_stats_for(DataType.TEXT, 500.0)
        assert stats.n_distinct > 0
