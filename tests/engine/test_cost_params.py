"""Unit tests for the planner cost constants and size formulas."""

from repro.engine.cost_params import CostParams


class TestHeapPages:
    def test_empty_relation(self):
        assert CostParams().heap_pages(0, 100) == 0.0

    def test_minimum_one_page(self):
        assert CostParams().heap_pages(1, 10) == 1.0

    def test_scales_linearly(self):
        params = CostParams()
        one = params.heap_pages(100_000, 100)
        two = params.heap_pages(200_000, 100)
        assert abs(two - 2 * one) < 1e-6

    def test_wider_rows_need_more_pages(self):
        params = CostParams()
        assert params.heap_pages(100_000, 200) > params.heap_pages(100_000, 50)

    def test_row_too_wide_for_page_still_works(self):
        params = CostParams()
        assert params.heap_pages(10, params.page_size * 2) == 10.0


class TestIndexPages:
    def test_empty_index(self):
        assert CostParams().index_pages(0, 8) == 0.0

    def test_leaves_smaller_than_heap(self):
        params = CostParams()
        # A 4-byte key index is far smaller than a 150-byte-row heap.
        assert params.index_pages(1_000_000, 4) < params.heap_pages(1_000_000, 150)

    def test_fill_factor_reduces_capacity(self):
        loose = CostParams(index_fill_factor=0.5)
        tight = CostParams(index_fill_factor=1.0)
        assert loose.index_pages(100_000, 8) > tight.index_pages(100_000, 8)


class TestIndexHeight:
    def test_single_leaf(self):
        assert CostParams().index_height(1.0) == 1

    def test_grows_with_leaves(self):
        params = CostParams()
        assert params.index_height(10_000.0) > params.index_height(10.0)

    def test_logarithmic(self):
        params = CostParams()
        # 256^2 leaf pages → 3 levels (two internal + leaf).
        assert params.index_height(256.0 * 256.0) <= 4


class TestDefaults:
    def test_postgres_flavoured_defaults(self):
        params = CostParams()
        assert params.seq_page_cost == 1.0
        assert params.random_page_cost == 4.0
        assert params.cpu_tuple_cost == 0.01
        assert params.random_page_cost > params.seq_page_cost

    def test_frozen(self):
        import dataclasses

        import pytest

        with pytest.raises(dataclasses.FrozenInstanceError):
            CostParams().seq_page_cost = 2.0  # type: ignore[misc]
