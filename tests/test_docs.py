"""Documentation guards.

* every public class/function in the package carries a docstring;
* the generated API reference is in sync with the code;
* the prose docs reference only files that exist.
"""

import importlib
import inspect
import pathlib
import pkgutil
import re
import sys

import pytest

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "tools"))


def _iter_public_members():
    import repro

    modules = [("repro", repro)] + [
        (info.name, importlib.import_module(info.name))
        for info in pkgutil.walk_packages(repro.__path__, prefix="repro.")
        if not info.name.endswith("__main__")
    ]
    for module_name, module in modules:
        for name, member in vars(module).items():
            if name.startswith("_"):
                continue
            if not (inspect.isclass(member) or inspect.isfunction(member)):
                continue
            if getattr(member, "__module__", None) != module.__name__:
                continue
            yield module_name, name, member


class TestDocstrings:
    def test_every_module_documented(self):
        import repro

        missing = []
        for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
            if info.name.endswith("__main__"):
                continue
            module = importlib.import_module(info.name)
            if not inspect.getdoc(module):
                missing.append(info.name)
        assert not missing, f"modules without docstrings: {missing}"

    def test_every_public_member_documented(self):
        missing = [
            f"{module}.{name}"
            for module, name, member in _iter_public_members()
            if not inspect.getdoc(member)
        ]
        assert not missing, f"public members without docstrings: {missing}"

    def test_public_methods_documented(self):
        missing = []
        for module, name, member in _iter_public_members():
            if not inspect.isclass(member):
                continue
            for attr_name, attr in vars(member).items():
                if attr_name.startswith("_"):
                    continue
                if inspect.isfunction(attr) and not inspect.getdoc(attr):
                    missing.append(f"{module}.{name}.{attr_name}")
        assert not missing, f"public methods without docstrings: {missing}"


class TestGeneratedApiReference:
    def test_api_md_in_sync(self):
        gen = importlib.import_module("gen_api_docs")
        current = (ROOT / "docs" / "API.md").read_text()
        assert current == gen.render(), (
            "docs/API.md is stale; run `python tools/gen_api_docs.py`"
        )


class TestProseDocs:
    @pytest.mark.parametrize(
        "doc", ["README.md", "DESIGN.md", "EXPERIMENTS.md", "docs/PAPER_MAP.md"]
    )
    def test_referenced_paths_exist(self, doc):
        text = (ROOT / doc).read_text()
        # Check backticked repo-relative paths that look like files.
        candidates = re.findall(
            r"`((?:src|tests|benchmarks|examples|docs|tools)/[\w/.]+\.(?:py|md))`",
            text,
        )
        missing = [c for c in set(candidates) if not (ROOT / c).exists()]
        assert not missing, f"{doc} references missing files: {missing}"
