"""The in-python engine as a backend (the default).

``LocalBackend`` wraps the cost-based :class:`~repro.optimizer.optimizer.
Optimizer` unchanged: every ``optimize`` call is exactly the pre-protocol
``Optimizer.optimize(query, config, cache)`` call, so the golden-trace
pin holds bit-identically through the protocol.  Because the local
optimizer prices arbitrary configurations symbolically, hypothetical
indexes need no server-side state -- ``simulate_index`` just folds the
index into :meth:`current_config`.

The backend doubles as the trace *recorder*: pass a
:class:`~repro.backend.trace.CostTraceRecorder` and every priced
(query, relevant-config) pair is logged, producing the trace a
:class:`~repro.backend.trace.TraceBackend` replays deterministically.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.backend.base import (
    Backend,
    BackendCapabilities,
    WhatIfSession,
)
from repro.engine.catalog import Catalog
from repro.engine.index import IndexDef
from repro.optimizer.access import IndexConfig
from repro.optimizer.optimizer import (
    OptimizationResult,
    Optimizer,
    PlanCache,
)
from repro.sql.ast import Query

__all__ = ["LocalBackend"]


class LocalBackend(Backend):
    """Backend over the reproduction's own optimizer and catalog.

    Args:
        catalog: Catalog to build a fresh :class:`Optimizer` over.
        optimizer: An existing optimizer to wrap instead (mutually
            exclusive source of truth with ``catalog``; the optimizer's
            catalog wins).
        recorder: Optional trace recorder; when set, every priced
            (query, config) pair is recorded for later replay.
    """

    capabilities = BackendCapabilities(
        name="local",
        reverse_whatif=True,
        plan_cache_reuse=True,
        hypothetical_indexes=True,
        produces_plans=True,
    )

    def __init__(
        self,
        catalog: Optional[Catalog] = None,
        optimizer: Optional[Optimizer] = None,
        recorder=None,
    ) -> None:
        if optimizer is None:
            if catalog is None:
                raise ValueError("LocalBackend needs a catalog or an optimizer")
            optimizer = Optimizer(catalog)
        self.optimizer = optimizer
        self.recorder = recorder
        self._simulated: Dict[IndexDef, None] = {}

    @property
    def catalog(self) -> Catalog:
        return self.optimizer.catalog

    def current_config(self) -> IndexConfig:
        config = self.optimizer.current_config()
        if self._simulated:
            config = config | frozenset(self._simulated)
        return config

    def optimize(
        self,
        query: Query,
        config: Optional[IndexConfig] = None,
        session: Optional[WhatIfSession] = None,
        cache: Optional[PlanCache] = None,
    ) -> OptimizationResult:
        if session is not None:
            cache = session.cache
        if config is None:
            config = self.current_config()
        result = self.optimizer.optimize(query, config=config, cache=cache)
        self._count_call()
        if self.recorder is not None:
            self.recorder.record(query, config, result)
        return result

    def config_token(self):
        """One-integer validity token (see :meth:`Backend.config_token`).

        The local backend owns all of its pricing state: the catalog
        (whose ``generation`` counter is bumped by every stats change
        and every materialization change) plus the simulated-index set.
        The two tuple shapes cannot collide: the simulated set is only
        appended when non-empty.
        """
        if self._simulated:
            return (self.optimizer.catalog.generation, frozenset(self._simulated))
        return (self.optimizer.catalog.generation,)

    # -- hypothetical indexes ------------------------------------------
    def simulate_index(self, index: IndexDef) -> None:
        self._simulated[index] = None

    def drop_simulated_index(self, index: IndexDef) -> None:
        self._simulated.pop(index, None)

    def simulated_indexes(self) -> IndexConfig:
        return frozenset(self._simulated)
