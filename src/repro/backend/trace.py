"""Cost-trace recording and deterministic replay.

A *cost trace* is a mapping from ``(query signature, relevant-config
signature)`` to the optimizer's answer -- the plan cost plus the set of
indexes the plan used.  Recording happens on a
:class:`~repro.backend.local.LocalBackend` (pass a
:class:`CostTraceRecorder`); replay happens on a :class:`TraceBackend`,
which answers every what-if probe from the trace without an optimizer.

Keys are restricted to the *relevant* configuration (the same
restriction the plan cache and gain cache use), because plan identity --
and therefore cost -- depends only on that subset; this keeps traces
small and makes replay robust to irrelevant-index churn.

Costs round-trip through JSON bit-exactly (``json`` serializes floats
with ``repr``), so a tuner replaying its own recording makes *decisions
bit-identical* to the live run -- the property
``tools/check_backend_parity.py`` and the cross-backend differential
test gate on.  A lookup miss during replay raises
:class:`~repro.backend.base.TraceMissError` -- a hard error, because a
miss means the decision stream diverged from the recording.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, Optional, Set, Tuple

from repro.backend.base import (
    Backend,
    BackendCapabilities,
    TraceMissError,
    WhatIfSession,
)
from repro.engine.catalog import Catalog
from repro.engine.index import IndexDef
from repro.optimizer.access import IndexConfig
from repro.optimizer.optimizer import (
    OptimizationResult,
    PlanCache,
    relevant_config,
)
from repro.sql.ast import Query

__all__ = [
    "CostTrace",
    "CostTraceRecorder",
    "ReplayPlan",
    "TraceBackend",
    "trace_key",
]

TRACE_FORMAT = "repro-cost-trace"
TRACE_VERSION = 1


def trace_key(query: Query, config: IndexConfig) -> str:
    """Stable key for one (query, relevant-config) pricing request."""
    # Imported lazily: repro.core's package __init__ pulls in the tuner,
    # which imports this package back.
    from repro.core.gaincache import query_signature

    relevant = relevant_config(query, config)
    csig = tuple(sorted((ix.table, ix.columns) for ix in relevant))
    payload = repr((query_signature(query), csig))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class CostTrace:
    """An immutable-ish store of recorded pricing answers.

    Entries map :func:`trace_key` digests to
    ``{"cost": float, "used": [[table, [columns...]], ...]}``.
    """

    def __init__(
        self,
        entries: Optional[Dict[str, dict]] = None,
        meta: Optional[dict] = None,
    ) -> None:
        self.entries: Dict[str, dict] = dict(entries or {})
        self.meta: dict = dict(meta or {})

    def __len__(self) -> int:
        return len(self.entries)

    def lookup(self, key: str) -> Optional[dict]:
        """The recorded entry for a :func:`trace_key`, or ``None``."""
        return self.entries.get(key)

    # -- (de)serialization ---------------------------------------------
    def to_json(self) -> dict:
        """JSON-serializable payload (see :meth:`from_json`)."""
        return {
            "format": TRACE_FORMAT,
            "version": TRACE_VERSION,
            "meta": self.meta,
            "entries": self.entries,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "CostTrace":
        if payload.get("format") != TRACE_FORMAT:
            raise ValueError(
                f"not a cost trace (format={payload.get('format')!r})"
            )
        if payload.get("version") != TRACE_VERSION:
            raise ValueError(
                f"unsupported cost-trace version {payload.get('version')!r}"
            )
        return cls(entries=payload["entries"], meta=payload.get("meta"))

    def save(self, path) -> None:
        """Write the trace to ``path`` as JSON."""
        Path(path).write_text(json.dumps(self.to_json(), indent=1))

    @classmethod
    def load(cls, path) -> "CostTrace":
        """Load a trace previously written by :meth:`save`."""
        return cls.from_json(json.loads(Path(path).read_text()))


class CostTraceRecorder:
    """Recorder a :class:`LocalBackend` calls once per pricing request."""

    def __init__(self) -> None:
        self.trace = CostTrace()
        self.recorded = 0

    def record(self, query: Query, config: IndexConfig, result) -> None:
        """Record one pricing answer (first write per key wins)."""
        key = trace_key(query, config)
        if key in self.trace.entries:
            return
        used = sorted(
            (ix.table, list(ix.columns))
            for ix in result.plan.indexes_used()
        )
        self.trace.entries[key] = {
            "cost": result.cost,
            "used": [[table, columns] for table, columns in used],
        }
        self.recorded += 1


class ReplayPlan:
    """Stub plan reconstructed from a trace entry.

    Carries exactly what the tuning stack reads off a plan: the total
    cost and which indexes the plan used.  It has no physical operators
    and cannot be executed.
    """

    def __init__(self, cost: float, used: Set[IndexDef]) -> None:
        self.cost = cost
        self.rows = 0.0
        self._used = frozenset(used)

    def indexes_used(self) -> Set[IndexDef]:
        """The indexes the recorded plan scanned."""
        return set(self._used)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ReplayPlan(cost={self.cost!r}, used={sorted(map(str, self._used))})"


class TraceBackend(Backend):
    """Replays a recorded cost trace; no optimizer, fully deterministic.

    Args:
        catalog: The catalog the tuner operates on (schema, candidate
            generation, index materialization).  Must describe the same
            schema the trace was recorded against.
        trace: The recorded :class:`CostTrace`.
    """

    capabilities = BackendCapabilities(
        name="trace",
        reverse_whatif=True,
        plan_cache_reuse=False,
        hypothetical_indexes=True,
        produces_plans=False,
    )

    def __init__(self, catalog: Catalog, trace: CostTrace) -> None:
        self._catalog = catalog
        self.trace = trace
        self._simulated: Dict[IndexDef, None] = {}
        self.replayed = 0

    @property
    def catalog(self) -> Catalog:
        return self._catalog

    def current_config(self) -> IndexConfig:
        config = frozenset(self._catalog.materialized_indexes())
        if self._simulated:
            config = config | frozenset(self._simulated)
        return config

    def optimize(
        self,
        query: Query,
        config: Optional[IndexConfig] = None,
        session: Optional[WhatIfSession] = None,
        cache: Optional[PlanCache] = None,
    ) -> OptimizationResult:
        if config is None:
            config = self.current_config()
        key = trace_key(query, config)
        entry = self.trace.lookup(key)
        self._count_call()
        if entry is None:
            self._count_miss()
            raise TraceMissError(
                f"cost trace has no entry for key {key[:12]}… "
                f"(tables={list(query.tables)}, |config|={len(config)}); "
                "replay diverged from the recording"
            )
        self.replayed += 1
        used = {
            self._resolve_index(table, tuple(columns))
            for table, columns in entry["used"]
        }
        plan = ReplayPlan(entry["cost"], used)
        return OptimizationResult(plan=plan, cost=entry["cost"], config=config)

    def _resolve_index(
        self, table: str, columns: Tuple[str, ...]
    ) -> IndexDef:
        if len(columns) == 1:
            return self._catalog.index_for(table, columns[0])
        return self._catalog.composite_index_for(table, list(columns))

    # -- hypothetical indexes ------------------------------------------
    def simulate_index(self, index: IndexDef) -> None:
        self._simulated[index] = None

    def drop_simulated_index(self, index: IndexDef) -> None:
        self._simulated.pop(index, None)

    def simulated_indexes(self) -> IndexConfig:
        return frozenset(self._simulated)

    # -- observability -------------------------------------------------
    def _count_miss(self) -> None:
        metrics = getattr(self, "_metrics", None)
        if metrics is not None:
            metrics["backend_trace_misses_total"].inc()
