"""The DBMS backend protocol behind the what-if interface.

COLT's decision loop -- profiling, gain estimation, knapsack selection --
only ever talks to the DBMS through a narrow surface: "what would this
query cost under that index configuration?", "pretend this index
exists", and "have this table's statistics changed?".  The paper assumes
that surface is the DBMS's own extended optimizer (§4.1); CoPhy shows
the same thin what-if protocol ports an advisor across engines, and DBA
bandits drives an identical loop through PostgreSQL + HypoPG.

:class:`Backend` freezes that surface into a protocol:

* ``get_cost(query, config)`` / ``optimize(query, config)`` -- the
  what-if cost oracle (``optimize`` additionally returns a plan when the
  backend produces one).
* ``simulate_index(index)`` / ``drop_simulated_index(index)`` --
  hypothetical-index lifecycle, folded into ``current_config()``.
* ``stats_token(table)`` / ``refresh_stats(table)`` -- statistics
  freshness, the validity token the cross-query gain cache checks.
* :class:`BackendCapabilities` -- feature flags callers consult before
  leaning on optional behavior (reverse what-if, plan-cache reuse,
  plans in results).

Implementations: :class:`~repro.backend.local.LocalBackend` (the
in-python engine, default and bit-identical to the pre-protocol code
path), :class:`~repro.backend.trace.TraceBackend` (deterministic replay
of recorded costs for CI), and
:class:`~repro.backend.hypopg.PostgresHypoBackend` (HypoPG hypothetical
indexes + ``EXPLAIN (FORMAT JSON)``, import-guarded).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

from repro.engine.catalog import Catalog
from repro.engine.index import IndexDef
from repro.optimizer.access import IndexConfig
from repro.optimizer.optimizer import (
    OptimizationResult,
    PlanCache,
    relevant_config,
)
from repro.sql.ast import Query

__all__ = [
    "Backend",
    "BackendCapabilities",
    "BackendError",
    "BackendCapabilityError",
    "BackendUnavailableError",
    "TraceMissError",
    "WhatIfSession",
]

#: Stats freshness token: opaque to callers beyond equality comparison.
StatsToken = tuple


class BackendError(RuntimeError):
    """A backend failed in a way that is *not* ordinary probe noise.

    Unlike :class:`~repro.resilience.errors.WhatIfProbeError` (which the
    profiler absorbs as a degraded probe), a ``BackendError`` signals
    the backend itself is unusable for the request -- a trace miss
    during deterministic replay, a capability the backend does not
    implement, a missing driver.  These propagate to the caller.
    """


class BackendCapabilityError(BackendError):
    """A request requires a capability the backend does not advertise."""


class BackendUnavailableError(BackendError):
    """The backend cannot be constructed (missing driver or server)."""


class TraceMissError(BackendError):
    """Replay requested a (query, config) pair absent from the trace.

    During deterministic CI replay a miss means the decision stream
    diverged from the recording, so this is a hard error rather than a
    skippable probe failure.
    """


@dataclasses.dataclass(frozen=True)
class BackendCapabilities:
    """Feature flags a backend advertises to the tuning stack.

    Attributes:
        name: Short backend identifier (``local``, ``trace``,
            ``hypopg``); also the ``backend`` metric label value.
        reverse_whatif: Whether the backend can price a query *without*
            a currently-materialized index (the paper's reverse what-if
            for ``I ∈ M``).  HypoPG cannot hide a real index, so its
            adapter reports ``False`` and reverse probes degrade to
            :class:`~repro.resilience.errors.WhatIfProbeError`.
        plan_cache_reuse: Whether consecutive what-if calls for one
            query reuse sub-plans through the session's
            :class:`~repro.optimizer.optimizer.PlanCache` (the paper's
            "reuse intermediate solutions" engineering).  Informational:
            callers may skip cache bookkeeping when ``False``.
        hypothetical_indexes: Whether ``simulate_index`` is supported.
        produces_plans: Whether ``optimize`` results carry a physical
            plan whose ``indexes_used()`` is meaningful, or only a cost
            (trace replay returns stub plans reconstructed from the
            recording).
    """

    name: str
    reverse_whatif: bool = True
    plan_cache_reuse: bool = True
    hypothetical_indexes: bool = True
    produces_plans: bool = True


@dataclasses.dataclass
class WhatIfSession:
    """State carried across the what-if calls for a single query.

    Attributes:
        query: The query being profiled.
        base: The result of the query's normal optimization under the
            current materialized set.
        cache: Plan cache shared by all calls for this query.
    """

    query: Query
    base: OptimizationResult
    cache: PlanCache


class Backend:
    """Base class for DBMS backends; see the module docstring.

    Subclasses must set :attr:`capabilities`, implement
    :meth:`optimize`, and expose the catalog the tuner's candidate
    generation and scheduler operate on.  Everything else has working
    defaults expressed in terms of those primitives.
    """

    capabilities: BackendCapabilities

    @property
    def catalog(self) -> Catalog:
        """The catalog describing the schema this backend prices against."""
        raise NotImplementedError

    # -- what-if cost oracle -------------------------------------------
    def current_config(self) -> IndexConfig:
        """Materialized plus simulated indexes, as a configuration."""
        config = frozenset(self.catalog.materialized_indexes())
        simulated = self.simulated_indexes()
        if simulated:
            config = config | simulated
        return config

    def begin_query(self, query: Query) -> WhatIfSession:
        """Normally optimize ``query`` and open a what-if session for it."""
        cache = PlanCache()
        base = self.optimize(query, cache=cache)
        return WhatIfSession(query=query, base=base, cache=cache)

    def begin_queries(self, queries) -> list:
        """Open what-if sessions for a whole batch, in batch order.

        The default is the per-query loop; batch-aware backends (the
        :class:`~repro.core.batching.BatchedPricer` memo, a future
        server adapter pipelining EXPLAINs) override this to share work
        across the batch.  Results MUST be element-wise identical to
        the loop -- the batched-path property tests enforce it.
        """
        return [self.begin_query(query) for query in queries]

    def optimize(
        self,
        query: Query,
        config: Optional[IndexConfig] = None,
        session: Optional[WhatIfSession] = None,
        cache: Optional[PlanCache] = None,
    ) -> OptimizationResult:
        """Price ``query`` under ``config`` (default: current config).

        Args:
            query: A bound query.
            config: Index configuration; defaults to
                :meth:`current_config`.
            session: Open what-if session for this query; its plan cache
                is used when the backend supports reuse.
            cache: Explicit plan cache (``session`` takes precedence).

        Returns:
            An :class:`OptimizationResult`.  When
            ``capabilities.produces_plans`` is false the plan is a stub
            that still answers ``indexes_used()``.
        """
        raise NotImplementedError

    def get_cost(
        self,
        query: Query,
        config: Optional[IndexConfig] = None,
        session: Optional[WhatIfSession] = None,
    ) -> float:
        """Estimated cost of ``query`` under ``config``."""
        return self.optimize(query, config=config, session=session).cost

    def relevant_config(
        self, query: Query, config: IndexConfig
    ) -> IndexConfig:
        """Restrict ``config`` to the indexes that can affect ``query``."""
        return relevant_config(query, config)

    # -- hypothetical indexes ------------------------------------------
    def simulate_index(self, index: IndexDef) -> None:
        """Make ``index`` part of the backend's default configuration.

        The simulated index participates in :meth:`current_config` (and
        hence in default-config pricing) without being physically built.
        """
        raise BackendCapabilityError(
            f"backend {self.capabilities.name!r} does not support "
            "hypothetical indexes"
        )

    def drop_simulated_index(self, index: IndexDef) -> None:
        """Remove a previously simulated index (idempotent)."""
        raise BackendCapabilityError(
            f"backend {self.capabilities.name!r} does not support "
            "hypothetical indexes"
        )

    def simulated_indexes(self) -> IndexConfig:
        """The currently simulated (hypothetical) index set."""
        return frozenset()

    def config_token(self) -> Optional[tuple]:
        """Cheap validity token covering *everything* ``optimize`` sees.

        When non-``None``, two equal tokens assert the backend would
        price any query identically: the materialized set, the simulated
        set, and every table's statistics are all unchanged.  Batch
        memos (:class:`~repro.core.batching.BatchedPricer`) use it to
        validate a hit with one tuple compare instead of recomputing
        the relevant configuration and per-table stats tokens per
        lookup.  The default returns ``None`` ("no cheap token"),
        which is always safe: callers must then fall back to the full
        self-validating key.  Only backends that fully own their
        pricing state (the local engine) should implement it.
        """
        return None

    # -- statistics ----------------------------------------------------
    def stats_token(self, table: str) -> StatsToken:
        """Freshness token for ``table``'s statistics.

        Two equal tokens assert the backend would price queries over the
        table identically; any stats-affecting mutation must change the
        token.  The default combines the logical row count with the
        catalog's monotonically bumped ``stats_version``.
        """
        tdef = self.catalog.table(table)
        return (tdef.row_count, self.catalog.stats_version(table))

    def refresh_stats(self, table: str) -> None:
        """Recompute (or mark changed) statistics for ``table``."""
        self.catalog.bump_stats_version(table)

    # -- observability -------------------------------------------------
    def bind_registry(self, registry) -> None:
        """Attach the backend's metric families to ``registry``."""
        from repro.obs.names import BACKEND_METRICS

        self._metrics: Dict[str, object] = {
            name: spec.build(registry)
            for name, spec in BACKEND_METRICS.items()
        }

    def _count_call(self) -> None:
        metrics = getattr(self, "_metrics", None)
        if metrics is not None:
            metrics["backend_optimize_calls_total"].inc(
                backend=self.capabilities.name
            )
