"""PostgreSQL + HypoPG backend (import-guarded; CI needs no server).

DBA bandits (Perera et al.) drives the same profiling loop this
reproduction runs through PostgreSQL's planner: HypoPG's
``hypopg_create_index`` registers a *hypothetical* index the planner
will consider, and ``EXPLAIN (FORMAT JSON)`` returns the plan's total
cost without executing anything.  ``PostgresHypoBackend`` adapts that
protocol to :class:`~repro.backend.base.Backend`.

Requirements on the server side:

* PostgreSQL with the ``hypopg`` extension installed (the adapter runs
  ``CREATE EXTENSION IF NOT EXISTS hypopg`` on connect);
* a schema matching the catalog the tuner plans over;
* a DSN the ``psycopg`` (v3) or ``psycopg2`` driver accepts.

Capability notes: HypoPG cannot *hide* a really-materialized index, so
``reverse_whatif`` is ``False`` -- the what-if layer degrades reverse
probes of materialized indexes to
:class:`~repro.resilience.errors.WhatIfProbeError`, which the profiler
absorbs.  ``EXPLAIN`` output is parsed for cost only
(``produces_plans`` is ``False``); index usage is recovered best-effort
from ``Index Name`` fields that match hypothetical indexes this adapter
created.

Neither driver is a dependency of this repository: the import is
guarded, and the class accepts an injectable ``connection`` (anything
with a ``cursor()`` context-manager protocol) so unit tests exercise
the SQL and plan parsing against a fake connection.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.backend.base import (
    Backend,
    BackendCapabilities,
    BackendCapabilityError,
    BackendUnavailableError,
    WhatIfSession,
)
from repro.engine.catalog import Catalog
from repro.engine.index import IndexDef
from repro.optimizer.access import IndexConfig
from repro.optimizer.optimizer import (
    OptimizationResult,
    PlanCache,
)
from repro.sql.ast import Query
from repro.sql.render import render_query

__all__ = ["PostgresHypoBackend", "driver_available"]


def _import_driver():
    """Import psycopg (v3) or psycopg2, whichever is installed."""
    try:
        import psycopg  # type: ignore[import-not-found]

        return psycopg
    except ImportError:
        pass
    try:
        import psycopg2  # type: ignore[import-not-found]

        return psycopg2
    except ImportError:
        pass
    return None


def driver_available() -> bool:
    """Whether a PostgreSQL driver is importable in this environment."""
    return _import_driver() is not None


class PostgresHypoBackend(Backend):
    """Backend speaking to PostgreSQL through HypoPG.

    Args:
        dsn: Connection string; used only when ``connection`` is absent.
        connection: An already-open DB-API connection (injectable for
            tests; must provide ``cursor()``).
        catalog: Optional local catalog mirror.  The tuner still needs
            one for candidate generation and index sizing; pricing goes
            to the server.

    Raises:
        BackendUnavailableError: when no driver is installed and no
            connection was injected.
    """

    capabilities = BackendCapabilities(
        name="hypopg",
        reverse_whatif=False,
        plan_cache_reuse=False,
        hypothetical_indexes=True,
        produces_plans=False,
    )

    def __init__(
        self,
        dsn: Optional[str] = None,
        connection=None,
        catalog: Optional[Catalog] = None,
    ) -> None:
        if connection is None:
            driver = _import_driver()
            if driver is None:
                raise BackendUnavailableError(
                    "the hypopg backend needs psycopg or psycopg2; "
                    "neither is installed"
                )
            if dsn is None:
                raise BackendUnavailableError(
                    "the hypopg backend needs a DSN (--dsn) when no "
                    "connection is injected"
                )
            connection = driver.connect(dsn)
        self._conn = connection
        self._catalog = catalog
        # IndexDef -> (hypopg oid, hypopg index name)
        self._simulated: Dict[IndexDef, Tuple[int, str]] = {}
        self._ensure_extension()

    @property
    def catalog(self) -> Catalog:
        if self._catalog is None:
            raise BackendCapabilityError(
                "hypopg backend has no local catalog mirror; pass catalog="
            )
        return self._catalog

    # -- server plumbing -----------------------------------------------
    def _execute(self, sql: str, params: Tuple = ()) -> list:
        with self._conn.cursor() as cur:
            if params:
                cur.execute(sql, params)
            else:
                cur.execute(sql)
            try:
                return cur.fetchall()
            except Exception:
                return []

    def _ensure_extension(self) -> None:
        self._execute("CREATE EXTENSION IF NOT EXISTS hypopg")

    # -- what-if cost oracle -------------------------------------------
    def current_config(self) -> IndexConfig:
        config: IndexConfig = frozenset(self._simulated)
        if self._catalog is not None:
            config = config | frozenset(self._catalog.materialized_indexes())
        return config

    def optimize(
        self,
        query: Query,
        config: Optional[IndexConfig] = None,
        session: Optional[WhatIfSession] = None,
        cache: Optional[PlanCache] = None,
    ) -> OptimizationResult:
        current = self.current_config()
        if config is None:
            config = current
        added = config - current
        removed = current - config
        materialized_removed = [
            ix for ix in removed if ix not in self._simulated
        ]
        if materialized_removed:
            raise BackendCapabilityError(
                "hypopg cannot hide materialized indexes "
                f"{sorted(str(ix) for ix in materialized_removed)}; "
                "reverse what-if is unsupported"
            )
        temporarily_dropped = [ix for ix in removed if ix in self._simulated]
        for index in added:
            self.simulate_index(index)
        for index in temporarily_dropped:
            self.drop_simulated_index(index)
        try:
            cost, used_names = self._explain_cost(query)
            # Match while the added hypotheticals are still registered --
            # the name -> IndexDef map lives in self._simulated.
            used = self._match_used(used_names, config)
        finally:
            for index in added:
                self.drop_simulated_index(index)
            for index in temporarily_dropped:
                self.simulate_index(index)
        self._count_call()
        from repro.backend.trace import ReplayPlan

        return OptimizationResult(
            plan=ReplayPlan(cost, used), cost=cost, config=config
        )

    def _explain_cost(self, query: Query):
        sql = render_query(query, self._catalog)
        rows = self._execute(f"EXPLAIN (FORMAT JSON) {sql}")
        payload = rows[0][0]
        if isinstance(payload, str):
            import json

            payload = json.loads(payload)
        plan = payload[0]["Plan"]
        return float(plan["Total Cost"]), self._index_names(plan)

    def _index_names(self, node: dict) -> list:
        names = []
        if "Index Name" in node:
            names.append(node["Index Name"])
        for child in node.get("Plans", ()):  # recurse into subplans
            names.extend(self._index_names(child))
        return names

    def _match_used(self, names, config: IndexConfig):
        by_name = {name: ix for ix, (_, name) in self._simulated.items()}
        used = set()
        for name in names:
            index = by_name.get(name)
            if index is not None and index in config:
                used.add(index)
        return used

    # -- hypothetical indexes ------------------------------------------
    def simulate_index(self, index: IndexDef) -> None:
        if index in self._simulated:
            return
        columns = ", ".join(index.columns)
        rows = self._execute(
            "SELECT indexrelid, indexname FROM hypopg_create_index(%s)",
            (f"CREATE INDEX ON {index.table} ({columns})",),
        )
        oid, name = rows[0][0], rows[0][1]
        self._simulated[index] = (int(oid), str(name))

    def drop_simulated_index(self, index: IndexDef) -> None:
        entry = self._simulated.pop(index, None)
        if entry is None:
            return
        self._execute("SELECT hypopg_drop_index(%s)", (entry[0],))

    def simulated_indexes(self) -> IndexConfig:
        return frozenset(self._simulated)

    # -- statistics ----------------------------------------------------
    def stats_token(self, table: str):
        rows = self._execute(
            "SELECT c.reltuples, COALESCE(s.n_mod_since_analyze, 0), "
            "COALESCE(s.last_analyze::text, '') "
            "FROM pg_class c LEFT JOIN pg_stat_user_tables s "
            "ON s.relid = c.oid WHERE c.relname = %s",
            (table,),
        )
        if not rows:
            return (0.0, 0, "")
        reltuples, n_mod, last_analyze = rows[0]
        return (float(reltuples), int(n_mod), str(last_analyze))

    def refresh_stats(self, table: str) -> None:
        self._execute(f"ANALYZE {table}")
