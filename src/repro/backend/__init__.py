"""Pluggable DBMS backends behind the what-if interface.

See :mod:`repro.backend.base` for the protocol and ``docs/BACKENDS.md``
for the workflow.  ``PostgresHypoBackend`` lives in
:mod:`repro.backend.hypopg`; constructing it without an injected
connection requires a PostgreSQL driver, but importing it does not.
"""

from repro.backend.base import (
    Backend,
    BackendCapabilities,
    BackendCapabilityError,
    BackendError,
    BackendUnavailableError,
    TraceMissError,
    WhatIfSession,
)
from repro.backend.local import LocalBackend
from repro.backend.trace import (
    CostTrace,
    CostTraceRecorder,
    ReplayPlan,
    TraceBackend,
    trace_key,
)

__all__ = [
    "Backend",
    "BackendCapabilities",
    "BackendCapabilityError",
    "BackendError",
    "BackendUnavailableError",
    "CostTrace",
    "CostTraceRecorder",
    "LocalBackend",
    "ReplayPlan",
    "TraceBackend",
    "TraceMissError",
    "WhatIfSession",
    "trace_key",
]
