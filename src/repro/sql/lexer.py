"""SQL tokenizer.

Produces a flat token stream for the parser.  Keywords are recognized
case-insensitively; identifiers preserve their (lowercased) spelling.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Iterator, List


class TokenType(enum.Enum):
    """Lexical token categories."""

    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    OP = "op"
    PUNCT = "punct"
    EOF = "eof"


KEYWORDS = frozenset(
    {
        "select",
        "from",
        "where",
        "and",
        "group",
        "order",
        "by",
        "limit",
        "asc",
        "desc",
        "between",
        "in",
        "as",
        "count",
        "sum",
        "avg",
        "min",
        "max",
        "distinct",
    }
)

_OPERATORS = ("<=", ">=", "<>", "!=", "=", "<", ">")
_PUNCT = "(),.*"


@dataclasses.dataclass(frozen=True)
class Token:
    """One lexical token.

    Attributes:
        type: Token category.
        value: Normalized token text (keywords/identifiers lowercased,
            numbers and strings as their literal text).
        pos: Character offset in the source, for error messages.
    """

    type: TokenType
    value: str
    pos: int


class LexError(ValueError):
    """Raised on an unrecognizable character sequence."""


def tokenize(sql: str) -> List[Token]:
    """Tokenize a SQL string.

    Raises:
        LexError: on invalid input (unterminated string, bad character).
    """
    return list(_tokens(sql))


def _tokens(sql: str) -> Iterator[Token]:
    i = 0
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "'":
            end = sql.find("'", i + 1)
            if end < 0:
                raise LexError(f"unterminated string literal at offset {i}")
            yield Token(TokenType.STRING, sql[i + 1 : end], i)
            i = end + 1
            continue
        if ch.isdigit() or (ch == "-" and i + 1 < n and sql[i + 1].isdigit()):
            j = i + 1
            seen_dot = False
            while j < n and (sql[j].isdigit() or (sql[j] == "." and not seen_dot)):
                if sql[j] == ".":
                    # A dot not followed by a digit is punctuation
                    # (qualified name), not a decimal point.
                    if j + 1 >= n or not sql[j + 1].isdigit():
                        break
                    seen_dot = True
                j += 1
            yield Token(TokenType.NUMBER, sql[i:j], i)
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i + 1
            while j < n and (sql[j].isalnum() or sql[j] == "_"):
                j += 1
            word = sql[i:j].lower()
            kind = TokenType.KEYWORD if word in KEYWORDS else TokenType.IDENT
            yield Token(kind, word, i)
            i = j
            continue
        matched = False
        for op in _OPERATORS:
            if sql.startswith(op, i):
                yield Token(TokenType.OP, op, i)
                i += len(op)
                matched = True
                break
        if matched:
            continue
        if ch in _PUNCT:
            yield Token(TokenType.PUNCT, ch, i)
            i += 1
            continue
        raise LexError(f"unexpected character {ch!r} at offset {i}")
    yield Token(TokenType.EOF, "", n)
