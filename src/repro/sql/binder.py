"""Semantic analysis: bind a parsed query against the catalog.

Binding resolves unqualified column references to their tables, validates
that every referenced table and column exists, checks type compatibility
of predicates, and coerces literals to the engine representation (e.g.
date strings to day ordinals).  Everything downstream -- optimizer,
executor, COLT -- assumes bound queries.
"""

from __future__ import annotations

from repro.engine.catalog import Catalog
from repro.engine.datatypes import DataType, coerce, comparable
from repro.sql.ast import (
    Aggregate,
    BetweenPredicate,
    ColumnExpr,
    ComparisonPredicate,
    InPredicate,
    JoinPredicate,
    OrderItem,
    Query,
    SelectItem,
)


class BindError(ValueError):
    """Raised when a query references unknown objects or mismatched types."""


def bind_query(query: Query, catalog: Catalog) -> Query:
    """Return a fully-bound copy of ``query``.

    Raises:
        BindError: on unknown tables/columns, ambiguous references, or
            type-incompatible predicates.
    """
    binder = _Binder(query, catalog)
    return binder.bind()


class _Binder:
    def __init__(self, query: Query, catalog: Catalog) -> None:
        self._query = query
        self._catalog = catalog

    def bind(self) -> Query:
        for name in self._query.tables:
            if not self._catalog.has_table(name):
                raise BindError(f"unknown table {name!r}")
        return Query(
            tables=list(self._query.tables),
            select=[self._bind_item(i) for i in self._query.select],
            filters=[self._bind_filter(f) for f in self._query.filters],
            joins=[self._bind_join(j) for j in self._query.joins],
            group_by=[self._bind_column(c) for c in self._query.group_by],
            order_by=[
                OrderItem(self._bind_column(o.column), o.descending)
                for o in self._query.order_by
            ],
            limit=self._query.limit,
            text=self._query.text,
        )

    def _bind_column(self, col: ColumnExpr) -> ColumnExpr:
        if col.table is not None:
            if col.table not in self._query.tables:
                raise BindError(f"table {col.table!r} not in FROM clause")
            if not self._catalog.table(col.table).has_column(col.column):
                raise BindError(f"no column {col.column!r} in table {col.table!r}")
            return col
        owners = [
            t
            for t in self._query.tables
            if self._catalog.table(t).has_column(col.column)
        ]
        if not owners:
            raise BindError(f"unknown column {col.column!r}")
        if len(owners) > 1:
            raise BindError(
                f"ambiguous column {col.column!r}: in tables {', '.join(owners)}"
            )
        return ColumnExpr(column=col.column, table=owners[0])

    def _dtype(self, col: ColumnExpr) -> DataType:
        return self._catalog.table(col.table).column(col.column).dtype

    def _bind_item(self, item: SelectItem) -> SelectItem:
        if isinstance(item.expr, Aggregate):
            arg = item.expr.arg
            bound_arg = None if arg is None else self._bind_column(arg)
            return SelectItem(
                expr=Aggregate(func=item.expr.func, arg=bound_arg),
                alias=item.alias,
            )
        return SelectItem(expr=self._bind_column(item.expr), alias=item.alias)

    def _bind_filter(self, pred):
        column = self._bind_column(pred.column)
        dtype = self._dtype(column)
        try:
            if isinstance(pred, ComparisonPredicate):
                return ComparisonPredicate(
                    column=column, op=pred.op, value=coerce(pred.value, dtype)
                )
            if isinstance(pred, BetweenPredicate):
                return BetweenPredicate(
                    column=column,
                    low=coerce(pred.low, dtype),
                    high=coerce(pred.high, dtype),
                )
            if isinstance(pred, InPredicate):
                return InPredicate(
                    column=column,
                    values=tuple(coerce(v, dtype) for v in pred.values),
                )
        except TypeError as exc:
            raise BindError(f"type error in predicate on {column}: {exc}") from exc
        raise BindError(f"unsupported predicate type {type(pred).__name__}")

    def _bind_join(self, join: JoinPredicate) -> JoinPredicate:
        left = self._bind_column(join.left)
        right = self._bind_column(join.right)
        if left.table == right.table:
            raise BindError(f"join predicate {join} references a single table")
        if not comparable(self._dtype(left), self._dtype(right)):
            raise BindError(
                f"join predicate {join} compares incompatible types"
            )
        return JoinPredicate(left=left, right=right)
