"""Abstract syntax for the supported SQL dialect.

A :class:`Query` is the unit of work throughout the system: the optimizer
costs it, the executor runs it, and COLT mines its predicates for index
candidates.  The representation is deliberately *analyzed* rather than a
raw parse tree -- predicates are already split into single-table filters
and equi-join conditions, which is the structure both the Selinger
optimizer and COLT's query clustering consume.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import List, Optional, Tuple


class CompareOp(enum.Enum):
    """Comparison operators allowed in predicates."""

    EQ = "="
    NE = "<>"
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="

    def flipped(self) -> "CompareOp":
        """The operator with its operands swapped (e.g. ``<`` → ``>``)."""
        return _FLIPPED[self]


_FLIPPED = {}


def _init_flipped() -> None:
    _FLIPPED.update(
        {
            CompareOp.EQ: CompareOp.EQ,
            CompareOp.NE: CompareOp.NE,
            CompareOp.LT: CompareOp.GT,
            CompareOp.LE: CompareOp.GE,
            CompareOp.GT: CompareOp.LT,
            CompareOp.GE: CompareOp.LE,
        }
    )


_init_flipped()


class AggFunc(enum.Enum):
    """Aggregate functions."""

    COUNT = "count"
    SUM = "sum"
    AVG = "avg"
    MIN = "min"
    MAX = "max"


@dataclasses.dataclass(frozen=True)
class ColumnExpr:
    """A column reference; ``table`` may be None until binding."""

    column: str
    table: Optional[str] = None

    def __str__(self) -> str:
        return f"{self.table}.{self.column}" if self.table else self.column


@dataclasses.dataclass(frozen=True)
class Aggregate:
    """An aggregate over a column (or ``COUNT(*)`` when ``arg`` is None)."""

    func: AggFunc
    arg: Optional[ColumnExpr]

    def __str__(self) -> str:
        inner = "*" if self.arg is None else str(self.arg)
        return f"{self.func.value}({inner})"


@dataclasses.dataclass(frozen=True)
class SelectItem:
    """One output column: either a plain column or an aggregate."""

    expr: object  # ColumnExpr | Aggregate
    alias: Optional[str] = None


@dataclasses.dataclass(frozen=True)
class ComparisonPredicate:
    """A single-table predicate ``column <op> literal``."""

    column: ColumnExpr
    op: CompareOp
    value: object

    def __str__(self) -> str:
        return f"{self.column} {self.op.value} {self.value!r}"


@dataclasses.dataclass(frozen=True)
class BetweenPredicate:
    """A single-table predicate ``column BETWEEN low AND high``."""

    column: ColumnExpr
    low: object
    high: object

    def __str__(self) -> str:
        return f"{self.column} BETWEEN {self.low!r} AND {self.high!r}"


@dataclasses.dataclass(frozen=True)
class InPredicate:
    """A single-table predicate ``column IN (v1, v2, ...)``."""

    column: ColumnExpr
    values: Tuple

    def __str__(self) -> str:
        inner = ", ".join(repr(v) for v in self.values)
        return f"{self.column} IN ({inner})"


@dataclasses.dataclass(frozen=True)
class JoinPredicate:
    """An equi-join condition ``left = right`` across two tables."""

    left: ColumnExpr
    right: ColumnExpr

    def __str__(self) -> str:
        return f"{self.left} = {self.right}"

    def normalized(self) -> "JoinPredicate":
        """A canonical orientation (smaller table.column string first)."""
        if str(self.right) < str(self.left):
            return JoinPredicate(self.right, self.left)
        return self


@dataclasses.dataclass(frozen=True)
class OrderItem:
    """One ORDER BY key."""

    column: ColumnExpr
    descending: bool = False


FilterPredicate = (ComparisonPredicate, BetweenPredicate, InPredicate)


@dataclasses.dataclass
class Query:
    """An analyzed conjunctive SPJ query with optional aggregation.

    Attributes:
        tables: Names of the referenced base tables (no duplicates).
        select: Output list; empty means ``SELECT *``.
        filters: Single-table predicates (implicitly ANDed).
        joins: Equi-join conditions (implicitly ANDed).
        group_by: Grouping columns (may be empty).
        order_by: Ordering specification (may be empty).
        limit: Optional row limit.
        text: The original SQL text, if the query was parsed.
    """

    tables: List[str]
    select: List[SelectItem] = dataclasses.field(default_factory=list)
    filters: List[object] = dataclasses.field(default_factory=list)
    joins: List[JoinPredicate] = dataclasses.field(default_factory=list)
    group_by: List[ColumnExpr] = dataclasses.field(default_factory=list)
    order_by: List[OrderItem] = dataclasses.field(default_factory=list)
    limit: Optional[int] = None
    text: Optional[str] = None

    def filters_on(self, table: str) -> List[object]:
        """All single-table filters that reference ``table``."""
        return [f for f in self.filters if f.column.table == table]

    def selection_columns(self) -> List[ColumnExpr]:
        """Columns appearing in selection predicates (COLT's mining input)."""
        return [f.column for f in self.filters]

    def join_columns(self) -> List[ColumnExpr]:
        """Columns appearing in join predicates."""
        cols: List[ColumnExpr] = []
        for j in self.joins:
            cols.append(j.left)
            cols.append(j.right)
        return cols

    def is_aggregate(self) -> bool:
        """Whether the query computes any aggregate."""
        return any(isinstance(item.expr, Aggregate) for item in self.select)
