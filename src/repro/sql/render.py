"""Render analyzed queries back to SQL text.

The inverse of the parser, up to normalization: rendering a bound query
and re-parsing it yields a structurally identical query.  Used by
logging/tracing (queries in experiment traces are stored as text), by
examples, and by round-trip property tests that pin the parser and the
renderer against each other.
"""

from __future__ import annotations

import datetime
from typing import List, Optional

from repro.engine.catalog import Catalog
from repro.engine.datatypes import DataType, ordinal_to_date
from repro.sql.ast import (
    Aggregate,
    BetweenPredicate,
    ColumnExpr,
    ComparisonPredicate,
    InPredicate,
    Query,
    SelectItem,
)


def render_query(query: Query, catalog: Optional[Catalog] = None) -> str:
    """Render a query as SQL text.

    Args:
        query: A (preferably bound) query.
        catalog: When given, DATE-typed literals are rendered as ISO
            date strings instead of raw day ordinals, which reads better
            in logs.  Without a catalog all literals render by value.

    Returns:
        A SQL string the package's own parser accepts.
    """
    parts = [f"select {_render_select(query.select)}"]
    parts.append("from " + ", ".join(query.tables))

    conjuncts = [_render_filter(f, catalog) for f in query.filters]
    conjuncts += [f"{j.left} = {j.right}" for j in query.joins]
    if conjuncts:
        parts.append("where " + " and ".join(conjuncts))

    if query.group_by:
        parts.append("group by " + ", ".join(str(c) for c in query.group_by))
    if query.order_by:
        keys = [
            f"{item.column}{' desc' if item.descending else ''}"
            for item in query.order_by
        ]
        parts.append("order by " + ", ".join(keys))
    if query.limit is not None:
        parts.append(f"limit {query.limit}")
    return " ".join(parts)


def _render_select(items: List[SelectItem]) -> str:
    if not items:
        return "*"
    rendered = []
    for item in items:
        if isinstance(item.expr, Aggregate):
            text = str(item.expr)
        else:
            text = str(item.expr)
        if item.alias:
            text += f" as {item.alias}"
        rendered.append(text)
    return ", ".join(rendered)


def _render_filter(pred, catalog: Optional[Catalog]) -> str:
    column = pred.column
    if isinstance(pred, ComparisonPredicate):
        return f"{column} {pred.op.value} {_literal(pred.value, column, catalog)}"
    if isinstance(pred, BetweenPredicate):
        lo = _literal(pred.low, column, catalog)
        hi = _literal(pred.high, column, catalog)
        return f"{column} between {lo} and {hi}"
    if isinstance(pred, InPredicate):
        inner = ", ".join(_literal(v, column, catalog) for v in pred.values)
        return f"{column} in ({inner})"
    raise TypeError(f"unsupported predicate type {type(pred).__name__}")


def _literal(value, column: ColumnExpr, catalog: Optional[Catalog]) -> str:
    if catalog is not None and column.table is not None:
        try:
            dtype = catalog.table(column.table).column(column.column).dtype
        except KeyError:
            dtype = None
        if dtype is DataType.DATE and isinstance(value, int):
            return f"'{ordinal_to_date(value).isoformat()}'"
    if isinstance(value, str):
        return f"'{value}'"
    if isinstance(value, datetime.date):  # pragma: no cover - defensive
        return f"'{value.isoformat()}'"
    if isinstance(value, float):
        return repr(value)
    return str(value)
