"""Recursive-descent parser for the supported SQL dialect.

Grammar (informal)::

    query     := SELECT select_list FROM table_list [WHERE conjuncts]
                 [GROUP BY columns] [ORDER BY order_items] [LIMIT n]
    select    := '*' | item (',' item)*
    item      := column | agg '(' (column | '*' | DISTINCT column) ')' [AS ident]
    conjuncts := predicate (AND predicate)*
    predicate := column op literal | literal op column | column op column
               | column BETWEEN literal AND literal
               | column IN '(' literal (',' literal)* ')'

Only conjunctions are supported -- the same restriction the paper's
workload model makes (COLT mines conjunctive selection predicates).
"""

from __future__ import annotations

from typing import List, Optional

from repro.sql.ast import (
    AggFunc,
    Aggregate,
    BetweenPredicate,
    ColumnExpr,
    CompareOp,
    ComparisonPredicate,
    InPredicate,
    JoinPredicate,
    OrderItem,
    Query,
    SelectItem,
)
from repro.sql.lexer import Token, TokenType, tokenize


class ParseError(ValueError):
    """Raised when the input does not conform to the grammar."""


_AGG_NAMES = {f.value for f in AggFunc}


class _Parser:
    def __init__(self, sql: str) -> None:
        self._sql = sql
        self._tokens = tokenize(sql)
        self._pos = 0

    # -- token helpers -------------------------------------------------
    def _peek(self) -> Token:
        return self._tokens[self._pos]

    def _next(self) -> Token:
        tok = self._tokens[self._pos]
        self._pos += 1
        return tok

    def _accept(self, ttype: TokenType, value: Optional[str] = None) -> Optional[Token]:
        tok = self._peek()
        if tok.type is ttype and (value is None or tok.value == value):
            return self._next()
        return None

    def _expect(self, ttype: TokenType, value: Optional[str] = None) -> Token:
        tok = self._accept(ttype, value)
        if tok is None:
            got = self._peek()
            want = value or ttype.value
            raise ParseError(
                f"expected {want!r} at offset {got.pos}, got {got.value!r}"
            )
        return tok

    # -- grammar -------------------------------------------------------
    def parse(self) -> Query:
        self._expect(TokenType.KEYWORD, "select")
        select = self._select_list()
        self._expect(TokenType.KEYWORD, "from")
        tables = self._table_list()
        filters: List[object] = []
        joins: List[JoinPredicate] = []
        if self._accept(TokenType.KEYWORD, "where"):
            self._conjuncts(filters, joins)
        group_by: List[ColumnExpr] = []
        if self._accept(TokenType.KEYWORD, "group"):
            self._expect(TokenType.KEYWORD, "by")
            group_by.append(self._column())
            while self._accept(TokenType.PUNCT, ","):
                group_by.append(self._column())
        order_by: List[OrderItem] = []
        if self._accept(TokenType.KEYWORD, "order"):
            self._expect(TokenType.KEYWORD, "by")
            order_by.append(self._order_item())
            while self._accept(TokenType.PUNCT, ","):
                order_by.append(self._order_item())
        limit = None
        if self._accept(TokenType.KEYWORD, "limit"):
            tok = self._expect(TokenType.NUMBER)
            limit = int(tok.value)
        self._expect(TokenType.EOF)
        return Query(
            tables=tables,
            select=select,
            filters=filters,
            joins=joins,
            group_by=group_by,
            order_by=order_by,
            limit=limit,
            text=self._sql,
        )

    def _select_list(self) -> List[SelectItem]:
        if self._accept(TokenType.PUNCT, "*"):
            return []
        items = [self._select_item()]
        while self._accept(TokenType.PUNCT, ","):
            items.append(self._select_item())
        return items

    def _select_item(self) -> SelectItem:
        tok = self._peek()
        if tok.type is TokenType.KEYWORD and tok.value in _AGG_NAMES:
            self._next()
            self._expect(TokenType.PUNCT, "(")
            func = AggFunc(tok.value)
            if self._accept(TokenType.PUNCT, "*"):
                arg = None
                if func is not AggFunc.COUNT:
                    raise ParseError(f"{func.value}(*) is not supported")
            else:
                self._accept(TokenType.KEYWORD, "distinct")
                arg = self._column()
            self._expect(TokenType.PUNCT, ")")
            expr: object = Aggregate(func=func, arg=arg)
        else:
            expr = self._column()
        alias = None
        if self._accept(TokenType.KEYWORD, "as"):
            alias = self._expect(TokenType.IDENT).value
        return SelectItem(expr=expr, alias=alias)

    def _table_list(self) -> List[str]:
        tables = [self._expect(TokenType.IDENT).value]
        while self._accept(TokenType.PUNCT, ","):
            name = self._expect(TokenType.IDENT).value
            if name in tables:
                raise ParseError(f"table {name!r} referenced twice (self-joins unsupported)")
            tables.append(name)
        return tables

    def _conjuncts(self, filters: List[object], joins: List[JoinPredicate]) -> None:
        self._predicate(filters, joins)
        while self._accept(TokenType.KEYWORD, "and"):
            self._predicate(filters, joins)

    def _predicate(self, filters: List[object], joins: List[JoinPredicate]) -> None:
        tok = self._peek()
        if tok.type in (TokenType.NUMBER, TokenType.STRING):
            # literal op column  →  normalize to column op literal
            literal = self._literal()
            op_tok = self._expect(TokenType.OP)
            column = self._column()
            op = _parse_op(op_tok.value).flipped()
            filters.append(ComparisonPredicate(column=column, op=op, value=literal))
            return

        column = self._column()
        if self._accept(TokenType.KEYWORD, "between"):
            low = self._literal()
            self._expect(TokenType.KEYWORD, "and")
            high = self._literal()
            filters.append(BetweenPredicate(column=column, low=low, high=high))
            return
        if self._accept(TokenType.KEYWORD, "in"):
            self._expect(TokenType.PUNCT, "(")
            values = [self._literal()]
            while self._accept(TokenType.PUNCT, ","):
                values.append(self._literal())
            self._expect(TokenType.PUNCT, ")")
            filters.append(InPredicate(column=column, values=tuple(values)))
            return

        op_tok = self._expect(TokenType.OP)
        op = _parse_op(op_tok.value)
        rhs = self._peek()
        if rhs.type is TokenType.IDENT:
            right = self._column()
            if op is not CompareOp.EQ:
                raise ParseError(
                    f"only equi-joins are supported, got {op.value!r} at offset {op_tok.pos}"
                )
            joins.append(JoinPredicate(left=column, right=right))
        else:
            filters.append(
                ComparisonPredicate(column=column, op=op, value=self._literal())
            )

    def _column(self) -> ColumnExpr:
        first = self._expect(TokenType.IDENT).value
        if self._accept(TokenType.PUNCT, "."):
            second = self._expect(TokenType.IDENT).value
            return ColumnExpr(column=second, table=first)
        return ColumnExpr(column=first)

    def _order_item(self) -> OrderItem:
        column = self._column()
        descending = False
        if self._accept(TokenType.KEYWORD, "desc"):
            descending = True
        else:
            self._accept(TokenType.KEYWORD, "asc")
        return OrderItem(column=column, descending=descending)

    def _literal(self):
        tok = self._next()
        if tok.type is TokenType.NUMBER:
            if "." in tok.value:
                return float(tok.value)
            return int(tok.value)
        if tok.type is TokenType.STRING:
            return tok.value
        raise ParseError(f"expected literal at offset {tok.pos}, got {tok.value!r}")


def _parse_op(text: str) -> CompareOp:
    if text == "!=":
        return CompareOp.NE
    return CompareOp(text)


def parse_query(sql: str) -> Query:
    """Parse a SQL string into an analyzed :class:`Query`.

    Raises:
        ParseError: if the input does not conform to the grammar.
    """
    return _Parser(sql).parse()
