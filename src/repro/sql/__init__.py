"""SQL front end: lexer, abstract syntax tree, and recursive-descent parser.

The dialect covers the query shapes the paper's workloads exercise:
conjunctive select-project-join queries with range/equality/IN predicates,
optional aggregation, grouping, ordering and LIMIT.
"""

from repro.sql.ast import (
    Aggregate,
    BetweenPredicate,
    ColumnExpr,
    ComparisonPredicate,
    InPredicate,
    JoinPredicate,
    OrderItem,
    Query,
    SelectItem,
)
from repro.sql.parser import ParseError, parse_query

__all__ = [
    "Aggregate",
    "BetweenPredicate",
    "ColumnExpr",
    "ComparisonPredicate",
    "InPredicate",
    "JoinPredicate",
    "OrderItem",
    "ParseError",
    "Query",
    "SelectItem",
    "parse_query",
]
