"""Scan iterators: sequential heap scan and B+tree index scan."""

from __future__ import annotations

from typing import Iterator, List

from repro.engine.storage import HeapTable, PhysicalStore
from repro.executor.predicates import Row, eval_filters
from repro.optimizer.plan import IndexScanNode, SeqScanNode


def _heap_row(heap: HeapTable, table: str, rid: int) -> Row:
    names = heap.column_names
    return {(table, name): heap.value(rid, name) for name in names}


def view_scan(store: PhysicalStore, node) -> Iterator[Row]:
    """Scan a materialized view's heap, applying the node's filters.

    Rows are keyed by the *base table* name so that filters, joins and
    projections written against the base table evaluate unchanged.

    Raises:
        RuntimeError: if the view was registered in the catalog but
            never physically materialized.
    """
    heap = store.view_heap(node.view.name)
    if heap is None:
        raise RuntimeError(
            f"view {node.view.name} has no physical rows; "
            "was it materialized through the store?"
        )
    names = heap.column_names
    for _rid, values in heap.scan():
        row = {(node.table, name): v for name, v in zip(names, values)}
        if eval_filters(node.filters, row):
            yield row


def seq_scan(store: PhysicalStore, node: SeqScanNode) -> Iterator[Row]:
    """Scan a heap sequentially, applying the node's filters."""
    heap = store.heap(node.table)
    names = heap.column_names
    for rid, values in heap.scan():
        row = {(node.table, name): v for name, v in zip(names, values)}
        if eval_filters(node.filters, row):
            yield row


def index_scan(
    store: PhysicalStore, node: IndexScanNode, bind_key=None
) -> Iterator[Row]:
    """Scan via a B+tree, fetching matching heap rows.

    Args:
        store: Physical store resolving the index and heap.
        node: The index scan plan node.
        bind_key: Runtime lookup key for a parameterized scan (inner side
            of an index nested loop).  Required iff the node is
            parameterized.

    Raises:
        RuntimeError: if the index has no physical tree (materialized in
            the catalog but never built), or if a parameterized node is
            executed without a key.
    """
    tree = store.tree(node.index)
    if tree is None:
        raise RuntimeError(
            f"index {node.index.name} has no physical B+tree; "
            "was it materialized through the scheduler?"
        )
    heap = store.heap(node.table)

    rids = _matching_rids(tree, node, bind_key)
    for rid in rids:
        row = _heap_row(heap, node.table, rid)
        if eval_filters(node.residual, row):
            yield row


def _matching_rids(tree, node: IndexScanNode, bind_key) -> Iterator[int]:
    if node.parameterized_by is not None:
        if bind_key is None:
            raise RuntimeError(
                f"parameterized index scan on {node.index.name} executed "
                "without a lookup key"
            )
        yield from tree.search(bind_key)
        return
    if node.index.is_composite:
        yield from _composite_rids(tree, node)
        return
    if node.lookup_value is not None:
        yield from tree.search(node.lookup_value)
        return
    if node.in_values is not None:
        seen: List[int] = []
        for value in node.in_values:
            seen.extend(tree.search(value))
        yield from seen
        return
    for _key, rid in tree.range_scan(
        low=node.range_low,
        high=node.range_high,
        low_inclusive=node.low_inclusive,
        high_inclusive=node.high_inclusive,
    ):
        yield rid


def _composite_rids(tree, node: IndexScanNode) -> Iterator[int]:
    """Row ids from a composite (multi-column) index scan.

    Keys in composite trees are tuples in key-column order.  The plan
    node provides equality values for the leading ``prefix_values``
    columns; any further bounds apply to the key column right after the
    prefix.  Tuple ordering makes a prefix ``p`` sort immediately before
    every full key extending it, so scans seed at ``p`` and stop as soon
    as the prefix (or the bounded column) is exceeded.
    """
    prefix = tuple(node.prefix_values)
    if node.lookup_value is not None:
        yield from tree.search(prefix + (node.lookup_value,))
        return
    if node.in_values is not None:
        for value in node.in_values:
            yield from tree.search(prefix + (value,))
        return

    position = len(prefix)
    low = prefix
    if node.range_low is not None:
        low = prefix + (node.range_low,)
    for key, rid in tree.range_scan(low=low if low else None):
        if key[:position] != prefix:
            break  # moved past the prefix (scan starts inside it)
        if position < len(key):
            value = key[position]
            if node.range_low is not None:
                if value < node.range_low:
                    continue
                if value == node.range_low and not node.low_inclusive:
                    continue
            if node.range_high is not None:
                if value > node.range_high:
                    break
                if value == node.range_high and not node.high_inclusive:
                    continue
        yield rid


def lookup_rows(
    store: PhysicalStore, node: IndexScanNode, key
) -> Iterator[Row]:
    """Fetch the inner rows of a parameterized scan for one outer key."""
    yield from index_scan(store, node, bind_key=key)
