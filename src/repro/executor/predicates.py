"""Runtime predicate evaluation over executor rows.

Rows are dictionaries keyed by ``(table, column)``.  These evaluators are
shared by scans (filter application), joins (equi-key comparison), and
tests that cross-check index plans against sequential plans.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.sql.ast import (
    BetweenPredicate,
    CompareOp,
    ComparisonPredicate,
    InPredicate,
    JoinPredicate,
)

Row = Dict[Tuple[str, str], object]


def column_value(row: Row, column) -> object:
    """Fetch a bound column's value from a row.

    Raises:
        KeyError: if the column is not present in the row.
    """
    return row[(column.table, column.column)]


def eval_filter(pred, row: Row) -> bool:
    """Evaluate one single-table predicate against a row.

    Raises:
        TypeError: for unsupported predicate types.
    """
    value = column_value(row, pred.column)
    if isinstance(pred, ComparisonPredicate):
        return _compare(pred.op, value, pred.value)
    if isinstance(pred, BetweenPredicate):
        return pred.low <= value <= pred.high
    if isinstance(pred, InPredicate):
        return value in pred.values
    raise TypeError(f"unsupported predicate type {type(pred).__name__}")


def eval_filters(preds, row: Row) -> bool:
    """Evaluate a conjunction of predicates."""
    return all(eval_filter(p, row) for p in preds)


def eval_join(join: JoinPredicate, row: Row) -> bool:
    """Evaluate an equi-join predicate against a combined row."""
    return column_value(row, join.left) == column_value(row, join.right)


def _compare(op: CompareOp, left, right) -> bool:
    if op is CompareOp.EQ:
        return left == right
    if op is CompareOp.NE:
        return left != right
    if op is CompareOp.LT:
        return left < right
    if op is CompareOp.LE:
        return left <= right
    if op is CompareOp.GT:
        return left > right
    return left >= right
