"""Pipeline operators: sort, aggregate, project, limit."""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, List, Tuple

from repro.executor.predicates import Row, column_value
from repro.optimizer.plan import (
    AggregateNode,
    LimitNode,
    ProjectNode,
    SortNode,
)
from repro.sql.ast import AggFunc, Aggregate, SelectItem


def sort_rows(node: SortNode, source: Iterator[Row]) -> Iterator[Row]:
    """Full sort honoring per-key ASC/DESC.

    Implemented as a stable multi-pass sort from the least significant
    key to the most significant, so mixed directions are handled without
    key transformation tricks (values may be strings).
    """
    rows = list(source)
    for item in reversed(node.keys):
        rows.sort(
            key=lambda r, c=item.column: column_value(r, c),
            reverse=item.descending,
        )
    return iter(rows)


def limit_rows(node: LimitNode, source: Iterator[Row]) -> Iterator[Row]:
    """Stop after the node's row limit."""
    return itertools.islice(source, node.limit)


def project_rows(node: ProjectNode, source: Iterator[Row]) -> Iterator[Tuple]:
    """Emit output tuples in SELECT-list order."""
    columns = [item.expr for item in node.output]
    for row in source:
        yield tuple(column_value(row, c) for c in columns)


def star_rows(source: Iterator[Row]) -> Iterator[Tuple]:
    """Emit full rows (SELECT *) in a deterministic column order."""
    for row in source:
        yield tuple(row[key] for key in sorted(row.keys()))


class _AggState:
    """Incremental state for one aggregate within one group."""

    __slots__ = ("func", "count", "total", "extreme")

    def __init__(self, func: AggFunc) -> None:
        self.func = func
        self.count = 0
        self.total = 0.0
        self.extreme = None

    def update(self, value) -> None:
        self.count += 1
        if self.func in (AggFunc.SUM, AggFunc.AVG):
            self.total += value
        elif self.func is AggFunc.MIN:
            self.extreme = value if self.extreme is None else min(self.extreme, value)
        elif self.func is AggFunc.MAX:
            self.extreme = value if self.extreme is None else max(self.extreme, value)

    def result(self):
        if self.func is AggFunc.COUNT:
            return self.count
        if self.func is AggFunc.SUM:
            return self.total if self.count else None
        if self.func is AggFunc.AVG:
            return self.total / self.count if self.count else None
        return self.extreme


def aggregate_rows(node: AggregateNode, source: Iterator[Row]) -> Iterator[Tuple]:
    """Hash aggregation producing output tuples in SELECT-list order.

    Groups are keyed by the GROUP BY columns; with no grouping a single
    global group is emitted (even over empty input, matching SQL
    semantics for aggregates without GROUP BY).
    """
    groups: Dict[Tuple, List[_AggState]] = {}
    group_rows: Dict[Tuple, Row] = {}

    def new_states() -> List[_AggState]:
        return [_AggState(agg.func) for agg in node.aggregates]

    saw_input = False
    for row in source:
        saw_input = True
        key = tuple(column_value(row, c) for c in node.group_by)
        states = groups.get(key)
        if states is None:
            states = new_states()
            groups[key] = states
            group_rows[key] = row
        for agg, state in zip(node.aggregates, states):
            if agg.arg is None:
                state.update(1)
            else:
                state.update(column_value(row, agg.arg))

    if not node.group_by and not saw_input:
        groups[()] = new_states()
        group_rows[()] = {}

    for key, states in groups.items():
        results = {
            id(agg): state.result() for agg, state in zip(node.aggregates, states)
        }
        yield _output_tuple(node.output, group_rows[key], node.aggregates, results)


def _output_tuple(
    output: List[SelectItem], row: Row, aggregates: List[Aggregate], results: Dict
) -> Tuple:
    values = []
    for item in output:
        if isinstance(item.expr, Aggregate):
            # Match by position among equal aggregates via identity first,
            # falling back to structural equality for parsed duplicates.
            if id(item.expr) in results:
                values.append(results[id(item.expr)])
            else:
                match = next(a for a in aggregates if a == item.expr)
                values.append(results[id(match)])
        else:
            values.append(column_value(row, item.expr))
    return tuple(values)
