"""Plan-to-iterator dispatch and the public execution entry points."""

from __future__ import annotations

from typing import Iterator, List, Tuple

from repro.engine.storage import PhysicalStore
from repro.executor.joins import hash_join, nested_loop
from repro.executor.operators import (
    aggregate_rows,
    limit_rows,
    project_rows,
    sort_rows,
    star_rows,
)
from repro.executor.predicates import Row
from repro.executor.scans import index_scan, seq_scan, view_scan
from repro.optimizer.optimizer import Optimizer
from repro.optimizer.plan import (
    AggregateNode,
    HashJoinNode,
    IndexScanNode,
    LimitNode,
    NestedLoopNode,
    PlanNode,
    ProjectNode,
    SeqScanNode,
    SortNode,
    ViewScanNode,
)
from repro.sql.ast import Query


def _rows(plan: PlanNode, store: PhysicalStore) -> Iterator[Row]:
    """Recursive row-iterator construction for row-producing nodes."""
    if isinstance(plan, SeqScanNode):
        return seq_scan(store, plan)
    if isinstance(plan, IndexScanNode):
        return index_scan(store, plan)
    if isinstance(plan, ViewScanNode):
        return view_scan(store, plan)
    if isinstance(plan, HashJoinNode):
        return hash_join(
            plan,
            probe=lambda: _rows(plan.probe, store),
            build=lambda: _rows(plan.build, store),
        )
    if isinstance(plan, NestedLoopNode):
        return nested_loop(
            plan,
            store,
            outer=lambda: _rows(plan.outer, store),
            inner=lambda: _rows(plan.inner, store),
        )
    if isinstance(plan, SortNode):
        return sort_rows(plan, _rows(plan.child, store))
    if isinstance(plan, LimitNode):
        return limit_rows(plan, _rows(plan.child, store))
    raise TypeError(f"node {type(plan).__name__} does not produce raw rows")


def execute(plan: PlanNode, store: PhysicalStore) -> List[Tuple]:
    """Execute a physical plan and return the result tuples.

    Projection and aggregation nodes convert the row stream into output
    tuples; Sort/Limit above them reorder or truncate the tuple list by
    output position.  Plans without a projection root emit full rows in
    deterministic column order (SELECT *).
    """
    if isinstance(plan, ProjectNode):
        return list(project_rows(plan, _rows(plan.child, store)))
    if isinstance(plan, AggregateNode):
        return list(aggregate_rows(plan, _rows(plan.child, store)))
    if isinstance(plan, LimitNode) and _produces_tuples(plan.child):
        return execute(plan.child, store)[: plan.limit]
    if isinstance(plan, SortNode) and _produces_tuples(plan.child):
        tuples = execute(plan.child, store)
        output = _output_items(plan.child)
        for item in reversed(plan.keys):
            position = _output_position(output, item.column)
            tuples.sort(key=lambda t, p=position: t[p], reverse=item.descending)
        return tuples
    return list(star_rows(_rows(plan, store)))


def _produces_tuples(node: PlanNode) -> bool:
    """Whether a node emits output tuples rather than raw rows."""
    if isinstance(node, (ProjectNode, AggregateNode)):
        return True
    if isinstance(node, (SortNode, LimitNode)):
        return _produces_tuples(node.child)
    return False


def _output_items(node: PlanNode):
    if isinstance(node, (ProjectNode, AggregateNode)):
        return node.output
    return _output_items(node.child)


def _output_position(output, column) -> int:
    for i, item in enumerate(output):
        if item.expr == column:
            return i
    raise ValueError(
        f"ORDER BY column {column} does not appear in the SELECT list"
    )


def execute_query(query: Query, store: PhysicalStore) -> List[Tuple]:
    """Optimize a bound query against the store's catalog and execute it."""
    optimizer = Optimizer(store.catalog)
    result = optimizer.optimize(query)
    return execute(result.plan, store)
