"""Execution instrumentation: physical work counters.

``CountingStore`` wraps a :class:`~repro.engine.storage.PhysicalStore`
and counts the physical operations the executor performs -- heap rows
fetched, B+tree descents, index entries touched.  It exists for two
purposes:

* **cost-model validation** -- tests check that plans the optimizer
  deems cheaper really do less physical work on data;
* **EXPLAIN ANALYZE-style reporting** -- examples can show the actual
  row counts behind a plan.

The wrapper is transparent: any plan that executes against the
underlying store executes identically against the counting store.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator, Optional, Tuple

from repro.engine.btree import BPlusTree
from repro.engine.index import IndexDef
from repro.engine.storage import HeapTable, PhysicalStore


@dataclasses.dataclass
class ExecutionCounters:
    """Physical operation counts accumulated during execution.

    Attributes:
        heap_rows_read: Heap tuples materialized (full-row or per-scan).
        heap_cells_read: Individual cell fetches (point accesses).
        index_searches: B+tree point lookups (descents).
        index_entries_read: (key, rid) entries produced by index scans.
    """

    heap_rows_read: int = 0
    heap_cells_read: int = 0
    index_searches: int = 0
    index_entries_read: int = 0

    def reset(self) -> None:
        """Zero all counters."""
        self.heap_rows_read = 0
        self.heap_cells_read = 0
        self.index_searches = 0
        self.index_entries_read = 0

    @property
    def total_physical_ops(self) -> int:
        """A single roll-up useful for coarse comparisons."""
        return (
            self.heap_rows_read
            + self.heap_cells_read
            + self.index_searches
            + self.index_entries_read
        )


class _CountingHeap:
    """Heap proxy that counts row and cell fetches."""

    def __init__(self, heap: HeapTable, counters: ExecutionCounters) -> None:
        self._heap = heap
        self._counters = counters

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def definition(self):
        return self._heap.definition

    @property
    def column_names(self):
        return self._heap.column_names

    def column(self, name: str):
        return self._heap.column(name)

    def value(self, rid: int, column: str):
        self._counters.heap_cells_read += 1
        return self._heap.value(rid, column)

    def row(self, rid: int) -> Tuple:
        self._counters.heap_rows_read += 1
        return self._heap.row(rid)

    def scan(self) -> Iterator[Tuple[int, Tuple]]:
        for rid, row in self._heap.scan():
            self._counters.heap_rows_read += 1
            yield rid, row


class _CountingTree:
    """B+tree proxy that counts lookups and entries."""

    def __init__(self, tree: BPlusTree, counters: ExecutionCounters) -> None:
        self._tree = tree
        self._counters = counters

    def __len__(self) -> int:
        return len(self._tree)

    def search(self, key):
        self._counters.index_searches += 1
        rids = self._tree.search(key)
        self._counters.index_entries_read += len(rids)
        return rids

    def range_scan(self, *args, **kwargs):
        self._counters.index_searches += 1
        for item in self._tree.range_scan(*args, **kwargs):
            self._counters.index_entries_read += 1
            yield item


class CountingStore:
    """A :class:`PhysicalStore` facade with operation counting.

    Pass this wherever a ``PhysicalStore`` is accepted by the executor;
    read the accumulated work from :attr:`counters`.
    """

    def __init__(self, store: PhysicalStore) -> None:
        self._store = store
        self.counters = ExecutionCounters()

    @property
    def catalog(self):
        """The underlying catalog (shared, not copied)."""
        return self._store.catalog

    def heap(self, table: str) -> _CountingHeap:
        """A counting proxy over the named heap."""
        return _CountingHeap(self._store.heap(table), self.counters)

    def has_heap(self, table: str) -> bool:
        """Whether the underlying store has rows for this table."""
        return self._store.has_heap(table)

    def tree(self, index: IndexDef) -> Optional[_CountingTree]:
        """A counting proxy over the index's B+tree, if built."""
        tree = self._store.tree(index)
        if tree is None:
            return None
        return _CountingTree(tree, self.counters)

    def view_heap(self, name: str) -> Optional[_CountingHeap]:
        """A counting proxy over a materialized view's heap, if built."""
        heap = self._store.view_heap(name)
        if heap is None:
            return None
        return _CountingHeap(heap, self.counters)
