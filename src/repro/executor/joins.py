"""Join iterators: hash join and nested loops (plain and index-driven)."""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Tuple

from repro.engine.storage import PhysicalStore
from repro.executor.predicates import Row, column_value, eval_join
from repro.executor.scans import lookup_rows
from repro.optimizer.plan import HashJoinNode, IndexScanNode, NestedLoopNode

RowIter = Iterator[Row]
Source = Callable[[], RowIter]


def hash_join(node: HashJoinNode, probe: Source, build: Source) -> RowIter:
    """Classic in-memory hash join on the node's equi-join keys.

    The build side is fully materialized into a hash table keyed by the
    tuple of join values; probe rows stream through.
    """
    build_keys, probe_keys = _split_keys(node)
    table: Dict[Tuple, List[Row]] = {}
    for row in build():
        key = tuple(column_value(row, c) for c in build_keys)
        table.setdefault(key, []).append(row)
    for row in probe():
        key = tuple(column_value(row, c) for c in probe_keys)
        for match in table.get(key, ()):
            yield {**row, **match}


def nested_loop(
    node: NestedLoopNode, store: PhysicalStore, outer: Source, inner: Source
) -> RowIter:
    """Nested-loop join.

    When the inner plan is a parameterized index scan, each outer row
    drives a point lookup on the inner B+tree (index nested loop).
    Otherwise the inner input is materialized once and joined by
    predicate evaluation; with no join predicates this degenerates to the
    cartesian product the planner's fallback uses for disconnected join
    graphs.
    """
    if (
        isinstance(node.inner, IndexScanNode)
        and node.inner.parameterized_by is not None
    ):
        outer_col = node.inner.parameterized_by
        for outer_row in outer():
            key = column_value(outer_row, outer_col)
            for inner_row in lookup_rows(store, node.inner, key):
                combined = {**outer_row, **inner_row}
                if all(eval_join(j, combined) for j in node.joins):
                    yield combined
        return

    inner_rows = list(inner())
    for outer_row in outer():
        for inner_row in inner_rows:
            combined = {**outer_row, **inner_row}
            if all(eval_join(j, combined) for j in node.joins):
                yield combined


def _split_keys(node: HashJoinNode):
    """Join columns per side, ordered consistently across the key tuples."""
    probe_tables = node.probe.tables()
    build_keys = []
    probe_keys = []
    for join in node.joins:
        if join.left.table in probe_tables:
            probe_keys.append(join.left)
            build_keys.append(join.right)
        else:
            probe_keys.append(join.right)
            build_keys.append(join.left)
    return build_keys, probe_keys
