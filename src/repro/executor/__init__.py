"""Volcano-style query executor.

Mirrors the optimizer's plan tree one-to-one with pull-based iterators
over the physical store.  Rows flow through the tree as dictionaries
keyed by ``(table, column)`` pairs, which makes predicate evaluation and
join-key extraction uniform regardless of plan shape.

The executor exists so the reproduction is a *database*, not just a cost
model: examples and integration tests run queries for real and check that
index-assisted plans return the same rows as sequential plans.
"""

from repro.executor.executor import execute, execute_query
from repro.executor.instrument import CountingStore, ExecutionCounters

__all__ = ["CountingStore", "ExecutionCounters", "execute", "execute_query"]
