"""Persistence: snapshot and restore a tuner's learned state.

A production on-line tuner must survive server restarts without
re-learning the workload from scratch.  This module serializes the
durable parts of a :class:`~repro.core.colt.ColtTuner` -- the
materialized and hot sets, per-index benefit histories, candidate
statistics, and the current what-if budget -- to a plain JSON-compatible
dictionary, and restores them into a fresh tuner over a structurally
equivalent catalog.

What is deliberately *not* persisted: per-(index, cluster) gain samples.
Their validity is tied to the precise materialized configuration and to
live cluster identities; after a restart the profiler re-gathers them
quickly, guided by the restored benefit histories.

Usage::

    snapshot = snapshot_tuner(tuner)
    save_json("colt_state.json", snapshot)
    ...
    tuner = restore_tuner(catalog, load_json("colt_state.json"))
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, Optional, Union

from repro.core.colt import ColtTuner
from repro.core.config import ColtConfig
from repro.core.forecast import BenefitHistory
from repro.engine.catalog import Catalog
from repro.engine.storage import PhysicalStore

SNAPSHOT_VERSION = 1


class SnapshotError(ValueError):
    """Raised when a snapshot cannot be produced or restored."""


def snapshot_tuner(tuner: ColtTuner) -> Dict:
    """Serialize a tuner's durable state to a JSON-compatible dict."""
    so = tuner.self_organizer
    candidates = []
    for stats in tuner.profiler.candidates.ranked():
        candidates.append(
            {
                "table": stats.index.table,
                "columns": list(stats.index.columns),
                "window": list(stats._window),  # noqa: SLF001 - owner module
                "smoothed": stats.smoothed_benefit,
            }
        )
    return {
        "version": SNAPSHOT_VERSION,
        "config": _config_to_dict(tuner.config),
        "materialized": [
            [ix.table, list(ix.columns)] for ix in tuner.materialized_set
        ],
        "hot": [[ix.table, list(ix.columns)] for ix in tuner.hot_set],
        "histories": {
            "low": {
                _key_text(t, cols): h.values()
                for (t, cols), h in so._history.items()
            },
            "high": {
                _key_text(t, cols): h.values()
                for (t, cols), h in so._high_history.items()
            },
            "measured": {
                _key_text(t, cols): n for (t, cols), n in so._measured.items()
            },
        },
        "candidates": candidates,
        "whatif_budget": tuner.profiler.whatif_budget,
    }


def restore_tuner(
    catalog: Catalog,
    snapshot: Dict,
    store: Optional[PhysicalStore] = None,
) -> ColtTuner:
    """Rebuild a tuner from a snapshot over an equivalent catalog.

    Restored materialized indexes are re-registered in the catalog (and,
    when a physical store is given, physically rebuilt) without charging
    build cost -- they already exist on disk in the scenario this models.

    Raises:
        SnapshotError: on version mismatch or references to tables or
            columns absent from the catalog.
    """
    if snapshot.get("version") != SNAPSHOT_VERSION:
        raise SnapshotError(
            f"unsupported snapshot version {snapshot.get('version')!r}"
        )
    config = _config_from_dict(snapshot["config"])
    tuner = ColtTuner(catalog, config, store=store)
    so = tuner.self_organizer

    for table, columns in snapshot["materialized"]:
        index = _resolve(catalog, table, columns)
        if store is not None:
            store.build_index(index)
        else:
            catalog.materialize_index(index)
        so.materialized.add(index)
    for table, columns in snapshot["hot"]:
        so.hot.add(_resolve(catalog, table, columns))

    h = config.history_epochs
    for kind, target in (("low", so._history), ("high", so._high_history)):
        for key_text, values in snapshot["histories"][kind].items():
            key = _parse_key(catalog, key_text)
            history = BenefitHistory(h)
            for value in values[-h:]:
                history.record(float(value))
            target[key] = history
    for key_text, count in snapshot["histories"]["measured"].items():
        so._measured[_parse_key(catalog, key_text)] = int(count)

    _restore_candidates(tuner, snapshot["candidates"], config)
    tuner.profiler.set_budget(int(snapshot["whatif_budget"]))
    return tuner


def save_json(path: Union[str, pathlib.Path], snapshot: Dict) -> None:
    """Write a snapshot to a JSON file."""
    pathlib.Path(path).write_text(json.dumps(snapshot, indent=1))


def load_json(path: Union[str, pathlib.Path]) -> Dict:
    """Read a snapshot from a JSON file."""
    return json.loads(pathlib.Path(path).read_text())


# ----------------------------------------------------------------------
def _config_to_dict(config: ColtConfig) -> Dict:
    import dataclasses

    return dataclasses.asdict(config)


def _config_from_dict(data: Dict) -> ColtConfig:
    return ColtConfig(**data)


def _key_text(table: str, columns) -> str:
    return f"{table}:{','.join(columns)}"


def _resolve(catalog: Catalog, table: str, columns):
    if isinstance(columns, str):
        columns = [columns]
    if not catalog.has_table(table):
        raise SnapshotError(f"snapshot references unknown table {table!r}")
    for column in columns:
        if not catalog.table(table).has_column(column):
            raise SnapshotError(
                f"snapshot references unknown column {table}.{column}"
            )
    if len(columns) == 1:
        return catalog.index_for(table, columns[0])
    return catalog.composite_index_for(table, columns)


def _parse_key(catalog: Catalog, text: str):
    table, _, rest = text.partition(":")
    columns = rest.split(",")
    index = _resolve(catalog, table, columns)
    return index.table, index.columns


def _restore_candidates(tuner: ColtTuner, entries, config: ColtConfig) -> None:
    from repro.core.candidates import CandidateStats

    tracker = tuner.profiler.candidates
    for entry in entries:
        index = _resolve(tuner.catalog, entry["table"], entry["columns"])
        stats = CandidateStats(index, config.history_epochs, config.smoothing)
        for value in entry["window"][-config.history_epochs :]:
            stats._window.append(float(value))  # noqa: SLF001
        stats._smoothed = float(entry["smoothed"])  # noqa: SLF001
        tracker._stats[(index.table, index.columns)] = stats  # noqa: SLF001
