"""Persistence: snapshot and restore a tuner's learned state.

A production on-line tuner must survive server restarts without
re-learning the workload from scratch.  This module serializes the
durable parts of a :class:`~repro.core.colt.ColtTuner` -- the
materialized and hot sets, per-index benefit histories, candidate
statistics, and the current what-if budget -- to a plain JSON-compatible
dictionary, and restores them into a fresh tuner over a structurally
equivalent catalog.

What is deliberately *not* persisted: per-(index, cluster) gain samples.
Their validity is tied to the precise materialized configuration and to
live cluster identities; after a restart the profiler re-gathers them
quickly, guided by the restored benefit histories.

Durability: :func:`save_json` writes atomically (temp file in the same
directory, ``fsync``, then ``os.replace``) and embeds a SHA-256 checksum
of the payload, so a crash mid-write can never leave a half-written
snapshot in place and silent corruption is detected on load.  Every
malformed-snapshot path -- truncated file, checksum mismatch, version
skew, unknown tables/columns, missing keys -- raises
:class:`SnapshotError`; :func:`load_or_quarantine` converts that into
"move the bad file aside and restart fresh" for callers that must come
up regardless.

Usage::

    snapshot = snapshot_tuner(tuner)
    save_json("colt_state.json", snapshot)
    ...
    tuner = restore_tuner(catalog, load_json("colt_state.json"))
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import tempfile
from typing import Dict, Optional, Union

from repro.core.colt import ColtTuner
from repro.core.config import ColtConfig
from repro.core.forecast import BenefitHistory
from repro.engine.catalog import Catalog
from repro.engine.storage import PhysicalStore
from repro.guardrails.manager import GuardrailManager
from repro.guardrails.verify import CostObserver

SNAPSHOT_VERSION = 1

#: Marker identifying the checksummed on-disk envelope format.
SNAPSHOT_FORMAT = "colt-snapshot"


class SnapshotError(ValueError):
    """Raised when a snapshot cannot be produced or restored."""


def snapshot_tuner(tuner: ColtTuner) -> Dict:
    """Serialize a tuner's durable state to a JSON-compatible dict.

    When a guardrail manager is attached its state rides along under a
    ``"guardrails"`` key (additive -- snapshots without it restore to a
    guardrail-free tuner), so a restart cannot amnesty a quarantined
    index.
    """
    so = tuner.self_organizer
    candidates = []
    for stats in tuner.profiler.candidates.ranked():
        candidates.append(
            {
                "table": stats.index.table,
                "columns": list(stats.index.columns),
                "window": list(stats._window),  # noqa: SLF001 - owner module
                "smoothed": stats.smoothed_benefit,
            }
        )
    return {
        "version": SNAPSHOT_VERSION,
        "config": _config_to_dict(tuner.config),
        "materialized": [
            [ix.table, list(ix.columns)] for ix in tuner.materialized_set
        ],
        "hot": [[ix.table, list(ix.columns)] for ix in tuner.hot_set],
        "histories": {
            "low": {
                _key_text(t, cols): h.values()
                for (t, cols), h in so._history.items()
            },
            "high": {
                _key_text(t, cols): h.values()
                for (t, cols), h in so._high_history.items()
            },
            "measured": {
                _key_text(t, cols): n for (t, cols), n in so._measured.items()
            },
        },
        "candidates": candidates,
        "whatif_budget": tuner.profiler.whatif_budget,
        **(
            {"guardrails": tuner.guardrails.to_snapshot()}
            if tuner.guardrails is not None
            else {}
        ),
    }


def restore_tuner(
    catalog: Catalog,
    snapshot: Dict,
    store: Optional[PhysicalStore] = None,
    observer: Optional[CostObserver] = None,
) -> ColtTuner:
    """Rebuild a tuner from a snapshot over an equivalent catalog.

    Restored materialized indexes are re-registered in the catalog (and,
    when a physical store is given, physically rebuilt) without charging
    build cost -- they already exist on disk in the scenario this models.
    A snapshot carrying guardrail state gets its guardrail manager back,
    quarantine clocks and all; ``observer`` re-attaches a live cost
    observer (observers hold stores and never serialize).

    Raises:
        SnapshotError: on version or engine-tag mismatch, references to
            tables or columns absent from the catalog, or any
            structurally malformed snapshot (missing keys, wrong value
            types).
    """
    if not isinstance(snapshot, dict):
        raise SnapshotError(f"snapshot must be a dict, got {type(snapshot).__name__}")
    if snapshot.get("version") != SNAPSHOT_VERSION:
        raise SnapshotError(
            f"unsupported snapshot version {snapshot.get('version')!r}"
        )
    engine = snapshot.get("engine", "colt")
    if engine != "colt":
        raise SnapshotError(
            f"engine mismatch: snapshot was written by the {engine!r} "
            "engine, but a 'colt' tuner was requested (use restore_any, "
            "or restore with the matching --engine)"
        )
    try:
        return _restore_tuner(catalog, snapshot, store, observer)
    except SnapshotError:
        raise
    except (KeyError, TypeError, ValueError, AttributeError) as exc:
        raise SnapshotError(f"malformed snapshot: {exc!r}") from exc


def _restore_tuner(
    catalog: Catalog,
    snapshot: Dict,
    store: Optional[PhysicalStore],
    observer: Optional[CostObserver] = None,
) -> ColtTuner:
    config = _config_from_dict(snapshot["config"])
    guardrails = None
    if "guardrails" in snapshot:
        guardrails = GuardrailManager.from_snapshot(
            snapshot["guardrails"], catalog, observer=observer
        )
    tuner = ColtTuner(catalog, config, store=store, guardrails=guardrails)
    so = tuner.self_organizer

    for table, columns in snapshot["materialized"]:
        index = _resolve(catalog, table, columns)
        if store is not None:
            store.build_index(index)
        else:
            catalog.materialize_index(index)
        so.materialized.add(index)
    for table, columns in snapshot["hot"]:
        so.hot.add(_resolve(catalog, table, columns))

    h = config.history_epochs
    for kind, target in (("low", so._history), ("high", so._high_history)):
        for key_text, values in snapshot["histories"][kind].items():
            key = _parse_key(catalog, key_text)
            history = BenefitHistory(h)
            for value in values[-h:]:
                history.record(float(value))
            target[key] = history
    for key_text, count in snapshot["histories"]["measured"].items():
        so._measured[_parse_key(catalog, key_text)] = int(count)

    _restore_candidates(tuner, snapshot["candidates"], config)
    tuner.profiler.set_budget(int(snapshot["whatif_budget"]))
    return tuner


def snapshot_any(tuner) -> Dict:
    """Serialize any supported tuner, tagging the snapshot's engine.

    COLT snapshots stay byte-identical to :func:`snapshot_tuner` output
    (no ``"engine"`` key -- old snapshots keep restoring); bandit
    snapshots carry ``"engine": "bandit"`` for dispatch on load.

    Raises:
        SnapshotError: for a tuner type no serializer knows.
    """
    if isinstance(tuner, ColtTuner):
        return snapshot_tuner(tuner)
    # Deferred import: repro.bandit imports repro.persist helpers.
    from repro.bandit.persist import snapshot_bandit_tuner
    from repro.bandit.tuner import BanditTuner

    if isinstance(tuner, BanditTuner):
        return snapshot_bandit_tuner(tuner)
    raise SnapshotError(
        f"no snapshot serializer for tuner type {type(tuner).__name__}"
    )


def restore_any(
    catalog: Catalog,
    snapshot: Dict,
    store: Optional[PhysicalStore] = None,
    observer: Optional[CostObserver] = None,
    engine: Optional[str] = None,
):
    """Restore whichever tuner engine wrote the snapshot.

    Dispatches on the snapshot's ``"engine"`` key: absent or ``"colt"``
    restores a :class:`~repro.core.colt.ColtTuner`, ``"bandit"``
    restores a :class:`~repro.bandit.tuner.BanditTuner`.

    Args:
        engine: Expected engine tag (``"colt"`` or ``"bandit"``); when
            given, a snapshot written by a different engine fails with
            a clear error instead of restoring the wrong tuner type.

    Raises:
        SnapshotError: for an unknown engine tag, a tag that does not
            match the requested ``engine``, or any malformed snapshot
            (same guarantees as the per-engine restorers).
    """
    if not isinstance(snapshot, dict):
        raise SnapshotError(f"snapshot must be a dict, got {type(snapshot).__name__}")
    tagged = snapshot.get("engine", "colt")
    if engine is not None and tagged != engine:
        raise SnapshotError(
            f"engine mismatch: snapshot was written by the {tagged!r} "
            f"engine, but --engine {engine} was requested"
        )
    if tagged == "colt":
        return restore_tuner(catalog, snapshot, store=store, observer=observer)
    if tagged == "bandit":
        from repro.bandit.persist import restore_bandit_tuner

        return restore_bandit_tuner(
            catalog, snapshot, store=store, observer=observer
        )
    raise SnapshotError(f"unknown snapshot engine {tagged!r}")


def checksum(snapshot: Dict) -> str:
    """SHA-256 over the snapshot's canonical JSON encoding."""
    canonical = json.dumps(snapshot, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def save_json(path: Union[str, pathlib.Path], snapshot: Dict) -> None:
    """Write a snapshot to a JSON file atomically, with a checksum.

    The bytes land in a temporary file in the destination directory,
    are fsynced, and only then renamed over the target with
    ``os.replace`` -- a crash at any point leaves either the old
    snapshot or the new one, never a torn file.
    """
    target = pathlib.Path(path)
    envelope = {
        "format": SNAPSHOT_FORMAT,
        "checksum": checksum(snapshot),
        "snapshot": snapshot,
    }
    data = json.dumps(envelope, indent=1)
    fd, tmp_name = tempfile.mkstemp(
        dir=str(target.parent) or ".", prefix=target.name, suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    # Persist the rename itself (best effort; not all filesystems
    # support fsync on directories).
    try:
        dir_fd = os.open(str(target.parent) or ".", os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(dir_fd)
    except OSError:
        pass
    finally:
        os.close(dir_fd)


def load_json(path: Union[str, pathlib.Path]) -> Dict:
    """Read and verify a snapshot from a JSON file.

    Accepts both the checksummed envelope written by :func:`save_json`
    and legacy bare-snapshot files (no checksum to verify).

    Raises:
        SnapshotError: if the file is unreadable, not valid JSON
            (e.g. truncated by a crash mid-write), or its embedded
            checksum does not match the payload.
    """
    p = pathlib.Path(path)
    try:
        text = p.read_text()
    except OSError as exc:
        raise SnapshotError(f"cannot read snapshot {p}: {exc}") from exc
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SnapshotError(f"corrupt snapshot {p}: {exc}") from exc
    if not isinstance(data, dict):
        raise SnapshotError(f"corrupt snapshot {p}: not a JSON object")
    if data.get("format") == SNAPSHOT_FORMAT:
        if "checksum" not in data or "snapshot" not in data:
            raise SnapshotError(f"corrupt snapshot {p}: incomplete envelope")
        snapshot = data["snapshot"]
        if checksum(snapshot) != data["checksum"]:
            raise SnapshotError(f"corrupt snapshot {p}: checksum mismatch")
        return snapshot
    # Legacy bare snapshot (pre-envelope format).
    return data


def load_or_quarantine(path: Union[str, pathlib.Path]) -> Optional[Dict]:
    """Load a snapshot, quarantining it instead of raising if corrupt.

    A malformed file is renamed to ``<name>.corrupt`` (``.corrupt.1``,
    ``.corrupt.2``, ... if that exists) next to the original so it can
    be inspected later, and None is returned -- the caller starts with
    a fresh tuner instead of crashing.  A missing file also returns
    None (nothing to quarantine).
    """
    p = pathlib.Path(path)
    if not p.exists():
        return None
    try:
        return load_json(p)
    except SnapshotError:
        quarantine = p.with_name(p.name + ".corrupt")
        n = 0
        while quarantine.exists():
            n += 1
            quarantine = p.with_name(f"{p.name}.corrupt.{n}")
        os.replace(p, quarantine)
        return None


# ----------------------------------------------------------------------
def _config_to_dict(config: ColtConfig) -> Dict:
    import dataclasses

    return dataclasses.asdict(config)


def _config_from_dict(data: Dict) -> ColtConfig:
    return ColtConfig(**data)


def _key_text(table: str, columns) -> str:
    return f"{table}:{','.join(columns)}"


def _resolve(catalog: Catalog, table: str, columns):
    if isinstance(columns, str):
        columns = [columns]
    if not catalog.has_table(table):
        raise SnapshotError(f"snapshot references unknown table {table!r}")
    for column in columns:
        if not catalog.table(table).has_column(column):
            raise SnapshotError(
                f"snapshot references unknown column {table}.{column}"
            )
    if len(columns) == 1:
        return catalog.index_for(table, columns[0])
    return catalog.composite_index_for(table, columns)


def _parse_key(catalog: Catalog, text: str):
    table, _, rest = text.partition(":")
    columns = rest.split(",")
    index = _resolve(catalog, table, columns)
    return index.table, index.columns


def _restore_candidates(tuner: ColtTuner, entries, config: ColtConfig) -> None:
    from repro.core.candidates import CandidateStats

    tracker = tuner.profiler.candidates
    for entry in entries:
        index = _resolve(tuner.catalog, entry["table"], entry["columns"])
        stats = CandidateStats(index, config.history_epochs, config.smoothing)
        for value in entry["window"][-config.history_epochs :]:
            stats._window.append(float(value))  # noqa: SLF001
        stats._smoothed = float(entry["smoothed"])  # noqa: SLF001
        tracker._stats[(index.table, index.columns)] = stats  # noqa: SLF001
