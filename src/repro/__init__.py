"""COLT: Continuous On-Line Tuning -- a full reproduction.

This package reproduces *On-Line Index Selection for Shifting Workloads*
(Schnaitter, Abiteboul, Milo, Polyzotis -- ICDE 2007) as a complete,
self-contained Python system:

* ``repro.engine`` -- the database substrate: catalog, statistics,
  columnar heaps, B+tree indexes.
* ``repro.sql`` -- SQL parsing and binding for conjunctive SPJ queries.
* ``repro.optimizer`` -- a Selinger-style cost-based optimizer with the
  what-if interface COLT profiles through.
* ``repro.executor`` -- a volcano-style executor, so tuned configurations
  can be exercised on real data, not just costed.
* ``repro.core`` -- COLT itself: two-level profiler, query clustering,
  CLT gain intervals, adaptive sampling, knapsack reorganization, and
  self-regulating what-if budgets.
* ``repro.baselines`` -- the idealized OFFLINE tuner the paper compares
  against.
* ``repro.workload`` -- the four-instance TPC-H data set of Table 1 and
  the stable / shifting / noisy workload generators of §6.
* ``repro.bench`` -- drivers regenerating every table and figure.

Quickstart::

    from repro import ColtConfig, ColtTuner, bind_query, parse_query
    from repro.workload import build_catalog

    catalog = build_catalog()
    tuner = ColtTuner(catalog, ColtConfig(storage_budget_pages=9_000))
    query = bind_query(
        parse_query("select l_orderkey from lineitem_1 "
                    "where l_shipdate between '1994-01-01' and '1994-01-07'"),
        catalog,
    )
    outcome = tuner.process_query(query)
"""

from repro.baselines import OfflineTuner
from repro.core import ColtConfig, ColtTuner
from repro.engine import Catalog, ColumnDef, DataType, IndexDef, TableDef
from repro.executor import execute, execute_query
from repro.optimizer import Optimizer, WhatIfOptimizer, explain
from repro.sql import parse_query
from repro.sql.binder import bind_query

__version__ = "0.1.0"

__all__ = [
    "Catalog",
    "ColtConfig",
    "ColtTuner",
    "ColumnDef",
    "DataType",
    "IndexDef",
    "OfflineTuner",
    "Optimizer",
    "TableDef",
    "WhatIfOptimizer",
    "bind_query",
    "execute",
    "execute_query",
    "explain",
    "parse_query",
]
