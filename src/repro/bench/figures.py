"""Experiment drivers: one function per table/figure of the paper.

Each function runs the full experiment and returns a small dataclass
holding exactly the series the paper plots, plus a ``to_text()`` renderer
the benchmark targets print.  EXPERIMENTS.md records paper-vs-measured
for each of these.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from repro.bench.harness import ColtRun, OfflineRun, bar_series, run_colt, run_offline
from repro.core.config import ColtConfig
from repro.workload.datagen import build_catalog
from repro.workload.experiments import (
    noise_distributions,
    phase_distributions,
    stable_distribution,
)
from repro.workload.phases import (
    Workload,
    noisy_workload,
    shifting_workload,
    stable_workload,
)
from repro.workload.tpch import DatasetSummary, dataset_summary

# Budget sized so that 3-6 of the stable workload's 18 relevant indexes
# fit (§6.2): lineitem indexes are ~3,277 pages, orders ~819, dimension
# indexes smaller.
DEFAULT_BUDGET_PAGES = 9_000.0
BAR_WIDTH = 50


def _config(budget: float, seed: int = 0) -> ColtConfig:
    return ColtConfig(storage_budget_pages=budget, seed=seed)


# ----------------------------------------------------------------------
# Table 1
# ----------------------------------------------------------------------
@dataclasses.dataclass
class Table1Result:
    """Data set characteristics (paper Table 1)."""

    summary: DatasetSummary
    paper: Dict[str, object]

    def to_text(self) -> str:
        """Render the measured-vs-paper comparison table."""
        s = self.summary
        rows = [
            ("Size (binary data)", f"{s.size_bytes / 2**30:.2f} GB", self.paper["size"]),
            ("# Tables", str(s.num_tables), self.paper["tables"]),
            ("# Tuples in all tables", f"{s.total_tuples:,}", self.paper["tuples"]),
            ("# Tuples in largest table", f"{s.max_table_tuples:,}", self.paper["max"]),
            ("# Tuples in smallest table", str(s.min_table_tuples), self.paper["min"]),
            ("# Indexable attributes", str(s.indexable_attributes), self.paper["attrs"]),
        ]
        lines = [f"{'characteristic':<28} {'measured':>14} {'paper':>12}"]
        lines += [f"{name:<28} {ours:>14} {paper:>12}" for name, ours, paper in rows]
        return "\n".join(lines)


def table1_dataset() -> Table1Result:
    """Reproduce Table 1: the data set characteristics."""
    return Table1Result(
        summary=dataset_summary(),
        paper={
            "size": "1.4 GB",
            "tables": "32",
            "tuples": "6,928,120",
            "max": "1,200,000",
            "min": "5",
            "attrs": "244",
        },
    )


# ----------------------------------------------------------------------
# Figures 3 and 4 share a bar-comparison structure
# ----------------------------------------------------------------------
@dataclasses.dataclass
class ComparisonResult:
    """COLT vs OFFLINE, summed into 50-query bars (Figures 3/4 format)."""

    name: str
    colt: ColtRun
    offline: OfflineRun
    colt_bars: List[float]
    offline_bars: List[float]

    @property
    def total_ratio(self) -> float:
        """COLT total cost / OFFLINE total cost over the whole workload."""
        return self.colt.total_cost / self.offline.total_cost

    def reduction_percent(self, start: int = 0, end: Optional[int] = None) -> float:
        """COLT's cost reduction vs OFFLINE over a query range (percent)."""
        colt = sum(self.colt.total_costs[start:end])
        off = sum(self.offline.per_query_costs[start:end])
        return (1.0 - colt / off) * 100.0

    def to_text(self) -> str:
        """Render the per-bar COLT-vs-OFFLINE comparison."""
        lines = [
            f"{self.name}: COLT vs OFFLINE per {BAR_WIDTH}-query bar",
            f"{'queries':>12} {'COLT':>12} {'OFFLINE':>12} {'winner':>8}",
        ]
        for i, (c, o) in enumerate(zip(self.colt_bars, self.offline_bars)):
            lo = i * BAR_WIDTH + 1
            hi = lo + BAR_WIDTH - 1
            winner = "COLT" if c < o else "OFFLINE"
            lines.append(f"{f'{lo}-{hi}':>12} {c:>12.0f} {o:>12.0f} {winner:>8}")
        lines.append(
            f"total: COLT {self.colt.total_cost:,.0f}  OFFLINE "
            f"{self.offline.total_cost:,.0f}  ratio {self.total_ratio:.3f}"
        )
        return "\n".join(lines)


def _compare(
    name: str,
    workload: Workload,
    budget: float,
    seed: int = 0,
    offline_tuning_queries: Optional[Sequence] = None,
) -> ComparisonResult:
    colt_run = run_colt(build_catalog(), workload.queries, _config(budget, seed))
    offline_run = run_offline(
        build_catalog(),
        workload.queries,
        budget,
        tuning_workload=offline_tuning_queries,
    )
    return ComparisonResult(
        name=name,
        colt=colt_run,
        offline=offline_run,
        colt_bars=bar_series(colt_run.total_costs, BAR_WIDTH),
        offline_bars=bar_series(offline_run.per_query_costs, BAR_WIDTH),
    )


def figure3_stable(
    length: int = 500,
    budget: float = DEFAULT_BUDGET_PAGES,
    seed: int = 0,
) -> ComparisonResult:
    """Reproduce Figure 3: on-line tuning for a stable workload.

    Expected shape: COLT pays extra during the first ~100 queries
    (monitoring + index builds), then matches OFFLINE within a few
    percent.
    """
    catalog = build_catalog()
    workload = stable_workload(stable_distribution(), length, catalog, seed=seed)
    return _compare("Figure 3 (stable workload)", workload, budget, seed)


def figure4_shifting(
    phase_length: int = 300,
    transition: int = 50,
    budget: float = DEFAULT_BUDGET_PAGES,
    seed: int = 0,
) -> ComparisonResult:
    """Reproduce Figure 4: on-line tuning for a shifting workload.

    Expected shape: COLT beats OFFLINE on most bars; the paper reports a
    49% reduction in phase 2 and 33% over the whole workload.
    """
    catalog = build_catalog()
    workload = shifting_workload(
        phase_distributions(),
        catalog,
        phase_length=phase_length,
        transition=transition,
        seed=seed,
    )
    return _compare("Figure 4 (shifting workload)", workload, budget, seed)


# ----------------------------------------------------------------------
# Figure 5
# ----------------------------------------------------------------------
@dataclasses.dataclass
class OverheadResult:
    """What-if calls per epoch over the shifting workload (Figure 5)."""

    whatif_per_epoch: List[int]
    budget_per_epoch: List[int]
    phase_boundaries_epochs: List[int]
    max_per_epoch: int
    profiled_indexes: int
    relevant_indexes: int

    @property
    def profiled_fraction(self) -> float:
        """Fraction of relevant indexes ever profiled (paper: ~11%)."""
        if self.relevant_indexes == 0:
            return 0.0
        return self.profiled_indexes / self.relevant_indexes

    def mean_calls(self, epochs: Sequence[int]) -> float:
        """Average what-if calls over a set of epoch indexes."""
        values = [self.whatif_per_epoch[e] for e in epochs if e < len(self.whatif_per_epoch)]
        return sum(values) / len(values) if values else 0.0

    def to_text(self) -> str:
        """Render the per-epoch what-if usage chart."""
        lines = ["Figure 5 (what-if calls per epoch; max "
                 f"{self.max_per_epoch}/epoch, transitions at epochs "
                 f"{self.phase_boundaries_epochs})"]
        for i, calls in enumerate(self.whatif_per_epoch):
            marker = " <- transition" if i in self.phase_boundaries_epochs else ""
            lines.append(f"epoch {i:3d}: {'#' * calls}{'' if calls else '.'} ({calls}){marker}")
        lines.append(
            f"profiled {self.profiled_indexes}/{self.relevant_indexes} relevant "
            f"indexes ({self.profiled_fraction * 100:.0f}%)"
        )
        return "\n".join(lines)


def figure5_overhead(
    phase_length: int = 300,
    transition: int = 50,
    budget: float = DEFAULT_BUDGET_PAGES,
    seed: int = 0,
) -> OverheadResult:
    """Reproduce Figure 5: self-regulating profiling overhead.

    Runs the Figure 4 workload and charts per-epoch what-if usage.
    Expected shape: peaks near the four distribution changes, less than
    half the budget elsewhere.
    """
    catalog = build_catalog()
    distributions = phase_distributions()
    workload = shifting_workload(
        distributions,
        catalog,
        phase_length=phase_length,
        transition=transition,
        seed=seed,
    )
    config = _config(budget, seed)
    colt_run = run_colt(build_catalog(), workload.queries, config)

    boundaries = workload.phase_boundaries()
    boundary_epochs = sorted({b // config.epoch_length for b in boundaries})
    relevant = set()
    for dist in distributions:
        relevant.update(
            (ix.table, ix.column) for ix in dist.relevant_indexes(catalog)
        )
    return OverheadResult(
        whatif_per_epoch=colt_run.whatif_per_epoch,
        budget_per_epoch=colt_run.budget_per_epoch,
        phase_boundaries_epochs=boundary_epochs,
        max_per_epoch=config.max_whatif_per_epoch,
        profiled_indexes=colt_run.profiled_index_count,
        relevant_indexes=len(relevant),
    )


# ----------------------------------------------------------------------
# Figure 6
# ----------------------------------------------------------------------
@dataclasses.dataclass
class NoisePoint:
    """One burst-length measurement."""

    burst_length: int
    ratio: float
    colt_cost: float
    offline_cost: float


@dataclasses.dataclass
class NoiseResult:
    """Performance ratio vs noise-burst duration (Figure 6)."""

    points: List[NoisePoint]
    excluded_prefix: int

    def to_text(self) -> str:
        """Render the burst-length sweep table."""
        lines = [
            "Figure 6 (COLT/OFFLINE execution time vs burst length; "
            f"first {self.excluded_prefix} queries excluded)",
            f"{'burst':>6} {'ratio':>7} {'COLT':>12} {'OFFLINE':>12}",
        ]
        for p in self.points:
            lines.append(
                f"{p.burst_length:>6} {p.ratio:>7.3f} {p.colt_cost:>12.0f} "
                f"{p.offline_cost:>12.0f}"
            )
        return "\n".join(lines)


def figure6_noise(
    burst_lengths: Sequence[int] = (20, 30, 40, 50, 60, 70, 80, 90),
    budget: float = DEFAULT_BUDGET_PAGES,
    seed: int = 0,
    warmup: int = 100,
) -> NoiseResult:
    """Reproduce Figure 6: resilience to bursts of noise.

    OFFLINE is tuned solely on the base distribution Q1 (it ignores
    noise); the ratio excludes the first ``warmup`` queries.  Expected
    shape: ratio near 1 for short (<= 20) and long (>= 70) bursts, with
    a hump in the 30-60 range (the paper reports an average 18% loss
    there).
    """
    base, noise = noise_distributions()
    points: List[NoisePoint] = []
    for burst in burst_lengths:
        catalog = build_catalog()
        workload = noisy_workload(
            base, noise, catalog, burst_length=burst, warmup=warmup, seed=seed
        )
        q1_queries = [
            q
            for q, src in zip(workload.queries, workload.source)
            if src == base.name
        ]
        colt_run = run_colt(build_catalog(), workload.queries, _config(budget, seed))
        offline_run = run_offline(
            build_catalog(),
            workload.queries,
            budget,
            tuning_workload=q1_queries,
        )
        colt_cost = sum(colt_run.total_costs[warmup:])
        offline_cost = sum(offline_run.per_query_costs[warmup:])
        points.append(
            NoisePoint(
                burst_length=burst,
                ratio=colt_cost / offline_cost,
                colt_cost=colt_cost,
                offline_cost=offline_cost,
            )
        )
    return NoiseResult(points=points, excluded_prefix=warmup)

