"""Simulation harness: run COLT and OFFLINE over a workload.

Both tuners see the same query sequence but own separate catalogs (their
materialized sets must evolve independently).  Bound queries reference
tables and columns by name only, so one workload can be replayed against
any structurally identical catalog.

Cost accounting follows §6.1: OFFLINE's reported time excludes index
selection and materialization (they happen off-line); COLT's includes
the initially empty index set, what-if overhead, and on-line index
builds.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional, Sequence

from repro.baselines.offline import OfflineResult, OfflineTuner
from repro.core.colt import ColtTuner, QueryOutcome
from repro.core.config import ColtConfig
from repro.engine.catalog import Catalog
from repro.engine.index import IndexDef
from repro.optimizer.optimizer import Optimizer, PlanCache
from repro.sql.ast import Query

CatalogFactory = Callable[[], Catalog]


@dataclasses.dataclass
class ColtRun:
    """Complete ledger of one COLT simulation.

    Attributes:
        outcomes: Per-query ledger records.
        total_costs: Per-query total cost (execution + overheads).
        execution_costs: Per-query execution cost only.
        whatif_per_epoch: What-if calls spent in each epoch.
        budget_per_epoch: The ``#WI_lim`` granted for each epoch.
        materialized_history: ``|M|`` after each epoch.
        final_materialized: The final materialized set.
        profiled_index_count: Distinct indexes that ever received a
            what-if call (the paper reports COLT profiles ~11% of the
            relevant indexes).
    """

    outcomes: List[QueryOutcome]
    total_costs: List[float]
    execution_costs: List[float]
    whatif_per_epoch: List[int]
    budget_per_epoch: List[int]
    materialized_history: List[int]
    final_materialized: List[IndexDef]
    profiled_index_count: int

    @property
    def total_cost(self) -> float:
        """Workload-wide total cost."""
        return sum(self.total_costs)


@dataclasses.dataclass
class OfflineRun:
    """Ledger of the OFFLINE baseline over the same workload.

    Attributes:
        result: The off-line tuning outcome (chosen set, search stats).
        per_query_costs: Execution cost of each workload query under the
            chosen (pre-materialized) configuration.
    """

    result: OfflineResult
    per_query_costs: List[float]

    @property
    def total_cost(self) -> float:
        """Workload-wide total cost."""
        return sum(self.per_query_costs)


def run_colt(
    catalog: Catalog,
    workload: Sequence[Query],
    config: Optional[ColtConfig] = None,
) -> ColtRun:
    """Simulate COLT over a workload.

    Args:
        catalog: A fresh catalog (no indexes materialized).
        workload: Bound queries in arrival order.
        config: COLT parameters.

    Returns:
        The complete run ledger.
    """
    tuner = ColtTuner(catalog, config)
    outcomes: List[QueryOutcome] = []
    whatif_epoch: List[int] = []
    budget_epoch: List[int] = [tuner.profiler.whatif_budget]
    m_history: List[int] = []
    epoch_calls = 0
    profiled: set = set()

    for query in workload:
        outcome = tuner.process_query(query)
        outcomes.append(outcome)
        epoch_calls += outcome.whatif_calls
        if outcome.epoch_ended:
            whatif_epoch.append(epoch_calls)
            epoch_calls = 0
            m_history.append(len(tuner.materialized_set))
            assert outcome.reorganization is not None
            budget_epoch.append(outcome.reorganization.whatif_budget)
    if epoch_calls:
        whatif_epoch.append(epoch_calls)

    profiled = set(tuner.whatif.probed_indexes)

    return ColtRun(
        outcomes=outcomes,
        total_costs=[o.total_cost for o in outcomes],
        execution_costs=[o.execution_cost for o in outcomes],
        whatif_per_epoch=whatif_epoch,
        budget_per_epoch=budget_epoch[:-1],
        materialized_history=m_history,
        final_materialized=tuner.materialized_set,
        profiled_index_count=len(profiled),
    )


def run_offline(
    catalog: Catalog,
    workload: Sequence[Query],
    budget_pages: float,
    tuning_workload: Optional[Sequence[Query]] = None,
    strategy: str = "exhaustive",
) -> OfflineRun:
    """Simulate the OFFLINE baseline.

    Args:
        catalog: A fresh catalog.
        workload: The queries to *measure* (arrival order).
        budget_pages: Storage budget ``B``.
        tuning_workload: The queries OFFLINE tunes on; defaults to the
            measured workload.  The Figure 6 experiment tunes on the
            noise-free Q1 queries only.
        strategy: ``"exhaustive"`` or ``"greedy"``.

    Returns:
        The run ledger, with per-query costs under the chosen set.
    """
    tuner = OfflineTuner(catalog, strategy=strategy)
    result = tuner.tune(
        tuning_workload if tuning_workload is not None else workload,
        budget_pages,
    )
    for index in result.indexes:
        catalog.materialize_index(index)
    optimizer = Optimizer(catalog)
    config = frozenset(result.indexes)
    costs = [
        optimizer.optimize(q, config=config, cache=PlanCache()).cost
        for q in workload
    ]
    return OfflineRun(result=result, per_query_costs=costs)


def bar_series(values: Sequence[float], width: int = 50) -> List[float]:
    """Sum a per-query series into consecutive bars of ``width`` queries."""
    return [
        sum(values[start : start + width])
        for start in range(0, len(values), width)
    ]
