"""Throughput-oriented replay driver (the serving-path benchmark).

Where ``repro.bench.harness`` measures *cost-model* quantities (the
paper's figures), this module measures the reproduction as a **system**:
wall-clock queries per second and per-query latency percentiles while a
1M+ event stream flows through a tuner, a fleet, or a multiprocess
fleet.  Latency lands in the ordinary obs histogram
(``replay_query_latency_seconds``, fine-grained
:data:`~repro.obs.registry.LATENCY_BUCKETS`) and the percentiles are
read back with :mod:`repro.obs.quantiles` -- the same machinery a
production dashboard would use, and the machinery the multiprocess
fleet needs anyway (workers ship bucket counts, never raw samples).

Three modes, compared in ``BENCH_throughput.json``:

* ``serial``   -- one tuner, one process, per-query loop (baseline);
* ``batched``  -- one tuner whose backend is wrapped in the
  :class:`~repro.core.batching.BatchedPricer`, fed chunk-at-a-time so
  binding/signature work and base optimizations amortize across the
  batch (decisions bit-identical to ``serial``);
* ``workers``  -- a :class:`~repro.fleet.workers.WorkerFleetCoordinator`
  running N replicas on N cores (decisions bit-identical per replica to
  the single-process fleet).

``tools/check_throughput.py`` gates CI on the resulting report.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import time
from typing import Dict, Iterator, List, Optional, Sequence, Union

from repro.backend.local import LocalBackend
from repro.core.batching import BatchedPricer, SignatureInterner
from repro.core.colt import ColtTuner
from repro.core.config import ColtConfig
from repro.engine.catalog import Catalog
from repro.obs.names import REPLAY_METRICS
from repro.obs.quantiles import merge_histogram_samples, summarize_sample
from repro.obs.registry import MetricsRegistry
from repro.sql.ast import Query
from repro.workload.phases import Workload

__all__ = [
    "ReplayEvent",
    "ReplayReport",
    "ReplayStream",
    "build_replay_tuner",
    "replay_fleet",
    "replay_serial",
    "write_throughput_report",
]

#: Default mean arrival rate for generated streams, events/second.
DEFAULT_ARRIVAL_RATE = 2000.0

#: Default hot-path chunk size for the batched mode.
DEFAULT_BATCH_SIZE = 64


@dataclasses.dataclass(frozen=True)
class ReplayEvent:
    """One arrival in a replay stream.

    Attributes:
        index: 0-based position in the stream.
        timestamp: Arrival offset from stream start, in seconds.
        query: The bound query.
        client_id: Stable submitting-client id (None when untagged).
    """

    index: int
    timestamp: float
    query: Query
    client_id: Optional[int] = None


class ReplayStream:
    """A timed query stream of arbitrary length.

    Production streams are long but repetitive; a replay stream cycles
    a finite base workload out to ``events`` arrivals and stamps each
    with a seeded exponential inter-arrival time (a Poisson process,
    the standard open-loop arrival model).  Cycling reuses the *same
    query objects*, which is exactly what the identity-keyed memos in
    the batched hot path exploit.

    Args:
        queries: Base queries, in order.
        client_ids: Optional per-query client tags (cycled with the
            queries).
        events: Stream length; defaults to one pass over the base.
        seed: RNG seed for arrival times.
        arrival_rate: Mean arrivals per second for the timestamps.
    """

    def __init__(
        self,
        queries: Sequence[Query],
        client_ids: Optional[Sequence[Optional[int]]] = None,
        events: Optional[int] = None,
        seed: int = 0,
        arrival_rate: float = DEFAULT_ARRIVAL_RATE,
    ) -> None:
        if not queries:
            raise ValueError("replay stream needs a non-empty base workload")
        if client_ids is not None and len(client_ids) != len(queries):
            raise ValueError("client_ids must match queries in length")
        if arrival_rate <= 0:
            raise ValueError("arrival_rate must be positive")
        self.queries = list(queries)
        self.client_ids = list(client_ids) if client_ids is not None else None
        self.events = int(events) if events is not None else len(self.queries)
        if self.events < 1:
            raise ValueError("events must be positive")
        self.seed = seed
        self.arrival_rate = float(arrival_rate)

    @classmethod
    def from_workload(
        cls,
        workload: Workload,
        events: Optional[int] = None,
        seed: int = 0,
        arrival_rate: float = DEFAULT_ARRIVAL_RATE,
    ) -> "ReplayStream":
        """Build a stream by cycling a :class:`Workload`'s queries."""
        return cls(
            workload.queries,
            client_ids=workload.client_ids,
            events=events,
            seed=seed,
            arrival_rate=arrival_rate,
        )

    def __len__(self) -> int:
        return self.events

    def __iter__(self) -> Iterator[ReplayEvent]:
        import random

        rng = random.Random(self.seed)
        n = len(self.queries)
        clock = 0.0
        for i in range(self.events):
            clock += rng.expovariate(self.arrival_rate)
            j = i % n
            yield ReplayEvent(
                index=i,
                timestamp=clock,
                query=self.queries[j],
                client_id=self.client_ids[j] if self.client_ids else None,
            )

    def chunks(self, size: int) -> Iterator[List[ReplayEvent]]:
        """The stream as consecutive chunks of at most ``size`` events."""
        if size < 1:
            raise ValueError("chunk size must be positive")
        chunk: List[ReplayEvent] = []
        for event in self:
            chunk.append(event)
            if len(chunk) == size:
                yield chunk
                chunk = []
        if chunk:
            yield chunk


@dataclasses.dataclass
class ReplayReport:
    """What one replay run measured.

    Attributes:
        mode: ``serial`` / ``batched`` / ``fleet-serial`` / ``workers``.
        events: Arrivals processed.
        wall_seconds: Wall-clock duration of the processing loop.
        qps: ``events / wall_seconds``.
        latency: Percentile summary of per-query processing latency in
            seconds (``p50``/``p95``/``p99``/``mean``/``count``), read
            from the obs histogram.
        total_cost: Cost-model total (sanity anchor: identical across
            decision-equivalent modes).
        whatif_calls: Ledger what-if calls (same anchor).
        failed: Queries recorded as failed.
        detail: Mode-specific extras (memo hit rates, worker count...).
    """

    mode: str
    events: int
    wall_seconds: float
    qps: float
    latency: Dict[str, Optional[float]]
    total_cost: float
    whatif_calls: int
    failed: int = 0
    detail: Dict = dataclasses.field(default_factory=dict)

    def to_dict(self) -> Dict:
        """The report as a plain JSON-serializable dict."""
        return dataclasses.asdict(self)


def build_replay_tuner(
    catalog: Catalog,
    config: Optional[ColtConfig] = None,
    batched: bool = False,
    interner: Optional[SignatureInterner] = None,
) -> ColtTuner:
    """A tuner wired for replay: local backend, metrics off the hot path.

    With ``batched=True`` the backend is wrapped in a
    :class:`BatchedPricer` (decision-preserving; see
    ``repro/core/batching.py``) and the candidate tracker's mining +
    crude-benefit computation is memoized through the same signature
    interner (also decision-preserving; see
    :meth:`~repro.core.candidates.CandidateTracker.use_interner`).
    The tuner's own registry is disabled -- the driver measures with
    its own registry -- so both modes pay identical instrumentation
    costs.
    """
    backend: object = LocalBackend(catalog)
    if batched:
        backend = BatchedPricer(backend, interner=interner)
    tuner = ColtTuner(
        catalog,
        config,
        backend=backend,
        registry=MetricsRegistry(enabled=False),
    )
    if batched:
        tuner.profiler.candidates.use_interner(backend.interner)
    return tuner


def _driver_metrics(registry: MetricsRegistry):
    return (
        REPLAY_METRICS["replay_queries_total"].build(registry),
        REPLAY_METRICS["replay_batches_total"].build(registry),
        REPLAY_METRICS["replay_query_latency_seconds"].build(registry),
    )


def _latency_summary(histogram) -> Dict[str, Optional[float]]:
    samples = histogram.samples()
    if not samples:
        return summarize_sample({"count": 0, "sum": 0.0, "buckets": {}})
    return summarize_sample(merge_histogram_samples(samples))


def replay_serial(
    tuner: ColtTuner,
    stream: ReplayStream,
    batch_size: Optional[int] = None,
    registry: Optional[MetricsRegistry] = None,
    on_error: str = "raise",
) -> ReplayReport:
    """Replay a stream through one tuner, timing every query.

    Args:
        tuner: The tuner under test (build with :func:`build_replay_tuner`).
        stream: The event stream.
        batch_size: When given, the stream is fed chunk-at-a-time: the
            gain cache is primed per chunk and the backend's
            ``begin_queries`` warms the batched pricer's memo before
            the per-query loop (the ``batched`` mode).  None processes
            strictly one query at a time (the ``serial`` baseline).
        registry: Registry for the driver's ``replay_*`` families;
            fresh when omitted.
        on_error: ``"raise"`` or ``"skip"`` (forwarded to the tuner).
    """
    registry = registry if registry is not None else MetricsRegistry()
    m_queries, m_batches, m_latency = _driver_metrics(registry)
    perf = time.perf_counter
    total_cost = 0.0
    whatif_calls = 0
    failed = 0
    events = 0
    gain_cache = tuner.profiler.gain_cache
    backend = tuner.whatif.backend
    batched = batch_size is not None

    started = perf()
    if batched:
        for chunk in stream.chunks(batch_size):
            queries = [e.query for e in chunk]
            gain_cache.prime_batch(queries)
            backend.begin_queries(queries)
            m_batches.inc()
            for event in chunk:
                t0 = perf()
                outcome = tuner.run([event.query], on_error=on_error)[0]
                m_latency.observe(perf() - t0)
                total_cost += outcome.total_cost
                whatif_calls += outcome.whatif_calls
                failed += outcome.failed
                events += 1
    else:
        for event in stream:
            t0 = perf()
            outcome = tuner.run([event.query], on_error=on_error)[0]
            m_latency.observe(perf() - t0)
            total_cost += outcome.total_cost
            whatif_calls += outcome.whatif_calls
            failed += outcome.failed
            events += 1
    wall = perf() - started
    m_queries.inc(events)

    detail: Dict = {"engine": "colt"}
    if isinstance(backend, BatchedPricer):
        detail["memo_hits"] = backend.hits
        detail["memo_misses"] = backend.misses
        detail["gaincache_hits"] = gain_cache.hits
    return ReplayReport(
        mode="batched" if batched else "serial",
        events=events,
        wall_seconds=wall,
        qps=events / wall if wall > 0 else 0.0,
        latency=_latency_summary(m_latency),
        total_cost=total_cost,
        whatif_calls=whatif_calls,
        failed=failed,
        detail=detail,
    )


def replay_fleet(
    coordinator,
    stream: ReplayStream,
    registry: Optional[MetricsRegistry] = None,
    on_error: str = "raise",
) -> ReplayReport:
    """Replay a stream through a fleet coordinator (serial or workers).

    A single-process coordinator is driven query-at-a-time with
    driver-side latency timing; a multiprocess coordinator
    (``FleetCoordinator(workers=N)``) is driven through its chunked
    ``run`` and reports latency from the per-worker obs histograms,
    merged associatively (:func:`~repro.obs.quantiles.
    merge_histogram_samples`) -- raw samples never cross the process
    boundary.
    """
    registry = registry if registry is not None else MetricsRegistry()
    m_queries, m_batches, m_latency = _driver_metrics(registry)
    perf = time.perf_counter

    events = list(stream)
    queries = [e.query for e in events]
    client_ids = [e.client_id for e in events]

    started = perf()
    if getattr(coordinator, "is_multiprocess", False):
        run = coordinator.run(queries, client_ids=client_ids, on_error=on_error)
        wall = perf() - started
        latency = coordinator.latency_summary()
        mode = "workers"
        detail = {
            "workers": coordinator.workers,
            "replicas": len(coordinator.replicas),
            "policy": run.policy,
        }
    else:
        for event in events:
            t0 = perf()
            coordinator.process_query(
                event.query, client_id=event.client_id, on_error=on_error
            )
            m_latency.observe(perf() - t0)
        wall = perf() - started
        latency = _latency_summary(m_latency)
        mode = "fleet-serial"
        detail = {
            "replicas": len(coordinator.replicas),
            "policy": coordinator.policy,
        }
        run = None
    m_queries.inc(len(events))

    stats = coordinator.replicas
    total_cost = sum(r.stats.total_cost for r in stats)
    failed = sum(r.stats.failed for r in stats)
    whatif = (
        sum(r.stats.whatif_calls for r in stats)
        if all(hasattr(r.stats, "whatif_calls") for r in stats)
        else 0
    )
    return ReplayReport(
        mode=mode,
        events=len(events),
        wall_seconds=wall,
        qps=len(events) / wall if wall > 0 else 0.0,
        latency=latency,
        total_cost=total_cost,
        whatif_calls=whatif,
        failed=failed,
        detail=detail,
    )


def write_throughput_report(
    path: Union[str, pathlib.Path],
    reports: Sequence[ReplayReport],
    meta: Optional[Dict] = None,
) -> pathlib.Path:
    """Write ``BENCH_throughput.json`` (the bench trajectory file).

    The layout mirrors ``BENCH_guardrails.json``/``BENCH_bandit.json``:
    a self-describing dict with one entry per mode plus headline
    ratios, so future re-anchors can read the perf curve without
    running anything.
    """
    by_mode = {r.mode: r.to_dict() for r in reports}
    serial = by_mode.get("serial")
    document = {
        "benchmark": "replay-throughput",
        "description": (
            "Wall-clock QPS and latency percentiles for the replay "
            "driver: serial vs batched hot path vs multiprocess fleet "
            "workers (see docs/PERFORMANCE.md)."
        ),
        "meta": dict(meta or {}),
        "modes": by_mode,
        "speedups_vs_serial": {
            mode: round(r["qps"] / serial["qps"], 3)
            for mode, r in by_mode.items()
            if serial and serial["qps"] > 0
        }
        if serial
        else {},
    }
    target = pathlib.Path(path)
    target.write_text(json.dumps(document, indent=1, sort_keys=False) + "\n")
    return target
