"""Structured experiment traces.

``trace_run`` executes a COLT simulation while recording, per epoch,
everything the Self-Organizer decided: set compositions, what-if budget
grants and usage, the improvement ratio, and the epoch's execution cost.
The resulting :class:`TunerTrace` renders as a human-readable timeline --
the quickest way to *see* COLT hibernate, wake, and re-tune.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Dict, List, Optional, Sequence, Union

from repro.core.colt import ColtTuner
from repro.core.config import ColtConfig
from repro.engine.catalog import Catalog
from repro.sql.ast import Query


@dataclasses.dataclass
class EpochTrace:
    """One epoch's record.

    Attributes:
        epoch: 0-based epoch number.
        execution_cost: Sum of the epoch's query execution costs.
        total_cost: Execution plus tuning overheads for the epoch.
        whatif_used: What-if calls actually spent.
        budget_granted: ``#WI_lim`` granted for the *next* epoch.
        improvement_ratio: The re-budgeting ratio ``r``.
        materialized: Names in ``M`` after reorganization.
        added / dropped: Changes made at this boundary.
        hot: Names in the next epoch's hot set.
    """

    epoch: int
    execution_cost: float
    total_cost: float
    whatif_used: int
    budget_granted: int
    improvement_ratio: float
    materialized: List[str]
    added: List[str]
    dropped: List[str]
    hot: List[str]


@dataclasses.dataclass
class TunerTrace:
    """A complete traced run."""

    epochs: List[EpochTrace]
    config: ColtConfig

    @property
    def total_cost(self) -> float:
        """Workload-wide total cost."""
        return sum(e.total_cost for e in self.epochs)

    @property
    def total_whatif(self) -> int:
        """Workload-wide what-if calls."""
        return sum(e.whatif_used for e in self.epochs)

    def to_json(self, indent: Optional[int] = None) -> str:
        """Serialize the trace to a JSON string.

        The payload is self-describing (config included), so fleet
        benchmarks can dump per-replica traces next to their
        ``results/*.txt`` reports and tests can assert per-epoch
        decisions machine-readably.
        """
        return json.dumps(
            {
                "epochs": [dataclasses.asdict(e) for e in self.epochs],
                "config": dataclasses.asdict(self.config),
            },
            indent=indent,
        )

    @classmethod
    def from_json(cls, data: Union[str, Dict]) -> "TunerTrace":
        """Rebuild a trace from :meth:`to_json` output.

        Args:
            data: The JSON string (or the already-parsed dict).

        Raises:
            ValueError: if the payload is not a trace (missing keys or
                malformed epochs).
        """
        if isinstance(data, str):
            data = json.loads(data)
        if not isinstance(data, dict) or "epochs" not in data or "config" not in data:
            raise ValueError("not a serialized TunerTrace (missing keys)")
        try:
            epochs = [EpochTrace(**entry) for entry in data["epochs"]]
            config = ColtConfig(**data["config"])
        except TypeError as exc:
            raise ValueError(f"malformed TunerTrace payload: {exc}") from exc
        return cls(epochs=epochs, config=config)

    def render_timeline(self, cost_width: int = 24) -> str:
        """Render the run as a per-epoch text timeline."""
        if not self.epochs:
            return "(empty trace)"
        peak = max(e.execution_cost for e in self.epochs) or 1.0
        lines = [
            f"{'ep':>4} {'exec cost':<{cost_width + 10}} {'wi':>3} "
            f"{'r':>5} {'|M|':>4}  changes"
        ]
        for e in self.epochs:
            bar = "#" * max(1, int(e.execution_cost / peak * cost_width))
            changes = []
            if e.added:
                changes.append("+" + ",".join(e.added))
            if e.dropped:
                changes.append("-" + ",".join(e.dropped))
            lines.append(
                f"{e.epoch:>4} {bar:<{cost_width}} {e.execution_cost:>9.0f} "
                f"{e.whatif_used:>3} {e.improvement_ratio:>5.2f} "
                f"{len(e.materialized):>4}  {' '.join(changes)}"
            )
        lines.append(
            f"total cost {self.total_cost:,.0f}; what-if calls {self.total_whatif}"
        )
        return "\n".join(lines)


def trace_run(
    catalog: Catalog,
    workload: Sequence[Query],
    config: Optional[ColtConfig] = None,
    backend=None,
) -> TunerTrace:
    """Run COLT over a workload, recording one trace entry per epoch.

    Args:
        backend: Optional DBMS backend for the tuner (defaults to the
            local in-python engine) -- what lets the parity gate replay
            a recorded cost trace through the identical harness.
    """
    tuner = ColtTuner(catalog, config, backend=backend)
    epochs: List[EpochTrace] = []
    exec_acc = 0.0
    total_acc = 0.0
    wi_acc = 0

    for query in workload:
        outcome = tuner.process_query(query)
        exec_acc += outcome.execution_cost
        total_acc += outcome.total_cost
        wi_acc += outcome.whatif_calls
        if outcome.epoch_ended:
            reorg = outcome.reorganization
            assert reorg is not None
            epochs.append(
                EpochTrace(
                    epoch=len(epochs),
                    execution_cost=exec_acc,
                    total_cost=total_acc,
                    whatif_used=wi_acc,
                    budget_granted=reorg.whatif_budget,
                    improvement_ratio=reorg.improvement_ratio,
                    materialized=[ix.name for ix in tuner.materialized_set],
                    added=[_short(ix.name) for ix in reorg.materialize],
                    dropped=[_short(ix.name) for ix in reorg.drop],
                    hot=[ix.name for ix in reorg.hot],
                )
            )
            exec_acc = total_acc = 0.0
            wi_acc = 0
    return TunerTrace(epochs=epochs, config=tuner.config)


def _short(name: str) -> str:
    """Compact index names for timeline rendering."""
    return name.replace("ix_", "")
