"""Benchmark harness: experiment drivers for every table and figure.

``harness`` runs COLT and OFFLINE over a workload on separate catalogs
and collects per-query ledgers; ``figures`` turns those ledgers into the
exact series each figure of the paper plots.
"""

from repro.bench.harness import (
    ColtRun,
    OfflineRun,
    run_colt,
    run_offline,
)
from repro.bench.figures import (
    figure3_stable,
    figure4_shifting,
    figure5_overhead,
    figure6_noise,
    table1_dataset,
)

__all__ = [
    "ColtRun",
    "OfflineRun",
    "figure3_stable",
    "figure4_shifting",
    "figure5_overhead",
    "figure6_noise",
    "run_colt",
    "run_offline",
    "table1_dataset",
]
