"""Benchmark harness: experiment drivers for every table and figure.

``harness`` runs COLT and OFFLINE over a workload on separate catalogs
and collects per-query ledgers; ``figures`` turns those ledgers into the
exact series each figure of the paper plots; ``replay`` is the
throughput driver (wall-clock QPS and latency percentiles over 1M+
event streams, serial vs batched vs multiprocess fleet).
"""

from repro.bench.harness import (
    ColtRun,
    OfflineRun,
    run_colt,
    run_offline,
)
from repro.bench.figures import (
    figure3_stable,
    figure4_shifting,
    figure5_overhead,
    figure6_noise,
    table1_dataset,
)
from repro.bench.replay import (
    ReplayEvent,
    ReplayReport,
    ReplayStream,
    build_replay_tuner,
    replay_fleet,
    replay_serial,
    write_throughput_report,
)

__all__ = [
    "ColtRun",
    "OfflineRun",
    "ReplayEvent",
    "ReplayReport",
    "ReplayStream",
    "build_replay_tuner",
    "figure3_stable",
    "figure4_shifting",
    "figure5_overhead",
    "figure6_noise",
    "replay_fleet",
    "replay_serial",
    "run_colt",
    "run_offline",
    "table1_dataset",
    "write_throughput_report",
]
