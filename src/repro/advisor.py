"""One-shot index advisor: the Dexter/HypoPG-style front end.

Modern what-if tooling (HypoPG, Dexter) answers the one-shot question
"given these queries, which indexes should I create?".  This module
wraps the reproduction's OFFLINE tuner and what-if optimizer behind that
interface: feed it SQL strings (or bound queries) and a budget, get back
a recommendation with per-index impact estimates.

The continuous tuner (:class:`~repro.core.colt.ColtTuner`) is the
paper's contribution; the advisor is the complementary batch tool built
from the same parts, useful for "run EXPLAIN over yesterday's log"
workflows and as a simple public API for downstream users.

Usage::

    from repro.advisor import advise
    from repro.workload import build_catalog

    report = advise(
        build_catalog(),
        [
            "select l_orderkey from lineitem_1 "
            "where l_shipdate between '1994-01-01' and '1994-02-01'",
        ],
        budget_pages=9_000,
    )
    print(report.to_text())
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Union

from repro.baselines.offline import OfflineTuner
from repro.engine.catalog import Catalog
from repro.engine.index import IndexDef
from repro.optimizer.optimizer import Optimizer, PlanCache
from repro.sql.ast import Query
from repro.sql.binder import bind_query
from repro.sql.parser import parse_query


@dataclasses.dataclass
class Recommendation:
    """One recommended index with its estimated impact.

    Attributes:
        index: The recommended index.
        size_pages: Estimated size in pages.
        build_cost: Estimated one-time build cost (cost units).
        marginal_gain: Workload cost saved by this index *given the rest
            of the recommendation* (cost units over the whole workload).
        queries_helped: How many workload queries improve with the full
            recommendation but regress when this index alone is removed.
    """

    index: IndexDef
    size_pages: float
    build_cost: float
    marginal_gain: float
    queries_helped: int


@dataclasses.dataclass
class AdvisorReport:
    """The advisor's output.

    Attributes:
        recommendations: Indexes to create, by descending marginal gain.
        workload_cost_before: Total estimated workload cost today.
        workload_cost_after: Total estimated cost with the recommendation.
        budget_pages: The storage budget applied.
    """

    recommendations: List[Recommendation]
    workload_cost_before: float
    workload_cost_after: float
    budget_pages: float

    @property
    def improvement_percent(self) -> float:
        """Estimated workload cost reduction, in percent."""
        if self.workload_cost_before <= 0:
            return 0.0
        return (1 - self.workload_cost_after / self.workload_cost_before) * 100.0

    def to_text(self) -> str:
        """Render the report for terminals."""
        if not self.recommendations:
            return (
                "no indexes recommended: nothing beats sequential scans "
                f"within the {self.budget_pages:,.0f}-page budget"
            )
        lines = [
            f"recommended indexes (budget {self.budget_pages:,.0f} pages):",
            f"{'index':<40} {'pages':>8} {'build':>10} {'gain':>12} {'helps':>6}",
        ]
        for rec in self.recommendations:
            lines.append(
                f"{rec.index.name:<40} {rec.size_pages:>8,.0f} "
                f"{rec.build_cost:>10,.0f} {rec.marginal_gain:>12,.0f} "
                f"{rec.queries_helped:>6}"
            )
        lines.append(
            f"estimated workload cost: {self.workload_cost_before:,.0f} -> "
            f"{self.workload_cost_after:,.0f} "
            f"({self.improvement_percent:.1f}% better)"
        )
        return "\n".join(lines)


def advise(
    catalog: Catalog,
    workload: Sequence[Union[str, Query]],
    budget_pages: float,
    candidates: Optional[Sequence[IndexDef]] = None,
    strategy: str = "exhaustive",
) -> AdvisorReport:
    """Recommend indexes for a known workload within a budget.

    Args:
        catalog: Catalog with statistics (no indexes need exist).
        workload: SQL strings or bound queries, in any order.
        budget_pages: Storage budget for the recommendation.
        candidates: Optional candidate restriction; defaults to every
            indexable column the workload references.
        strategy: ``"exhaustive"`` (optimal) or ``"greedy"``.

    Returns:
        The recommendation report.

    Raises:
        repro.sql.parser.ParseError / repro.sql.binder.BindError: if a
            SQL string does not parse or bind against the catalog.
    """
    queries = [
        bind_query(parse_query(q), catalog) if isinstance(q, str) else q
        for q in workload
    ]
    tuner = OfflineTuner(catalog, strategy=strategy)
    result = tuner.tune(queries, budget_pages, candidates=candidates)

    optimizer = Optimizer(catalog)
    chosen = frozenset(result.indexes)

    def per_query_costs(config):
        return [
            optimizer.optimize(q, config=config, cache=PlanCache()).cost
            for q in queries
        ]

    after_costs = per_query_costs(chosen)
    recommendations = []
    for index in result.indexes:
        without = per_query_costs(chosen - {index})
        marginal = sum(without) - sum(after_costs)
        helped = sum(1 for w, a in zip(without, after_costs) if a < w - 1e-9)
        recommendations.append(
            Recommendation(
                index=index,
                size_pages=catalog.index_size_pages(index),
                build_cost=catalog.index_build_cost(index),
                marginal_gain=marginal,
                queries_helped=helped,
            )
        )
    recommendations.sort(key=lambda r: r.marginal_gain, reverse=True)
    return AdvisorReport(
        recommendations=recommendations,
        workload_cost_before=result.baseline_cost,
        workload_cost_after=result.total_cost,
        budget_pages=budget_pages,
    )
