"""Materialized views: the paper's other future-work access structure.

§2 names materialized views alongside multi-column indexes as the
natural generalization of COLT's single-column setting.  This module
provides the *engine* support: predicate-restricted single-table views
("the lineitems shipped in 1994"), containment-based matching in the
optimizer (a query whose predicate range falls inside the view's range
can scan the much smaller view instead of the base table), physical
materialization, and a what-if-style gain evaluator.

Automatic *selection* of views by the on-line tuner is left as future
work here too: view candidates interact (a view subsumes another), their
sizes depend on data rather than a key width, and the paper's KNAPSACK
independence assumption breaks down badly — a deliberate scope cut,
documented in DESIGN.md.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

from repro.engine.catalog import Catalog
from repro.sql.ast import BetweenPredicate, ColumnExpr, Query


@dataclasses.dataclass(frozen=True)
class ViewDef:
    """A predicate-restricted single-table materialized view.

    The view contains every row of ``table`` whose ``column`` value lies
    in ``[low, high]`` (all columns projected).  This is the simplest
    view shape with non-trivial matching semantics: a query predicate
    *contained* in the view range can be answered from the view.

    Attributes:
        name: View name, unique within the catalog.
        table: Base table.
        column: Restriction column.
        low / high: Inclusive restriction bounds (engine representation).
    """

    name: str
    table: str
    column: str
    low: object
    high: object

    def predicate(self) -> BetweenPredicate:
        """The view's restriction as a bound predicate."""
        return BetweenPredicate(
            column=ColumnExpr(self.column, self.table), low=self.low, high=self.high
        )

    def contains_range(self, low, high) -> bool:
        """Whether ``[low, high]`` is contained in the view's range."""
        return self.low <= low and high <= self.high


def view_row_count(catalog: Catalog, view: ViewDef) -> float:
    """Estimated number of rows in a view, from base-table statistics."""
    from repro.optimizer.selectivity import predicate_selectivity

    base = catalog.table(view.table).row_count
    return max(1.0, base * predicate_selectivity(catalog, view.predicate()))


def view_size_pages(catalog: Catalog, view: ViewDef) -> float:
    """Estimated size of a view in pages (full-width rows)."""
    table = catalog.table(view.table)
    return catalog.params.heap_pages(view_row_count(catalog, view), table.row_width)


def matching_view(
    catalog: Catalog, table: str, filters: Sequence, views: Sequence[ViewDef]
) -> Optional[ViewDef]:
    """The smallest registered view that can answer the given filters.

    A view matches when some filter on the view's restriction column
    constrains the query to a sub-range of the view.  All original
    filters are still applied on top of the view scan (the view only
    shrinks the data scanned), so matching is conservative-safe.
    """
    from repro.sql.ast import CompareOp, ComparisonPredicate

    best: Optional[ViewDef] = None
    best_rows = float("inf")
    for view in views:
        if view.table != table:
            continue
        for pred in filters:
            if pred.column.column != view.column:
                continue
            if isinstance(pred, BetweenPredicate):
                low, high = pred.low, pred.high
            elif (
                isinstance(pred, ComparisonPredicate)
                and pred.op is CompareOp.EQ
            ):
                low = high = pred.value
            else:
                continue
            if view.contains_range(low, high):
                rows = view_row_count(catalog, view)
                if rows < best_rows:
                    best, best_rows = view, rows
    return best


def view_gain(optimizer, view: ViewDef, queries: Sequence[Query]) -> float:
    """What-if-style gain of materializing ``view`` for a workload.

    Measures total optimizer cost with and without the view registered
    (the view is removed again afterwards; the catalog is left exactly
    as found).

    Returns:
        Total workload cost saved (>= 0 unless registration perturbs
        nothing, in which case 0).
    """
    from repro.optimizer.optimizer import PlanCache

    catalog = optimizer.catalog
    was_registered = view in catalog.materialized_views()

    def total() -> float:
        return sum(
            optimizer.optimize(q, cache=PlanCache()).cost for q in queries
        )

    if not was_registered:
        without = total()
        catalog.materialize_view(view)
        try:
            with_view = total()
        finally:
            catalog.drop_view(view)
        return max(0.0, without - with_view)
    with_view = total()
    catalog.drop_view(view)
    try:
        without = total()
    finally:
        catalog.materialize_view(view)
    return max(0.0, without - with_view)
