"""Physical storage: columnar heap tables and the physical index store.

``HeapTable`` stores rows column-wise in plain Python lists, which keeps
the executor simple and fast enough for the scaled-down physical data the
examples and tests run on.  ``PhysicalStore`` binds heap tables and built
B+trees to a catalog, so that the executor can resolve a plan's table and
index references to actual data structures.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.engine.btree import BPlusTree
from repro.engine.catalog import Catalog, TableDef
from repro.engine.datatypes import coerce
from repro.engine.index import IndexDef


class HeapTable:
    """An in-memory columnar heap.

    Rows are addressed by dense integer row ids (their insertion order),
    which double as the row identifiers stored in B+tree leaves.
    """

    def __init__(self, definition: TableDef) -> None:
        self.definition = definition
        self._columns: Dict[str, List] = {c.name: [] for c in definition.columns}
        self._count = 0

    def __len__(self) -> int:
        """Number of physically stored rows."""
        return self._count

    @property
    def column_names(self) -> List[str]:
        """Column names in schema order."""
        return [c.name for c in self.definition.columns]

    def insert(self, row: Sequence) -> int:
        """Append one row (values in schema order).

        Returns:
            The row id of the inserted row.

        Raises:
            ValueError: if the row has the wrong arity.
            TypeError: if a value does not match its column type.
        """
        if len(row) != len(self.definition.columns):
            raise ValueError(
                f"expected {len(self.definition.columns)} values, got {len(row)}"
            )
        for col, value in zip(self.definition.columns, row):
            self._columns[col.name].append(coerce(value, col.dtype))
        self._count += 1
        return self._count - 1

    def insert_many(self, rows: Iterable[Sequence]) -> None:
        """Append many rows."""
        for row in rows:
            self.insert(row)

    def column(self, name: str) -> List:
        """The full value list for one column (by reference)."""
        return self._columns[name]

    def value(self, rid: int, column: str) -> object:
        """One cell value."""
        return self._columns[column][rid]

    def row(self, rid: int) -> Tuple:
        """One full row as a tuple in schema order."""
        return tuple(self._columns[name][rid] for name in self.column_names)

    def scan(self) -> Iterable[Tuple[int, Tuple]]:
        """Yield (row id, row tuple) for every row in heap order."""
        names = self.column_names
        cols = [self._columns[name] for name in names]
        for rid in range(self._count):
            yield rid, tuple(col[rid] for col in cols)


class PhysicalStore:
    """Binds a catalog to physical heaps and built B+trees.

    The store is the executor's view of the database.  Index creation and
    removal is routed through here by the scheduler, keeping the physical
    structures consistent with the catalog's materialized set.
    """

    def __init__(self, catalog: Catalog) -> None:
        self.catalog = catalog
        self._heaps: Dict[str, HeapTable] = {}
        self._trees: Dict[Tuple[str, Tuple[str, ...]], BPlusTree] = {}
        self._view_heaps: Dict[str, HeapTable] = {}

    def create_heap(self, table: str) -> HeapTable:
        """Create (or return the existing) heap for a catalog table."""
        if table not in self._heaps:
            self._heaps[table] = HeapTable(self.catalog.table(table))
        return self._heaps[table]

    def heap(self, table: str) -> HeapTable:
        """The heap for a table.

        Raises:
            KeyError: if no heap has been created for the table.
        """
        return self._heaps[table]

    def has_heap(self, table: str) -> bool:
        """Whether physical rows exist for this table."""
        return table in self._heaps

    def build_index(self, index: IndexDef) -> BPlusTree:
        """Physically build a B+tree for ``index`` and register it.

        Composite indexes key on tuples of column values in key order.
        Also marks the index as materialized in the catalog, so the
        optimizer starts considering it immediately.
        """
        heap = self._heaps.get(index.table)
        if heap is None:
            tree = BPlusTree()
        elif index.is_composite:
            columns = [heap.column(name) for name in index.columns]
            tree = BPlusTree.bulk_load(
                (tuple(col[rid] for col in columns), rid)
                for rid in range(len(heap))
            )
        else:
            values = heap.column(index.column)
            tree = BPlusTree.bulk_load((v, rid) for rid, v in enumerate(values))
        self._trees[(index.table, index.columns)] = tree
        self.catalog.materialize_index(index)
        return tree

    def drop_index(self, index: IndexDef) -> None:
        """Remove the physical tree and catalog entry for ``index``."""
        self._trees.pop((index.table, index.columns), None)
        self.catalog.drop_index(index)

    def tree(self, index: IndexDef) -> Optional[BPlusTree]:
        """The physical B+tree for an index, if one has been built."""
        return self._trees.get((index.table, index.columns))

    def build_view(self, view) -> HeapTable:
        """Materialize a view physically (rows copied from the base heap).

        Also registers the view in the catalog.  Note: view contents are
        a snapshot; inserts applied to the base table afterwards are not
        propagated (full view maintenance is out of scope).
        """
        from repro.executor.predicates import eval_filter

        base = self.heap(view.table)
        heap = HeapTable(self.catalog.table(view.table))
        predicate = view.predicate()
        names = base.column_names
        for _rid, values in base.scan():
            row = {(view.table, n): v for n, v in zip(names, values)}
            if eval_filter(predicate, row):
                heap.insert(values)
        self._view_heaps[view.name] = heap
        self.catalog.materialize_view(view)
        return heap

    def drop_view(self, view) -> None:
        """Remove a view's physical rows and catalog entry."""
        self._view_heaps.pop(view.name, None)
        self.catalog.drop_view(view)

    def view_heap(self, name: str) -> Optional[HeapTable]:
        """The physical heap backing a view, if materialized."""
        return self._view_heaps.get(name)

    def apply_inserts(self, table: str, rows: Iterable[Sequence]) -> int:
        """Insert rows into a heap and maintain every built index on it.

        Returns:
            The number of rows inserted.  Catalog row-count statistics
            are bumped accordingly so the optimizer sees the growth.
        """
        heap = self.heap(table)
        index_trees = []
        for index in self.catalog.materialized_indexes(table):
            tree = self._trees.get((index.table, index.columns))
            if tree is not None:
                index_trees.append((index, tree))

        count = 0
        for row in rows:
            rid = heap.insert(row)
            for index, tree in index_trees:
                if index.is_composite:
                    key = tuple(heap.value(rid, name) for name in index.columns)
                else:
                    key = heap.value(rid, index.column)
                tree.insert(key, rid)
            count += 1
        if count:
            # Through the catalog so the stats version bumps with the
            # row count: a delete-then-insert restoring the old count
            # must still invalidate cached what-if gains.
            self.catalog.apply_row_delta(table, count)
        return count

    def analyze(self, table: str, scale_to: Optional[float] = None) -> None:
        """Measure statistics from the physical heap into the catalog.

        Args:
            table: Table to analyze.
            scale_to: If given, declare the statistical row count to be
                this value while histograms/bounds come from the physical
                sample -- the paper-scale statistics trick from DESIGN.md.
        """
        heap = self.heap(table)
        physical = float(len(heap))
        logical = physical if scale_to is None else float(scale_to)
        self.catalog.set_row_count(table, logical)
        factor = 1.0 if physical == 0 else logical / physical
        for name in heap.column_names:
            from repro.engine.stats import ColumnStats

            stats = ColumnStats.from_values(heap.column(name))
            if factor != 1.0:
                scaled = min(stats.n_distinct * factor, logical)
                stats = ColumnStats(
                    n_distinct=scaled,
                    min_value=stats.min_value,
                    max_value=stats.max_value,
                    histogram=stats.histogram,
                    correlation=stats.correlation,
                )
            self.catalog.set_stats(table, name, stats)
