"""Column statistics and histograms.

The optimizer's selectivity estimates are driven by per-column statistics
in the style of PostgreSQL's ``pg_statistic``: distinct counts, min/max
bounds, and equi-depth histograms.  Statistics can either be *measured*
from physical data (``ColumnStats.from_values``) or *declared* directly,
which is how the workload generator installs paper-scale statistics over
down-sampled physical tables (see DESIGN.md section 2).
"""

from __future__ import annotations

import bisect
import dataclasses
from typing import Optional, Sequence

from repro.engine.datatypes import DataType

DEFAULT_HISTOGRAM_BUCKETS = 64


@dataclasses.dataclass(frozen=True)
class Histogram:
    """Equi-depth histogram over an ordered domain.

    ``bounds`` holds ``k + 1`` bucket boundaries for ``k`` buckets, with
    each bucket covering roughly the same number of rows.  Values are the
    engine-internal representation (numbers for numeric/date columns,
    strings for text).
    """

    bounds: tuple

    @property
    def num_buckets(self) -> int:
        """Number of equi-depth buckets."""
        return max(0, len(self.bounds) - 1)

    @classmethod
    def from_values(
        cls, values: Sequence, num_buckets: int = DEFAULT_HISTOGRAM_BUCKETS
    ) -> "Histogram":
        """Build an equi-depth histogram from a sample of values."""
        ordered = sorted(values)
        if not ordered:
            return cls(bounds=())
        buckets = min(num_buckets, len(ordered))
        bounds = [ordered[0]]
        for i in range(1, buckets):
            bounds.append(ordered[(i * len(ordered)) // buckets])
        bounds.append(ordered[-1])
        return cls(bounds=tuple(bounds))

    def fraction_below(self, value) -> float:
        """Estimate the fraction of rows strictly below ``value``.

        Repeated boundary values (heavy skew) are handled by seating the
        strict bound *before* the run of equal boundaries.
        """
        if self.num_buckets == 0:
            return 0.0
        if value <= self.bounds[0]:
            return 0.0
        if value > self.bounds[-1]:
            return 1.0
        idx = bisect.bisect_left(self.bounds, value) - 1
        idx = max(0, min(idx, self.num_buckets - 1))
        return self._interpolated(idx, value)

    def fraction_at_most(self, value) -> float:
        """Estimate the fraction of rows with values ``<= value``.

        Uses the right edge of any run of equal boundaries, so point
        masses (e.g. 90% of rows sharing one value) are fully counted.
        """
        if self.num_buckets == 0:
            return 0.0
        if value < self.bounds[0]:
            return 0.0
        if value >= self.bounds[-1]:
            return 1.0
        idx = bisect.bisect_right(self.bounds, value) - 1
        idx = max(0, min(idx, self.num_buckets - 1))
        return self._interpolated(idx, value)

    def _interpolated(self, idx: int, value) -> float:
        lo, hi = self.bounds[idx], self.bounds[idx + 1]
        if isinstance(lo, str) or hi == lo:
            within = 0.5
        else:
            within = (value - lo) / (hi - lo)
            within = min(1.0, max(0.0, within))
        return (idx + within) / self.num_buckets

    def range_fraction(self, low, high) -> float:
        """Estimate the fraction of rows with ``low <= value <= high``."""
        if high < low:
            return 0.0
        frac = self.fraction_at_most(high) - self.fraction_below(low)
        return min(1.0, max(0.0, frac))


@dataclasses.dataclass(frozen=True)
class ColumnStats:
    """Summary statistics for one column.

    Attributes:
        n_distinct: Estimated number of distinct values.
        min_value: Smallest value (engine representation).
        max_value: Largest value (engine representation).
        histogram: Optional equi-depth histogram; when absent, range
            selectivities fall back to uniform interpolation over
            ``[min_value, max_value]``.
        correlation: Physical-order correlation in [-1, 1]; 1.0 means the
            heap is perfectly ordered by this column.  Used by the index
            scan cost model to interpolate between sequential and random
            page fetches, as PostgreSQL does.
    """

    n_distinct: float
    min_value: object
    max_value: object
    histogram: Optional[Histogram] = None
    correlation: float = 0.0

    @classmethod
    def from_values(
        cls,
        values: Sequence,
        num_buckets: int = DEFAULT_HISTOGRAM_BUCKETS,
    ) -> "ColumnStats":
        """Measure statistics from actual column values (ANALYZE)."""
        if len(values) == 0:
            return cls(n_distinct=0.0, min_value=None, max_value=None)
        distinct = len(set(values))
        ordered = sorted(values)
        correlation = _order_correlation(values)
        return cls(
            n_distinct=float(distinct),
            min_value=ordered[0],
            max_value=ordered[-1],
            histogram=Histogram.from_values(values, num_buckets),
            correlation=correlation,
        )

    def scaled(self, factor: float) -> "ColumnStats":
        """Return a copy with ``n_distinct`` scaled by ``factor``.

        Used when statistics measured on a sample are promoted to describe
        a table ``factor`` times larger.  Distinct counts scale sub-linearly
        in general; we use the common first-order approximation of scaling
        linearly but never past the (scaled) row count, which callers
        enforce.
        """
        return dataclasses.replace(self, n_distinct=self.n_distinct * factor)

    def eq_selectivity(self, value) -> float:
        """Selectivity of ``column = value``."""
        if self.n_distinct <= 0:
            return 0.0
        if self._out_of_bounds(value):
            return 0.0
        return 1.0 / self.n_distinct

    def range_selectivity(self, low, high) -> float:
        """Selectivity of ``low <= column <= high`` (either bound optional)."""
        if self.min_value is None:
            return 0.0
        lo = self.min_value if low is None else low
        hi = self.max_value if high is None else high
        if self.histogram is not None and self.histogram.num_buckets > 0:
            frac = self.histogram.range_fraction(lo, hi)
        else:
            frac = self._uniform_fraction(lo, hi)
        # An inclusive range covering at least one point matches at least
        # one distinct value's worth of rows.
        if hi >= lo and self.n_distinct > 0:
            frac = max(frac, 1.0 / self.n_distinct)
        return min(1.0, max(0.0, frac))

    def _uniform_fraction(self, low, high) -> float:
        if isinstance(self.min_value, str) or self.max_value == self.min_value:
            return 0.5 if high >= low else 0.0
        span = self.max_value - self.min_value
        lo = max(low, self.min_value)
        hi = min(high, self.max_value)
        if hi < lo:
            return 0.0
        return (hi - lo) / span

    def _out_of_bounds(self, value) -> bool:
        if self.min_value is None:
            return True
        try:
            return value < self.min_value or value > self.max_value
        except TypeError:
            return False


def _order_correlation(values: Sequence) -> float:
    """Spearman-style correlation between heap order and value order."""
    n = len(values)
    if n < 2:
        return 1.0
    ranked = sorted(range(n), key=lambda i: (values[i], i))
    rank_of = [0] * n
    for rank, idx in enumerate(ranked):
        rank_of[idx] = rank
    mean = (n - 1) / 2.0
    num = sum((i - mean) * (rank_of[i] - mean) for i in range(n))
    den = sum((i - mean) ** 2 for i in range(n))
    if den == 0:
        return 1.0
    return max(-1.0, min(1.0, num / den))


def default_stats_for(dtype: DataType, row_count: float) -> ColumnStats:
    """Fallback statistics when a column has never been analyzed."""
    distinct = max(1.0, min(row_count, 200.0))
    if dtype.is_numeric:
        return ColumnStats(n_distinct=distinct, min_value=0, max_value=max(1, int(row_count)))
    return ColumnStats(n_distinct=distinct, min_value="", max_value="~")
