"""System catalog: tables, columns, statistics, and the index registry.

The catalog is the single source of truth the optimizer consults.  It
tracks which indexes are *materialized* (usable by plans) separately from
the universe of *definable* indexes, which is what makes what-if
optimization natural: a what-if call simply optimizes against a different
materialized-set view (see ``repro.optimizer.whatif``).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Optional, Tuple

from repro.engine.cost_params import CostParams
from repro.engine.datatypes import DataType
from repro.engine.index import IndexDef
from repro.engine.stats import ColumnStats, default_stats_for


@dataclasses.dataclass(frozen=True)
class ColumnRef:
    """A fully-qualified column reference (``table.column``)."""

    table: str
    column: str

    def __str__(self) -> str:
        return f"{self.table}.{self.column}"


@dataclasses.dataclass
class ColumnDef:
    """Definition of one column.

    Attributes:
        name: Column name, unique within its table.
        dtype: Scalar data type.
        indexable: Whether COLT may propose an index on this column.
            Mirrors the paper's count of "indexable attributes".
    """

    name: str
    dtype: DataType
    indexable: bool = True


@dataclasses.dataclass
class TableDef:
    """Definition of one table plus its optimizer-visible statistics.

    Attributes:
        name: Table name, unique within the catalog.
        columns: Ordered column definitions.
        row_count: Statistical row count used by the cost model.  This may
            describe a larger logical table than is physically stored (see
            DESIGN.md on paper-scale statistics over sampled data).
    """

    name: str
    columns: List[ColumnDef]
    row_count: float = 0.0

    def __post_init__(self) -> None:
        self._by_name = {c.name: c for c in self.columns}
        if len(self._by_name) != len(self.columns):
            raise ValueError(f"duplicate column names in table {self.name!r}")

    def column(self, name: str) -> ColumnDef:
        """Look up a column by name.

        Raises:
            KeyError: if the column does not exist.
        """
        return self._by_name[name]

    def has_column(self, name: str) -> bool:
        """Whether the table defines a column with this name."""
        return name in self._by_name

    @property
    def row_width(self) -> int:
        """Average row payload width in bytes."""
        return sum(c.dtype.width for c in self.columns)

    def heap_pages(self, params: CostParams) -> float:
        """Heap size in pages under the statistical row count."""
        return params.heap_pages(self.row_count, self.row_width)


class Catalog:
    """The system catalog.

    Holds table definitions, per-column statistics, the set of currently
    materialized indexes, and the cost parameters.  All mutation of the
    physical design (create/drop index) goes through this class so that
    the tuner, optimizer and executor always agree on the configuration.
    """

    def __init__(self, params: Optional[CostParams] = None) -> None:
        self.params = params or CostParams()
        self._tables: Dict[str, TableDef] = {}
        self._stats: Dict[Tuple[str, str], ColumnStats] = {}
        self._materialized: Dict[Tuple[str, Tuple[str, ...]], IndexDef] = {}
        self._views: Dict[str, object] = {}
        self._stats_versions: Dict[str, int] = {}
        self._generation: int = 0

    # ------------------------------------------------------------------
    # Tables and columns
    # ------------------------------------------------------------------
    def add_table(self, table: TableDef) -> None:
        """Register a table definition.

        Raises:
            ValueError: if a table with the same name already exists.
        """
        if table.name in self._tables:
            raise ValueError(f"table {table.name!r} already exists")
        self._tables[table.name] = table

    def table(self, name: str) -> TableDef:
        """Look up a table by name.

        Raises:
            KeyError: if the table does not exist.
        """
        return self._tables[name]

    def has_table(self, name: str) -> bool:
        """Whether a table with this name exists."""
        return name in self._tables

    def tables(self) -> List[TableDef]:
        """All table definitions, in registration order."""
        return list(self._tables.values())

    def indexable_columns(self) -> List[ColumnRef]:
        """All (table, column) pairs on which an index may be defined."""
        refs = []
        for table in self._tables.values():
            for col in table.columns:
                if col.indexable:
                    refs.append(ColumnRef(table.name, col.name))
        return refs

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def set_stats(self, table: str, column: str, stats: ColumnStats) -> None:
        """Install statistics for a column (ANALYZE or declared)."""
        tdef = self.table(table)
        if not tdef.has_column(column):
            raise KeyError(f"no column {column!r} in table {table!r}")
        self._stats[(table, column)] = stats
        self._stats_versions[table] = self._stats_versions.get(table, 0) + 1
        self._generation += 1

    def stats(self, table: str, column: str) -> ColumnStats:
        """Statistics for a column, falling back to type defaults."""
        key = (table, column)
        if key in self._stats:
            return self._stats[key]
        tdef = self.table(table)
        return default_stats_for(tdef.column(column).dtype, tdef.row_count)

    def stats_version(self, table: str) -> int:
        """Monotone counter bumped on every stats-affecting mutation.

        Together with ``row_count`` this forms the staleness token the
        gain cache validates on lookup: any statistics refresh changes
        the token, so cached what-if gains recorded under old
        statistics can never be replayed.  ``set_stats`` (ANALYZE),
        :meth:`apply_row_delta` and :meth:`set_row_count` all bump it --
        the version alone distinguishes a delete-then-insert that
        restores the original row count, which ``row_count`` cannot.
        """
        return self._stats_versions.get(table, 0)

    @property
    def generation(self) -> int:
        """Catalog-wide monotone counter over every optimizer-visible
        mutation.

        Bumped by each per-table stats bump *and* by every
        materialization change (index or view create/drop).  An
        unchanged generation therefore proves the optimizer would see
        an identical catalog, which is what lets batch-level memos
        (:class:`repro.core.batching.BatchedPricer`) validate a hit
        with one integer compare instead of recomputing the relevant
        configuration and per-table stats tokens on every lookup.
        """
        return self._generation

    def bump_stats_version(self, table: str) -> int:
        """Mark a table's statistics as changed; returns the new version.

        Raises:
            KeyError: if the table does not exist.
        """
        self.table(table)
        version = self._stats_versions.get(table, 0) + 1
        self._stats_versions[table] = version
        self._generation += 1
        return version

    def apply_row_delta(self, table: str, delta: float) -> float:
        """Adjust a table's statistical row count by ``delta``.

        Every caller that grows or shrinks a table must come through
        here (not assign ``TableDef.row_count`` directly) so the stats
        version is bumped alongside -- otherwise a delete-then-insert
        restoring the original row count would leave the gain cache's
        staleness token unchanged and stale gains could be replayed.

        Returns:
            The new row count.

        Raises:
            KeyError: if the table does not exist.
        """
        tdef = self.table(table)
        tdef.row_count += delta
        self.bump_stats_version(table)
        return tdef.row_count

    def set_row_count(self, table: str, row_count: float) -> None:
        """Set a table's statistical row count, bumping the stats version.

        Raises:
            KeyError: if the table does not exist.
        """
        tdef = self.table(table)
        tdef.row_count = float(row_count)
        self.bump_stats_version(table)

    # ------------------------------------------------------------------
    # Indexes
    # ------------------------------------------------------------------
    def index_for(self, table: str, column: str) -> IndexDef:
        """The canonical single-column :class:`IndexDef` for a column."""
        dtype = self.table(table).column(column).dtype
        return IndexDef(table=table, column=column, dtype=dtype)

    def composite_index_for(self, table: str, columns: Iterable[str]) -> IndexDef:
        """The canonical composite :class:`IndexDef` over ordered columns.

        Raises:
            ValueError: for fewer than one column or duplicates.
        """
        names = list(columns)
        if not names:
            raise ValueError("an index needs at least one column")
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate columns in composite index: {names}")
        tdef = self.table(table)
        dtypes = [tdef.column(name).dtype for name in names]
        return IndexDef(
            table=table,
            column=names[0],
            dtype=dtypes[0],
            extra_columns=tuple(zip(names[1:], dtypes[1:])),
        )

    def materialize_index(self, index: IndexDef) -> None:
        """Mark an index as materialized (usable by the optimizer)."""
        self._materialized[(index.table, index.columns)] = index
        self._generation += 1

    def drop_index(self, index: IndexDef) -> None:
        """Remove an index from the materialized set (no-op if absent)."""
        if self._materialized.pop((index.table, index.columns), None) is not None:
            self._generation += 1

    def is_materialized(self, index: IndexDef) -> bool:
        """Whether this index is currently materialized."""
        return (index.table, index.columns) in self._materialized

    def materialized_indexes(self, table: Optional[str] = None) -> List[IndexDef]:
        """Materialized indexes, optionally restricted to one table."""
        indexes = self._materialized.values()
        if table is not None:
            return [ix for ix in indexes if ix.table == table]
        return list(indexes)

    def materialized_size_pages(self) -> float:
        """Total pages consumed by the materialized set."""
        return sum(self.index_size_pages(ix) for ix in self._materialized.values())

    def index_size_pages(self, index: IndexDef) -> float:
        """Estimated size of one index in pages."""
        return index.size_pages(self.table(index.table).row_count, self.params)

    def index_build_cost(self, index: IndexDef) -> float:
        """Estimated cost of materializing one index, in cost units."""
        table = self.table(index.table)
        return index.materialization_cost(
            table.row_count, table.heap_pages(self.params), self.params
        )

    # ------------------------------------------------------------------
    # Materialized views (extension; see repro.engine.matview)
    # ------------------------------------------------------------------
    def materialize_view(self, view) -> None:
        """Register a materialized view (usable by the optimizer).

        Raises:
            ValueError: if a different view with the same name exists.
        """
        existing = self._views.get(view.name)
        if existing is not None and existing != view:
            raise ValueError(f"view {view.name!r} already exists")
        self._views[view.name] = view
        self._generation += 1

    def drop_view(self, view) -> None:
        """Remove a materialized view (no-op if absent)."""
        if self._views.pop(view.name, None) is not None:
            self._generation += 1

    def materialized_views(self, table: Optional[str] = None) -> List:
        """Registered views, optionally restricted to one base table."""
        views = list(self._views.values())
        if table is not None:
            return [v for v in views if v.table == table]
        return views

    # ------------------------------------------------------------------
    # Bulk helpers
    # ------------------------------------------------------------------
    def analyze_table(self, table: str, columns: Dict[str, Iterable]) -> None:
        """Measure and install statistics for the given column values."""
        for name, values in columns.items():
            self.set_stats(table, name, ColumnStats.from_values(list(values)))
