"""Scalar data types supported by the engine.

The engine stores four scalar types.  Dates are represented internally as
integer day offsets from 1970-01-01, which keeps histogram and comparison
logic uniform across types while still allowing ISO date literals in SQL.
"""

from __future__ import annotations

import datetime
import enum
from typing import Any


class DataType(enum.Enum):
    """Enumeration of scalar column types."""

    INT = "int"
    FLOAT = "float"
    TEXT = "text"
    DATE = "date"

    @property
    def width(self) -> int:
        """Average on-disk width of a value in bytes.

        Widths follow PostgreSQL conventions: 4-byte integers, 8-byte
        floats and dates (date + alignment), and an assumed 16-byte
        average for variable-length text.
        """
        return _WIDTHS[self]

    @property
    def is_numeric(self) -> bool:
        """Whether values of this type are stored as numbers."""
        return self in (DataType.INT, DataType.FLOAT, DataType.DATE)


_WIDTHS = {
    DataType.INT: 4,
    DataType.FLOAT: 8,
    DataType.TEXT: 16,
    DataType.DATE: 8,
}

_EPOCH = datetime.date(1970, 1, 1)


def date_to_ordinal(value: datetime.date) -> int:
    """Convert a date to its internal integer representation."""
    return (value - _EPOCH).days


def ordinal_to_date(days: int) -> datetime.date:
    """Convert an internal integer date back to a ``datetime.date``."""
    return _EPOCH + datetime.timedelta(days=int(days))


def parse_date(text: str) -> int:
    """Parse an ISO ``YYYY-MM-DD`` literal into the internal form."""
    return date_to_ordinal(datetime.date.fromisoformat(text))


def coerce(value: Any, dtype: DataType) -> Any:
    """Coerce a Python value to the engine representation of ``dtype``.

    Raises:
        TypeError: if the value cannot represent the requested type.
    """
    if value is None:
        raise TypeError("NULL values are not supported by this engine")
    if dtype is DataType.INT:
        if isinstance(value, bool):
            raise TypeError("booleans are not valid INT values")
        if isinstance(value, int):
            return value
        if isinstance(value, float) and value.is_integer():
            return int(value)
        raise TypeError(f"cannot coerce {value!r} to INT")
    if dtype is DataType.FLOAT:
        if isinstance(value, bool):
            raise TypeError("booleans are not valid FLOAT values")
        if isinstance(value, (int, float)):
            return float(value)
        raise TypeError(f"cannot coerce {value!r} to FLOAT")
    if dtype is DataType.TEXT:
        if isinstance(value, str):
            return value
        raise TypeError(f"cannot coerce {value!r} to TEXT")
    if dtype is DataType.DATE:
        if isinstance(value, datetime.date):
            return date_to_ordinal(value)
        if isinstance(value, int):
            return value
        if isinstance(value, str):
            return parse_date(value)
        raise TypeError(f"cannot coerce {value!r} to DATE")
    raise TypeError(f"unknown data type {dtype!r}")


def comparable(left: DataType, right: DataType) -> bool:
    """Whether two column types can appear on both sides of a comparison."""
    if left is right:
        return True
    numeric = (DataType.INT, DataType.FLOAT)
    return left in numeric and right in numeric
