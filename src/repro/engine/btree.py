"""An in-memory B+tree for single-column indexes.

The tree maps keys to lists of row identifiers (heap positions).  It
supports point lookups, inclusive/exclusive range scans, incremental
insertion, deletion, and sorted bulk loading -- everything the executor's
index scan and the scheduler's index build need.

The implementation is a classic order-``B`` B+tree with linked leaves.
It is deliberately self-contained (no third-party tree library) because
the paper's substrate includes the physical access method itself.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

DEFAULT_ORDER = 64


class _Node:
    __slots__ = ("keys", "children", "values", "next_leaf", "is_leaf")

    def __init__(self, is_leaf: bool) -> None:
        self.is_leaf = is_leaf
        self.keys: List = []
        self.children: List["_Node"] = []
        self.values: List[List[int]] = []
        self.next_leaf: Optional["_Node"] = None


class BPlusTree:
    """A B+tree mapping keys to lists of row ids.

    Args:
        order: Maximum number of keys per node; nodes split at ``order``
            and hold at least ``order // 2`` keys (except the root).
    """

    def __init__(self, order: int = DEFAULT_ORDER) -> None:
        if order < 4:
            raise ValueError("B+tree order must be at least 4")
        self._order = order
        self._root = _Node(is_leaf=True)
        self._size = 0

    def __len__(self) -> int:
        """Total number of (key, row id) entries."""
        return self._size

    @property
    def height(self) -> int:
        """Number of levels, 1 for a single-leaf tree."""
        levels = 1
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
            levels += 1
        return levels

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def bulk_load(
        cls, pairs: Iterable[Tuple[object, int]], order: int = DEFAULT_ORDER
    ) -> "BPlusTree":
        """Build a tree from (key, row id) pairs in one pass.

        The pairs are sorted by key and packed into leaves at full
        occupancy, which is how the scheduler materializes indexes.
        """
        tree = cls(order=order)
        grouped: List[Tuple[object, List[int]]] = []
        for key, rid in sorted(pairs, key=lambda kv: kv[0]):
            if grouped and grouped[-1][0] == key:
                grouped[-1][1].append(rid)
            else:
                grouped.append((key, [rid]))
        if not grouped:
            return tree

        leaves: List[_Node] = []
        for start in range(0, len(grouped), order):
            leaf = _Node(is_leaf=True)
            chunk = grouped[start : start + order]
            leaf.keys = [k for k, _ in chunk]
            leaf.values = [list(v) for _, v in chunk]
            if leaves:
                leaves[-1].next_leaf = leaf
            leaves.append(leaf)
        tree._size = sum(len(v) for _, v in grouped)

        level = leaves
        while len(level) > 1:
            parents: List[_Node] = []
            for start in range(0, len(level), order):
                parent = _Node(is_leaf=False)
                chunk = level[start : start + order]
                parent.children = chunk
                parent.keys = [_min_key(child) for child in chunk[1:]]
                parents.append(parent)
            level = parents
        tree._root = level[0]
        return tree

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(self, key, rid: int) -> None:
        """Insert one (key, row id) entry."""
        split = self._insert(self._root, key, rid)
        if split is not None:
            sep, right = split
            new_root = _Node(is_leaf=False)
            new_root.keys = [sep]
            new_root.children = [self._root, right]
            self._root = new_root
        self._size += 1

    def delete(self, key, rid: int) -> bool:
        """Remove one (key, row id) entry.

        Returns:
            True if the entry existed and was removed.  Underfull nodes
            are tolerated (no rebalancing on delete); lookups remain
            correct, which is sufficient for an index that is dropped and
            rebuilt rather than heavily churned.
        """
        leaf = self._find_leaf(key)
        idx = bisect.bisect_left(leaf.keys, key)
        if idx >= len(leaf.keys) or leaf.keys[idx] != key:
            return False
        try:
            leaf.values[idx].remove(rid)
        except ValueError:
            return False
        if not leaf.values[idx]:
            leaf.keys.pop(idx)
            leaf.values.pop(idx)
        self._size -= 1
        return True

    def _insert(self, node: _Node, key, rid: int) -> Optional[Tuple[object, _Node]]:
        if node.is_leaf:
            idx = bisect.bisect_left(node.keys, key)
            if idx < len(node.keys) and node.keys[idx] == key:
                node.values[idx].append(rid)
            else:
                node.keys.insert(idx, key)
                node.values.insert(idx, [rid])
            if len(node.keys) > self._order:
                return self._split_leaf(node)
            return None

        idx = bisect.bisect_right(node.keys, key)
        split = self._insert(node.children[idx], key, rid)
        if split is None:
            return None
        sep, right = split
        node.keys.insert(idx, sep)
        node.children.insert(idx + 1, right)
        if len(node.keys) > self._order:
            return self._split_internal(node)
        return None

    def _split_leaf(self, node: _Node) -> Tuple[object, _Node]:
        mid = len(node.keys) // 2
        right = _Node(is_leaf=True)
        right.keys = node.keys[mid:]
        right.values = node.values[mid:]
        node.keys = node.keys[:mid]
        node.values = node.values[:mid]
        right.next_leaf = node.next_leaf
        node.next_leaf = right
        return right.keys[0], right

    def _split_internal(self, node: _Node) -> Tuple[object, _Node]:
        mid = len(node.keys) // 2
        sep = node.keys[mid]
        right = _Node(is_leaf=False)
        right.keys = node.keys[mid + 1 :]
        right.children = node.children[mid + 1 :]
        node.keys = node.keys[:mid]
        node.children = node.children[: mid + 1]
        return sep, right

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def search(self, key) -> List[int]:
        """Row ids for an exact key match (empty list if absent)."""
        leaf = self._find_leaf(key)
        idx = bisect.bisect_left(leaf.keys, key)
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            return list(leaf.values[idx])
        return []

    def range_scan(
        self,
        low=None,
        high=None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> Iterator[Tuple[object, int]]:
        """Yield (key, row id) pairs with keys in the given range.

        ``None`` bounds are unbounded.  Results are ordered by key and,
        within a key, by insertion order.
        """
        leaf = self._leftmost_leaf() if low is None else self._find_leaf(low)
        while leaf is not None:
            for idx, key in enumerate(leaf.keys):
                if low is not None:
                    if key < low or (key == low and not low_inclusive):
                        continue
                if high is not None:
                    if key > high or (key == high and not high_inclusive):
                        return
                for rid in leaf.values[idx]:
                    yield key, rid
            leaf = leaf.next_leaf

    def keys(self) -> Iterator:
        """All distinct keys in ascending order."""
        leaf = self._leftmost_leaf()
        while leaf is not None:
            yield from leaf.keys
            leaf = leaf.next_leaf

    def items(self) -> Iterator[Tuple[object, Sequence[int]]]:
        """All (key, row ids) groups in ascending key order."""
        leaf = self._leftmost_leaf()
        while leaf is not None:
            yield from zip(leaf.keys, leaf.values)
            leaf = leaf.next_leaf

    def _find_leaf(self, key) -> _Node:
        node = self._root
        while not node.is_leaf:
            idx = bisect.bisect_right(node.keys, key)
            node = node.children[idx]
        return node

    def _leftmost_leaf(self) -> _Node:
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
        return node

    # ------------------------------------------------------------------
    # Invariant checking (used by property-based tests)
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Verify structural B+tree invariants.

        Raises:
            AssertionError: if any invariant is violated.
        """
        self._check_node(self._root, lo=None, hi=None, is_root=True)
        # Leaves are chained left-to-right and globally sorted.
        prev = None
        for key in self.keys():
            if prev is not None:
                assert prev < key, "leaf keys not strictly increasing"
            prev = key

    def _check_node(self, node: _Node, lo, hi, is_root: bool) -> int:
        assert len(node.keys) <= self._order + 1, "node overflow"
        for a, b in zip(node.keys, node.keys[1:]):
            assert a < b, "node keys not sorted"
        for key in node.keys:
            if lo is not None:
                assert key >= lo, "key below subtree bound"
            if hi is not None:
                assert key < hi, "key above subtree bound"
        if node.is_leaf:
            assert len(node.keys) == len(node.values), "leaf shape mismatch"
            for rids in node.values:
                assert rids, "empty rid list in leaf"
            return 1
        assert len(node.children) == len(node.keys) + 1, "internal shape"
        depths = set()
        bounds = [lo] + list(node.keys) + [hi]
        for child, (clo, chi) in zip(node.children, zip(bounds, bounds[1:])):
            depths.add(self._check_node(child, clo, chi, is_root=False))
        assert len(depths) == 1, "unbalanced subtrees"
        return depths.pop() + 1


def _min_key(node: _Node):
    while not node.is_leaf:
        node = node.children[0]
    return node.keys[0]
