"""Relational engine substrate.

This package implements the database substrate that the COLT tuner sits on
top of: a catalog with statistics, columnar heap storage, B+tree indexes,
and the cost parameters shared by the optimizer.  It deliberately mirrors
the slice of PostgreSQL that the paper's prototype touches -- enough of a
real engine that what-if optimization, index materialization, and query
execution are all meaningful operations rather than stubs.
"""

from repro.engine.catalog import Catalog, ColumnDef, ColumnRef, TableDef
from repro.engine.cost_params import CostParams
from repro.engine.datatypes import DataType
from repro.engine.index import IndexDef
from repro.engine.stats import ColumnStats, Histogram
from repro.engine.storage import HeapTable

__all__ = [
    "Catalog",
    "ColumnDef",
    "ColumnRef",
    "ColumnStats",
    "CostParams",
    "DataType",
    "Histogram",
    "HeapTable",
    "IndexDef",
    "TableDef",
]
