"""Index descriptors and their size/cost estimation.

COLT reasons about indexes symbolically: a candidate index exists in the
catalog as an :class:`IndexDef` long before (and often without ever) being
physically materialized.  The descriptor therefore carries everything the
optimizer and tuner need -- key column, estimated size in pages, estimated
materialization cost -- independent of any physical B+tree.
"""

from __future__ import annotations

import dataclasses
from typing import Tuple

from repro.engine.cost_params import CostParams
from repro.engine.datatypes import DataType


@dataclasses.dataclass(frozen=True)
class IndexDef:
    """An index descriptor: single-column, or composite (extension).

    The paper restricts COLT to single-column indexes and defers
    multi-column indexes to future work; this reproduction supports both.
    A composite index lists its trailing key columns in
    ``extra_columns``; ``column`` is always the leading key column, so
    all single-column call sites work unchanged.

    Two indexes are the same index iff they cover the same table and the
    same ordered key-column list; the paper's candidate set ``C``, hot
    set ``H`` and materialized set ``M`` are all sets of these
    descriptors.

    Attributes:
        table: Name of the indexed table.
        column: Name of the leading key column.
        dtype: Data type of the leading key column.
        extra_columns: Trailing key columns as (name, dtype) pairs, in
            key order; empty for single-column indexes.
    """

    table: str
    column: str
    dtype: DataType
    extra_columns: Tuple[Tuple[str, DataType], ...] = ()

    @property
    def is_composite(self) -> bool:
        """Whether this index has more than one key column."""
        return bool(self.extra_columns)

    @property
    def columns(self) -> Tuple[str, ...]:
        """All key column names, in key order."""
        return (self.column,) + tuple(name for name, _ in self.extra_columns)

    @property
    def dtypes(self) -> Tuple[DataType, ...]:
        """Data types of all key columns, in key order."""
        return (self.dtype,) + tuple(dt for _, dt in self.extra_columns)

    @property
    def key_width(self) -> int:
        """Total key width in bytes."""
        return sum(dt.width for dt in self.dtypes)

    @property
    def name(self) -> str:
        """Canonical index name, e.g. ``ix_lineitem_l_shipdate``."""
        return f"ix_{self.table}_" + "_".join(self.columns)

    def __str__(self) -> str:
        return self.name

    def size_pages(self, row_count: float, params: CostParams) -> float:
        """Estimated total size of the index in pages (leaves + internal).

        Internal levels are approximated as 0.5% of the leaf level, which
        matches high-fanout B+trees.
        """
        leaves = params.index_pages(row_count, self.key_width)
        return leaves * 1.005

    def materialization_cost(self, row_count: float, heap_pages: float, params: CostParams) -> float:
        """Estimated cost of building the index, in planner cost units.

        The build must scan the heap once, sort the keys, and write out the
        leaf pages; we charge a sequential heap scan, per-tuple build CPU
        (covering the sort), and sequential writes of the leaf level.
        """
        leaves = params.index_pages(row_count, self.key_width)
        return (
            heap_pages * params.seq_page_cost
            + row_count * params.index_build_cpu_per_tuple
            + leaves * params.seq_page_cost
        )
