"""Cost model parameters.

The constants mirror PostgreSQL's planner GUCs, since the paper's prototype
was built inside PostgreSQL and its what-if answers are therefore expressed
in the same cost units.  All engine and optimizer cost arithmetic flows
through a single :class:`CostParams` instance so that experiments can vary
the cost landscape (e.g. cheap vs. expensive random I/O) without touching
the formulas.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class CostParams:
    """Planner cost constants, in abstract "cost units".

    One cost unit corresponds to one sequential page fetch, following the
    PostgreSQL convention.  The remaining constants are expressed relative
    to that anchor.

    Attributes:
        seq_page_cost: Cost of reading one page sequentially.
        random_page_cost: Cost of reading one page at a random offset.
        cpu_tuple_cost: CPU cost of processing one heap tuple.
        cpu_index_tuple_cost: CPU cost of processing one index entry.
        cpu_operator_cost: CPU cost of evaluating one operator/function.
        page_size: Bytes per page, used to convert row widths into pages.
        index_build_cpu_per_tuple: CPU cost per tuple when bulk-building a
            B+tree (read + sort + load amortized per tuple).
        index_maintain_cost_per_tuple: Cost of keeping ONE index up to
            date for ONE inserted tuple (a descent plus a leaf write,
            amortized).  This is the write penalty the write-aware
            tuning extension charges against NetBenefit.
        hash_mem_pages: Pages of workspace assumed available to hash joins;
            beyond this the join is charged for spill passes.
        tuple_header_bytes: Per-tuple storage overhead in heap pages.
        index_entry_overhead_bytes: Per-entry overhead in index leaf pages.
        index_fill_factor: Fraction of each index page left filled by a
            bulk build.
    """

    seq_page_cost: float = 1.0
    random_page_cost: float = 4.0
    cpu_tuple_cost: float = 0.01
    cpu_index_tuple_cost: float = 0.005
    cpu_operator_cost: float = 0.0025
    page_size: int = 8192
    index_build_cpu_per_tuple: float = 0.02
    # A maintained insert costs roughly a B+tree descent plus a dirtied
    # leaf page -- on the order of a random page access.
    index_maintain_cost_per_tuple: float = 2.0
    hash_mem_pages: int = 4096
    tuple_header_bytes: int = 28
    index_entry_overhead_bytes: int = 12
    index_fill_factor: float = 0.9

    def heap_pages(self, row_count: float, row_width: int) -> float:
        """Number of heap pages needed for ``row_count`` rows.

        Args:
            row_count: Number of rows (may be fractional for estimates).
            row_width: Average payload width of one row in bytes.

        Returns:
            Page count, at least 1 for any non-empty relation.
        """
        if row_count <= 0:
            return 0.0
        per_page = max(1, self.page_size // (row_width + self.tuple_header_bytes))
        return max(1.0, row_count / per_page)

    def index_pages(self, row_count: float, key_width: int) -> float:
        """Number of leaf pages in a B+tree over ``row_count`` keys."""
        if row_count <= 0:
            return 0.0
        entry = key_width + self.index_entry_overhead_bytes
        per_page = max(1, int(self.page_size * self.index_fill_factor) // entry)
        return max(1.0, row_count / per_page)

    def index_height(self, leaf_pages: float) -> int:
        """Height of the B+tree above the leaf level (descent steps)."""
        height = 1
        fanout = 256.0
        pages = leaf_pages
        while pages > 1.0:
            pages /= fanout
            height += 1
        return height
