"""C³-UCB contextual combinatorial bandit tuning engine.

The third engine beside COLT and the offline/continuous baselines: arms
are candidate indexes, context features come from workload and catalog
signals, the super-arm is chosen by the storage-budget knapsack, and
rewards are *observed* execution costs -- never what-if forecasts.  See
``docs/BANDIT.md`` for the algorithm and when to prefer it over COLT.
"""

from repro.bandit.config import BanditConfig
from repro.bandit.evaluate import ScenarioResult, curve_is_sane, run_scenario
from repro.bandit.features import FEATURE_DIM, FEATURE_NAMES, FeatureMap
from repro.bandit.linucb import RidgeModel
from repro.bandit.persist import restore_bandit_tuner, snapshot_bandit_tuner
from repro.bandit.tuner import BanditProfile, BanditTuner

__all__ = [
    "BanditConfig",
    "BanditProfile",
    "BanditTuner",
    "FEATURE_DIM",
    "FEATURE_NAMES",
    "FeatureMap",
    "RidgeModel",
    "ScenarioResult",
    "curve_is_sane",
    "restore_bandit_tuner",
    "run_scenario",
    "snapshot_bandit_tuner",
]
