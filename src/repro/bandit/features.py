"""Context feature map for bandit arms.

Each candidate index (arm) is summarized as a small, bounded feature
vector mixing what the workload window says about it (crude benefit,
usage) with what the catalog says about its shape (size, table scale,
leading-column selectivity) and with live write pressure.  The shared
:class:`~repro.bandit.linucb.RidgeModel` learns one weight vector over
these features, so reward evidence gathered on one arm generalizes to
structurally similar arms -- the property that lets the bandit cope
with ad-hoc workloads where no individual query ever repeats.

All features are deterministic functions of (catalog, tracker state)
and bounded (log-damped or ratios), keeping the design matrix well
conditioned without normalization passes.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from repro.core.candidates import CandidateTracker
from repro.engine.catalog import Catalog
from repro.engine.index import IndexDef

#: Feature vector dimension (see :meth:`FeatureMap.vector`).
FEATURE_DIM = 10

#: Human-readable feature names, index-aligned with the vectors.
FEATURE_NAMES = (
    "bias",
    "log_smoothed_benefit",
    "log_window_benefit",
    "size_fraction",
    "log_table_rows",
    "is_materialized",
    "table_read_rate",
    "table_write_rate",
    "n_columns",
    "lead_selectivity",
)


class FeatureMap:
    """Builds per-arm context vectors.

    Args:
        catalog: Source of index sizes and column statistics.
        storage_budget_pages: Normalizer for the size feature.
        write_halflife: EWMA factor for the per-table write-rate signal
            (fraction of old signal retained per epoch).
    """

    def __init__(
        self,
        catalog: Catalog,
        storage_budget_pages: float,
        write_halflife: float = 0.5,
    ) -> None:
        self._catalog = catalog
        self._budget = max(1.0, storage_budget_pages)
        self._write_decay = write_halflife
        self._epoch_reads: Dict[str, int] = {}
        self._epoch_writes: Dict[str, int] = {}
        self._read_rate: Dict[str, float] = {}
        self._write_rate: Dict[str, float] = {}

    # ------------------------------------------------------------------
    # live workload signals
    def note_query(self, tables) -> None:
        """Record one query touching ``tables`` (read pressure)."""
        for table in tables:
            self._epoch_reads[table] = self._epoch_reads.get(table, 0) + 1

    def note_insert(self, table: str, rows: int) -> None:
        """Record an insert batch (write pressure)."""
        self._epoch_writes[table] = self._epoch_writes.get(table, 0) + rows

    def roll_epoch(self, epoch_length: int) -> None:
        """Fold the epoch's read/write tallies into the EWMA rates."""
        d = self._write_decay
        tables = set(self._read_rate) | set(self._write_rate)
        tables |= set(self._epoch_reads) | set(self._epoch_writes)
        for table in tables:
            reads = self._epoch_reads.get(table, 0) / max(1, epoch_length)
            writes = self._epoch_writes.get(table, 0) / max(1, epoch_length)
            self._read_rate[table] = (
                d * self._read_rate.get(table, 0.0) + (1.0 - d) * reads
            )
            self._write_rate[table] = (
                d * self._write_rate.get(table, 0.0) + (1.0 - d) * writes
            )
        self._epoch_reads = {}
        self._epoch_writes = {}

    # ------------------------------------------------------------------
    def vector(
        self,
        index: IndexDef,
        tracker: CandidateTracker,
        materialized,
    ) -> List[float]:
        """The context vector for one arm, right now."""
        stats = tracker.stats_for(index)
        smoothed = stats.smoothed_benefit if stats is not None else 0.0
        window = stats.window_total() if stats is not None else 0.0
        table = self._catalog.table(index.table)
        lead = self._catalog.stats(index.table, index.columns[0])
        selectivity = 1.0 / max(1.0, lead.n_distinct)
        return [
            1.0,
            _log_damp(smoothed),
            _log_damp(window),
            min(4.0, self._catalog.index_size_pages(index) / self._budget),
            math.log10(1.0 + max(0, table.row_count)),
            1.0 if index in set(materialized) else 0.0,
            _log_damp(self._read_rate.get(index.table, 0.0)),
            _log_damp(self._write_rate.get(index.table, 0.0)),
            float(len(index.columns)),
            selectivity,
        ]

    def to_snapshot(self) -> Dict:
        """JSON-compatible serialization of the EWMA rate state."""
        return {
            "read_rate": dict(sorted(self._read_rate.items())),
            "write_rate": dict(sorted(self._write_rate.items())),
        }

    def restore(self, data: Optional[Dict]) -> None:
        """Inverse of :meth:`to_snapshot` (epoch tallies start empty)."""
        if not data:
            return
        self._read_rate = {
            str(k): float(v) for k, v in data.get("read_rate", {}).items()
        }
        self._write_rate = {
            str(k): float(v) for k, v in data.get("write_rate", {}).items()
        }


def _log_damp(value: float) -> float:
    """Sign-preserving log damping: ``sign(v) * log1p(|v|)``."""
    return math.copysign(math.log1p(abs(value)), value) if value else 0.0
