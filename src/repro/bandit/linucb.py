"""Pure-Python ridge regression for the C³-UCB arm model.

The bandit's reward model is classical LinUCB state: a design matrix
``V = lambda*I + sum x x^T`` and response vector ``b = sum r x`` over
every (feature, reward) observation, giving the ridge estimate
``theta = V^-1 b`` and the confidence width ``sqrt(x^T V^-1 x)`` (the
ellipsoid shrinks along directions the data has covered).

No numpy: the feature dimension is tiny (~10), so a Gauss-Jordan
inverse with partial pivoting is both fast enough and dependency-free
(the CI image only ships the test toolchain).
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence


def mat_identity(dim: int, scale: float = 1.0) -> List[List[float]]:
    """A ``dim x dim`` scaled identity matrix."""
    return [
        [scale if i == j else 0.0 for j in range(dim)] for i in range(dim)
    ]


def mat_vec(matrix: Sequence[Sequence[float]], vector: Sequence[float]) -> List[float]:
    """Matrix-vector product."""
    return [
        sum(row[j] * vector[j] for j in range(len(vector))) for row in matrix
    ]


def dot(a: Sequence[float], b: Sequence[float]) -> float:
    """Inner product."""
    return sum(x * y for x, y in zip(a, b))


def mat_inverse(matrix: Sequence[Sequence[float]]) -> List[List[float]]:
    """Invert a small square matrix by Gauss-Jordan elimination.

    Partial pivoting keeps the elimination stable; the ridge prior
    ``lambda*I`` guarantees the model's ``V`` is positive definite, so a
    singular pivot only arises on caller error.

    Raises:
        ValueError: if the matrix is (numerically) singular.
    """
    n = len(matrix)
    # Augment [M | I] and reduce in place.
    aug = [list(row) + [1.0 if i == j else 0.0 for j in range(n)]
           for i, row in enumerate(matrix)]
    for col in range(n):
        pivot_row = max(range(col, n), key=lambda r: abs(aug[r][col]))
        if abs(aug[pivot_row][col]) < 1e-12:
            raise ValueError("matrix is singular")
        if pivot_row != col:
            aug[col], aug[pivot_row] = aug[pivot_row], aug[col]
        pivot = aug[col][col]
        aug[col] = [v / pivot for v in aug[col]]
        for row in range(n):
            if row == col:
                continue
            factor = aug[row][col]
            if factor == 0.0:
                continue
            aug[row] = [
                rv - factor * cv for rv, cv in zip(aug[row], aug[col])
            ]
    return [row[n:] for row in aug]


class RidgeModel:
    """Shared linear reward model over arm feature vectors.

    Args:
        dim: Feature dimension.
        lambda_reg: Ridge regularizer (prior precision).
        forgetting: Decay ``gamma`` applied by :meth:`decay`; 1.0
            disables forgetting.

    Attributes:
        updates: Total reward observations folded in (survives decay --
            it counts evidence seen, not evidence remaining).
    """

    def __init__(self, dim: int, lambda_reg: float = 1.0, forgetting: float = 1.0) -> None:
        if dim < 1:
            raise ValueError("dim must be positive")
        if lambda_reg <= 0.0:
            raise ValueError("lambda_reg must be positive")
        if not 0.0 < forgetting <= 1.0:
            raise ValueError("forgetting must be in (0, 1]")
        self.dim = dim
        self.lambda_reg = lambda_reg
        self.forgetting = forgetting
        self.v = mat_identity(dim, lambda_reg)
        self.b = [0.0] * dim
        self.updates = 0
        self._inv: List[List[float]] | None = None

    # ------------------------------------------------------------------
    def update(self, x: Sequence[float], reward: float) -> None:
        """Fold one (feature, reward) observation into ``V`` and ``b``."""
        if len(x) != self.dim:
            raise ValueError(f"expected dim {self.dim}, got {len(x)}")
        for i in range(self.dim):
            xi = x[i]
            if xi == 0.0:
                continue
            row = self.v[i]
            for j in range(self.dim):
                row[j] += xi * x[j]
            self.b[i] += reward * xi
        self.updates += 1
        self._inv = None

    def decay(self) -> None:
        """Age the evidence: ``V <- gamma V + (1-gamma) lambda I``.

        The blend keeps ``V`` anchored at the ridge prior (never less
        positive definite than ``lambda*I``), so the confidence widths
        re-expand toward their cold-start values as old rewards fade --
        exactly the re-exploration a drifting workload needs.
        """
        g = self.forgetting
        if g >= 1.0:
            return
        for i in range(self.dim):
            row = self.v[i]
            for j in range(self.dim):
                row[j] *= g
            row[i] += (1.0 - g) * self.lambda_reg
            self.b[i] *= g
        self._inv = None

    # ------------------------------------------------------------------
    def _inverse(self) -> List[List[float]]:
        if self._inv is None:
            self._inv = mat_inverse(self.v)
        return self._inv

    def theta(self) -> List[float]:
        """The ridge point estimate ``V^-1 b``."""
        return mat_vec(self._inverse(), self.b)

    def mean(self, x: Sequence[float]) -> float:
        """Predicted reward ``theta^T x``."""
        return dot(self.theta(), x)

    def width(self, x: Sequence[float]) -> float:
        """Confidence width ``sqrt(x^T V^-1 x)`` (unscaled by alpha)."""
        quad = dot(x, mat_vec(self._inverse(), x))
        return math.sqrt(max(0.0, quad))

    def ucb(self, x: Sequence[float], alpha: float) -> float:
        """Optimistic reward estimate ``theta^T x + alpha * width(x)``."""
        inv = self._inverse()
        mean = dot(mat_vec(inv, self.b), x)
        quad = dot(x, mat_vec(inv, x))
        return mean + alpha * math.sqrt(max(0.0, quad))

    # ------------------------------------------------------------------
    def to_snapshot(self) -> Dict:
        """JSON-compatible serialization."""
        return {
            "dim": self.dim,
            "lambda_reg": self.lambda_reg,
            "forgetting": self.forgetting,
            "v": [list(row) for row in self.v],
            "b": list(self.b),
            "updates": self.updates,
        }

    @classmethod
    def from_snapshot(cls, data: Dict) -> "RidgeModel":
        """Inverse of :meth:`to_snapshot`."""
        model = cls(
            dim=int(data["dim"]),
            lambda_reg=float(data["lambda_reg"]),
            forgetting=float(data["forgetting"]),
        )
        v = data["v"]
        b = data["b"]
        if len(v) != model.dim or any(len(row) != model.dim for row in v):
            raise ValueError("snapshot V has wrong shape")
        if len(b) != model.dim:
            raise ValueError("snapshot b has wrong shape")
        model.v = [list(map(float, row)) for row in v]
        model.b = list(map(float, b))
        model.updates = int(data.get("updates", 0))
        return model
