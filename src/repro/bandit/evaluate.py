"""Shared scenario-evaluation harness for engine comparisons.

Runs one tuning engine over one :class:`~repro.workload.adversarial.
Scenario`, pricing every query's *about-to-run* plan on a
:class:`~repro.executor.instrument.CountingStore` before the tuner sees
it (the plan is priced first because an epoch close may drop the index
-- and physical tree -- the plan references).  The result carries the
total observed execution cost, tuning overheads, and a cumulative
regret curve sampled every ``sample_every`` queries, which is what the
regret benchmark plots and the CI smoke gate sanity-checks.

Used by ``benchmarks/test_bandit_regret.py`` and
``tools/check_bandit_regret.py`` so the committed ``BENCH_bandit.json``
and the CI gate measure exactly the same thing.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.bandit.config import BanditConfig
from repro.bandit.tuner import BanditTuner
from repro.core.colt import ColtTuner
from repro.core.config import ColtConfig
from repro.executor.executor import execute
from repro.executor.instrument import CountingStore
from repro.guardrails.verify import observed_cost
from repro.workload.adversarial import Scenario

#: Engines this harness can drive over a scenario.
ENGINES = ("colt", "bandit", "none")


@dataclasses.dataclass
class ScenarioResult:
    """Outcome of one (engine, scenario) run.

    Attributes:
        engine: Engine label (``"none"`` = never materialize anything).
        scenario: Scenario name.
        queries: Query events processed.
        observed_cost: Total observed execution cost (priced plans).
        tuning_overhead: Probe/verify/build overhead the engine charged.
        curve: Cumulative observed cost sampled every ``sample_every``
            queries (index 0 is after the first sample interval).
        sample_every: The curve's sampling stride.
        materialized: Final materialized index names, sorted.
    """

    engine: str
    scenario: str
    queries: int
    observed_cost: float
    tuning_overhead: float
    curve: List[float]
    sample_every: int
    materialized: List[str]

    def to_dict(self) -> Dict:
        """JSON-compatible form for ``BENCH_bandit.json``."""
        return dataclasses.asdict(self)


def make_tuner(engine: str, scenario: Scenario, epoch_length: int = 20, storage_budget_pages: float = 400.0):
    """Build a tuner of the requested engine over a scenario's store.

    The two live engines get matched epoch clocks and storage budgets
    (the bandit derives everything else from its defaults); ``"none"``
    returns None -- the do-nothing baseline.
    """
    if engine == "colt":
        return ColtTuner(
            scenario.catalog,
            ColtConfig(
                epoch_length=epoch_length,
                storage_budget_pages=storage_budget_pages,
                composite_candidates=True,
                seed=0,
            ),
            store=scenario.store,
        )
    if engine == "bandit":
        return BanditTuner(
            scenario.catalog,
            BanditConfig(
                epoch_length=epoch_length,
                storage_budget_pages=storage_budget_pages,
                composite_candidates=True,
                seed=0,
            ),
            store=scenario.store,
        )
    if engine == "none":
        return None
    raise ValueError(f"unknown engine {engine!r} (expected one of {ENGINES})")


def run_scenario(
    engine: str,
    scenario: Scenario,
    epoch_length: int = 20,
    storage_budget_pages: float = 400.0,
    sample_every: int = 20,
    tuner=None,
) -> ScenarioResult:
    """Drive one engine through a scenario's event stream.

    Args:
        engine: ``"colt"``, ``"bandit"`` or ``"none"``.
        scenario: A freshly built scenario (its store will be mutated).
        epoch_length: Epoch clock for the live engines.
        storage_budget_pages: Storage budget for the live engines.
        sample_every: Stride of the cumulative-cost curve.
        tuner: Pre-built tuner (overrides ``engine`` construction);
            pass when comparing non-default configurations.

    Returns:
        The run's :class:`ScenarioResult`.
    """
    if tuner is None:
        tuner = make_tuner(
            engine,
            scenario,
            epoch_length=epoch_length,
            storage_budget_pages=storage_budget_pages,
        )
    counting = CountingStore(scenario.store)
    catalog = scenario.catalog
    observed = 0.0
    overhead = 0.0
    curve: List[float] = []
    queries = 0

    for event in scenario.events:
        if event.kind == "insert":
            if tuner is not None:
                tuner.process_insert(event.table, rows=list(event.rows))
            else:
                scenario.store.apply_inserts(event.table, list(event.rows))
            continue
        query = event.query
        if tuner is not None:
            plan = tuner.optimizer.optimize(query).plan
        else:
            from repro.optimizer.optimizer import Optimizer

            plan = Optimizer(catalog).optimize(query).plan
        counting.counters.reset()
        execute(plan, counting)
        observed += observed_cost(counting.counters, catalog.params)
        if tuner is not None:
            outcome = tuner.run([query])[0]
            overhead += (
                outcome.whatif_overhead
                + outcome.verify_overhead
                + outcome.build_cost
            )
        queries += 1
        if queries % sample_every == 0:
            curve.append(observed)

    if queries % sample_every != 0:
        curve.append(observed)
    materialized: List[str] = []
    if tuner is not None:
        materialized = sorted(ix.name for ix in tuner.materialized_set)
    return ScenarioResult(
        engine=engine,
        scenario=scenario.name,
        queries=queries,
        observed_cost=observed,
        tuning_overhead=overhead,
        curve=curve,
        sample_every=sample_every,
        materialized=materialized,
    )


def curve_is_sane(curve: List[float]) -> bool:
    """CI smoke gate: finite, non-negative, non-decreasing cumulative cost."""
    if not curve:
        return False
    previous = 0.0
    for value in curve:
        if not (value == value) or value in (float("inf"), float("-inf")):
            return False
        if value < previous - 1e-9:
            return False
        previous = value
    return True
