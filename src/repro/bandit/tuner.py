"""The C³-UCB bandit tuner: index selection from observed rewards.

Where COLT forecasts index benefit from what-if optimizer estimates,
the bandit treats each candidate index as an *arm* of a contextual
combinatorial linear bandit (the C³-UCB construction of the DBA-bandits
line of work): every decision round it scores each arm by an optimistic
reward estimate ``theta^T x + alpha * sqrt(x^T V^-1 x)`` over context
features, picks the *super-arm* (set of arms) maximizing total estimate
under the storage budget -- the same knapsack COLT uses, serving as the
combinatorial oracle -- and then learns from what actually happened:
rewards are cost savings measured on the instrumented executor (or plan
costs in pure cost-model mode), not optimizer promises.

Safety rails:

* **Forced exploration** -- for the first few rounds the super-arm is
  chosen without build-cost hysteresis, so high-uncertainty arms get
  materialized and produce reward evidence.
* **Shrinking ellipsoid** -- the confidence term decays as observations
  accumulate in ``V``; the optional forgetting factor re-inflates it
  under drift.
* **Safety fallback** -- when the observed per-query cost of the round
  following a configuration change regresses past
  ``safety_factor x`` the pre-change cost, the change is reverted and
  the added arms are banned for a cooldown.

The class conforms to the :class:`~repro.core.colt.ColtTuner` surface
(``run``/``process_query`` loop, :class:`QueryOutcome` ledger records,
:class:`ReorganizationResult` at boundaries, snapshot save/restore,
metrics registry, breaker hooks), so the fleet, guardrails, CLI, and
fault injection drive either engine unchanged.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.bandit.config import BanditConfig
from repro.bandit.features import FEATURE_DIM, FeatureMap
from repro.bandit.linucb import RidgeModel
from repro.core.candidates import CandidateTracker
from repro.core.colt import InsertOutcome, QueryOutcome
from repro.core.gaincache import GainCache
from repro.core.knapsack import (
    KnapsackItem,
    SelectionConstraints,
    solve_constrained,
)
from repro.core.scheduler import Scheduler, SchedulingPolicy
from repro.core.self_organizer import ReorganizationResult
from repro.engine.catalog import Catalog
from repro.engine.index import IndexDef
from repro.engine.storage import PhysicalStore
from repro.executor.executor import execute
from repro.executor.instrument import CountingStore
from repro.guardrails.synthesis import synthesize_constraints
from repro.guardrails.verify import observed_cost
from repro.obs.dashboard import OverheadDashboard
from repro.obs.export import build_snapshot
from repro.obs.names import BANDIT_METRICS, RESILIENCE_METRICS
from repro.obs.registry import MetricsRegistry
from repro.obs.spans import SpanTracer
from repro.backend.base import Backend
from repro.backend.local import LocalBackend
from repro.optimizer.whatif import WhatIfOptimizer
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.faults import FaultInjector
from repro.resilience.retry import RetryPolicy
from repro.sql.ast import Query

if TYPE_CHECKING:  # avoid repro.bandit <-> repro.guardrails import cycle
    from repro.guardrails.manager import GuardrailManager

# Composite-safe index identity, shared with the Self-Organizer.
IndexKey = Tuple[str, Tuple[str, ...]]


def _key(index: IndexDef) -> IndexKey:
    return index.table, index.columns


class BanditProfile:
    """The bandit's stand-in for COLT's :class:`Profiler`.

    Fleet replicas, fault injectors, and snapshots reach component
    state through ``tuner.profiler.<attr>``; this shim carries the
    attributes that contract names -- a live circuit breaker (reward
    probes run behind it), the candidate tracker, and a disabled gain
    cache whose metric families still register so the observability
    contract holds for the bandit engine too.  What-if budgeting is
    inert: the bandit spends a fixed observation budget per round, not
    COLT's adaptive ``#WI_lim``.
    """

    def __init__(
        self,
        catalog: Catalog,
        whatif: WhatIfOptimizer,
        config: BanditConfig,
        breaker: Optional[CircuitBreaker] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.registry = registry or MetricsRegistry(enabled=False)
        self.breaker = breaker or CircuitBreaker()
        transitions = RESILIENCE_METRICS["breaker_transitions_total"].build(
            self.registry
        )
        self.breaker.add_listener(
            lambda origin, to: transitions.inc(1, from_state=origin, to_state=to)
        )
        self.gain_cache = GainCache(
            catalog,
            whatif,
            enabled=False,
            ttl_epochs=config.history_epochs,
            registry=self.registry,
        )
        self.candidates = CandidateTracker(
            catalog,
            config.history_epochs,
            config.smoothing,
            composite=config.composite_candidates,
        )
        self.whatif_budget = 0
        self.whatif_used = 0
        self.probe_failures = 0

    def set_budget(self, budget: int) -> None:
        """No-op: the bandit has no adaptive what-if budget."""

    def purge_stale(self) -> None:
        """No-op: the bandit keeps no pair statistics to purge."""


class BanditTuner:
    """On-line index tuning by contextual combinatorial UCB.

    Accepts the same construction surface as
    :class:`~repro.core.colt.ColtTuner` (catalog, optional store,
    scheduling policy, breaker, retry, fault injector, registry,
    guardrails) so every existing harness can swap engines.

    Args:
        catalog: The catalog to tune; its materialized set is owned by
            the tuner from now on.
        config: Bandit parameters (:class:`BanditConfig`).
        store: Optional physical store.  When given, rewards are priced
            from real executions on a :class:`CountingStore`; without
            one, optimizer plan costs stand in (still *post-decision*
            costs, never what-if forecasts of unbuilt indexes).
        policy: Materialization scheduling policy.
        breaker: Circuit breaker guarding reward probes.
        retry: Backoff policy for failed index builds.
        fault_injector: Optional fault injector (installs failpoints on
            ``self.whatif`` and ``self.scheduler``, same as for COLT).
        registry: Metrics registry; defaults to a fresh enabled one.
        guardrails: Optional guardrail manager; verification, quarantine
            and DBA constraints apply to the bandit's knapsack exactly
            as to COLT's.
    """

    def __init__(
        self,
        catalog: Catalog,
        config: Optional[BanditConfig] = None,
        store: Optional[PhysicalStore] = None,
        policy: SchedulingPolicy = SchedulingPolicy.IMMEDIATE,
        breaker: Optional[CircuitBreaker] = None,
        retry: Optional[RetryPolicy] = None,
        fault_injector: Optional[FaultInjector] = None,
        registry: Optional[MetricsRegistry] = None,
        guardrails: Optional["GuardrailManager"] = None,
        backend: Optional[Backend] = None,
    ) -> None:
        self.catalog = catalog
        self.config = config or BanditConfig()
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = SpanTracer(enabled=self.registry.enabled)
        self.dashboard = OverheadDashboard()
        self.backend = backend if backend is not None else LocalBackend(catalog)
        if self.backend.catalog is not catalog:
            raise ValueError("backend and tuner must share one catalog")
        self.backend.bind_registry(self.registry)
        self.optimizer = getattr(self.backend, "optimizer", None)
        self.whatif = WhatIfOptimizer(backend=self.backend)
        self.profiler = BanditProfile(
            catalog, self.whatif, self.config, breaker=breaker, registry=self.registry
        )
        self.scheduler = Scheduler(
            catalog, store=store, policy=policy, retry=retry, registry=self.registry
        )
        self.scheduler.on_change = lambda changed: (
            self.profiler.gain_cache.invalidate_indexes(
                changed, reason="materialization"
            )
        )
        if fault_injector is not None:
            fault_injector.attach(self)
        self._store = store
        self._counting = CountingStore(store) if store is not None else None
        self.model = RidgeModel(
            FEATURE_DIM,
            lambda_reg=self.config.lambda_reg,
            forgetting=self.config.forgetting,
        )
        self.features = FeatureMap(catalog, self.config.storage_budget_pages)
        self.materialized = set(catalog.materialized_indexes())
        self.hot: List[IndexDef] = []
        self._queries_seen = 0
        self._epochs_closed = 0
        # Per-round reward bookkeeping.
        self._epoch_rewards: Dict[IndexKey, List[float]] = {}
        self._epoch_uses: Dict[IndexKey, int] = {}
        self._epoch_observed_cost = 0.0
        self._epoch_probes = 0
        # Safety fallback: the last change watched, and live arm bans.
        self._safety_watch: Optional[Tuple[List[IndexDef], float]] = None
        self._safety_bans: Dict[IndexKey, Tuple[IndexDef, int]] = {}
        self._prev_solution_value = 0.0
        self._metrics = {
            name: spec.build(self.registry) for name, spec in BANDIT_METRICS.items()
        }
        self._metrics["bandit_materialized_indexes"].set(len(self.materialized))
        self.guardrails = guardrails
        if guardrails is not None:
            guardrails.attach(self)
        # Advisory soft preferences pushed down by an external adviser
        # (the fleet co-tuning controller); merged with guardrail
        # constraints at each epoch boundary, pins/bans winning.
        self._advisory: Tuple = ()

    # ------------------------------------------------------------------
    def set_advisory(self, preferred) -> None:
        """Install advisory ``(IndexDef, weight)`` soft preferences.

        Mirrors ``ColtTuner.set_advisory``: the fleet's co-tuning loop
        biases this replica's super-arm knapsack toward its workload
        partition, and the partition footprint is seeded into the
        candidate tracker so it can enter the arm pool.  An empty
        sequence clears stale advice.
        """
        self._advisory = tuple(
            sorted(preferred, key=lambda kv: str(kv[0]))
        )
        self.profiler.candidates.seed(ix for ix, _ in self._advisory)

    @property
    def materialized_set(self) -> List[IndexDef]:
        """The current materialized set ``M``."""
        return sorted(self.materialized, key=str)

    @property
    def hot_set(self) -> List[IndexDef]:
        """Arms close to selection (reporting parity with COLT's ``H``)."""
        return sorted(self.hot, key=str)

    @property
    def queries_seen(self) -> int:
        """Number of queries processed so far."""
        return self._queries_seen

    @property
    def epochs_closed(self) -> int:
        """Decision rounds completed so far."""
        return self._epochs_closed

    @property
    def metrics(self) -> MetricsRegistry:
        """The tuner's metrics registry (shared with its components)."""
        return self.registry

    def metrics_snapshot(self) -> Dict:
        """Self-describing snapshot: metric families, overhead, spans."""
        return build_snapshot(
            self.registry.snapshot(),
            overhead=self.dashboard.to_rows(),
            spans=self.tracer.summary(),
        )

    # ------------------------------------------------------------------
    def process_query(self, query: Query) -> QueryOutcome:
        """Process one arriving (bound) query.

        Optimizes it under the configuration in force, records arm
        usage and (within the round's observation budget) counterfactual
        reward samples, and -- at round boundaries -- updates the model
        and re-selects the super-arm.

        Returns:
            The ledger record for the query (same type COLT emits).
        """
        with self.tracer.span("query", index=self._queries_seen):
            self.profiler.breaker.tick()
            session = self.whatif.begin_query(query)
            self.features.note_query(query.tables)
            used = session.base.plan.indexes_used()
            self.profiler.candidates.observe_query(query, used, self.materialized)

            verify_calls = 0
            verify_overhead = 0.0
            if self.guardrails is not None:
                verify_calls, verify_charge = self.guardrails.observe_query(
                    session, self.materialized
                )
                verify_overhead = (
                    verify_calls * self.config.whatif_call_cost + verify_charge
                )

            base_observed = self._price_base(session)
            self._epoch_observed_cost += base_observed
            probe_calls, probe_overhead = self._observe_rewards(
                session, used, base_observed
            )

            self._queries_seen += 1
            build_cost = 0.0
            reorg: Optional[ReorganizationResult] = None
            epoch_ended = self._queries_seen % self.config.epoch_length == 0
            if epoch_ended:
                epoch = self._queries_seen // self.config.epoch_length - 1
                with self.tracer.span("epoch_close", epoch=epoch):
                    probes_spent = self._epoch_probes
                    reorg = self._close_epoch()
                    build_cost = self._apply(reorg)
                self._record_epoch(reorg, probes_spent, build_cost)

        self._metrics["bandit_queries_total"].inc()
        return QueryOutcome(
            index=self._queries_seen - 1,
            execution_cost=session.base.cost,
            whatif_calls=probe_calls,
            whatif_overhead=probe_overhead,
            build_cost=build_cost,
            total_cost=session.base.cost
            + probe_overhead
            + verify_overhead
            + build_cost,
            plan=session.base.plan,
            verify_calls=verify_calls,
            verify_overhead=verify_overhead,
            epoch_ended=epoch_ended,
            reorganization=reorg,
        )

    def process_insert(self, table: str, rows=None, count: Optional[int] = None) -> InsertOutcome:
        """Process a batch of inserts (write-aware extension).

        Mirrors :meth:`ColtTuner.process_insert` -- heap append plus one
        maintenance charge per (row, materialized index on the table) --
        and additionally feeds the write-pressure feature, which is how
        the bandit learns to retire indexes on write-hot tables.
        """
        if rows is None and count is None:
            raise ValueError("provide rows or count")
        if self._store is not None:
            if rows is None:
                raise ValueError(
                    "a physical store is attached: concrete rows are required"
                )
            n = self._store.apply_inserts(table, rows)
        else:
            n = len(list(rows)) if rows is not None else int(count)
            self.catalog.apply_row_delta(table, n)
        self.profiler.gain_cache.invalidate_table(table)
        self.features.note_insert(table, n)

        params = self.catalog.params
        n_indexes = len(self.catalog.materialized_indexes(table))
        heap_cost = n * params.cpu_tuple_cost
        maintenance = n * n_indexes * params.index_maintain_cost_per_tuple
        return InsertOutcome(
            table=table,
            count=n,
            heap_cost=heap_cost,
            maintenance_cost=maintenance,
            total_cost=heap_cost + maintenance,
        )

    def run(self, queries, on_error: str = "raise") -> List[QueryOutcome]:
        """Process a sequence of queries, returning all ledger records.

        Same contract as :meth:`ColtTuner.run`: ``"raise"`` propagates
        the first failure, ``"skip"`` records it as a zero-cost outcome
        carrying the exception and keeps the epoch clock ticking.
        """
        if on_error not in ("raise", "skip"):
            raise ValueError(f"on_error must be 'raise' or 'skip', got {on_error!r}")
        outcomes: List[QueryOutcome] = []
        for query in queries:
            seen_before = self._queries_seen
            try:
                outcomes.append(self.process_query(query))
            except Exception as exc:
                if on_error == "raise":
                    raise
                if self._queries_seen == seen_before:
                    self._queries_seen += 1
                self._metrics["bandit_query_failures_total"].inc()
                outcomes.append(
                    QueryOutcome(
                        index=self._queries_seen - 1,
                        execution_cost=0.0,
                        whatif_calls=0,
                        whatif_overhead=0.0,
                        build_cost=0.0,
                        total_cost=0.0,
                        plan=None,
                        error=exc,
                    )
                )
        return outcomes

    # ------------------------------------------------------------------
    # reward observation
    def _price_base(self, session) -> float:
        """Observed cost of the query as it actually ran."""
        if self._counting is None:
            return session.base.cost
        self._counting.counters.reset()
        execute(session.base.plan, self._counting)
        return observed_cost(self._counting.counters, self.catalog.params)

    def _price_plan(self, plan) -> float:
        """Observed cost of a counterfactual plan (shadow execution)."""
        self._counting.counters.reset()
        execute(plan, self._counting)
        return observed_cost(self._counting.counters, self.catalog.params)

    def _observe_rewards(self, session, used, base_observed: float) -> Tuple[int, float]:
        """Sample per-arm rewards for this query.

        Every materialized index the plan used counts as a *use*; within
        the round's observation budget, one counterfactual probe per
        used arm re-optimizes the query with the arm's *whole table*
        de-indexed and prices both plans, yielding the arm's reward
        sample (cost the table's indexing saved on this query, credited
        to the arm the plan chose).  The table-level counterfactual --
        rather than removing just the one arm -- is deliberate: with
        redundant twins materialized, each arm's marginal gain is ~0
        (its twin covers it) even when the whole set is actively
        harmful, an equilibrium that would never produce the negative
        rewards needed to escape it.  Probes run behind the circuit
        breaker and honour the what-if failpoint, so chaos tests
        exercise the same degradation path as COLT's profiler.

        Returns:
            (probe count, overhead charged) for this query.
        """
        calls = 0
        charge = 0.0
        mat = frozenset(self.materialized)
        for index in sorted(used, key=str):
            if index not in mat:
                continue
            key = _key(index)
            self._epoch_uses[key] = self._epoch_uses.get(key, 0) + 1
            if self._epoch_probes >= self.config.observe_per_epoch:
                continue
            if not self.profiler.breaker.allows_probes():
                continue
            without_config = frozenset(
                ix for ix in mat if ix.table != index.table
            )
            try:
                if self.whatif.failpoint is not None:
                    self.whatif.failpoint(index)
                without = self.backend.optimize(
                    session.query, config=without_config, session=session
                )
            except Exception:
                self.profiler.breaker.record_failure()
                self.profiler.probe_failures += 1
                continue
            self.profiler.breaker.record_success()
            self._epoch_probes += 1
            calls += 1
            probe_charge = self.config.whatif_call_cost
            if self._counting is not None:
                without_observed = self._price_plan(without.plan)
                reward = without_observed - base_observed
                probe_charge += self.config.observe_cost_factor * without_observed
            else:
                reward = without.cost - session.base.cost
            charge += probe_charge
            self._epoch_rewards.setdefault(key, []).append(reward)
            self._metrics["bandit_observe_probes_total"].inc()
            self._metrics["bandit_observe_overhead_cost_total"].inc(probe_charge)
        return calls, charge

    # ------------------------------------------------------------------
    # decision rounds
    def _close_epoch(self) -> ReorganizationResult:
        """Update the model from the round's rewards, pick the super-arm."""
        epoch_length = self.config.epoch_length
        mean_cost = self._epoch_observed_cost / epoch_length

        # 1. Learn: fold the round's reward evidence into the model.
        self.model.decay()
        for index in sorted(self.materialized, key=str):
            key = _key(index)
            samples = self._epoch_rewards.get(key)
            uses = self._epoch_uses.get(key, 0)
            x = self.features.vector(
                index, self.profiler.candidates, self.materialized
            )
            if samples:
                # Extrapolate the sampled mean across every use this
                # round, then normalize to a per-query reward.
                reward = (sum(samples) / len(samples)) * uses / epoch_length
            elif uses == 0:
                # Materialized but unused: zero reward, observed free.
                reward = 0.0
            else:
                continue  # used but unprobed: no evidence, no update
            self.model.update(x, reward)
            self._metrics["bandit_reward_samples_total"].inc()
            self._metrics["bandit_reward"].observe(abs(reward))

        # 2. Safety fallback: judge the previous round's change.
        self._tick_safety(mean_cost)

        # 3. Roll workload state into the next round.
        self.profiler.candidates.roll_epoch(epoch_length)
        self.features.roll_epoch(epoch_length)
        self.profiler.gain_cache.roll_epoch()
        self._epoch_rewards = {}
        self._epoch_uses = {}
        self._epoch_observed_cost = 0.0
        self._epoch_probes = 0

        # 4. Guardrail verdicts land first (quarantine = hard ban).
        decisions = None
        constraints = SelectionConstraints()
        if self.guardrails is not None:
            decisions = self.guardrails.end_epoch(self.materialized)
            constraints = self.guardrails.constraints()
        # Advisory co-tuning preferences are soft and never override
        # pins/bans; with no advisory installed this is a no-op, so the
        # cotune-off path stays bit-identical.
        constraints = (
            synthesize_constraints(constraints, self._advisory)
            or SelectionConstraints()
        )

        # 5. Select the super-arm under the storage budget.
        reorg = self._select(constraints, mean_cost)
        if decisions is not None:
            reorg.quarantined = decisions.quarantined
            reorg.released = decisions.released
        self._epochs_closed += 1
        return reorg

    def _tick_safety(self, mean_cost: float) -> None:
        """Revert and ban the last change if observed cost regressed."""
        expired = [k for k, (_, left) in self._safety_bans.items() if left <= 1]
        self._safety_bans = {
            k: (ix, left - 1)
            for k, (ix, left) in self._safety_bans.items()
            if left > 1
        }
        del expired
        if self._safety_watch is None:
            return
        added, baseline = self._safety_watch
        self._safety_watch = None
        if baseline <= 0.0 or mean_cost <= self.config.safety_factor * baseline:
            return
        tripped = [ix for ix in added if ix in self.materialized]
        if not tripped:
            return
        for index in tripped:
            self._safety_bans[_key(index)] = (
                index,
                self.config.safety_cooldown_epochs,
            )
        self._metrics["bandit_safety_fallbacks_total"].inc()

    def _arm_pool(self) -> List[IndexDef]:
        """Arms for this round: ``M`` plus the best-ranked candidates."""
        pool: Dict[IndexKey, IndexDef] = {
            _key(ix): ix for ix in sorted(self.materialized, key=str)
        }
        budget = self.config.max_arms - len(pool)
        for stats in self.profiler.candidates.ranked(exclude=pool.values()):
            if budget <= 0:
                break
            key = _key(stats.index)
            if key in pool:
                continue
            pool[key] = stats.index
            budget -= 1
        return list(pool.values())

    def _select(
        self, constraints: SelectionConstraints, mean_cost: float
    ) -> ReorganizationResult:
        forced = self._epochs_closed < self.config.forced_exploration_epochs
        if forced:
            self._metrics["bandit_forced_exploration_epochs_total"].inc()
        epoch_length = self.config.epoch_length

        pool = self._arm_pool()
        # Advice-pinned indexes must be selectable even when never mined.
        present = {_key(ix) for ix in pool}
        for index in sorted(constraints.pinned, key=str):
            if _key(index) not in present:
                pool.append(index)
                present.add(_key(index))
        self._metrics["bandit_arms"].set(len(pool))
        items: List[KnapsackItem] = []
        scores: Dict[IndexKey, float] = {}
        for index in pool:
            x = self.features.vector(
                index, self.profiler.candidates, self.materialized
            )
            width = self.model.width(x)
            optimistic = self.model.mean(x) + self.config.alpha * width
            self._metrics["bandit_confidence_width"].observe(width)
            value = optimistic * epoch_length
            if not forced:
                build = self.catalog.index_build_cost(index)
                if index in self.materialized:
                    # Anti-thrash margin -- but never life support: an
                    # arm whose optimistic estimate has gone non-positive
                    # earns no retention credit and falls out.
                    if optimistic > 0.0:
                        value += self.config.retention_weight * build
                else:
                    value -= self.config.matcost_weight * build
            scores[_key(index)] = optimistic
            items.append(
                KnapsackItem(
                    key=index,
                    size=self.catalog.index_size_pages(index),
                    value=value,
                )
            )

        merged = self._merge_safety_bans(constraints)
        selected, total_value = solve_constrained(
            items,
            self.config.storage_budget_pages,
            merged,
            incumbent_value=0.0,
        )
        target = {it.key for it in selected}
        materialize = sorted(
            (ix for ix in target if ix not in self.materialized), key=str
        )
        drop = sorted(
            (ix for ix in self.materialized if ix not in target), key=str
        )
        self.hot = sorted(
            (ix for ix in pool if ix not in target and scores[_key(ix)] > 0.0),
            key=lambda ix: (-scores[_key(ix)], str(ix)),
        )[: self.config.max_hot_size]

        prev = self._prev_solution_value
        ratio = total_value / prev if prev > 1e-9 else 1.0
        self._prev_solution_value = max(total_value, 0.0)
        if materialize and mean_cost > 0.0:
            self._safety_watch = (list(materialize), mean_cost)
        return ReorganizationResult(
            materialize=materialize,
            drop=drop,
            hot=list(self.hot),
            whatif_budget=0,
            improvement_ratio=ratio,
        )

    def _merge_safety_bans(
        self, constraints: SelectionConstraints
    ) -> SelectionConstraints:
        bans = [ix for ix, _ in self._safety_bans.values()]
        if not bans:
            return constraints
        pinned = set(constraints.pinned)
        banned = set(constraints.banned) | {
            ix for ix in bans if ix not in pinned
        }
        return SelectionConstraints(
            pinned=frozenset(pinned),
            banned=frozenset(banned),
            preferred=tuple(
                (ix, w) for ix, w in constraints.preferred if ix not in banned
            ),
        )

    def _apply(self, reorg: ReorganizationResult) -> float:
        """Apply decisions through the scheduler (COLT's exact protocol)."""
        retry = self.scheduler.advance_epoch()
        build_cost = retry.charged
        for index in retry.recovered:
            self.materialized.add(index)
        for index in reorg.materialize:
            self.materialized.add(index)
        for index in reorg.drop:
            self.materialized.discard(index)
        build_cost += self.scheduler.request_materialization(reorg.materialize)
        self.scheduler.request_drop(reorg.drop)
        if self.guardrails is not None and reorg.drop:
            self.guardrails.on_drop(reorg.drop)
        queued = set(self.scheduler.pending)
        failed = [
            ix
            for ix in reorg.materialize
            if not self.catalog.is_materialized(ix) and ix not in queued
        ]
        for index in failed:
            self.materialized.discard(index)
            if self._safety_watch is not None:
                watched, baseline = self._safety_watch
                watched = [ix for ix in watched if ix != index]
                self._safety_watch = (watched, baseline) if watched else None
        reorg.build_failures = failed
        reorg.recovered_builds = list(retry.recovered)
        reorg.abandoned_builds = list(retry.abandoned)
        reorg.breaker_state = self.profiler.breaker.state.value
        return build_cost

    def _record_epoch(
        self, reorg: ReorganizationResult, probes_spent: int, build_cost: float
    ) -> None:
        self._metrics["bandit_epochs_total"].inc()
        self._metrics["bandit_materialized_indexes"].set(len(self.materialized))
        self.dashboard.record(
            requested=self.config.observe_per_epoch,
            granted=self.config.observe_per_epoch,
            spent=probes_spent,
            ratio=reorg.improvement_ratio,
            build_cost=build_cost,
            breaker_state=reorg.breaker_state,
        )
