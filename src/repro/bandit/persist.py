"""Snapshot and restore for the bandit tuner's learned state.

Persists everything the bandit would otherwise have to re-learn: the
ridge model (``V``, ``b``), the materialized and hot sets, candidate
crude-benefit windows, the feature map's read/write EWMA rates, the
safety-fallback state (live bans and the watched change), and the
decision-round clock.  Guardrail state rides along exactly as for COLT
snapshots.

The produced dictionaries are JSON-compatible and carry
``"engine": "bandit"`` so :func:`repro.persist.snapshot_any` /
:func:`repro.persist.restore_any` can dispatch on the engine without
the caller knowing which tuner wrote the file.  The on-disk envelope
(checksum, atomic write) is shared with COLT via
:func:`repro.persist.save_json`.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

from repro.bandit.config import BanditConfig
from repro.bandit.linucb import RidgeModel
from repro.bandit.tuner import BanditTuner, _key
from repro.core.candidates import CandidateStats
from repro.engine.catalog import Catalog
from repro.engine.storage import PhysicalStore
from repro.guardrails.manager import GuardrailManager
from repro.guardrails.verify import CostObserver
from repro.persist import SNAPSHOT_VERSION, SnapshotError, _key_text, _resolve

#: Engine tag embedded in every bandit snapshot.
ENGINE = "bandit"


def snapshot_bandit_tuner(tuner: BanditTuner) -> Dict:
    """Serialize a bandit tuner's durable state to a JSON dict."""
    candidates = []
    for stats in tuner.profiler.candidates.ranked():
        candidates.append(
            {
                "table": stats.index.table,
                "columns": list(stats.index.columns),
                "window": list(stats._window),  # noqa: SLF001 - owner module
                "smoothed": stats.smoothed_benefit,
            }
        )
    watch = None
    if tuner._safety_watch is not None:  # noqa: SLF001 - owner module
        added, baseline = tuner._safety_watch  # noqa: SLF001
        watch = {
            "added": [[ix.table, list(ix.columns)] for ix in added],
            "baseline": baseline,
        }
    return {
        "version": SNAPSHOT_VERSION,
        "engine": ENGINE,
        "config": dataclasses.asdict(tuner.config),
        "materialized": [
            [ix.table, list(ix.columns)] for ix in tuner.materialized_set
        ],
        "hot": [[ix.table, list(ix.columns)] for ix in tuner.hot_set],
        "candidates": candidates,
        "model": tuner.model.to_snapshot(),
        "features": tuner.features.to_snapshot(),
        "epochs_closed": tuner.epochs_closed,
        "prev_solution_value": tuner._prev_solution_value,  # noqa: SLF001
        "safety": {
            "bans": {
                _key_text(ix.table, ix.columns): remaining
                for ix, remaining in sorted(
                    tuner._safety_bans.values(),  # noqa: SLF001
                    key=lambda pair: str(pair[0]),
                )
            },
            "watch": watch,
        },
        **(
            {"guardrails": tuner.guardrails.to_snapshot()}
            if tuner.guardrails is not None
            else {}
        ),
    }


def restore_bandit_tuner(
    catalog: Catalog,
    snapshot: Dict,
    store: Optional[PhysicalStore] = None,
    observer: Optional[CostObserver] = None,
) -> BanditTuner:
    """Rebuild a bandit tuner from a snapshot over an equivalent catalog.

    Materialized indexes are re-registered (and physically rebuilt when
    a store is given) without charging build cost, matching the COLT
    restore semantics.

    Raises:
        SnapshotError: on version or engine mismatch, references to
            unknown tables/columns, or any malformed structure.
    """
    if not isinstance(snapshot, dict):
        raise SnapshotError(
            f"snapshot must be a dict, got {type(snapshot).__name__}"
        )
    if snapshot.get("version") != SNAPSHOT_VERSION:
        raise SnapshotError(
            f"unsupported snapshot version {snapshot.get('version')!r}"
        )
    if snapshot.get("engine", "colt") != ENGINE:
        raise SnapshotError(
            "engine mismatch: snapshot was written by the "
            f"{snapshot.get('engine', 'colt')!r} engine, but a 'bandit' "
            "tuner was requested (use restore_any, or restore with the "
            "matching --engine)"
        )
    try:
        return _restore(catalog, snapshot, store, observer)
    except SnapshotError:
        raise
    except (KeyError, TypeError, ValueError, AttributeError) as exc:
        raise SnapshotError(f"malformed snapshot: {exc!r}") from exc


def _restore(
    catalog: Catalog,
    snapshot: Dict,
    store: Optional[PhysicalStore],
    observer: Optional[CostObserver],
) -> BanditTuner:
    config = BanditConfig(**snapshot["config"])
    guardrails = None
    if "guardrails" in snapshot:
        guardrails = GuardrailManager.from_snapshot(
            snapshot["guardrails"], catalog, observer=observer
        )
    tuner = BanditTuner(catalog, config, store=store, guardrails=guardrails)

    for table, columns in snapshot["materialized"]:
        index = _resolve(catalog, table, columns)
        if store is not None:
            store.build_index(index)
        else:
            catalog.materialize_index(index)
        tuner.materialized.add(index)
    tuner.hot = [
        _resolve(catalog, table, columns) for table, columns in snapshot["hot"]
    ]

    tracker = tuner.profiler.candidates
    for entry in snapshot["candidates"]:
        index = _resolve(catalog, entry["table"], entry["columns"])
        stats = CandidateStats(index, config.history_epochs, config.smoothing)
        for value in entry["window"][-config.history_epochs:]:
            stats._window.append(float(value))  # noqa: SLF001
        stats._smoothed = float(entry["smoothed"])  # noqa: SLF001
        tracker._stats[_key(index)] = stats  # noqa: SLF001

    model = RidgeModel.from_snapshot(snapshot["model"])
    if model.dim != tuner.model.dim:
        raise SnapshotError(
            f"model dimension {model.dim} does not match the feature map"
            f" ({tuner.model.dim})"
        )
    tuner.model = model
    tuner.features.restore(snapshot.get("features"))
    tuner._epochs_closed = int(snapshot.get("epochs_closed", 0))  # noqa: SLF001
    tuner._prev_solution_value = float(  # noqa: SLF001
        snapshot.get("prev_solution_value", 0.0)
    )

    safety = snapshot.get("safety", {})
    bans = {}
    for key_text, remaining in safety.get("bans", {}).items():
        table, _, rest = key_text.partition(":")
        index = _resolve(catalog, table, rest.split(","))
        bans[_key(index)] = (index, int(remaining))
    tuner._safety_bans = bans  # noqa: SLF001
    watch = safety.get("watch")
    if watch:
        tuner._safety_watch = (  # noqa: SLF001
            [_resolve(catalog, t, cols) for t, cols in watch["added"]],
            float(watch["baseline"]),
        )
    return tuner
