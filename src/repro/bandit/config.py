"""Configuration of the C³-UCB bandit tuning engine.

Mirrors :class:`~repro.core.config.ColtConfig` in spirit: one frozen
dataclass carrying every behavioural knob, validated on construction,
plus :meth:`BanditConfig.from_colt` so fleet and CLI code that already
holds a ``ColtConfig`` can derive a matched bandit configuration (same
epoch clock, same storage budget, same seed) without duplicating flags.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard only
    from repro.core.config import ColtConfig


@dataclasses.dataclass(frozen=True)
class BanditConfig:
    """Parameters of :class:`~repro.bandit.tuner.BanditTuner`.

    Attributes:
        epoch_length: Queries per decision round (the bandit's super-arm
            is re-selected at every epoch boundary, like COLT's ``w``).
        storage_budget_pages: Storage budget ``B`` constraining the
            super-arm (the knapsack capacity).
        history_epochs: Sliding-window length for crude candidate
            statistics (feeds the feature map, same role as COLT's
            ``h``).
        smoothing: EWMA factor for crude candidate benefits.
        alpha: Exploration scale of the UCB term
            ``theta^T x + alpha * sqrt(x^T V^-1 x)``.  The confidence
            ellipsoid shrinks as observations accumulate in ``V``;
            ``alpha`` only scales it.
        lambda_reg: Ridge regularizer (the ``lambda I`` prior on ``V``).
        forgetting: Per-epoch decay ``gamma`` applied to ``V`` and ``b``
            before new rewards are folded in; values below 1.0 age out
            stale rewards so the model tracks drifting workloads.
        forced_exploration_epochs: During the first N epochs the
            super-arm is chosen without build-cost hysteresis, so
            never-played arms (whose confidence width is maximal) get
            materialized and produce reward observations.
        observe_per_epoch: Reward observations sampled per epoch --
            each prices a with/without plan pair for one materialized
            index (the :func:`~repro.guardrails.verify.observed_cost`
            path when a physical store is attached, plan costs
            otherwise).
        observe_cost_factor: Fraction of each counterfactual (shadow)
            execution's observed cost charged as tuning overhead.
        safety_factor: Safety fallback trigger: when the mean observed
            per-query cost of the epoch following a configuration
            change exceeds ``safety_factor`` times the pre-change cost,
            the change is reverted and the added arms are banned for
            ``safety_cooldown_epochs``.
        safety_cooldown_epochs: Epochs a reverted arm stays banned.
        matcost_weight: Build-cost hysteresis outside forced
            exploration (same exchange rate as COLT's knob).
        retention_weight: Fraction of its build cost credited to an
            already-materialized arm (anti-thrash margin).
        max_hot_size: Cap on the reported hot set (top arms by UCB not
            currently materialized).
        max_arms: Cap on the arm pool per decision round (materialized
            arms always kept; the rest by descending crude benefit).
        whatif_call_cost: Ledger charge per reward-observation
            optimizer call, in planner cost units (kept name-compatible
            with ``ColtConfig`` so fleet routing accounting works
            unchanged).
        composite_candidates: Mine two-column composite arms as well.
        seed: Seed for the tuner's sampling decisions; runs are fully
            deterministic given (seed, workload).
    """

    epoch_length: int = 10
    storage_budget_pages: float = 12_000.0
    history_epochs: int = 12
    smoothing: float = 0.3
    alpha: float = 1.0
    lambda_reg: float = 1.0
    forgetting: float = 0.9
    forced_exploration_epochs: int = 3
    observe_per_epoch: int = 6
    observe_cost_factor: float = 1.0
    safety_factor: float = 1.5
    safety_cooldown_epochs: int = 6
    matcost_weight: float = 0.4
    retention_weight: float = 0.2
    max_hot_size: int = 12
    max_arms: int = 24
    whatif_call_cost: float = 10.0
    composite_candidates: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        if self.epoch_length < 1:
            raise ValueError("epoch_length must be positive")
        if self.storage_budget_pages <= 0.0:
            raise ValueError("storage_budget_pages must be positive")
        if self.history_epochs < 1:
            raise ValueError("history_epochs must be positive")
        if not 0.0 < self.smoothing <= 1.0:
            raise ValueError("smoothing must be in (0, 1]")
        if self.alpha < 0.0:
            raise ValueError("alpha must be non-negative")
        if self.lambda_reg <= 0.0:
            raise ValueError("lambda_reg must be positive")
        if not 0.0 < self.forgetting <= 1.0:
            raise ValueError("forgetting must be in (0, 1]")
        if self.forced_exploration_epochs < 0:
            raise ValueError("forced_exploration_epochs must be >= 0")
        if self.observe_per_epoch < 0:
            raise ValueError("observe_per_epoch must be >= 0")
        if self.observe_cost_factor < 0.0:
            raise ValueError("observe_cost_factor must be >= 0")
        if self.safety_factor <= 1.0:
            raise ValueError("safety_factor must exceed 1.0")
        if self.safety_cooldown_epochs < 1:
            raise ValueError("safety_cooldown_epochs must be positive")
        if self.matcost_weight < 0.0 or self.retention_weight < 0.0:
            raise ValueError("cost weights must be >= 0")
        if self.max_hot_size < 1:
            raise ValueError("max_hot_size must be positive")
        if self.max_arms < 1:
            raise ValueError("max_arms must be positive")
        if self.whatif_call_cost < 0.0:
            raise ValueError("whatif_call_cost must be >= 0")

    @classmethod
    def from_colt(cls, config: "ColtConfig", **overrides) -> "BanditConfig":
        """Derive a matched bandit configuration from a COLT one.

        Copies the knobs the two engines share (epoch clock, budget,
        candidate-window shape, seed) so fleet replicas and CLI runs
        compare like for like; everything bandit-specific stays at its
        default unless overridden.
        """
        base = dict(
            epoch_length=config.epoch_length,
            storage_budget_pages=config.storage_budget_pages,
            history_epochs=config.history_epochs,
            smoothing=config.smoothing,
            matcost_weight=config.matcost_weight,
            retention_weight=config.retention_weight,
            max_hot_size=config.max_hot_size,
            whatif_call_cost=config.whatif_call_cost,
            composite_candidates=config.composite_candidates,
            seed=config.seed,
        )
        base.update(overrides)
        return cls(**base)
