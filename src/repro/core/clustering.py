"""On-line query clustering.

§4.1 of the paper: queries are clustered by (a) the tables they access,
(b) their join predicates, and (c) the attributes of their selection
predicates together with a coarse selectivity class -- *selective*
(0-2%) vs. *non-selective* (2-100%).  Each cluster aggregates gain
statistics per index so that a few what-if samples generalize to every
similar query.

Assignment is O(query size): the cluster key is computed from the bound
query plus catalog statistics (for the selectivity class) and looked up
in a dictionary.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, List, Tuple

from repro.engine.catalog import Catalog
from repro.engine.index import IndexDef
from repro.optimizer.selectivity import predicate_selectivity
from repro.sql.ast import Query

# The paper's two selectivity classes.
SELECTIVE_THRESHOLD = 0.02

JoinKey = Tuple[Tuple[str, str], Tuple[str, str]]
ClusterKey = Tuple[
    Tuple[str, ...],  # sorted tables
    Tuple[JoinKey, ...],  # sorted normalized join column pairs
    Tuple[Tuple[str, str, str], ...],  # (table, column, class) per selection
]


def cluster_key(query: Query, catalog: Catalog) -> ClusterKey:
    """Compute the cluster key for a bound query."""
    tables = tuple(sorted(query.tables))
    joins = []
    for join in query.joins:
        j = join.normalized()
        joins.append(
            ((j.left.table, j.left.column), (j.right.table, j.right.column))
        )
    selections = []
    for pred in query.filters:
        sel = predicate_selectivity(catalog, pred)
        klass = "S" if sel <= SELECTIVE_THRESHOLD else "N"
        selections.append((pred.column.table, pred.column.column, klass))
    return tables, tuple(sorted(joins)), tuple(sorted(selections))


class Cluster:
    """One query cluster with a sliding window of per-epoch counts.

    Attributes:
        key: The structural cluster key.
        cluster_id: Dense integer id, stable for the run.
        epoch_count: Queries assigned in the current epoch.
    """

    __slots__ = ("key", "cluster_id", "epoch_count", "_window")

    def __init__(self, key: ClusterKey, cluster_id: int, history_epochs: int) -> None:
        self.key = key
        self.cluster_id = cluster_id
        self.epoch_count = 0
        self._window: Deque[int] = deque(maxlen=history_epochs)

    @property
    def tables(self) -> Tuple[str, ...]:
        """Tables accessed by the cluster's queries."""
        return self.key[0]

    @property
    def selection_attributes(self) -> List[Tuple[str, str]]:
        """(table, column) pairs of the cluster's selection predicates."""
        return [(t, c) for (t, c, _klass) in self.key[2]]

    def referenced_columns(self) -> frozenset:
        """All (table, column) pairs this cluster's queries reference.

        An index's what-if gain for a cluster can only change when the
        materialization status of an index on one of these columns
        changes -- the consistency rule of §4.1, applied precisely.
        """
        cols = set(self.selection_attributes)
        for left, right in self.key[1]:
            cols.add(left)
            cols.add(right)
        return frozenset(cols)

    def count(self) -> int:
        """``Count(Q_i)``: queries in the memory window ``S_h``."""
        return sum(self._window) + self.epoch_count

    def roll_epoch(self) -> None:
        """Close the current epoch (push its count into the window)."""
        self._window.append(self.epoch_count)
        self.epoch_count = 0

    def is_relevant(self, index: IndexDef) -> bool:
        """Whether an index could serve this cluster's queries.

        True when the index's column appears among the cluster's
        selection attributes, or the index's table is accessed (covering
        potential join use).
        """
        if (index.table, index.column) in self.selection_attributes:
            return True
        return index.table in self.tables


class ClusterStore:
    """Assigns queries to clusters and tracks per-cluster populations.

    The number of clusters is bounded by the number of distinct query
    shapes in the memory window (at most ``w * h``, per the paper).
    """

    def __init__(self, catalog: Catalog, history_epochs: int) -> None:
        self._catalog = catalog
        self._history = history_epochs
        self._clusters: Dict[ClusterKey, Cluster] = {}
        self._by_id: Dict[int, Cluster] = {}
        self._next_id = 0

    def assign(self, query: Query) -> Cluster:
        """Assign a query to its (possibly new) cluster."""
        key = cluster_key(query, self._catalog)
        cluster = self._clusters.get(key)
        if cluster is None:
            cluster = Cluster(key, self._next_id, self._history)
            self._next_id += 1
            self._clusters[key] = cluster
            self._by_id[cluster.cluster_id] = cluster
        cluster.epoch_count += 1
        return cluster

    def by_id(self, cluster_id: int) -> "Cluster":
        """Look up a live cluster by id.

        Raises:
            KeyError: if the cluster has been evicted.
        """
        return self._by_id[cluster_id]

    def has_id(self, cluster_id: int) -> bool:
        """Whether a cluster with this id is still live."""
        return cluster_id in self._by_id

    def roll_epoch(self) -> None:
        """Close the epoch on every cluster and evict empty ones."""
        dead = []
        for key, cluster in self._clusters.items():
            cluster.roll_epoch()
            if cluster.count() == 0:
                dead.append(key)
        for key in dead:
            cluster = self._clusters.pop(key)
            del self._by_id[cluster.cluster_id]

    def clusters(self) -> Iterable[Cluster]:
        """All live clusters."""
        return self._clusters.values()

    def total_count(self) -> int:
        """Total queries across clusters in the memory window."""
        return sum(c.count() for c in self._clusters.values())

    def __len__(self) -> int:
        return len(self._clusters)
