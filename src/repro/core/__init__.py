"""COLT: Continuous On-Line Tuning (the paper's primary contribution).

The tuner watches the query stream in epochs of ``w`` queries, maintains
three nested index sets -- candidates ``C``, hot ``H``, materialized
``M`` -- and continuously adjusts ``M`` within a storage budget:

* The **Profiler** (``profiler``) gathers per-epoch statistics: crude
  analytic benefits for all of ``C``, and what-if-measured confidence
  intervals per (index, query-cluster) for ``H`` and ``M``, under an
  adaptive sampling policy bounded by the epoch's what-if budget.
* The **Self-Organizer** (``self_organizer``) runs at epoch boundaries:
  it forecasts each index's future benefit, re-solves a knapsack over
  ``H ∪ M`` to pick the new materialized set, promotes the most
  promising candidates into the new hot set, and *re-budgets* -- scaling
  the next epoch's what-if budget by how much an optimistic view of the
  hot indexes could improve on the current materialized set.
* The **Scheduler** (``scheduler``) carries out materializations.

:class:`~repro.core.colt.ColtTuner` wires the components together behind
a two-method API: ``process_query`` for every arriving query, which also
returns the cost ledger entry for that query.
"""

from repro.core.colt import ColtTuner, InsertOutcome, QueryOutcome
from repro.core.config import ColtConfig

__all__ = ["ColtConfig", "ColtTuner", "InsertOutcome", "QueryOutcome"]
