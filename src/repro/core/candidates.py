"""Candidate index mining and crude benefit tracking (the set ``C``).

COLT mines candidates from the selection predicates of queries in the
memory window ``S_h`` and maintains, per candidate, a sliding window of
per-epoch crude benefits ``BenefitC`` computed with standard cost
formulas (no optimizer calls).  The crude benefits rank candidates for
promotion into the hot set.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, List, Optional, Tuple

from repro.engine.catalog import Catalog
from repro.engine.index import IndexDef
from repro.optimizer.access import crude_index_delta_cost
from repro.sql.ast import CompareOp, ComparisonPredicate, InPredicate, Query


class CandidateStats:
    """Sliding-window crude benefit statistics for one candidate index."""

    __slots__ = ("index", "epoch_gain", "_window", "_smoothed", "_smoothing")

    def __init__(self, index: IndexDef, history_epochs: int, smoothing: float) -> None:
        self.index = index
        self.epoch_gain = 0.0
        self._window: Deque[float] = deque(maxlen=history_epochs)
        self._smoothed: Optional[float] = None
        self._smoothing = smoothing

    def add_gain(self, gain: float) -> None:
        """Accumulate one query's crude gain into the current epoch."""
        self.epoch_gain += gain

    def roll_epoch(self, epoch_length: int) -> None:
        """Close the epoch: push the per-query average into the window."""
        benefit = self.epoch_gain / epoch_length
        self._window.append(benefit)
        self.epoch_gain = 0.0
        if self._smoothed is None:
            self._smoothed = benefit
        else:
            a = self._smoothing
            self._smoothed = a * benefit + (1.0 - a) * self._smoothed

    @property
    def smoothed_benefit(self) -> float:
        """Exponentially smoothed ``BenefitC`` (0 before any epoch)."""
        return self._smoothed or 0.0

    def window_total(self) -> float:
        """Sum of windowed per-epoch benefits (recency-unweighted)."""
        return sum(self._window)

    def stale(self) -> bool:
        """Whether the candidate saw no benefit across the whole window."""
        return len(self._window) == self._window.maxlen and all(
            b <= 0.0 for b in self._window
        )


class CandidateTracker:
    """Mines and scores the candidate set ``C``.

    With ``composite`` enabled (an extension beyond the paper, which
    restricts itself to single-column indexes), queries carrying several
    predicates on one table also mine two-column candidates: an
    equality-predicate column leading, any other filtered column
    trailing -- the composite shapes a B+tree can actually exploit.
    """

    def __init__(
        self,
        catalog: Catalog,
        history_epochs: int,
        smoothing: float,
        composite: bool = False,
    ) -> None:
        self._catalog = catalog
        self._history = history_epochs
        self._smoothing = smoothing
        self._composite = composite
        self._stats: Dict[Tuple[str, Tuple[str, ...]], CandidateStats] = {}
        self._interner = None
        # sig index -> (per-table stats versions, [(index, crude)]):
        # see use_interner.
        self._crude_memo: Dict[int, Tuple[Tuple, List[Tuple[IndexDef, float]]]] = {}

    def use_interner(self, interner) -> None:
        """Memoize mining + crude costs through a signature interner.

        Mining and ``crude_index_delta_cost`` are pure functions of the
        query's structure (literals included in the signature) and the
        catalog's statistics, so their results are cached per signature
        and revalidated against the per-table stats versions of the
        query's tables -- the exact inputs the crude formulas read.
        The ``u`` indicator (plan actually used the index) is applied
        *outside* the memo, so credited gains are bit-identical to the
        unmemoized loop.  Used by the batched replay driver; plain
        tuners keep the original per-query computation.
        """
        self._interner = interner
        self._crude_memo.clear()

    def __len__(self) -> int:
        return len(self._stats)

    def candidates(self) -> List[IndexDef]:
        """The current candidate set ``C``."""
        return [s.index for s in self._stats.values()]

    def stats_for(self, index: IndexDef) -> Optional[CandidateStats]:
        """Stats for one candidate, if it has been mined."""
        return self._stats.get((index.table, index.columns))

    def observe_query(
        self, query: Query, used_indexes: Iterable[IndexDef], materialized: Iterable[IndexDef]
    ) -> List[Tuple[IndexDef, float]]:
        """Mine candidates from a query and update their crude benefits.

        Implements lines 13-14 of the profiling algorithm:
        ``QueryGain_C(q, I) = u_{q,I} * Δcost(R, σ, I)``.  The indicator
        ``u`` is read off the actual plan for materialized indexes and
        optimistically set to 1 otherwise.

        Args:
            query: The current (bound) query.
            used_indexes: Indexes appearing in the query's chosen plan.
            materialized: The current materialized set.

        Returns:
            The (candidate, gain) pairs credited for this query.
        """
        used = set(used_indexes)
        mat = set(materialized)
        credited: List[Tuple[IndexDef, float]] = []
        for index, crude in self._mined_with_crude(query):
            stats = self._stats.get((index.table, index.columns))
            if stats is None:
                stats = CandidateStats(index, self._history, self._smoothing)
                self._stats[(index.table, index.columns)] = stats
            if index in mat and index not in used:
                u = 0.0  # the optimizer had it and chose not to use it
            else:
                u = 1.0  # optimistic prediction, per the paper
            gain = u * crude
            stats.add_gain(gain)
            credited.append((index, gain))
        return credited

    def _mined_with_crude(self, query: Query) -> List[Tuple[IndexDef, float]]:
        """``(candidate, crude delta cost)`` pairs for one query.

        With an interner attached (see :meth:`use_interner`) the pairs
        are served from a signature-keyed memo validated against the
        stats versions of the query's tables; otherwise they are
        computed fresh, exactly as before.
        """
        if self._interner is None:
            return [
                (
                    index,
                    crude_index_delta_cost(
                        self._catalog, index, query.filters_on(index.table)
                    ),
                )
                for index in self._mined_indexes(query)
            ]
        _, sig_index = self._interner.signature_index(query)
        versions = tuple(
            self._catalog.stats_version(t) for t in query.tables
        )
        cached = self._crude_memo.get(sig_index)
        if cached is not None and cached[0] == versions:
            return cached[1]
        pairs = [
            (
                index,
                crude_index_delta_cost(
                    self._catalog, index, query.filters_on(index.table)
                ),
            )
            for index in self._mined_indexes(query)
        ]
        self._crude_memo[sig_index] = (versions, pairs)
        return pairs

    def _mined_indexes(self, query: Query) -> List[IndexDef]:
        """Candidate indexes this query suggests (singles, then pairs)."""
        singles: List[Tuple[str, str]] = []
        eq_columns: Dict[str, List[str]] = {}
        for pred in query.filters:
            table = pred.column.table
            column = pred.column.column
            if not self._catalog.table(table).column(column).indexable:
                continue
            if (table, column) not in singles:
                singles.append((table, column))
            is_eq = (
                isinstance(pred, ComparisonPredicate) and pred.op is CompareOp.EQ
            ) or isinstance(pred, InPredicate)
            if is_eq and column not in eq_columns.setdefault(table, []):
                eq_columns[table].append(column)

        mined = [self._catalog.index_for(t, c) for t, c in singles]
        if self._composite:
            per_table: Dict[str, List[str]] = {}
            for table, column in singles:
                per_table.setdefault(table, []).append(column)
            for table, columns in per_table.items():
                if len(columns) < 2:
                    continue
                for lead in eq_columns.get(table, []):
                    for trail in columns:
                        if trail != lead:
                            mined.append(
                                self._catalog.composite_index_for(
                                    table, [lead, trail]
                                )
                            )
        return mined

    def roll_epoch(self, epoch_length: int) -> None:
        """Close the epoch on every candidate; evict stale ones.

        A candidate whose crude benefit has been zero for the entire
        memory window corresponds to predicates no longer present in
        ``S_h`` and is dropped from ``C``.
        """
        dead = []
        for key, stats in self._stats.items():
            stats.roll_epoch(epoch_length)
            if stats.stale():
                dead.append(key)
        for key in dead:
            del self._stats[key]

    def seed(self, indexes: Iterable[IndexDef]) -> int:
        """Ensure tracker entries exist for externally suggested indexes.

        Partition-aware seeding for the fleet's co-tuning loop: when a
        workload partition migrates onto this replica, the partition's
        index footprint is seeded into the pool so the profiler can
        start crediting gains immediately instead of waiting for the
        miner to rediscover it.  Seeding only creates the entry -- no
        benefit is invented, so an unused seed decays out through the
        normal stale-eviction window.  Indexes are inserted in sorted
        order so the pool's tie-break order stays deterministic across
        processes.

        Returns:
            The number of new entries created.
        """
        created = 0
        for index in sorted(indexes, key=str):
            key = (index.table, index.columns)
            if key not in self._stats:
                self._stats[key] = CandidateStats(
                    index, self._history, self._smoothing
                )
                created += 1
        return created

    def ranked(self, exclude: Iterable[IndexDef] = ()) -> List[CandidateStats]:
        """Candidates by descending smoothed benefit, minus exclusions."""
        excluded = {(ix.table, ix.columns) for ix in exclude}
        pool = [
            s
            for key, s in self._stats.items()
            if key not in excluded
        ]
        return sorted(pool, key=lambda s: s.smoothed_benefit, reverse=True)
