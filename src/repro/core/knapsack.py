"""0/1 knapsack solvers for index selection.

The Self-Organizer models reorganization as a knapsack: objects are the
indexes of ``H ∪ M``, sizes are index sizes in pages, values are
``NetBenefit`` forecasts, and the capacity is the storage budget ``B``
(§5).  Sizes are fractional, so the exact solver discretizes them onto a
fixed grid (rounding sizes *up*, which keeps solutions feasible); a
density-ordered greedy solver is available for large instances and as a
cross-check in tests.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, FrozenSet, List, Sequence, Tuple

DEFAULT_RESOLUTION = 2048


@dataclasses.dataclass(frozen=True)
class KnapsackItem:
    """One knapsack object.

    Attributes:
        key: Caller's identifier (e.g. an :class:`IndexDef`).
        size: Size in the capacity's unit (> 0).
        value: Net benefit; items with non-positive value are never
            selected (materializing them cannot pay off).
    """

    key: object
    size: float
    value: float


# Pools up to this size solve exactly with branch-and-bound over the true
# (float) sizes; larger pools fall back to the discretized DP.
MAX_EXACT_ITEMS = 24


@dataclasses.dataclass(frozen=True)
class SelectionConstraints:
    """DBA / guardrail constraints on one knapsack solve.

    Keys must compare equal to the ``key`` attribute of the
    :class:`KnapsackItem` objects they constrain (the Self-Organizer
    uses :class:`~repro.engine.index.IndexDef` for both).

    Attributes:
        pinned: Hard constraint -- these keys are always selected, even
            when their value is non-positive or they exceed the
            capacity on their own (the DBA overrides the budget
            knowingly); their sizes are deducted from the capacity
            before the free items are solved.
        banned: Hard constraint -- these keys are never selected,
            regardless of value.  A key both pinned and banned is
            rejected (see :meth:`validate`).
        preferred: Soft constraint -- value multipliers (> 0) applied to
            the named keys before solving, biasing the objective toward
            (or, below 1.0, away from) them without guaranteeing
            selection.
    """

    pinned: FrozenSet[object] = frozenset()
    banned: FrozenSet[object] = frozenset()
    preferred: Tuple[Tuple[object, float], ...] = ()

    def __post_init__(self) -> None:
        overlap = set(self.pinned) & set(self.banned)
        if overlap:
            raise ValueError(
                f"keys both pinned and banned: {sorted(map(str, overlap))}"
            )
        for _, weight in self.preferred:
            if weight <= 0.0:
                raise ValueError("preference weights must be positive")

    def __bool__(self) -> bool:
        return bool(self.pinned or self.banned or self.preferred)

    @property
    def preference_map(self) -> Dict[object, float]:
        """The soft preferences as a key -> multiplier mapping."""
        return dict(self.preferred)


def solve_constrained(
    items: Sequence[KnapsackItem],
    capacity: float,
    constraints: SelectionConstraints,
    resolution: int = DEFAULT_RESOLUTION,
    incumbent_value: float = 0.0,
) -> Tuple[List[KnapsackItem], float]:
    """Solve 0/1 knapsack under pin/ban/prefer constraints.

    Pinned items are taken unconditionally (their *true* values count
    toward the returned total) and their sizes shrink the capacity
    available to the free items; banned items are removed before
    solving; preferred items have their values scaled for the solve
    only -- the returned total is in the scaled objective, mirroring
    how soft preferences distort NetBenefit comparisons.

    Returns:
        (selected items, total value) with pinned items listed first in
        the order given.
    """
    prefs = constraints.preference_map
    pinned: List[KnapsackItem] = []
    free: List[KnapsackItem] = []
    seen_pinned = set()
    for item in items:
        if item.key in constraints.banned:
            continue
        if item.key in constraints.pinned:
            if item.key not in seen_pinned:
                seen_pinned.add(item.key)
                pinned.append(item)
            continue
        weight = prefs.get(item.key)
        if weight is not None:
            item = dataclasses.replace(item, value=item.value * weight)
        free.append(item)
    room = max(0.0, capacity - sum(it.size for it in pinned))
    selected, total = solve_knapsack(
        free, room, resolution=resolution, incumbent_value=incumbent_value
    )
    pinned_value = sum(it.value for it in pinned)
    return pinned + selected, pinned_value + total


def solve_knapsack(
    items: Sequence[KnapsackItem],
    capacity: float,
    resolution: int = DEFAULT_RESOLUTION,
    incumbent_value: float = 0.0,
) -> Tuple[List[KnapsackItem], float]:
    """Solve 0/1 knapsack.

    Pools of at most :data:`MAX_EXACT_ITEMS` items (every pool COLT ever
    builds -- ``H ∪ M`` is small) are solved exactly over the true float
    sizes with branch-and-bound; larger pools use a discretized DP whose
    size rounding keeps solutions feasible.

    Args:
        items: Candidate objects.
        capacity: Knapsack capacity (>= 0).
        resolution: Grid cells for the large-pool DP fallback.
        incumbent_value: Value of a known-feasible solution, used to
            warm-start the branch-and-bound pruning (epoch solves seed
            this with the previous epoch's solution).  Must be a true
            lower bound on the optimum; the returned solution is the
            same optimum with or without it.  Ignored by the grid DP.

    Returns:
        (selected items, total value).  Items with value <= 0 or size
        exceeding the capacity are excluded a priori.
    """
    viable = [
        it for it in items if it.value > 0.0 and 0.0 < it.size <= capacity
    ]
    if not viable or capacity <= 0.0:
        return [], 0.0
    if len(viable) <= MAX_EXACT_ITEMS:
        return _solve_exact(viable, capacity, incumbent_value)
    return _solve_grid(viable, capacity, resolution)


def _solve_exact(
    viable: List[KnapsackItem], capacity: float, incumbent_value: float = 0.0
) -> Tuple[List[KnapsackItem], float]:
    """Branch-and-bound with the fractional-relaxation upper bound."""
    order = sorted(viable, key=lambda it: it.value / it.size, reverse=True)
    sizes = [it.size for it in order]
    values = [it.value for it in order]
    n = len(order)

    def bound(pos: int, room: float) -> float:
        """Value of the fractional relaxation over items[pos:]."""
        total = 0.0
        for i in range(pos, n):
            if sizes[i] <= room:
                room -= sizes[i]
                total += values[i]
            else:
                total += values[i] * (room / sizes[i])
                break
        return total

    # Seed the pruning bound from the caller's incumbent, backed off by
    # a margin larger than the prune tolerance (and any float sum-order
    # drift): the incumbent's own leaf must survive the prune chain so
    # the returned mask is the optimum, never an empty fallback.
    best_value = max(
        0.0, incumbent_value - 1e-9 * max(1.0, abs(incumbent_value))
    )
    best_mask = 0

    # Feasibility tolerance: subtracting sizes from the remaining room
    # one by one accumulates rounding that the combination's plain sum
    # does not (1.0 - 0.9 < 0.1 even though 0.1 + 0.9 <= 1.0), so a
    # strict comparison can wrongly prune the optimal solution.
    eps = 1e-9 * max(1.0, capacity)

    def dfs(pos: int, room: float, value: float, mask: int) -> None:
        nonlocal best_value, best_mask
        if value > best_value:
            best_value = value
            best_mask = mask
        if pos >= n or value + bound(pos, room) <= best_value + 1e-12:
            return
        if sizes[pos] <= room + eps:
            dfs(pos + 1, room - sizes[pos], value + values[pos], mask | (1 << pos))
        dfs(pos + 1, room, value, mask)

    dfs(0, capacity, 0.0, 0)
    selected = [order[i] for i in range(n) if best_mask & (1 << i)]
    return selected, best_value


def _solve_grid(
    viable: List[KnapsackItem], capacity: float, resolution: int
) -> Tuple[List[KnapsackItem], float]:
    """DP over capacity cells; sizes round up, so solutions always fit."""
    cells = max(1, resolution)
    unit = capacity / cells
    weights = [max(1, int(-(-it.size // unit))) for it in viable]

    dp = [0.0] * (cells + 1)
    choice = [[False] * (cells + 1) for _ in viable]
    for i, (item, w) in enumerate(zip(viable, weights)):
        row = choice[i]
        for c in range(cells, w - 1, -1):
            candidate = dp[c - w] + item.value
            if candidate > dp[c]:
                dp[c] = candidate
                row[c] = True

    selected: List[KnapsackItem] = []
    c = cells
    for i in range(len(viable) - 1, -1, -1):
        if choice[i][c]:
            selected.append(viable[i])
            c -= weights[i]
    selected.reverse()
    return selected, dp[cells]


def solve_greedy(
    items: Sequence[KnapsackItem], capacity: float
) -> Tuple[List[KnapsackItem], float]:
    """Density-ordered greedy knapsack (value per size, descending)."""
    viable = [
        it for it in items if it.value > 0.0 and 0.0 < it.size <= capacity
    ]
    viable.sort(key=lambda it: it.value / it.size, reverse=True)
    selected: List[KnapsackItem] = []
    used = 0.0
    total = 0.0
    for item in viable:
        if used + item.size <= capacity:
            selected.append(item)
            used += item.size
            total += item.value
    return selected, total
