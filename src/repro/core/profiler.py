"""The Profiler: two-level gain statistics gathering (§4, Figure 2).

Per query, the Profiler:

1. assigns the query to its cluster ``Q_i``;
2. forms the probation set ``P`` from the materialized indexes used in
   the plan (``I_M``, served first) and the hot indexes relevant to the
   cluster (``I_H``), admitting each with an adaptive sampling
   probability while the epoch's what-if budget ``#WI_lim`` lasts;
3. issues ``WhatIfOptimize(q, P)`` and folds the measured gains into the
   per-(index, cluster) confidence intervals;
4. updates the crude ``BenefitC`` estimate of every relevant candidate.

Consistency (§4.1): a stored measurement for an index is only valid
while the materialized indexes on the same table are unchanged; the
stats carry a configuration signature and reset when it no longer
matches.

Degraded mode: what-if probes run behind a circuit breaker.  Repeated
probe failures trip it, suspending level-2 profiling (no measured gains,
no confidence-interval updates) while crude ``BenefitC`` statistics keep
accumulating; after a cooldown the breaker half-opens, probes a trickle,
and closes again once calls succeed.  See ``docs/RESILIENCE.md``.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.core.candidates import CandidateTracker
from repro.core.clustering import Cluster, ClusterStore
from repro.core.config import ColtConfig
from repro.core.gaincache import GainCache
from repro.core.intervals import GainStats
from repro.engine.catalog import Catalog
from repro.engine.index import IndexDef
from repro.obs.names import PROFILER_METRICS, RESILIENCE_METRICS
from repro.obs.registry import NULL_REGISTRY, MetricsRegistry
from repro.optimizer.whatif import WhatIfOptimizer, WhatIfSession
from repro.resilience.breaker import BreakerState, CircuitBreaker
from repro.resilience.errors import WhatIfProbeError
from repro.sql.ast import Query

# Identity of an index within COLT's bookkeeping: table plus the ordered
# key-column tuple (composite-safe).
IndexKey = Tuple[str, Tuple[str, ...]]


def _key(index: IndexDef) -> IndexKey:
    return index.table, index.columns


class PairStats:
    """Gain statistics for one (index, cluster) pair.

    Attributes:
        gain: Confidence-interval accumulator over measured gains.
        signature: The materialized indexes, restricted to columns the
            cluster's queries reference, at measurement time.  Gains are
            only comparable while this local configuration is unchanged
            (the §4.1 consistency rule); a mismatch invalidates the
            samples.
    """

    __slots__ = ("gain", "signature")

    def __init__(self, confidence: float, signature: FrozenSet[IndexKey]) -> None:
        self.gain = GainStats(confidence)
        self.signature = signature


@dataclasses.dataclass
class EpochIndexBenefit:
    """Per-epoch benefit summary for one profiled index.

    Attributes:
        index: The profiled index.
        low: Conservative per-query benefit (``Benefit_H``/``Benefit_M``).
        high: Optimistic per-query benefit (upper CI bounds; crude
            estimate where the index was never measured).
        measured: Number of what-if measurements contributing this epoch.
    """

    index: IndexDef
    low: float
    high: float
    measured: int


@dataclasses.dataclass
class ProfileOutcome:
    """What the profiler did for one query (for traces and tests)."""

    cluster: Cluster
    probed: List[IndexDef]
    gains: Dict[IndexDef, float]


class Profiler:
    """Implements the profiling algorithm of Figure 2."""

    def __init__(
        self,
        catalog: Catalog,
        whatif: WhatIfOptimizer,
        config: ColtConfig,
        breaker: Optional[CircuitBreaker] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self._catalog = catalog
        self._whatif = whatif
        self._config = config
        self.breaker = breaker or CircuitBreaker()
        self.probe_failures = 0
        self.degraded_queries = 0
        self.registry = registry or NULL_REGISTRY
        self._m_probes = PROFILER_METRICS["profiler_probes_total"].build(self.registry)
        self._m_probe_failures = PROFILER_METRICS["profiler_probe_failures_total"].build(
            self.registry
        )
        self._m_spent = PROFILER_METRICS["profiler_whatif_spent_total"].build(self.registry)
        self._m_degraded = PROFILER_METRICS["profiler_degraded_queries_total"].build(
            self.registry
        )
        self._m_clusters = PROFILER_METRICS["profiler_clusters"].build(self.registry)
        self._m_ci_width = PROFILER_METRICS["profiler_ci_width"].build(self.registry)
        transitions = RESILIENCE_METRICS["breaker_transitions_total"].build(self.registry)
        self.breaker.add_listener(
            lambda origin, to: transitions.inc(1, from_state=origin, to_state=to)
        )
        self._rng = random.Random(config.seed)
        # Cross-query gain cache (collectors registered even when
        # disabled, so the metrics contract holds in either mode).
        self.gain_cache = GainCache(
            catalog,
            whatif,
            enabled=config.gain_cache,
            ttl_epochs=config.history_epochs,
            registry=self.registry,
        )
        self.clusters = ClusterStore(catalog, config.history_epochs)
        self.candidates = CandidateTracker(
            catalog,
            config.history_epochs,
            config.smoothing,
            composite=config.composite_candidates,
        )
        self._pairs: Dict[Tuple[IndexKey, int], PairStats] = {}
        # Per-epoch bookkeeping, keyed by index then cluster id.
        self._epoch_measured: Dict[IndexKey, Dict[int, List[float]]] = {}
        self._epoch_exposure: Dict[IndexKey, Dict[int, int]] = {}
        self.whatif_used = 0
        self.whatif_budget = config.max_whatif_per_epoch

    # ------------------------------------------------------------------
    # Per-query profiling
    # ------------------------------------------------------------------
    def profile_query(
        self,
        query: Query,
        session: WhatIfSession,
        hot: Iterable[IndexDef],
        materialized: Iterable[IndexDef],
    ) -> ProfileOutcome:
        """Run one invocation of PROFILE QUERY (Figure 2).

        Args:
            query: The current bound query.
            session: The what-if session opened by the normal
                optimization of the query.
            hot: The current hot set ``H``.
            materialized: The current materialized set ``M``.

        Returns:
            The profiling outcome (cluster, probed indexes, gains).
        """
        self.breaker.tick()
        cluster = self.clusters.assign(query)
        used = session.base.plan.indexes_used()

        # I_M: materialized indexes used in the plan (paper line 3).
        # Canonical (name-sorted) order before the seeded shuffle below:
        # iterating the caller's sets directly would make probation order
        # -- and thus the whole run -- vary with hash randomization.
        mat_used = [ix for ix in sorted(materialized, key=str) if ix in used]
        # I_H: hot indexes relevant to the cluster (paper line 4).
        hot_relevant = [
            ix for ix in sorted(hot, key=str) if cluster.is_relevant(ix)
        ]

        # Exposure counts: every query in the cluster contributes to the
        # denominator of Benefit_H for relevant hot indexes; materialized
        # indexes accrue exposure only when the plan uses them (§4.1,
        # QueryGain_M tracks positive benefit on use).
        for index in hot_relevant:
            self._bump_exposure(index, cluster)
        for index in mat_used:
            self._bump_exposure(index, cluster)

        probation: List[IndexDef] = []
        budget_cap = self.effective_budget
        self._rng.shuffle(mat_used)
        self._rng.shuffle(hot_relevant)
        for index in mat_used + hot_relevant:
            if self.whatif_used + len(probation) >= budget_cap:
                break
            if self._rng.random() < self._sample_rate(index, cluster):
                probation.append(index)
        if not self.breaker.is_closed and budget_cap == 0:
            self.degraded_queries += 1
            self._m_degraded.inc()

        # Probe one index per what-if call so a single failed call loses
        # only its own gain; each failure feeds the circuit breaker, and
        # successful probes keep (or win back) full profiling.
        #
        # Cached gains are served *before* the breaker gate (a hit needs
        # no extended-optimizer call, so it stays available in degraded
        # mode) but still consume one budget unit: the probation set was
        # admitted under #WI_lim, and charging hits keeps the sampling
        # stream identical to a cache-off run -- the invariant the
        # differential harness pins.  Only the ledger-visible call is
        # saved (no call_count, no whatif_call_cost).
        cache_ctx = (
            self.gain_cache.begin_query(query) if self.gain_cache.enabled else None
        )
        gains: Dict[IndexDef, float] = {}
        for index in probation:
            if cache_ctx is not None:
                cached = cache_ctx.lookup(index)
                if cached is not None:
                    self.whatif_used += 1
                    self._m_spent.inc()
                    gains[index] = cached
                    self._record_gain(index, cluster, cached)
                    continue
            if not self.breaker.allows_probes():
                break  # tripped mid-query: stop probing immediately
            self.whatif_used += 1
            self._m_probes.inc()
            self._m_spent.inc()
            try:
                probe = self._whatif.what_if_optimize(session, [index])
            except WhatIfProbeError as exc:
                self.probe_failures += 1
                self._m_probe_failures.inc()
                self.breaker.record_failure()
                # Gains measured before the failing probe in the same
                # batch were paid for and are exact -- consume them
                # instead of discarding and re-probing.  (Single-index
                # probes, the loop above, carry an empty dict.)
                for ix, gain in exc.partial_gains.items():
                    gains[ix] = gain
                    self._record_gain(ix, cluster, gain)
                    if cache_ctx is not None:
                        cache_ctx.store(ix, gain)
                continue
            self.breaker.record_success()
            for ix, gain in probe.items():
                gains[ix] = gain
                self._record_gain(ix, cluster, gain)
                if cache_ctx is not None:
                    cache_ctx.store(ix, gain)

        # Lines 13-14: crude benefit updates for every relevant candidate.
        self.candidates.observe_query(query, used, materialized)
        self._m_clusters.set(len(self.clusters))
        return ProfileOutcome(cluster=cluster, probed=probation, gains=gains)

    # ------------------------------------------------------------------
    # Epoch roll-over
    # ------------------------------------------------------------------
    def end_epoch(
        self,
        hot: Iterable[IndexDef],
        materialized: Iterable[IndexDef],
    ) -> Dict[IndexKey, EpochIndexBenefit]:
        """Summarize the epoch and reset per-epoch state.

        Returns:
            Per-index epoch benefits (low = conservative, high =
            optimistic) for every index in ``H ∪ M``.
        """
        w = self._config.epoch_length
        report: Dict[IndexKey, EpochIndexBenefit] = {}
        for index in sorted(list(hot) + list(materialized), key=str):
            key = _key(index)
            if key in report:
                continue
            measured = self._epoch_measured.get(key, {})
            exposure = self._epoch_exposure.get(key, {})
            low_total = 0.0
            high_total = 0.0
            n_measured = 0
            any_unmeasured_pair = False
            for cid, count in exposure.items():
                samples = measured.get(cid, [])
                n = len(samples)
                n_measured += n
                pair = self._valid_pair(key, cid)
                low_bound = pair.gain.low if pair else 0.0
                if pair and pair.gain.count > 0:
                    high_bound = pair.gain.high
                else:
                    high_bound = None
                    any_unmeasured_pair = True
                unmeasured = max(0, count - n)
                low_total += sum(samples) + unmeasured * low_bound
                high_total += sum(samples) + unmeasured * (
                    high_bound if high_bound is not None else 0.0
                )
            low = low_total / w
            high = high_total / w
            if any_unmeasured_pair:
                # Never-profiled exposure: the optimistic view falls back
                # to the crude (optimistic by construction) estimate.
                crude = self._crude_epoch_benefit(index)
                high = max(high, crude)
            report[key] = EpochIndexBenefit(
                index=index, low=low, high=max(high, low), measured=n_measured
            )

        self._epoch_measured.clear()
        self._epoch_exposure.clear()
        self.candidates.roll_epoch(w)
        self.clusters.roll_epoch()
        self.gain_cache.roll_epoch()
        self.whatif_used = 0
        return report

    def set_budget(self, budget: int) -> None:
        """Install the next epoch's what-if budget ``#WI_lim``."""
        self.whatif_budget = max(0, min(budget, self._config.max_whatif_per_epoch))

    @property
    def effective_budget(self) -> int:
        """The what-if budget actually enforceable right now.

        The circuit breaker degrades two-level profiling to crude-only
        when the what-if interface is failing: OPEN suspends probing
        entirely (effective budget 0 regardless of the granted
        ``#WI_lim``), HALF_OPEN lets a small probe trickle through to
        test recovery, and CLOSED restores the full granted budget.
        """
        if self.breaker.state is BreakerState.OPEN:
            return 0
        if self.breaker.state is BreakerState.HALF_OPEN:
            return min(
                self.whatif_budget,
                self.whatif_used + self.breaker.half_open_budget,
            )
        return self.whatif_budget

    # ------------------------------------------------------------------
    # Consistency maintenance
    # ------------------------------------------------------------------
    def purge_stale(self) -> None:
        """Drop measurements whose configuration signature went stale.

        Called after the materialized set changes.  Only pairs whose
        *cluster* references a changed column are affected -- an index's
        measured gain for a cluster cannot change unless the availability
        of an index on one of the cluster's referenced columns changed.
        Pairs for evicted clusters are dropped too.
        """
        for (key, cid), pair in list(self._pairs.items()):
            if not self.clusters.has_id(cid):
                del self._pairs[(key, cid)]
                continue
            cluster = self.clusters.by_id(cid)
            if pair.signature != self._cluster_signature(cluster):
                del self._pairs[(key, cid)]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _cluster_signature(self, cluster: Cluster) -> FrozenSet[IndexKey]:
        referenced = cluster.referenced_columns()
        return frozenset(
            _key(ix)
            for ix in self._catalog.materialized_indexes()
            if any((ix.table, col) in referenced for col in ix.columns)
        )

    def _valid_pair(self, key: IndexKey, cluster_id: int) -> Optional[PairStats]:
        """The pair stats for (index, cluster), if current and consistent."""
        pair = self._pairs.get((key, cluster_id))
        if pair is None or not self.clusters.has_id(cluster_id):
            return pair
        cluster = self.clusters.by_id(cluster_id)
        if pair.signature != self._cluster_signature(cluster):
            return None
        return pair

    def _pair(self, index: IndexDef, cluster: Cluster) -> PairStats:
        key = (_key(index), cluster.cluster_id)
        signature = self._cluster_signature(cluster)
        pair = self._pairs.get(key)
        if pair is None or pair.signature != signature:
            pair = PairStats(self._config.confidence, signature)
            self._pairs[key] = pair
        return pair

    def _bump_exposure(self, index: IndexDef, cluster: Cluster) -> None:
        per_cluster = self._epoch_exposure.setdefault(_key(index), {})
        per_cluster[cluster.cluster_id] = per_cluster.get(cluster.cluster_id, 0) + 1

    def _record_gain(self, index: IndexDef, cluster: Cluster, gain: float) -> None:
        pair = self._pair(index, cluster)
        pair.gain.add(gain)
        low, high = pair.gain.interval()
        self._m_ci_width.observe(high - low)
        per_cluster = self._epoch_measured.setdefault(_key(index), {})
        per_cluster.setdefault(cluster.cluster_id, []).append(gain)

    def _sample_rate(self, index: IndexDef, cluster: Cluster) -> float:
        """``GetSampleRate``: error-contribution-proportional sampling.

        The error contribution of a pair grows with the cluster's
        popularity and the gain variance, and shrinks with the number of
        samples; unprofiled pairs are sampled with certainty.
        """
        pair = self._valid_pair(_key(index), cluster.cluster_id)
        if pair is None or pair.gain.count < 3:
            # Too few samples for the CLT interval to mean anything:
            # profile with certainty until a baseline exists.
            return 1.0
        total = max(1, self.clusters.total_count())
        popularity = cluster.count() / total
        rate = 8.0 * popularity * pair.gain.relative_uncertainty()
        return min(1.0, max(0.05, rate))

    def _crude_epoch_benefit(self, index: IndexDef) -> float:
        stats = self.candidates.stats_for(index)
        if stats is None:
            return 0.0
        return stats.epoch_gain / self._config.epoch_length

    def interval_for(
        self, index: IndexDef, cluster_id: int
    ) -> Optional[Tuple[float, float]]:
        """The (low, high) gain interval for a pair, if it has samples."""
        pair = self._valid_pair(_key(index), cluster_id)
        if pair is None or pair.gain.count == 0:
            return None
        return pair.gain.interval()
