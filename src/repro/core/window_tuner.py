"""Adaptive forecast-window tuning (the paper's §6.2 future work).

Figure 6's worst band exists because the forecasting window coincides
with the noise-burst length: the burst dominates every forecast horizon
and COLT materializes indexes it drops again almost immediately.  The
paper closes with: "It may be possible for the system to tune the length
of this window if materialized indices are dropped too quickly.  We plan
to explore this extension in our future work."

:class:`ForecastWindowTuner` implements that extension with a simple
additive-increase / gradual-decrease controller:

* every index build records the epoch it happened;
* when an index is dropped after a *short tenure* (fewer than
  ``short_tenure_epochs`` since its build), the controller counts it as
  an overreaction and **grows** the window multiplicatively -- longer
  windows average over more history, so transient trends need to persist
  longer before they look materialization-worthy;
* each quiet epoch (no short-tenure drop) the window **decays** one step
  back toward the configured base, restoring adaptivity.

The window is clamped to ``[base, max_factor * base]``: adaptivity never
exceeds the paper's default, only caution does.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

from repro.engine.index import IndexDef

IndexKey = Tuple[str, str]


class ForecastWindowTuner:
    """Controller adjusting the forecast window from drop tenures.

    Args:
        base_window: The configured forecast window (the paper's ``h``).
        short_tenure_epochs: A drop within this many epochs of the build
            counts as "dropped too quickly".
        growth: Multiplicative window growth per short-tenure drop.
        max_factor: Upper clamp as a multiple of the base window.
    """

    def __init__(
        self,
        base_window: int,
        short_tenure_epochs: int = 4,
        growth: float = 1.5,
        max_factor: float = 2.0,
    ) -> None:
        if base_window < 1:
            raise ValueError("base_window must be positive")
        self._base = base_window
        self._short = short_tenure_epochs
        self._growth = growth
        self._max = max(base_window, int(round(base_window * max_factor)))
        self._window = float(base_window)
        self._built_at: Dict[IndexKey, int] = {}
        self._epoch = 0
        self.short_tenure_drops = 0

    @property
    def window(self) -> int:
        """The forecast window to use for the next epoch, in epochs."""
        return int(round(self._window))

    @property
    def epoch(self) -> int:
        """Epochs observed so far."""
        return self._epoch

    def observe_epoch(
        self,
        materialized: Iterable[IndexDef],
        dropped: Iterable[IndexDef],
    ) -> int:
        """Fold one epoch's reorganization outcome into the controller.

        Args:
            materialized: Indexes built this epoch.
            dropped: Indexes dropped this epoch.

        Returns:
            The window to use for the next epoch.
        """
        overreacted = False
        for index in dropped:
            key = (index.table, index.column)
            built = self._built_at.pop(key, None)
            if built is not None and self._epoch - built < self._short:
                overreacted = True
                self.short_tenure_drops += 1
        for index in materialized:
            self._built_at[(index.table, index.column)] = self._epoch

        if overreacted:
            self._window = min(float(self._max), self._window * self._growth)
        else:
            # Gradual relaxation toward the base, one epoch-step at a time.
            self._window = max(float(self._base), self._window - 0.25)

        self._epoch += 1
        return self.window
