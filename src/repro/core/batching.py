"""Batched hot path: interned signatures and memoized base optimization.

The per-query serving path spends its time in three places: binding,
signature computation (gain cache + clustering), and the *base*
optimization that opens every what-if session.  A replayed production
stream is massively repetitive -- the same query shapes arrive again
and again -- so all three are memoizable **without changing a single
decision**:

* :class:`SignatureInterner` computes each query's structural signature
  once (identity-keyed, so replaying the same query object is a dict
  hit) and interns equal signatures to one tuple object.
* :func:`bind_batch` binds a batch against the catalog with
  signature-keyed reuse: structurally identical queries share one bound
  copy, so downstream identity-keyed memos (the interner, the gain
  cache's batch priming) hit for free.
* :class:`BatchedPricer` wraps any :class:`~repro.backend.base.Backend`
  and memoizes :meth:`~repro.backend.base.Backend.begin_query` -- the
  dominant per-query optimizer invocation -- under the same
  self-validating key discipline as the gain cache (PR 4): query
  structural signature, relevant-configuration signature, and per-table
  statistics tokens.  A hit can only serve a result the backend would
  recompute identically (the optimizer is deterministic in those three
  inputs), which is what lets the differential and property tests
  demand bit-identical decision streams between batched and unbatched
  runs.

What is *not* memoized: anything behind the profiler's RNG (probation
sampling order), budget accounting, or ``WhatIfOptimizer.call_count``
-- the ledger still charges every probe, exactly as the gain cache's
"hits are charged, calls are not" budget semantics established.
"""

from __future__ import annotations

import collections
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.backend.base import Backend, WhatIfSession
from repro.core.gaincache import query_signature
from repro.engine.catalog import Catalog
from repro.optimizer.access import IndexConfig
from repro.optimizer.optimizer import OptimizationResult, PlanCache
from repro.sql.ast import Query
from repro.sql.binder import bind_query

__all__ = ["BatchedPricer", "SignatureInterner", "bind_batch"]


class SignatureInterner:
    """Compute-once, share-everything query signatures.

    Two layers of reuse:

    * identity: the signature of a query *object* is computed once
      (replay streams cycle the same objects, so this is the common
      hit);
    * structure: equal signatures from distinct objects are interned to
      a single tuple, so hash-heavy consumers (gain cache keys, pricer
      memo keys) compare and hash one shared object.

    The interner holds strong references to the queries it has seen --
    that is what makes the ``id()`` fast path sound (a dead object's id
    can be reused; a live one's cannot).  Call :meth:`clear` between
    unrelated streams.
    """

    def __init__(self) -> None:
        self._by_id: Dict[int, Tuple[Query, Tuple, int]] = {}
        self._interned: Dict[Tuple, Tuple] = {}
        self._index: Dict[Tuple, int] = {}
        # Never reset, even by clear(): signature indices are unique
        # for the interner's whole lifetime, so a consumer that keys a
        # cache by index and misses a clear() can only miss, never
        # silently alias two distinct signatures.
        self._next_index = 0

    def __len__(self) -> int:
        return len(self._interned)

    def signature(self, query: Query) -> Tuple:
        """The (interned) structural signature of ``query``."""
        return self.signature_index(query)[0]

    def signature_index(self, query: Query) -> Tuple[Tuple, int]:
        """``(signature, index)`` for ``query``.

        The index is a small integer unique to the signature's
        *structure*: equal signatures share one index, distinct ones
        never do.  Hash-heavy consumers key their memos by it instead
        of the (large, hash-uncached) signature tuple, turning every
        probe into an int hash.  Indices are never reused, even across
        :meth:`clear`.
        """
        hit = self._by_id.get(id(query))
        if hit is not None and hit[0] is query:
            return hit[1], hit[2]
        sig = query_signature(query)
        sig = self._interned.setdefault(sig, sig)
        index = self._index.get(sig)
        if index is None:
            index = self._next_index
            self._next_index += 1
            self._index[sig] = index
        self._by_id[id(query)] = (query, sig, index)
        return sig, index

    def clear(self) -> None:
        """Drop all memoized signatures (and the query references)."""
        self._by_id.clear()
        self._interned.clear()
        self._index.clear()


def bind_batch(
    queries: Sequence[Query],
    catalog: Catalog,
    interner: Optional[SignatureInterner] = None,
) -> List[Query]:
    """Bind a batch of queries with signature-keyed reuse.

    Equivalent to ``[bind_query(q, catalog) for q in queries]`` (the
    binder is a pure function of query structure and catalog), except
    that structurally identical queries share one bound object.  Sharing
    is deliberate: every identity-keyed memo downstream -- the
    interner's fast path, :meth:`GainCache.prime_batch
    <repro.core.gaincache.GainCache.prime_batch>` -- then hits without
    recomputing anything.

    Raises:
        repro.sql.binder.BindError: exactly when the per-query loop
            would, on the first offending query.
    """
    interner = interner if interner is not None else SignatureInterner()
    bound_by_sig: Dict[Tuple, Query] = {}
    out: List[Query] = []
    for query in queries:
        sig = interner.signature(query)
        bound = bound_by_sig.get(sig)
        if bound is None:
            bound = bind_query(query, catalog)
            bound_by_sig[sig] = bound
        out.append(bound)
    return out


class _MemoEntry:
    __slots__ = ("base", "cache")

    def __init__(self, base: OptimizationResult, cache: PlanCache) -> None:
        self.base = base
        self.cache = cache


class BatchedPricer(Backend):
    """Decision-preserving ``begin_query`` memo over any backend.

    Args:
        inner: The real backend answering optimizer requests.
        interner: Shared signature interner (one per stream); a private
            one is created when omitted.
        max_entries: Memo capacity; least-recently-used entries are
            evicted beyond it.

    The memo key is ``(query signature, relevant-config signature,
    per-table stats tokens)`` -- recomputed at every lookup, so a
    materialization change or statistics bump can never serve a stale
    base result; at worst it misses.  On a hit the stored
    :class:`~repro.optimizer.optimizer.OptimizationResult` and the
    *warmed* per-query :class:`~repro.optimizer.optimizer.PlanCache`
    are reused, so the session's subsequent what-if probes also start
    from cached sub-plans.  Everything else delegates to ``inner``
    unchanged.
    """

    def __init__(
        self,
        inner: Backend,
        interner: Optional[SignatureInterner] = None,
        max_entries: int = 4096,
    ) -> None:
        self.inner = inner
        self.interner = interner if interner is not None else SignatureInterner()
        self.max_entries = max(1, max_entries)
        self._memo: "collections.OrderedDict[Tuple, _MemoEntry]" = (
            collections.OrderedDict()
        )
        # (config_token, current_config): one config recompute per
        # backend state change instead of one per lookup.
        self._config_cache: Optional[Tuple[tuple, IndexConfig]] = None
        # sig index -> (config_token, csig): the relevant-config
        # signature only changes when the backend's state does, so an
        # unchanged token revalidates the cached frozenset with one
        # int-keyed probe.
        self._csig_cache: Dict[int, Tuple[tuple, frozenset]] = {}
        # sig index -> (config_token, entry): the O(1) whole-session
        # shortcut -- when *nothing* the optimizer sees has changed,
        # the previously served entry is still exact and even the memo
        # key build is skipped.  Keyed by signature index (never
        # reused, see SignatureInterner), so a cleared interner can
        # only cause misses, never aliasing.
        self._fast: Dict[int, Tuple[tuple, _MemoEntry]] = {}
        self.hits = 0
        self.misses = 0
        self._m_hits = None
        self._m_misses = None

    # -- delegation ----------------------------------------------------
    @property
    def capabilities(self):
        return self.inner.capabilities

    @property
    def catalog(self) -> Catalog:
        return self.inner.catalog

    @property
    def optimizer(self):
        """The inner backend's plain optimizer (None for remote/replay)."""
        return getattr(self.inner, "optimizer", None)

    def current_config(self) -> IndexConfig:
        return self.inner.current_config()

    def optimize(self, query, config=None, session=None, cache=None):
        return self.inner.optimize(
            query, config=config, session=session, cache=cache
        )

    def get_cost(self, query, config=None, session=None) -> float:
        return self.inner.get_cost(query, config=config, session=session)

    def relevant_config(self, query: Query, config: IndexConfig) -> IndexConfig:
        return self.inner.relevant_config(query, config)

    def simulate_index(self, index) -> None:
        self.inner.simulate_index(index)

    def drop_simulated_index(self, index) -> None:
        self.inner.drop_simulated_index(index)

    def simulated_indexes(self) -> IndexConfig:
        return self.inner.simulated_indexes()

    def stats_token(self, table: str):
        return self.inner.stats_token(table)

    def config_token(self):
        return self.inner.config_token()

    def refresh_stats(self, table: str) -> None:
        self.inner.refresh_stats(table)

    def bind_registry(self, registry) -> None:
        from repro.obs.names import REPLAY_METRICS

        self.inner.bind_registry(registry)
        self._m_hits = REPLAY_METRICS["replay_batch_memo_hits_total"].build(
            registry
        )
        self._m_misses = REPLAY_METRICS[
            "replay_batch_memo_misses_total"
        ].build(registry)

    # -- the memoized hot path -----------------------------------------
    def _memo_key(self, query: Query) -> Tuple:
        sig, index = self.interner.signature_index(query)
        return self._key_for(query, sig, index, self.inner.config_token())

    def _key_for(
        self, query: Query, sig: Tuple, index: int, token: Optional[tuple]
    ) -> Tuple:
        # The key stays fine-grained -- (signature, relevant-config
        # signature, per-table stats tokens) -- so a global config
        # change that cannot affect this query still hits.  What the
        # backend's config_token buys is making the key *cheap* to
        # build: the current config is recomputed once per state change
        # (not once per lookup), the relevant-config frozenset is
        # revalidated per signature with one int-keyed probe, and the
        # signature's small interned index stands in for the large
        # hash-uncached signature tuple.  Backends without a token
        # (config_token() is None) recompute everything every time,
        # which is the original, always-safe behavior; the two key
        # shapes cannot collide (tuple- vs int-leading).
        if token is None:
            config = self.inner.current_config()
            relevant = self.inner.relevant_config(query, config)
            csig = frozenset((ix.table, ix.columns) for ix in relevant)
            tokens = tuple(
                (t, self.inner.stats_token(t)) for t in query.tables
            )
            return sig, csig, tokens
        cached = self._csig_cache.get(index)
        if cached is not None and cached[0] == token:
            csig = cached[1]
        else:
            cfg = self._config_cache
            if cfg is None or cfg[0] != token:
                cfg = (token, self.inner.current_config())
                self._config_cache = cfg
            relevant = self.inner.relevant_config(query, cfg[1])
            csig = frozenset((ix.table, ix.columns) for ix in relevant)
            self._csig_cache[index] = (token, csig)
        tokens = tuple(
            (t, self.inner.stats_token(t)) for t in query.tables
        )
        return index, csig, tokens

    def begin_query(self, query: Query) -> WhatIfSession:
        """Open a what-if session, serving the base result from the memo
        when the (signature, config, stats) key proves it identical."""
        sig, index = self.interner.signature_index(query)
        token = self.inner.config_token()
        if token is not None:
            cached = self._fast.get(index)
            if cached is not None and cached[0] == token:
                self.hits += 1
                if self._m_hits is not None:
                    self._m_hits.inc()
                entry = cached[1]
                return WhatIfSession(
                    query=query, base=entry.base, cache=entry.cache
                )
        key = self._key_for(query, sig, index, token)
        entry = self._memo.get(key)
        if entry is not None:
            self._memo.move_to_end(key)
            self.hits += 1
            if self._m_hits is not None:
                self._m_hits.inc()
        else:
            session = self.inner.begin_query(query)
            self.misses += 1
            if self._m_misses is not None:
                self._m_misses.inc()
            if len(self._memo) >= self.max_entries:
                self._memo.popitem(last=False)
            entry = _MemoEntry(session.base, session.cache)
            self._memo[key] = entry
        if token is not None:
            self._fast[index] = (token, entry)
        return WhatIfSession(query=query, base=entry.base, cache=entry.cache)

    def begin_queries(self, queries: Iterable[Query]) -> List[WhatIfSession]:
        """Warm the memo for a whole batch (sessions in batch order).

        Duplicates inside the batch collapse to one base optimization;
        the replay driver calls this per chunk so the per-query loop
        that follows runs entirely on hits.
        """
        return [self.begin_query(q) for q in queries]

    def clear(self) -> None:
        """Drop every memo entry (stream boundary / tests)."""
        self._memo.clear()
        self._config_cache = None
        self._csig_cache.clear()
        self._fast.clear()
