"""COLT configuration.

Defaults follow §6.1 of the paper: epoch length ``w = 10``, history depth
``h = 12`` epochs, at most ``#WI_max = 20`` what-if calls per epoch, and
90% confidence intervals.  The paper reports its results were not
sensitive to the exact values.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class ColtConfig:
    """Tuning parameters for COLT.

    Attributes:
        epoch_length: Queries per epoch (the paper's ``w``).
        history_epochs: Epochs of memory (the paper's ``h``); statistics
            and forecasts use a sliding window of this many epochs.
        max_whatif_per_epoch: Hard cap on what-if calls per epoch (the
            paper's ``#WI_max``); the Self-Organizer's re-budgeting sets
            the actual per-epoch limit ``#WI_lim`` in ``[0, max]``.
        confidence: Confidence level for CLT gain intervals.
        storage_budget_pages: On-line storage budget ``B`` for
            materialized indexes, in pages.
        rebudget_knee: The ratio ``r`` at which profiling saturates to
            ``max_whatif_per_epoch`` (the paper uses 1.3: profiling is
            suspended at r = 1 and maximal at r >= 1.3).
        max_hot_size: Safety cap on the hot set size after the 2-means
            split of crude benefits.
        whatif_call_cost: Overhead charged to the ledger per what-if
            call, in planner cost units.  Models the CPU the paper's
            prototype spends in the extended optimizer (kept small by
            its sub-plan reuse).
        smoothing: Exponential smoothing factor for the crude-benefit
            average used in hot set selection (weight of the newest
            epoch).
        matcost_weight: Multiplier on the index build cost inside the
            NetBenefit formula.  1.0 is the paper's formula taken
            literally (per-query benefit forecasts against the full
            build cost), which acts as hysteresis against churn between
            near-equal indexes; smaller values make COLT more eager to
            re-materialize.
        retention_weight: Fraction of the build cost credited to an
            already-materialized index in the knapsack, so a challenger
            must beat the incumbent by a noise-proof margin (evict +
            re-adopt costs two builds).
        min_history_epochs: A hot index needs at least this many epochs
            of measured benefit history before the conservative knapsack
            may materialize it -- committing budget after one good epoch
            preempts better candidates that have not been profiled yet.
        forecast_window: Override for the forecasting window in epochs;
            None uses ``history_epochs``.  Exposed for the forecast-
            window ablation the paper's §6.2 discussion motivates.
        adaptive_forecast_window: Implements the paper's §6.2 future
            work: "tune the length of this window if materialized
            indices are dropped too quickly."  When enabled, the
            Self-Organizer grows the forecast window after short-tenure
            drops (making the tuner more skeptical of transient trends)
            and relaxes it back while the configuration is stable.
        composite_candidates: Extension beyond the paper (§2 restricts
            COLT to single-column indexes): when True, queries with
            several predicates on one table also mine two-column
            composite index candidates, which flow through the same
            profiling, knapsack and scheduling machinery.
        gain_cache: Enables the cross-query what-if gain cache
            (``repro.core.gaincache``): gains provably identical to a
            fresh probe are served without an extended-optimizer call
            and without ledger overhead.  Sampling decisions and the
            selected configuration are unchanged either way (see
            docs/PERFORMANCE.md); off by default so overhead accounting
            matches the paper's prototype exactly.
        knapsack_warm_start: Seeds each epoch's knapsack solve with the
            previous epoch's solution value as a branch-and-bound
            incumbent.  Provably returns the same optimum -- the
            incumbent is a strict lower bound -- it only prunes the
            search earlier.
        seed: Seed for the profiler's sampling decisions.
    """

    epoch_length: int = 10
    history_epochs: int = 12
    max_whatif_per_epoch: int = 20
    confidence: float = 0.90
    storage_budget_pages: float = 12_000.0
    rebudget_knee: float = 1.3
    max_hot_size: int = 12
    whatif_call_cost: float = 10.0
    smoothing: float = 0.3
    matcost_weight: float = 0.4
    retention_weight: float = 0.2
    min_history_epochs: int = 3
    forecast_window: int | None = None
    adaptive_forecast_window: bool = False
    composite_candidates: bool = False
    gain_cache: bool = False
    knapsack_warm_start: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if self.epoch_length < 1:
            raise ValueError("epoch_length must be positive")
        if self.history_epochs < 1:
            raise ValueError("history_epochs must be positive")
        if self.max_whatif_per_epoch < 0:
            raise ValueError("max_whatif_per_epoch must be non-negative")
        if not 0.5 <= self.confidence < 1.0:
            raise ValueError("confidence must be in [0.5, 1.0)")
        if self.storage_budget_pages < 0:
            raise ValueError("storage_budget_pages must be non-negative")
        if self.rebudget_knee <= 1.0:
            raise ValueError("rebudget_knee must exceed 1.0")
        if not 0.0 < self.smoothing <= 1.0:
            raise ValueError("smoothing must be in (0, 1]")

    @property
    def effective_forecast_window(self) -> int:
        """The forecasting window in epochs."""
        return self.forecast_window or self.history_epochs
